#!/usr/bin/env python3
"""Back-compat shim: the conventions gate lives in ``repro.check.codelint``.

Same contract as always — ``python scripts/check_conventions.py [paths...]``
checks ``src/repro`` (or the given files/directories), prints one
``file:line: message`` per violation, and exits 1 on any.  The rules
themselves (the original seven plus the concurrency dataflow rules) are
defined and tested in :mod:`repro.check.codelint`.
"""

from __future__ import annotations

import pathlib
import sys

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.check.codelint import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
