#!/usr/bin/env python
"""AST-based conventions gate for ``src/repro`` (stdlib only).

Enforced conventions:

1. **Typed exceptions** — every ``raise SomeException(...)`` must use an
   exception defined by the library (all of which derive from
   ``ReproError``), never a bare builtin.  ``TypeError`` is allowlisted:
   the deprecated-positional-call shims in ``repro.core.gossip``
   deliberately mirror Python's own signature errors.  Bare ``raise``
   re-raises are always fine.
2. **No ``bin(x).count("1")``** — popcounts use ``int.bit_count()``
   (Python >= 3.8 baseline was dropped when the planner went
   bit-parallel; the idiom is both slower and easier to typo).
3. **Keyword-only public API calls** — calls to ``gossip`` /
   ``gossip_on_tree`` pass at most one positional argument (the network
   spec / tree) and ``.execute()`` method calls pass none; everything
   else is keyword-only.  The deprecated positional shims only exist for
   *external* callers mid-migration — library code never goes through
   them.
4. **No Python loops in core hot paths** — the schedule-construction
   modules (``core/propagate_up.py``, ``core/propagate_down.py``,
   ``core/concurrent_updown.py``) build schedules as flat numpy arrays;
   a ``for``/``while`` over transmissions or vertices silently drags a
   hot path back to the seed's seconds-per-plan object pipeline.  Loops
   are only allowed inside functions whose name ends with ``_builder``
   (the per-vertex reference implementations kept for differential
   tests) or whose docstring carries a ``hot-loop-ok`` marker next to a
   justification (e.g. a loop over tree *levels*, not transmissions).
5. **Clock discipline in the runtime** — inside ``src/repro/runtime``
   every time-dependent call goes through the injectable
   :class:`repro.runtime.clock.Clock`; bare ``asyncio.sleep``,
   ``asyncio.wait_for``, ``time.time`` and ``time.monotonic`` calls are
   forbidden outside ``clock.py`` itself.  A direct call would bypass
   the :class:`ScaledClock` test double and silently turn a
   milliseconds-long failure-detection test back into wall-clock
   seconds (or, worse, split the runtime across two disagreeing
   clocks).
6. **Seeded randomness in the randomized baselines** — inside
   ``src/repro/core/epidemic.py`` and ``src/repro/core/coded.py`` every
   coin flip must flow through the splitmix64 streams of
   ``repro.core.rng``; importing or calling the stdlib ``random``
   module (or ``numpy.random``) is forbidden.  A single unseeded draw
   would silently break the byte-for-byte reproducibility the
   adversarial comparison gates assert.
7. **Process discipline in the runtime** — inside ``src/repro/runtime``
   only ``supervisor.py`` and ``proc.py`` may touch process machinery:
   importing ``multiprocessing`` or ``signal``, or calling ``os.fork``
   / ``os.kill`` (and variants), is forbidden elsewhere.  Spawning or
   signalling from a peer/transport module would bypass the
   supervision tree — deaths the supervisor cannot see, journal, or
   resolve.

Exit status: 0 when clean, 1 with one ``file:line: message`` per
violation on stdout.  Run from the repository root::

    python scripts/check_conventions.py
    python scripts/check_conventions.py src/repro/core  # narrower scope
"""

from __future__ import annotations

import ast
import builtins
import pathlib
import sys
from typing import Iterator, List, Tuple

#: Builtin exception raises that stay legal in library code.
ALLOWED_BUILTIN_RAISES = {"TypeError"}

#: Public API callables whose calls must be keyword-only past the first
#: positional argument (functions) or past zero (methods).
KEYWORD_ONLY_FUNCTIONS = {"gossip": 1, "gossip_on_tree": 1}
KEYWORD_ONLY_METHODS = {"execute": 0}

#: ``core/`` modules where Python-level loops are banned (vectorised
#: schedule construction) unless explicitly exempted.
HOT_PATH_MODULES = {
    "propagate_up.py",
    "propagate_down.py",
    "concurrent_updown.py",
}

#: Docstring marker exempting one function from the hot-path loop rule.
HOT_LOOP_MARKER = "hot-loop-ok"

#: ``module.attr`` calls forbidden in ``src/repro/runtime`` outside
#: ``clock.py`` (the injectable-clock discipline, rule 5).
BARE_CLOCK_CALLS = {
    ("asyncio", "sleep"),
    ("asyncio", "wait_for"),
    ("time", "time"),
    ("time", "monotonic"),
}

#: ``core/`` modules whose randomness must come from ``repro.core.rng``
#: (rule 6): any mention of the stdlib ``random`` / ``numpy.random``
#: modules is forbidden.
SEEDED_RNG_MODULES = {
    "epidemic.py",
    "coded.py",
    "rng.py",
}

#: Runtime modules allowed to touch process machinery (rule 7): the
#: supervision tree's own two halves.
PROCESS_MODULES = {"supervisor.py", "proc.py"}

#: Module imports forbidden in the rest of ``src/repro/runtime``.
PROCESS_IMPORTS = ("multiprocessing", "signal")

#: ``os.<attr>`` calls forbidden there for the same reason.
PROCESS_OS_CALLS = {"fork", "forkpty", "kill", "killpg"}

Violation = Tuple[pathlib.Path, int, str]


def _builtin_exception_names() -> frozenset:
    return frozenset(
        name
        for name in dir(builtins)
        if isinstance(getattr(builtins, name), type)
        and issubclass(getattr(builtins, name), BaseException)
    )


BUILTIN_EXCEPTIONS = _builtin_exception_names()


def _raised_name(node: ast.Raise) -> str:
    """The name being raised, or '' for bare/complex raises."""
    exc = node.exc
    if exc is None:
        return ""  # bare re-raise
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    return ""  # attribute raises (module.Error) are library-defined


def _is_hot_path(path: pathlib.Path) -> bool:
    return path.name in HOT_PATH_MODULES and path.parent.name == "core"


def _needs_clock_discipline(path: pathlib.Path) -> bool:
    return path.parent.name == "runtime" and path.name != "clock.py"


def _needs_seeded_rng(path: pathlib.Path) -> bool:
    return path.name in SEEDED_RNG_MODULES and path.parent.name == "core"


def _needs_process_discipline(path: pathlib.Path) -> bool:
    return path.parent.name == "runtime" and path.name not in PROCESS_MODULES


def _process_violations(
    path: pathlib.Path, node: ast.AST
) -> Iterator[Violation]:
    """Rule 7: process machinery only in supervisor.py / proc.py."""
    message = (
        "process machinery outside the supervision tree; spawning or "
        "signalling belongs in repro.runtime.supervisor / proc so every "
        "death is detected, journaled, and resolved"
    )
    if isinstance(node, ast.Import):
        for alias in node.names:
            if alias.name.split(".")[0] in PROCESS_IMPORTS:
                yield (path, node.lineno, message)
    elif isinstance(node, ast.ImportFrom):
        module = node.module or ""
        if module.split(".")[0] in PROCESS_IMPORTS:
            yield (path, node.lineno, message)
    elif isinstance(node, ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in PROCESS_OS_CALLS
            and isinstance(func.value, ast.Name)
            and func.value.id == "os"
        ):
            yield (path, node.lineno, message)


def _seeded_rng_violations(
    path: pathlib.Path, node: ast.AST
) -> Iterator[Violation]:
    """Rule 6: no stdlib/numpy randomness in the randomized baselines."""
    message = (
        "unseeded randomness source in a randomized-baseline module; "
        "use the splitmix64 streams in repro.core.rng"
    )
    if isinstance(node, ast.Import):
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("numpy.random"):
                yield (path, node.lineno, message)
    elif isinstance(node, ast.ImportFrom):
        module = node.module or ""
        if module == "random" or module.startswith("numpy.random"):
            yield (path, node.lineno, message)
        elif module == "numpy" and any(a.name == "random" for a in node.names):
            yield (path, node.lineno, message)
    elif (
        isinstance(node, ast.Attribute)
        and node.attr == "random"
        and isinstance(node.value, ast.Name)
        and node.value.id in {"np", "numpy"}
    ):
        yield (path, node.lineno, message)


def _hot_loop_violations(
    path: pathlib.Path, scope: ast.AST, exempt: bool
) -> Iterator[Violation]:
    """Flag ``for``/``while`` under ``scope`` unless exempted.

    Exemption is per *function* — a ``*_builder`` name or a
    ``hot-loop-ok`` docstring marker — and extends to functions nested
    inside an exempt one (helpers of a reference implementation).
    """
    for node in ast.iter_child_nodes(scope):
        child_exempt = exempt
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            doc = ast.get_docstring(node) or ""
            child_exempt = (
                exempt
                or node.name.endswith("_builder")
                or HOT_LOOP_MARKER in doc
            )
        elif isinstance(node, (ast.For, ast.AsyncFor, ast.While)) and not exempt:
            yield (
                path,
                node.lineno,
                "Python loop in a core hot path; vectorise it, or exempt "
                "the function (name it *_builder for a reference "
                f"implementation, or justify a '{HOT_LOOP_MARKER}' marker "
                "in its docstring)",
            )
        yield from _hot_loop_violations(path, node, child_exempt)


def check_file(path: pathlib.Path) -> Iterator[Violation]:
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    if _is_hot_path(path):
        yield from _hot_loop_violations(path, tree, exempt=False)
    for node in ast.walk(tree):
        if _needs_seeded_rng(path):
            yield from _seeded_rng_violations(path, node)
        if _needs_process_discipline(path):
            yield from _process_violations(path, node)
        if isinstance(node, ast.Raise):
            name = _raised_name(node)
            if name in BUILTIN_EXCEPTIONS and name not in ALLOWED_BUILTIN_RAISES:
                yield (
                    path,
                    node.lineno,
                    f"raises builtin {name}; raise a ReproError subclass "
                    f"from repro.exceptions instead",
                )
        elif isinstance(node, ast.Call):
            yield from _check_call(path, node)
            if _needs_clock_discipline(path):
                yield from _check_clock_call(path, node)


def _check_clock_call(path: pathlib.Path, node: ast.Call) -> Iterator[Violation]:
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and (func.value.id, func.attr) in BARE_CLOCK_CALLS
    ):
        yield (
            path,
            node.lineno,
            f"bare {func.value.id}.{func.attr}() in the runtime; route it "
            "through the injectable Clock (repro.runtime.clock) so the "
            "ScaledClock test double still governs every wait",
        )


def _check_call(path: pathlib.Path, node: ast.Call) -> Iterator[Violation]:
    func = node.func
    # bin(x).count(...) — the pre-bit_count popcount idiom
    if (
        isinstance(func, ast.Attribute)
        and func.attr == "count"
        and isinstance(func.value, ast.Call)
        and isinstance(func.value.func, ast.Name)
        and func.value.func.id == "bin"
    ):
        yield (
            path,
            node.lineno,
            'popcount via bin(x).count("1"); use int.bit_count()',
        )
    # keyword-only public API calls
    if isinstance(func, ast.Name) and func.id in KEYWORD_ONLY_FUNCTIONS:
        limit = KEYWORD_ONLY_FUNCTIONS[func.id]
        if len(node.args) > limit:
            yield (
                path,
                node.lineno,
                f"{func.id}() called with {len(node.args)} positional "
                f"arguments; everything after the first is keyword-only",
            )
    elif isinstance(func, ast.Attribute) and func.attr in KEYWORD_ONLY_METHODS:
        limit = KEYWORD_ONLY_METHODS[func.attr]
        if len(node.args) > limit:
            yield (
                path,
                node.lineno,
                f".{func.attr}() called with positional arguments; "
                f"its options are keyword-only",
            )


def main(argv: List[str]) -> int:
    roots = [pathlib.Path(a) for a in argv] or [pathlib.Path("src/repro")]
    violations: List[Violation] = []
    for root in roots:
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for path in files:
            violations.extend(check_file(path))
    for path, line, message in violations:
        print(f"{path}:{line}: {message}")
    if violations:
        print(f"\n{len(violations)} convention violation(s)")
        return 1
    print("conventions: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
