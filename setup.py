"""Compatibility shim for environments without the ``wheel`` package.

``pip install -e .`` on modern pip builds an editable wheel, which needs
the ``wheel`` distribution; on fully offline machines without it, use::

    python setup.py develop

(or drop a ``.pth`` file pointing at ``src/`` into site-packages).  All
real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
