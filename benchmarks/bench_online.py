"""ONLINE — Section 4: the local protocol re-derives the offline schedule.

Each processor knows only (i, j, k) + parent + children intervals; the
collectively-emitted schedule must equal offline ConcurrentUpDown
bit-for-bit.  Timed: the full online round loop.
"""

import pytest

from repro.analysis.sweep import family_instance
from repro.core.concurrent_updown import concurrent_updown
from repro.core.online import run_online_gossip
from repro.networks.spanning_tree import minimum_depth_spanning_tree
from repro.tree.labeling import LabeledTree

FAMILIES = ["path", "star", "grid", "random-tree", "geometric"]


@pytest.mark.parametrize("family", FAMILIES)
def test_online_equals_offline(benchmark, report, family):
    g = family_instance(family, 48)
    labeled = LabeledTree(minimum_depth_spanning_tree(g))
    online = benchmark(run_online_gossip, labeled)
    offline = concurrent_updown(labeled)
    assert online.rounds == offline.rounds
    report.row(
        family=family,
        n=g.n,
        rounds=online.total_time,
        offline=offline.total_time,
        identical=online.rounds == offline.rounds,
    )
