"""TREE-RESTRICTION — what does communicating only on the tree cost?

The paper's pipeline confines all traffic to the minimum-depth spanning
tree (Section 3.1).  This experiment asks how much the *unused* edges
could have helped: the greedy store-and-forward scheduler is run once
restricted to the tree and once on the full network.

Shape of the answer: on edge-rich networks the extra links buy the
greedy baseline several rounds (rings approach their n - 1 optimum), yet
ConcurrentUpDown's n + r — using tree edges only — still wins or ties on
most families, which is the strength of the paper's guarantee.
"""

import pytest

from repro.analysis.sweep import family_instance
from repro.core.gossip import gossip
from repro.core.store_forward import greedy_gossip_on_graph
from repro.simulator.validator import assert_gossip_schedule

FAMILIES = ["cycle", "grid", "hypercube", "complete", "wheel", "gnp"]


@pytest.mark.parametrize("family", FAMILIES)
def test_tree_restriction_cost(benchmark, report, family):
    g = family_instance(family, 32)
    full = benchmark(greedy_gossip_on_graph, g)
    assert_gossip_schedule(g, full)
    tree_plan = gossip(g, algorithm="greedy")
    tree_plan.execute(on_tree_only=True)
    concurrent = gossip(g)
    assert full.total_time >= g.n - 1  # nothing beats the receive bound
    report.row(
        family=family,
        n=g.n,
        greedy_full_graph=full.total_time,
        greedy_tree_only=tree_plan.total_time,
        concurrent_tree=concurrent.total_time,
        lower_bound=g.n - 1,
    )


def test_complete_graph_full_greedy_optimal(benchmark, report):
    """On radius-1 graphs (complete, wheel) the full-graph greedy attains
    the n - 1 optimum, one round below ConcurrentUpDown's n + 1 — the
    only family where dropping the tree restriction beats the paper's
    guarantee (the rotation trick of Fig. 1, by contrast, needs global
    structure a label-greedy scheduler does not discover: on the cycle
    the full-graph greedy stays near the tree-based times)."""
    g = family_instance("complete", 32)
    full = benchmark.pedantic(greedy_gossip_on_graph, args=(g,), iterations=1, rounds=1)
    assert_gossip_schedule(g, full)
    assert full.total_time == g.n - 1
    report.row(
        n=g.n,
        greedy_full=full.total_time,
        optimum=g.n - 1,
        concurrent=gossip(g).total_time,
    )
