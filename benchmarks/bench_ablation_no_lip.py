"""ABLATION (no-lip) — what the time-0 lookahead buys (Section 3.2).

The paper's justification for step (U3): without it the up and down
streams collide and messages get stuck.  Measured: the naive overlap
conflicts on every bushy tree, and the conflict-free greedy fallback
costs extra rounds over n + r.
"""

import pytest

from repro.analysis.sweep import family_instance
from repro.core.ablations import no_lip_penalty
from repro.networks.spanning_tree import minimum_depth_spanning_tree
from repro.tree.labeling import LabeledTree

FAMILIES = ["grid", "binary-tree", "random-tree", "gnp"]


@pytest.mark.parametrize("family", FAMILIES)
def test_no_lip_penalty(benchmark, report, family):
    g = family_instance(family, 40)
    labeled = LabeledTree(minimum_depth_spanning_tree(g))
    penalty = benchmark.pedantic(
        no_lip_penalty, args=(labeled,), iterations=1, rounds=1
    )
    assert penalty.conflicts  # bushy trees always collide
    report.row(
        family=family,
        n=labeled.n,
        conflicts=penalty.conflicts,
        with_lip=penalty.with_lip_time,
        without_lip=penalty.without_lip_time,
        extra=penalty.extra_rounds,
    )
