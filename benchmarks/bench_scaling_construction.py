"""MDST — Section 4: the O(mn) tree construction dominates the O(n)
schedule construction.

Times both stages separately across sizes; the ratio must grow with n,
supporting the paper's advice to rebuild the tree only when the network
changes and reuse it across many gossip operations.
"""

import time

import pytest

from repro.core.concurrent_updown import concurrent_updown
from repro.networks.random_graphs import random_connected_gnp
from repro.networks.spanning_tree import (
    approximate_min_depth_tree,
    minimum_depth_spanning_tree,
)
from repro.tree.labeling import LabeledTree


@pytest.mark.parametrize("n", [64, 128, 256])
def test_tree_construction_scaling(benchmark, report, n):
    g = random_connected_gnp(n, 4.0 / n, seed=1)
    tree = benchmark(minimum_depth_spanning_tree, g)
    # time the O(n) scheduling stage once, for the ratio column
    labeled = LabeledTree(tree)
    t0 = time.perf_counter()
    schedule = concurrent_updown(labeled)
    sched_seconds = time.perf_counter() - t0
    assert schedule.total_time == n + tree.height
    report.row(
        n=n,
        m=g.m,
        tree_height=tree.height,
        schedule_seconds=f"{sched_seconds * 1e3:.1f}ms",
        note="tree timed by pytest-benchmark",
    )


@pytest.mark.parametrize("n", [128, 256])
def test_approximate_tree_much_cheaper(benchmark, report, n):
    """The 2-approximate heuristic: O(m * path) instead of O(mn)."""
    g = random_connected_gnp(n, 4.0 / n, seed=1)
    tree = benchmark(approximate_min_depth_tree, g)
    exact = minimum_depth_spanning_tree(g)
    assert tree.height <= 2 * exact.height
    report.row(
        n=n,
        approx_height=tree.height,
        exact_height=exact.height,
        within_2x=tree.height <= 2 * exact.height,
    )
