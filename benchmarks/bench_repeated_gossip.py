"""REPEATED — pipelining headroom of back-to-back gossip operations.

Section 4 advises amortising the O(mn) tree construction across many
gossip runs.  This bench measures whether the *schedules themselves*
pipeline: the minimal safe start offset between successive instances vs
the capacity floor ``n - 1`` and the schedule length ``n + r``.

Finding: ConcurrentUpDown schedules are receive-saturated — the offset
equals the full ``n + r`` on almost every family (the star saves one
round) — so amortisation benefits come from reusing the tree, not from
overlapping instances.
"""

import pytest

from repro.analysis.sweep import family_instance
from repro.core.concurrent_updown import concurrent_updown
from repro.core.repeated import minimal_pipeline_offset, repeated_gossip
from repro.networks.spanning_tree import minimum_depth_spanning_tree
from repro.tree.labeling import LabeledTree

FAMILIES = ["path", "star", "grid", "hypercube", "random-tree", "gnp"]


@pytest.mark.parametrize("family", FAMILIES)
def test_pipeline_offset(benchmark, report, family):
    g = family_instance(family, 24)
    labeled = LabeledTree(minimum_depth_spanning_tree(g))
    single = concurrent_updown(labeled)
    offset = benchmark(minimal_pipeline_offset, single)
    assert labeled.n - 1 <= offset <= single.total_time
    plan = repeated_gossip(labeled, instances=4, offset=offset)
    assert plan.execute().complete
    report.row(
        family=family,
        n=labeled.n,
        single=single.total_time,
        floor=labeled.n - 1,
        offset=offset,
        amortised=f"{plan.amortised_time:.1f}",
    )
