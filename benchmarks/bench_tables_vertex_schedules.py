"""TAB1-TAB4 — regenerate the paper's per-vertex schedule tables.

Runs ConcurrentUpDown on the Fig. 5 tree, extracts the four published
per-vertex timelines, and checks them cell-for-cell against the
algorithm-derived ground truth (EXPECTED_TABLES).
"""

import pytest

from repro.analysis.tables import EXPECTED_TABLES, paper_tables
from repro.core.concurrent_updown import concurrent_updown
from repro.networks.paper_networks import fig5_tree
from repro.simulator.trace import vertex_timeline
from repro.tree.labeling import LabeledTree

PUBLISHED = {0: "Table 1", 1: "Table 2", 4: "Table 3", 8: "Table 4"}


@pytest.mark.parametrize("vertex", sorted(PUBLISHED))
def test_published_table(benchmark, report, vertex):
    labeled = LabeledTree(fig5_tree())
    schedule = concurrent_updown(labeled)
    timeline = benchmark(vertex_timeline, labeled.tree, schedule, vertex)
    mismatches = sum(
        timeline.row(caption) != expected
        for caption, expected in EXPECTED_TABLES[vertex].items()
    )
    assert mismatches == 0
    report.row(
        table=PUBLISHED[vertex],
        vertex=vertex,
        horizon=timeline.horizon,
        rows_checked=len(EXPECTED_TABLES[vertex]),
        mismatches=mismatches,
    )


def test_all_tables_regeneration(benchmark):
    """End-to-end cost of regenerating all four tables from scratch."""
    tables = benchmark(paper_tables)
    assert set(tables) == set(PUBLISHED)
