"""Shared benchmark infrastructure.

Each benchmark module covers one experiment id of DESIGN.md's index and
does two things:

* *times* the schedule construction with ``pytest-benchmark`` (the
  ``benchmark`` fixture), and
* *records* the reproduced quantities (schedule lengths vs the paper's
  closed forms) through the ``report`` fixture; everything recorded is
  printed in a single table at the end of the run, which is the
  reproduction artefact EXPERIMENTS.md quotes.
"""

from __future__ import annotations

from typing import Dict, List

import pytest

_ROWS: List[Dict[str, object]] = []


class _Reporter:
    """Collects labelled result rows for the end-of-run summary."""

    def __init__(self, experiment: str) -> None:
        self.experiment = experiment

    def row(self, **fields: object) -> None:
        _ROWS.append({"experiment": self.experiment, **fields})


@pytest.fixture
def report(request) -> _Reporter:
    """Reporter named after the benchmark module's experiment id."""
    module = request.module.__name__
    experiment = module.replace("bench_", "").replace("_", "-")
    return _Reporter(experiment)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _ROWS:
        return
    # Persist the machine-readable artefact next to the benchmarks.
    import json
    from pathlib import Path

    artefact = Path(__file__).parent / "reproduction_summary.json"
    try:
        artefact.write_text(json.dumps(_ROWS, indent=2, default=str))
    except OSError:  # read-only checkouts should not fail the run
        pass

    tr = terminalreporter
    tr.section("paper reproduction summary")
    by_experiment: Dict[str, List[Dict[str, object]]] = {}
    for row in _ROWS:
        by_experiment.setdefault(str(row["experiment"]), []).append(row)
    for experiment in sorted(by_experiment):
        tr.write_line(f"\n[{experiment}]")
        rows = by_experiment[experiment]
        keys = [k for k in rows[0] if k != "experiment"]
        header = "  " + "  ".join(f"{k:>14}" for k in keys)
        tr.write_line(header)
        for row in rows:
            tr.write_line(
                "  " + "  ".join(f"{str(row.get(k, '')):>14}" for k in keys)
            )
