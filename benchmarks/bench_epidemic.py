"""EPIDEMIC — deterministic schedules vs randomized gossip baselines.

The adversarial-comparison claim behind :mod:`repro.core.epidemic` and
:mod:`repro.core.coded`, measured by
:func:`repro.analysis.comparison.run_epidemic_comparison` across every
topology family in :data:`repro.analysis.sweep.FAMILIES`:

* **makespan gate** — at 0% drop the deterministic ConcurrentUpDown
  ``n + r`` schedule strictly beats the *median* completion round of
  every randomized baseline (push, pull, push-pull, coded) on all 21
  families;
* **resilience gate** — at a drop rate that kills essentially every
  unrepaired deterministic transcript (default 15%), the online
  push-pull protocol still completes >= 95% of its seeded trials on
  every family.

Runs two ways:

* under pytest(-benchmark) with the rest of the suite — records rows in
  the reproduction summary (reduced trial count; the gates are scale
  free);
* standalone: ``python benchmarks/bench_epidemic.py --check`` exits
  non-zero unless both gates hold (wired into tier-1 via
  ``tests/analysis/test_epidemic_check.py``).

Every number is seeded and wall-clock-free: the same invocation prints
byte-for-byte identical output.
"""

import argparse
import sys

from repro.analysis.comparison import run_epidemic_comparison

#: The acceptance-criteria sweep shape (families=None → all 21).
N = 16
TRIALS = 100
SEED = 0
DROP_RATES = (0.0, 0.15)


def run(*, families=None, n=N, trials=TRIALS, seed=SEED, drop_rates=DROP_RATES):
    """The full adversarial comparison (all families unless narrowed)."""
    return run_epidemic_comparison(
        families, n=n, trials=trials, seed=seed, drop_rates=drop_rates
    )


def test_epidemic_comparison(benchmark, report):
    """Both statistical gates on a representative family slice.

    The full 21-family sweep at 100 trials runs standalone / in
    ``--check`` mode; under pytest-benchmark a diverse five-family slice
    at reduced trials keeps the suite fast while exercising the same
    gates (they are per-cell assertions, not aggregates over families).
    """
    sweep = benchmark.pedantic(
        run,
        kwargs={
            "families": ("path", "star", "complete", "grid", "random-tree"),
            "trials": 20,
        },
        iterations=1,
        rounds=1,
    )
    for cell in sweep.cells:
        pp = cell.algo("epidemic-push-pull")
        det = cell.algo("concurrent-updown")
        report.row(
            network=cell.family,
            drop=f"{cell.drop_rate:.2f}",
            makespan=cell.deterministic_makespan,
            det_survival=f"{det.survival:.0%}",
            pushpull_p50=pp.rounds_p50,
            pushpull_survival=f"{pp.survival:.0%}",
        )
    sweep.check()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless the makespan and resilience gates hold",
    )
    parser.add_argument("--trials", type=int, default=TRIALS)
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument("--n", type=int, default=N)
    parser.add_argument(
        "--families", nargs="+", default=None,
        help="family names to sweep (default: all 21)",
    )
    args = parser.parse_args(argv)

    sweep = run(
        families=args.families, n=args.n, trials=args.trials, seed=args.seed
    )
    print(sweep.format())
    if args.check:
        try:
            sweep.check()
        except AssertionError as err:
            print(f"CHECK FAILED: {err}")
            return 1
        print("check: makespan and resilience gates hold  OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
