"""ABLATION (tree choice) — min-depth BFS tree vs cheaper alternatives.

The schedule costs n + height of *whatever* spanning tree you hand it:

* exact minimum-depth tree (O(mn))          -> n + r,
* 2-approximate double-BFS heuristic        -> n + (<= 2r),
* BFS tree from vertex 0 (no search at all) -> n + ecc(0).

Measured: realised heights and schedule lengths side by side.
"""

import pytest

from repro.analysis.sweep import family_instance
from repro.core.gossip import gossip
from repro.networks.properties import radius
from repro.networks.spanning_tree import (
    approximate_min_depth_tree,
    bfs_spanning_tree,
    minimum_depth_spanning_tree,
)

BUILDERS = {
    "min-depth": minimum_depth_spanning_tree,
    "double-bfs-2approx": approximate_min_depth_tree,
    "bfs-from-0": lambda g: bfs_spanning_tree(g, 0),
}


@pytest.mark.parametrize("builder", sorted(BUILDERS))
@pytest.mark.parametrize("family", ["path", "grid", "gnp"])
def test_tree_choice(benchmark, report, family, builder):
    g = family_instance(family, 48)
    tree = benchmark(BUILDERS[builder], g)
    r = radius(g)
    assert tree.height >= r  # nothing beats the radius
    if builder == "min-depth":
        assert tree.height == r
    if builder == "double-bfs-2approx":
        assert tree.height <= 2 * r
    plan = gossip(g, tree=tree)
    assert plan.total_time == g.n + tree.height
    plan.execute(on_tree_only=True)
    report.row(
        family=family,
        builder=builder,
        n=g.n,
        radius=r,
        height=tree.height,
        rounds=plan.total_time,
    )
