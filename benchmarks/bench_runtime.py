"""RUNTIME — the online protocol on real UDP sockets vs the simulator.

The robustness claim behind :mod:`repro.runtime`: the paper's *online*
ConcurrentUpDown, executed by real asyncio peers speaking datagrams on
localhost, is (a) **offline-exact** when the network behaves — the
multiset of transmissions equals the offline schedule byte for byte on
every topology family — and (b) **degradation-bounded** when it does
not: under a chaos profile of datagram drops, delay jitter, and one
killed peer, failure detection plus the survival replan still deliver
full degraded coverage ("gossip among survivors"), and the whole run is
byte-for-byte reproducible per seed.

Measured here:

* wall-clock makespan of a fault-free real-network run vs the simulated
  round count, across all topology families at n≈16;
* completion (survivor coverage) over seeded chaos trials on the
  acceptance profile, plus detection/replan round counts;
* the per-seed reproducibility gate: one chaos trial executed twice must
  produce identical deterministic summaries.

Runs two ways:

* under pytest(-benchmark) with the rest of the suite — records rows in
  the reproduction summary;
* standalone: ``python benchmarks/bench_runtime.py --check`` exits
  non-zero unless all three gates hold (``--quick`` shrinks the sweep
  for tier-1 wiring).
"""

import argparse
import sys

from repro.analysis.sweep import FAMILIES
from repro.core.gossip import gossip
from repro.runtime import (
    NetChaos,
    RuntimeConfig,
    ScaledClock,
    run_gossip_network,
)

#: The acceptance-criteria sweep shape.
FAMILY_SIZE = 16
CHAOS_FAMILY = "grid:16"
CHAOS_TRIALS = 6
SEED = 7
MIN_COMPLETION = 0.95

#: Chaos profile: drops + delay jitter + one killed peer per trial.
DROP_RATE = 0.08
DELAY_RATE = 0.15
DELAY_MAX = 0.02

#: Tier-1 subset for --quick (one per structural class, cheap to boot).
QUICK_FAMILIES = ("path", "star", "grid", "binary-tree", "random")


def _offline_multiset(plan):
    """The offline schedule as a sorted transmission multiset."""
    return sorted(
        (t, tx.sender, tx.message, tuple(sorted(tx.destinations)))
        for t, rnd in enumerate(plan.schedule.rounds)
        for tx in rnd
    )


def _online_multiset(result):
    """A runtime transcript as a sorted transmission multiset."""
    return sorted(
        (e.round, e.sender, e.message, e.destinations)
        for e in result.transcript
    )


def run_fault_free(*, families=None, seed=SEED):
    """One fault-free real-network run per family; wall clock vs rounds.

    Returns ``(family, n, rounds, wall_seconds, complete, exact)`` rows
    where ``exact`` is the offline-transcript gate.
    """
    rows = []
    config = RuntimeConfig(run_timeout=30.0, seed=seed)
    for name in sorted(families if families is not None else FAMILIES):
        plan = gossip(f"{name}:{FAMILY_SIZE}")
        result = run_gossip_network(plan, config=config)
        rows.append(
            (
                plan.graph.name or name,
                result.n,
                result.horizon,
                result.wall_seconds,
                result.complete,
                _offline_multiset(plan) == _online_multiset(result),
            )
        )
    return rows


def _chaos_trial_inputs(plan, trial, seed):
    """Deterministic chaos profile + config for one trial."""
    n = plan.graph.n
    victim = (trial * 5 + 1) % n
    kill_round = 1 + trial % 4
    chaos = NetChaos(
        seed=seed * 1_000_003 + trial,
        drop_rate=DROP_RATE,
        delay_rate=DELAY_RATE,
        delay_max=DELAY_MAX,
        kill=((victim, kill_round),),
    )
    config = RuntimeConfig(
        heartbeat_interval=0.25,
        fail_after=1.0,
        round_timeout=6.0,
        run_timeout=120.0,
        seed=seed + trial,
    )
    return chaos, config


def run_chaos(*, trials=CHAOS_TRIALS, seed=SEED):
    """Seeded chaos trials (drops + jitter + one killed peer each)."""
    plan = gossip(CHAOS_FAMILY)
    results = []
    for trial in range(trials):
        chaos, config = _chaos_trial_inputs(plan, trial, seed)
        results.append(
            run_gossip_network(
                plan, chaos=chaos, config=config, clock=ScaledClock(0.2)
            )
        )
    return results


def check_offline_exact(rows) -> None:
    """Gate: every fault-free run is complete and offline-identical."""
    bad = [(fam, complete, exact) for fam, _, _, _, complete, exact in rows
           if not (complete and exact)]
    assert not bad, (
        f"{len(bad)} families diverged from the offline schedule on real "
        f"sockets: {bad}"
    )


def check_chaos_completion(results) -> None:
    """Gate: >= MIN_COMPLETION mean coverage; every death detected."""
    coverage = sum(r.coverage for r in results) / len(results)
    assert coverage >= MIN_COMPLETION, (
        f"chaos completion {coverage:.1%} < {MIN_COMPLETION:.0%} over "
        f"{len(results)} trials"
    )
    undetected = [i for i, r in enumerate(results) if len(r.dead) != 1]
    assert not undetected, (
        f"trials {undetected} did not detect exactly the one killed peer"
    )


def check_reproducible(*, seed=SEED) -> None:
    """Gate: one chaos trial run twice is byte-for-byte identical."""
    plan = gossip(CHAOS_FAMILY)
    chaos, config = _chaos_trial_inputs(plan, 0, seed)

    def once():
        return run_gossip_network(
            plan, chaos=chaos, config=config, clock=ScaledClock(0.2)
        ).deterministic_summary()

    first, second = once(), once()
    assert first == second, (
        "identical seeds produced different deterministic summaries: "
        + str({k: (first[k], second[k]) for k in first if first[k] != second[k]})
    )


def test_runtime_wallclock_vs_rounds(benchmark, report):
    """Real-network makespan vs simulated rounds; all gates must hold."""
    rows = benchmark.pedantic(
        lambda: run_fault_free(families=QUICK_FAMILIES),
        iterations=1,
        rounds=1,
    )
    for family, n, rounds, wall, complete, exact in rows:
        report.row(
            network=family,
            n=n,
            rounds=rounds,
            wall_ms=f"{wall * 1000:.1f}",
            rounds_per_sec=f"{rounds / wall:.0f}" if wall else "inf",
            complete=complete,
            offline_exact=exact,
        )
    check_offline_exact(rows)

    chaos_results = run_chaos(trials=3)
    for i, r in enumerate(chaos_results):
        report.row(
            network=CHAOS_FAMILY,
            trial=i,
            coverage=f"{r.coverage:.0%}",
            dead=list(r.dead),
            survival_rounds=r.survival_rounds,
            retransmissions=r.retransmissions,
        )
    check_chaos_completion(chaos_results)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless the offline-exact, chaos-completion and "
             "per-seed-reproducibility gates hold",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="run the small tier-1 subset instead of all families",
    )
    parser.add_argument("--trials", type=int, default=CHAOS_TRIALS)
    parser.add_argument("--seed", type=int, default=SEED)
    args = parser.parse_args(argv)

    families = QUICK_FAMILIES if args.quick else sorted(FAMILIES)
    rows = run_fault_free(families=families, seed=args.seed)
    header = (f"{'network':<16} {'n':>4} {'rounds':>6} {'wall ms':>8} "
              f"{'rounds/s':>9} {'complete':>9} {'exact':>6}")
    print(f"real-network runtime  seed={args.seed}  families={len(rows)}")
    print(header)
    print("-" * len(header))
    for family, n, rounds, wall, complete, exact in rows:
        rate = f"{rounds / wall:.0f}" if wall else "inf"
        print(f"{family:<16} {n:>4} {rounds:>6} {wall * 1000:>8.1f} "
              f"{rate:>9} {str(complete):>9} {str(exact):>6}")

    trials = max(1, args.trials // 2) if args.quick else args.trials
    results = run_chaos(trials=trials, seed=args.seed)
    print(f"\nchaos profile: drop={DROP_RATE} delay={DELAY_RATE} "
          f"delay_max={DELAY_MAX}s + one killed peer, {trials} trials "
          f"on {CHAOS_FAMILY}")
    for i, r in enumerate(results):
        print(f"  trial {i}: coverage={r.coverage:.0%} dead={list(r.dead)} "
              f"survival_rounds={r.survival_rounds} "
              f"retransmissions={r.retransmissions}")

    if args.check:
        try:
            check_offline_exact(rows)
            check_chaos_completion(results)
            check_reproducible(seed=args.seed)
        except AssertionError as err:
            print(f"CHECK FAILED: {err}")
            return 1
        print("check: offline-exact transcripts, >= 95% chaos completion, "
              "per-seed reproducibility  OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
