"""ABLATION (root choice) — the n + height cost of rooting elsewhere.

Theorem 1's n + r needs the *minimum-depth* tree; rooting the BFS tree
at an arbitrary vertex still yields a valid schedule but of length
n + ecc(root), up to n + diameter.  Measured: best / median / worst root
across families.
"""

import pytest

from repro.analysis.sweep import family_instance
from repro.core.gossip import gossip
from repro.networks.properties import diameter, radius
from repro.networks.spanning_tree import bfs_spanning_tree, tree_height_profile


@pytest.mark.parametrize("family", ["path", "grid", "random-tree", "gnp"])
def test_root_choice(benchmark, report, family):
    g = family_instance(family, 48)
    profile = benchmark(tree_height_profile, g)
    r, d = radius(g), diameter(g)
    assert int(profile.min()) == r
    assert int(profile.max()) == d
    # schedule with the worst root really costs n + d
    worst_root = int(profile.argmax())
    plan = gossip(g, tree=bfs_spanning_tree(g, worst_root))
    assert plan.total_time == g.n + d
    plan.execute(on_tree_only=True)
    report.row(
        family=family,
        n=g.n,
        best=f"n+{r}",
        worst=f"n+{d}",
        median_height=int(sorted(profile)[g.n // 2]),
        worst_penalty=d - r,
    )
