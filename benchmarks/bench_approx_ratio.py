"""RATIO — Section 4: (n + r)/(n - 1) approaches 1.5 only on paths.

Measures the realised ratio of ConcurrentUpDown's schedule to the
trivial lower bound across families: paths are the worst case
(r = n/2), expanders/stars sit near 1.0.
"""

import pytest

from repro.analysis.sweep import family_instance
from repro.core.gossip import gossip

FAMILIES = ["path", "cycle", "star", "complete", "grid", "hypercube", "gnp"]


@pytest.mark.parametrize("family", FAMILIES)
def test_ratio(benchmark, report, family):
    g = family_instance(family, 64)
    plan = benchmark(gossip, g)
    ratio = plan.total_time / (g.n - 1)
    assert ratio <= 1.5 * g.n / (g.n - 1)  # the r <= n/2 consequence
    report.row(
        family=family,
        n=g.n,
        r=plan.tree.height,
        rounds=plan.total_time,
        ratio=f"{ratio:.3f}",
        limit=f"{1.5 * g.n / (g.n - 1):.3f}",
    )


def test_path_is_the_worst_family(benchmark, report):
    """The shape claim: the path's ratio dominates every other family's."""

    def sweep():
        return {
            family: gossip(family_instance(family, 64)).total_time
            / (family_instance(family, 64).n - 1)
            for family in FAMILIES
        }

    ratios = benchmark.pedantic(sweep, iterations=1, rounds=1)
    assert max(ratios, key=ratios.get) == "path"
    report.row(worst_family="path", ratio=f"{ratios['path']:.3f}")
