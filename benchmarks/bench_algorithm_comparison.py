"""CMP — the headline comparison: Simple vs UpDown vs ConcurrentUpDown
vs the greedy and telephone baselines.

The reproduced *shape*: concurrent-updown wins (= n + r) everywhere
among the uniform algorithms, Simple costs roughly 2x, the telephone
model degrades sharply on high-degree topologies (stars), and multicast
fan-out is what saves it.
"""

import pytest

from repro.analysis.comparison import compare_algorithms
from repro.analysis.sweep import family_instance

FAMILIES = ["path", "cycle", "star", "grid", "hypercube", "random-tree", "gnp"]


@pytest.mark.parametrize("family", FAMILIES)
def test_comparison(benchmark, report, family):
    g = family_instance(family, 32)
    row = benchmark.pedantic(
        compare_algorithms, args=(g,), kwargs={"verify": True}, iterations=1, rounds=1
    )
    # shape claims
    assert row.times["concurrent-updown"] == row.concurrent_bound
    assert row.times["simple"] == row.simple_bound
    assert row.times["updown"] <= row.updown_bound
    assert row.times["simple"] >= row.times["concurrent-updown"]
    # the telephone model can never beat the multicast winner
    assert row.times["telephone"] >= row.times["concurrent-updown"]
    report.row(
        family=family,
        n=g.n,
        r=row.radius,
        concurrent=row.times["concurrent-updown"],
        updown=row.times["updown"],
        simple=row.times["simple"],
        greedy=row.times["greedy"],
        telephone=row.times["telephone"],
    )


def test_star_telephone_collapse(benchmark, report):
    """On stars the telephone model collapses (hub unicasts everything);
    multicasting wins by a factor ~ n/2."""
    g = family_instance("star", 32)
    row = benchmark.pedantic(
        compare_algorithms,
        args=(g,),
        kwargs={"algorithms": ["concurrent-updown", "telephone"]},
        iterations=1,
        rounds=1,
    )
    factor = row.times["telephone"] / row.times["concurrent-updown"]
    assert factor > 3
    report.row(
        family="star",
        n=g.n,
        concurrent=row.times["concurrent-updown"],
        telephone=row.times["telephone"],
        speedup=f"{factor:.1f}x",
    )
