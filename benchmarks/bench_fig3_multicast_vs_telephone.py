"""FIG3 — Fig. 3: multicast strictly beats telephone on N3.

N3 (reconstructed as K_{2,3}) has no Hamiltonian circuit; multicast
gossips in n - 1 = 4 rounds, while the exact search certifies that no
telephone schedule achieves 4 (or even 5) rounds.
"""

from repro.core.optimal import is_gossipable_within, minimum_gossip_time
from repro.core.ring import hamiltonian_circuit
from repro.core.store_forward import telephone_gossip_on_graph
from repro.networks.paper_networks import n3_multicast_schedule, n3_network
from repro.simulator.validator import assert_gossip_schedule


def test_n3_multicast_schedule(benchmark, report):
    g = n3_network()
    schedule = benchmark(n3_multicast_schedule)
    assert schedule.total_time == 4 == g.n - 1
    assert_gossip_schedule(g, schedule, max_total_time=4)
    telephone = telephone_gossip_on_graph(g)
    assert_gossip_schedule(g, telephone)
    report.row(
        n=g.n,
        hamiltonian=hamiltonian_circuit(g) is not None,
        multicast=schedule.total_time,
        telephone_greedy=telephone.total_time,
        telephone_floor=6,
    )
    assert telephone.total_time >= 6  # the counting lower bound


def test_n3_exact_multicast_optimum(benchmark):
    assert benchmark(minimum_gossip_time, n3_network()) == 4


def test_n3_telephone_cannot_match(benchmark):
    """The separation certificate: exhaustive search finds no 4-round
    telephone schedule."""
    result = benchmark.pedantic(
        is_gossipable_within,
        args=(n3_network(), 4),
        kwargs={"telephone": True},
        iterations=1,
        rounds=1,
    )
    assert result is False
