"""FIG4/FIG5 — the minimum-depth spanning tree of the worked example.

Times the O(mn) construction on Fig. 4 and asserts it reproduces the
published Fig. 5 tree (structure + DFS labels) exactly.
"""

from repro.networks.paper_networks import fig4_network, fig5_tree
from repro.networks.properties import radius
from repro.networks.spanning_tree import minimum_depth_spanning_tree
from repro.tree.labeling import LabeledTree


def test_fig4_to_fig5(benchmark, report):
    g = fig4_network()
    tree = benchmark(minimum_depth_spanning_tree, g)
    assert tree == fig5_tree()
    labeled = LabeledTree(tree)
    assert list(labeled.labels()) == list(range(16))
    report.row(
        n=g.n,
        m=g.m,
        radius=radius(g),
        tree_height=tree.height,
        labels="0..15 (DFS)",
        matches_fig5=True,
    )


def test_fig5_labelling(benchmark):
    tree = fig5_tree()
    labeled = benchmark(LabeledTree, tree)
    # The published blocks of Tables 1-4.
    assert (labeled.block(1).i, labeled.block(1).j, labeled.block(1).k) == (1, 3, 1)
    assert (labeled.block(4).i, labeled.block(4).j, labeled.block(4).k) == (4, 10, 1)
    assert (labeled.block(8).i, labeled.block(8).j, labeled.block(8).k) == (8, 10, 2)
