"""WEIGHTED — Section 4: weighted gossiping via chain splitting.

Random per-processor message counts; the chain-expanded schedule takes
exactly N + r' rounds and a real processor never mimics more than two
virtual sends per round.
"""

import numpy as np
import pytest

from repro.analysis.sweep import family_instance
from repro.core.weighted import weighted_gossip

FAMILIES = ["star", "grid", "random-tree", "gnp"]


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("max_weight", [2, 4])
def test_weighted(benchmark, report, family, max_weight):
    g = family_instance(family, 24)
    rng = np.random.default_rng(42)
    weights = [int(w) for w in rng.integers(1, max_weight + 1, size=g.n)]
    plan = benchmark(weighted_gossip, g, weights)
    assert plan.total_time == plan.total_messages + plan.expanded.height
    result = plan.execute()
    assert result.complete
    load = max(plan.real_round_load().values())
    assert load <= 2
    report.row(
        family=family,
        n=g.n,
        N=plan.total_messages,
        r_expanded=plan.expanded.height,
        rounds=plan.total_time,
        bound=plan.bound,
        mimic_load=load,
    )
