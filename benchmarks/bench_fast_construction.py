"""MDST-FAST — accelerating the O(mn) tree construction.

Same canonical tree, two backends: the reference numpy BFS sweep vs the
scipy C BFS.  The speedup supports the paper's amortisation advice from
the other side: even the expensive one-off stage is cheap at realistic
sizes.
"""

import pytest

from repro.networks.fast_paths import minimum_depth_spanning_tree_fast
from repro.networks.random_graphs import random_connected_gnp
from repro.networks.spanning_tree import minimum_depth_spanning_tree


@pytest.mark.parametrize("n", [128, 256, 512])
def test_fast_tree_construction(benchmark, report, n):
    g = random_connected_gnp(n, 4.0 / n, seed=1)
    fast = benchmark(minimum_depth_spanning_tree_fast, g)
    reference = minimum_depth_spanning_tree(g)
    assert fast == reference
    report.row(
        n=n,
        m=g.m,
        height=fast.height,
        identical_tree=fast == reference,
        backend="scipy csgraph",
    )
