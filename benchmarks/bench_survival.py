"""SURVIVAL — survivor coverage of degraded gossip vs fail-stop rate.

The survivability claim behind :mod:`repro.core.survival`: after a run
under permanent fail-stop crashes, a single diagnose pass either
re-plans degraded gossip that gives every live processor every message
whose origin is live in its own component (survivor coverage **1.0**),
or raises the typed partition error — never a best-effort partial
answer.  Measured on the chaos-sweep default family ``random:48``:

* the coverage / partition / appended-rounds curve per fail-stop rate,
* the null-permanence parity gate: ``fail_stop_rate=0`` with no link
  failures must leave the residual network intact, append zero survival
  rounds, and reproduce the transient-only semantics bit-for-bit.

Runs two ways:

* under pytest(-benchmark) with the rest of the suite — records rows in
  the reproduction summary;
* standalone: ``python benchmarks/bench_survival.py --check`` exits
  non-zero unless the parity and coverage gates hold (wired into tier-1
  via ``tests/analysis/test_survival_check.py``).
"""

import argparse
import sys

from repro.analysis.survival import run_survival_sweep
from repro.core.gossip import gossip, resolve_network
from repro.core.recovery import execute_plan_with_faults
from repro.core.survival import survive
from repro.simulator.engine import execute_schedule
from repro.simulator.lossy import FaultModel
from repro.simulator.state import labeled_holdings

#: The acceptance-criteria network and sweep shape.
FAMILY = "random:48"
FAIL_STOP_RATES = (0.0, 0.01, 0.02, 0.05)
TRIALS = 10
SEED = 7


def run(*, trials: int = TRIALS, seed: int = SEED):
    """The coverage-vs-fail-stop curve on the chaos default family."""
    return run_survival_sweep(
        families=(FAMILY,),
        fail_stop_rates=FAIL_STOP_RATES,
        trials=trials,
        seed=seed,
    )


def check_null_permanence_parity(*, seed: int = SEED) -> None:
    """Gate: zero permanent rates are indistinguishable from PR 2/3 semantics.

    Asserts that a model with explicit ``fail_stop_rate=0.0`` and
    ``link_fail_rate=0.0`` equals the plain transient model (so every
    draw, and therefore every execution, is bit-identical), that the
    null model still matches :func:`execute_schedule` exactly, and that
    :func:`survive` on an intact residual network appends zero rounds.
    """
    graph, tree = resolve_network(FAMILY)
    plan = gossip(graph, tree=tree)
    holds0 = labeled_holdings(plan.labeled.labels())

    transient = FaultModel(seed=seed, drop_rate=0.25)
    explicit = FaultModel(
        seed=seed, drop_rate=0.25, fail_stop_rate=0.0, link_fail_rate=0.0
    )
    assert transient == explicit, "zero permanent rates changed the model"
    a = execute_plan_with_faults(plan, transient)
    b = execute_plan_with_faults(plan, explicit)
    assert a.lost == b.lost and a.final_holds == b.final_holds, (
        "zero permanent rates changed the transient execution"
    )

    null = execute_plan_with_faults(plan, FaultModel(seed=seed))
    reference = execute_schedule(
        graph, plan.schedule, initial_holds=holds0, require_complete=True
    )
    assert null.to_execution_result() == reference, (
        "null-model lossy execution diverged from execute_schedule"
    )
    outcome = survive(graph, plan, null)
    assert outcome.diagnosis.intact, "null model produced permanent residue"
    assert outcome.appended_rounds == 0, (
        f"survive() appended {outcome.appended_rounds} rounds to an "
        "intact, complete run"
    )
    assert outcome.survivor_coverage == 1.0


def test_survival_coverage_curve(benchmark, report):
    """Coverage per fail-stop rate; zero-rate must be pure parity."""
    check_null_permanence_parity()
    sweep = benchmark.pedantic(run, iterations=1, rounds=1)
    for cell in sweep.cells:
        report.row(
            network=cell.family,
            fail_stop=f"{cell.fail_stop_rate:.2f}",
            coverage=f"{cell.coverage_rate:.0%}",
            partitioned=cell.partitioned,
            dead_max=cell.dead_max,
            rounds_p50=cell.rounds_p50,
            rounds_max=cell.rounds_max,
        )
    sweep.check()
    zero = next(c for c in sweep.cells if c.fail_stop_rate == 0.0)
    assert zero.intact == zero.trials and zero.partitioned == 0
    assert zero.rounds_max == 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless the parity and survivor-coverage gates hold",
    )
    parser.add_argument("--trials", type=int, default=TRIALS)
    parser.add_argument("--seed", type=int, default=SEED)
    args = parser.parse_args(argv)

    sweep = run(trials=args.trials, seed=args.seed)
    print(sweep.format())
    if args.check:
        try:
            check_null_permanence_parity(seed=args.seed)
            sweep.check()
        except AssertionError as err:
            print(f"CHECK FAILED: {err}")
            return 1
        print("check: null-permanence parity and survivor-coverage gates hold  OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
