"""UPDOWN — the reconstructed two-phase predecessor stays in budget.

Measures the UpDown reconstruction against the paper's
(n - 1 + r) + (2(r - 1) + 1) two-phase budget and against
ConcurrentUpDown — the 'who wins' shape: concurrent <= updown <= budget.
"""

import pytest

from repro.analysis.sweep import family_instance
from repro.core.gossip import gossip
from repro.core.updown import updown_gossip, updown_total_time_bound

FAMILIES = ["path", "star", "grid", "hypercube", "binary-tree", "random-tree"]


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("size", [32, 64])
def test_updown_budget(benchmark, report, family, size):
    g = family_instance(family, size)
    plan = gossip(g, algorithm="updown")
    schedule = benchmark(updown_gossip, plan.labeled)
    r = plan.tree.height
    budget = updown_total_time_bound(g.n, r)
    concurrent = g.n + r
    assert schedule.total_time <= budget
    plan.execute(on_tree_only=True)
    report.row(
        family=family,
        n=g.n,
        r=r,
        updown=schedule.total_time,
        budget=budget,
        concurrent=concurrent,
        within=schedule.total_time <= budget,
    )
