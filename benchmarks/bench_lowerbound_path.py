"""LB-PATH — the odd-path lower bound n + r - 1 (Section 1 / Section 4).

Every schedule for P_{2m+1} needs >= n + m - 1 rounds; ConcurrentUpDown
delivers n + m — within ONE round of the bound, exactly as the
Discussion states.  For tiny paths the exact search confirms the bound
is tight.
"""

import pytest

from repro.analysis.bounds import path_lower_bound
from repro.core.gossip import gossip
from repro.core.optimal import minimum_gossip_time
from repro.networks.topologies import path_graph


@pytest.mark.parametrize("m", [2, 4, 8, 16, 32])
def test_path_gap_is_one(benchmark, report, m):
    n = 2 * m + 1
    g = path_graph(n)
    plan = benchmark(gossip, g)
    bound = path_lower_bound(n)
    assert bound == n + m - 1
    assert plan.total_time == bound + 1  # n + r, one above the bound
    plan.execute(on_tree_only=True)
    report.row(
        n=n,
        m=m,
        lower_bound=bound,
        concurrent=plan.total_time,
        gap=plan.total_time - bound,
    )


@pytest.mark.parametrize("m", [1, 2])
def test_bound_tight_by_exact_search(benchmark, report, m):
    """For P_3 and P_5 exhaustive search meets n + r - 1 exactly."""
    n = 2 * m + 1
    optimum = benchmark(minimum_gossip_time, path_graph(n))
    assert optimum == path_lower_bound(n)
    report.row(n=n, m=m, exact_optimum=optimum, lower_bound=path_lower_bound(n))
