"""SERVICE-CACHE — amortised plan serving through GossipService.

The serving claim behind :mod:`repro.service`: once a network's plan is
cached, serving it again costs a dictionary lookup instead of the full
Section 3 pipeline.  Measured on the acceptance-criteria network
``grid_2d(16, 16)``:

* cold vs warm single-plan latency (gate: warm >= 10x faster),
* batch throughput via ``plan_many`` over perturbed grid variants.

Runs two ways:

* under pytest(-benchmark) with the rest of the suite — records rows in
  the reproduction summary;
* standalone: ``python benchmarks/bench_service_cache.py --check``
  exits non-zero unless the 10x gate holds (wired into tier-1 via
  ``tests/service/test_bench_check.py``).
"""

import argparse
import sys

from repro.networks.topologies import grid_2d
from repro.service.workload import bench_plan_cache

#: The acceptance-criteria network.
ROWS = COLS = 16
MIN_SPEEDUP = 10.0


def run(*, warm_rounds: int = 200, batch: int = 32):
    """One full measurement on ``grid_2d(16, 16)``."""
    return bench_plan_cache(
        grid_2d(ROWS, COLS),
        warm_rounds=warm_rounds,
        batch_size=batch,
        batch_unique=4,
    )


def test_warm_hit_speedup(benchmark, report):
    """Warm serving beats cold planning by >= 10x on grid_2d(16, 16)."""
    result = benchmark.pedantic(run, iterations=1, rounds=1)
    report.row(
        network=result.topology,
        cold_ms=f"{result.cold_ms:.3f}",
        warm_ms=f"{result.warm_ms:.4f}",
        speedup=f"{result.speedup:.0f}x",
        batch_throughput=f"{result.batch_warm_throughput:.0f}/s",
    )
    result.check(min_speedup=MIN_SPEEDUP)
    # The batch phase serves the same requests twice; warm must win too.
    assert result.batch_warm_s < result.batch_cold_s


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless the warm hit is >= 10x faster than cold",
    )
    parser.add_argument("--warm-rounds", type=int, default=200)
    parser.add_argument("--batch", type=int, default=32)
    args = parser.parse_args(argv)

    result = run(warm_rounds=args.warm_rounds, batch=args.batch)
    print(result.format())
    if args.check:
        try:
            result.check(min_speedup=MIN_SPEEDUP)
        except AssertionError as err:
            print(f"CHECK FAILED: {err}")
            return 1
        print(f"check: warm hit >= {MIN_SPEEDUP:.0f}x faster than cold  OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
