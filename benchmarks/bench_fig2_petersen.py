"""FIG2 — Fig. 2: the Petersen graph gossips in n - 1 = 9 rounds.

No Hamiltonian circuit exists, yet the two-ring rotation + spoke-swap
schedule completes gossip in 9 unicast rounds (telephone-valid, hence
multicast-valid).  The generic pipeline yields n + r = 12.
"""

from repro.core.gossip import gossip
from repro.core.ring import hamiltonian_circuit
from repro.networks.paper_networks import petersen, petersen_gossip_schedule
from repro.simulator.validator import assert_gossip_schedule


def test_petersen_constructive_schedule(benchmark, report):
    g = petersen()
    schedule = benchmark(petersen_gossip_schedule)
    assert schedule.total_time == 9 == g.n - 1
    assert schedule.max_fan_out() == 1
    assert_gossip_schedule(g, schedule, max_total_time=9)
    plan = gossip(g)
    report.row(
        n=g.n,
        hamiltonian=hamiltonian_circuit(g) is not None,
        handcrafted=schedule.total_time,
        lower_bound=g.n - 1,
        concurrent=plan.total_time,
    )
    assert plan.total_time == 12  # n + r = 10 + 2


def test_petersen_hamiltonian_search(benchmark):
    """Timing the exhaustive circuit search that certifies Fig. 2's
    'no Hamiltonian circuit' premise."""
    assert benchmark(hamiltonian_circuit, petersen()) is None
