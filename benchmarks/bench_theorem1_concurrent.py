"""THM1 — Theorem 1: ConcurrentUpDown takes exactly n + r everywhere.

Sweeps topology families and sizes; every point must land exactly on
n + r, execute to completion, and waste zero deliveries.
"""

import pytest

from repro.analysis.sweep import family_instance
from repro.core.concurrent_updown import concurrent_updown
from repro.core.gossip import gossip
from repro.networks.properties import radius

FAMILIES = ["path", "cycle", "star", "grid", "hypercube", "random-tree", "gnp", "geometric"]


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("size", [32, 64])
def test_theorem1(benchmark, report, family, size):
    g = family_instance(family, size)
    r = radius(g)
    plan = gossip(g)  # includes tree construction (not timed)
    schedule = benchmark(concurrent_updown, plan.labeled)
    assert schedule.total_time == g.n + r
    result = plan.execute(on_tree_only=True)
    assert result.complete and result.duplicate_deliveries == 0
    report.row(
        family=family,
        n=g.n,
        r=r,
        measured=schedule.total_time,
        paper_bound=g.n + r,
        exact_match=schedule.total_time == g.n + r,
    )
