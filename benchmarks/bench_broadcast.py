"""BCAST — Section 2: multicast broadcasting finishes in ecc(source).

Times the broadcast scheduler and checks each processor is informed at
exactly its BFS distance from the source.
"""

import pytest

from repro.analysis.sweep import family_instance
from repro.core.broadcast import broadcast
from repro.networks.bfs import bfs_levels
from repro.simulator.engine import execute_schedule

FAMILIES = ["path", "star", "grid", "hypercube", "gnp"]


@pytest.mark.parametrize("family", FAMILIES)
def test_broadcast_optimal(benchmark, report, family):
    g = family_instance(family, 64)
    source = 0
    schedule = benchmark(broadcast, g, source)
    ecc = int(bfs_levels(g, source).max())
    assert schedule.total_time == ecc
    result = execute_schedule(
        g,
        schedule,
        initial_holds=[1 << source if v == source else 0 for v in range(g.n)],
        n_messages=g.n,
        record_arrivals=True,
    )
    dist = bfs_levels(g, source)
    assert all(ev.time == dist[ev.receiver] for ev in result.arrivals)
    report.row(
        family=family,
        n=g.n,
        eccentricity=ecc,
        rounds=schedule.total_time,
        optimal=schedule.total_time == ecc,
    )
