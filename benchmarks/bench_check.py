"""CHECK — explicit-state exploration throughput of the protocol checker.

Measures what the model checker can afford: states and transitions
explored per second across the committed small-scope matrix column
(n=3 for all three families plus ``path:4``), with the invariant gates
(zero violations, zero deadlocks, zero partial-order-reduction
fallbacks) asserted on every run.  The per-family state counts are also
compared against ``CHECK_protocol.json`` — exploration is deterministic,
so any drift means the model (the specification) changed.

Runs two ways:

* under pytest(-benchmark) with the rest of the suite — records
  states/s rows in the reproduction summary;
* standalone: ``python benchmarks/bench_check.py`` prints the table.
"""

import json
import time
from pathlib import Path

from repro.check import check_family

ARTIFACT = Path(__file__).resolve().parent.parent / "CHECK_protocol.json"

#: The tier-1-affordable matrix column (the full matrix runs in CI).
SPECS = [("path", 3), ("star", 3), ("complete", 3), ("path", 4)]


def run():
    """Explore each spec; return (spec, FamilyCheck, seconds) triples."""
    cells = []
    for family, n in SPECS:
        start = time.perf_counter()
        result = check_family(family, n, crashes=1)
        cells.append((f"{family}:{n}", result, time.perf_counter() - start))
    return cells


def _gate(cells):
    committed = json.loads(ARTIFACT.read_text())["families"]
    for spec, result, _ in cells:
        assert result.ok, f"{spec}: {result.counterexample}"
        assert result.fallback_states == 0, spec
        assert result.summary() == committed[spec], (
            f"{spec}: state counts drifted from CHECK_protocol.json"
        )


def test_check_throughput(benchmark, report):
    """Exploration speed over the matrix column, with invariant gates."""
    cells = benchmark.pedantic(run, iterations=1, rounds=1)
    _gate(cells)
    for spec, result, seconds in cells:
        report.row(
            network=spec,
            scenarios=result.scenarios,
            states=result.states,
            transitions=result.transitions,
            states_per_s=round(result.states / seconds),
            fallback_states=result.fallback_states,
        )


def main():
    cells = run()
    _gate(cells)
    print(f"{'spec':<12} {'scen':>5} {'states':>8} {'trans':>8} "
          f"{'sec':>6} {'states/s':>9}")
    for spec, result, seconds in cells:
        print(f"{spec:<12} {result.scenarios:>5} {result.states:>8} "
              f"{result.transitions:>8} {seconds:>6.2f} "
              f"{result.states / seconds:>9.0f}")
    print("gates: zero violations, zero deadlocks, zero POR fallbacks, "
          "state counts match CHECK_protocol.json  OK")


if __name__ == "__main__":
    main()
