"""LEM1 — Lemma 1: procedure Simple takes exactly 2n + r - 3.

Sweeps tree shapes (the bound is shape-independent beyond n and r) and
also reports Simple's delivery redundancy, which ConcurrentUpDown avoids.
"""

import pytest

from repro.analysis.sweep import family_instance
from repro.core.gossip import gossip
from repro.core.simple import simple_gossip
from repro.simulator.metrics import compute_metrics

FAMILIES = ["path", "star", "binary-tree", "caterpillar", "random-tree", "grid"]


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("size", [32, 64])
def test_lemma1(benchmark, report, family, size):
    g = family_instance(family, size)
    plan = gossip(g, algorithm="simple")
    schedule = benchmark(simple_gossip, plan.labeled)
    r = plan.tree.height
    expected = 2 * g.n + r - 3
    assert schedule.total_time == expected
    execution = plan.execute(on_tree_only=True)
    metrics = compute_metrics(schedule, execution=execution)
    report.row(
        family=family,
        n=g.n,
        r=r,
        measured=schedule.total_time,
        lemma1=expected,
        redundancy=f"{metrics.redundancy:.0%}",
    )
