"""FIG1 — Fig. 1: gossiping on a Hamiltonian ring is optimal (n - 1).

Regenerates the Section 1 worked example across ring sizes: the rotating
schedule solves gossiping in exactly ``n - 1`` rounds, matching the
trivial lower bound, while the generic tree pipeline pays ``n + r`` with
``r = floor(n / 2)``.
"""

import pytest

from repro.core.gossip import gossip
from repro.core.ring import ring_gossip
from repro.networks.paper_networks import fig1_ring
from repro.simulator.validator import assert_gossip_schedule


@pytest.mark.parametrize("n", [8, 16, 32, 64])
def test_ring_rotation_optimal(benchmark, report, n):
    ring = fig1_ring(n)
    schedule = benchmark(ring_gossip, list(range(n)))
    assert schedule.total_time == n - 1
    assert_gossip_schedule(ring, schedule, max_total_time=n - 1)
    tree_plan = gossip(ring)
    report.row(
        n=n,
        ring_rounds=schedule.total_time,
        lower_bound=n - 1,
        tree_rounds=tree_plan.total_time,
        tree_bound=f"n+r={n + n // 2}",
    )
    assert tree_plan.total_time == n + n // 2
