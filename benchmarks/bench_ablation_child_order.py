"""ABLATION (child order) — the paper: subtree order is arbitrary.

Fixing the DFS child order differently permutes the labels and the
individual transmissions, but the total communication time is invariant
(always n + r) and the schedule stays valid.  Measured over three
orderings: ascending id, descending id, largest-subtree-first.
"""

import pytest

from repro.analysis.sweep import family_instance
from repro.core.concurrent_updown import concurrent_updown
from repro.networks.builders import tree_to_graph
from repro.networks.spanning_tree import minimum_depth_spanning_tree
from repro.simulator.engine import execute_schedule
from repro.simulator.state import labeled_holdings
from repro.tree.labeling import LabeledTree

ORDERINGS = {
    "ascending": lambda tree: lambda v, kids: sorted(kids),
    "descending": lambda tree: lambda v, kids: sorted(kids, reverse=True),
    "big-subtree-first": lambda tree: lambda v, kids: sorted(
        kids, key=lambda c: -tree.subtree_size(c)
    ),
}


@pytest.mark.parametrize("ordering", sorted(ORDERINGS))
@pytest.mark.parametrize("family", ["grid", "random-tree"])
def test_child_order_invariance(benchmark, report, family, ordering):
    g = family_instance(family, 48)
    base = minimum_depth_spanning_tree(g)
    tree = base.with_child_order(ORDERINGS[ordering](base))
    labeled = LabeledTree(tree)
    schedule = benchmark(concurrent_updown, labeled)
    assert schedule.total_time == g.n + base.height
    execute_schedule(
        tree_to_graph(tree),
        schedule,
        initial_holds=labeled_holdings(labeled.labels()),
        require_complete=True,
    )
    report.row(
        family=family,
        ordering=ordering,
        n=g.n,
        rounds=schedule.total_time,
        invariant=schedule.total_time == g.n + base.height,
    )
