"""DYNAMIC — amortising tree construction over network churn (Section 4).

A churn workload (chord insertions and removals on a ring) under the two
maintenance policies: eager rebuilds on every change and always
guarantees n + radius; lazy rebuilds only when a tree edge dies and pays
a measured height gap instead.
"""

import pytest

from repro.networks.dynamic import TreeMaintainer
from repro.networks.topologies import cycle_graph


def churn(policy: str, n: int = 24) -> TreeMaintainer:
    m = TreeMaintainer.create(cycle_graph(n), policy=policy)
    chords = [(i, i + n // 2) for i in range(4)]
    for u, v in chords:
        m = m.add_edge(u, v)
    for u, v in chords[:2]:
        m = m.remove_edge(u, v)
    return m


@pytest.mark.parametrize("policy", ["eager", "lazy"])
def test_churn(benchmark, report, policy):
    m = benchmark.pedantic(churn, args=(policy,), iterations=1, rounds=3)
    plan = m.plan()
    plan.execute(on_tree_only=True)
    report.row(
        policy=policy,
        rebuilds=m.rebuilds,
        tree_height=m.tree.height,
        height_gap=m.height_gap,
        schedule=plan.total_time,
    )
    if policy == "eager":
        assert m.height_gap == 0


def test_lazy_saves_rebuilds(benchmark, report):
    lazy, eager = benchmark.pedantic(
        lambda: (churn("lazy"), churn("eager")), iterations=1, rounds=1
    )
    assert lazy.rebuilds < eager.rebuilds
    # lazy's schedule is longer by exactly the height gap
    assert (
        lazy.plan().total_time - eager.plan().total_time
        == lazy.tree.height - eager.tree.height
    )
    report.row(
        lazy_rebuilds=lazy.rebuilds,
        eager_rebuilds=eager.rebuilds,
        lazy_extra_rounds=lazy.tree.height - eager.tree.height,
    )
