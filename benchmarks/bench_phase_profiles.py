"""PROFILE — the phase structure of the three algorithms, as data.

Per-round activity series make the algorithms' shapes visible and
checkable: ConcurrentUpDown saturates the network in a single stage;
Simple idles between its two phases; UpDown carries a phase-2 tail; and
mean utilisation orders accordingly.
"""

import pytest

from repro.analysis.profile import activity_profile
from repro.analysis.sweep import family_instance
from repro.core.gossip import gossip

ALGOS = ["concurrent-updown", "updown", "simple"]


@pytest.mark.parametrize("algorithm", ALGOS)
def test_profile(benchmark, report, algorithm):
    g = family_instance("grid", 36)
    plan = gossip(g, algorithm=algorithm)
    profile = benchmark(activity_profile, plan.schedule)
    report.row(
        algorithm=algorithm,
        rounds=profile.total_time,
        peak_senders=profile.peak_senders,
        idle_rounds=profile.idle_rounds,
        utilisation=f"{profile.utilisation(g.n):.2f}",
    )


def test_utilisation_ordering(benchmark, report):
    """Shape claim: ConcurrentUpDown's utilisation beats Simple's (same
    work in far fewer rounds)."""
    g = family_instance("grid", 36)

    def measure():
        return {
            algo: activity_profile(gossip(g, algorithm=algo).schedule).utilisation(
                g.n
            )
            for algo in ALGOS
        }

    util = benchmark.pedantic(measure, iterations=1, rounds=1)
    assert util["concurrent-updown"] > util["simple"]
    report.row(
        concurrent=f"{util['concurrent-updown']:.2f}",
        updown=f"{util['updown']:.2f}",
        simple=f"{util['simple']:.2f}",
    )
