"""PLANNER — cold-plan latency of the pruned + batched sweep vs the O(mn) sweep.

The claim behind the fast-planner subsystem: the preprocessing stage
(Section 3.1's n BFS traversals) can be replaced by a double-sweep
seeded, cutoff-pruned, bit-parallel sweep that returns a *bit-identical*
minimum-depth spanning tree at a fraction of the cost.  Measured across
topology families and sizes:

* exhaustive vs pruned sweep wall-clock and the speedup ratio,
* cold end-to-end plan latency through :func:`repro.core.gossip.gossip`
  and its ratio to the pruned sweep alone,
* the bit-identical gate (same root, parents, and child order) on every
  benchmarked network,
* the >= 3x speedup gate on ``grid:400``-class graphs,
* the cold-plan gate (``plan_cold_s`` within ``COLD_MAX_RATIO``x of the
  pruned sweep on gate networks) plus the all-families schedule-identity
  sweep (array pipeline vs seed builder, round for round).

Runs three ways:

* under pytest(-benchmark) with the rest of the suite — records rows in
  the reproduction summary;
* standalone: ``python benchmarks/bench_planner.py --check`` exits
  non-zero unless both gates hold, and writes ``BENCH_planner.json`` at
  the repo root so successive PRs can compare the trajectory (wired
  into tier-1 via ``tests/analysis/test_planner_check.py``);
* by hand through ``python -m repro.cli plan-bench``.
"""

import argparse
import sys
from pathlib import Path

from repro.analysis.planner_bench import (
    COLD_MAX_RATIO,
    DEFAULT_SPECS,
    MIN_SPEEDUP,
    QUICK_SPECS,
    run_planner_bench,
)

#: Where the perf-trajectory artefact lives (committed at the repo root).
ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_planner.json"


def run(*, quick: bool = False, repeats: int = 3):
    """The standard sweep (or the tier-1 ``--quick`` subset)."""
    return run_planner_bench(
        QUICK_SPECS if quick else DEFAULT_SPECS, repeats=repeats
    )


def test_planner_speedup(benchmark, report):
    """Pruned sweep: bit-identical trees, gated speedup, recorded rows."""
    result = benchmark.pedantic(run, kwargs={"quick": True}, iterations=1, rounds=1)
    for cell in result.cells:
        report.row(
            network=cell.spec,
            n=cell.n,
            radius=cell.radius,
            exhaustive_ms=f"{cell.exhaustive_s * 1e3:.1f}",
            pruned_ms=f"{cell.pruned_s * 1e3:.1f}",
            speedup=f"{cell.speedup:.1f}x",
            cold_ratio=f"{cell.cold_ratio:.2f}x",
            identical=cell.identical,
        )
    result.check()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless trees are bit-identical, the "
             f">= {MIN_SPEEDUP:.0f}x grid:400 speedup gate and the "
             f"<= {COLD_MAX_RATIO:.0f}x cold-plan gate hold, and array "
             "schedules match the seed builder on every family",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="benchmark the small tier-1 subset instead of the full sweep",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--json", default=str(ARTIFACT), metavar="PATH",
        help="where to write the trajectory artefact (default: repo root "
             "BENCH_planner.json; use '' to skip writing)",
    )
    args = parser.parse_args(argv)

    result = run(quick=args.quick, repeats=args.repeats)
    print(result.format())
    if args.json:
        result.write_json(args.json)
        print(f"wrote {args.json}")
    if args.check:
        try:
            result.check()
        except AssertionError as err:
            print(f"CHECK FAILED: {err}")
            return 1
        print(
            "check: bit-identical trees, identical schedules, and "
            "planner speedup + cold-plan gates hold  OK"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
