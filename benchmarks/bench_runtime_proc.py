"""RUNTIME-PROC — supervised multi-process gossip vs the simulator.

The robustness claim behind :mod:`repro.runtime.supervisor`: the paper's
online ConcurrentUpDown, executed by one **OS process per peer** under a
supervisor, is (a) **offline-exact** when every process survives — the
multiset of transmissions equals the offline schedule on every topology
family; (b) **crash-resolving** when processes are really ``SIGKILL``\\ ed
mid-protocol — the supervisor detects every death (process sentinel
cross-checked by the survivors' heartbeat detectors), journals it, and
either re-completes full gossip via restart-with-rejoin or completes
gossip-among-survivors via the :func:`~repro.core.survival.survive`
replan, in at least ``MIN_COMPLETION`` of the seeded trials; (c)
**reproducible** — ``deterministic_summary()`` is byte-for-byte
identical across two runs of the same seed; and (d) **serveable** —
:meth:`GossipService.execute` drives the fleet with the same breaker /
retry / degraded-fallback discipline it applies to planning, never
deadlocking and counting every outcome in ``ServiceStats``.

Runs two ways:

* under pytest(-benchmark) with the rest of the suite — records rows in
  the reproduction summary;
* standalone: ``python benchmarks/bench_runtime_proc.py --check`` exits
  non-zero unless all four gates hold (``--quick`` shrinks the sweep for
  tier-1 wiring; the full run is the acceptance gate with >= 100 seeded
  SIGKILL trials).
"""

import argparse
import sys

from repro.analysis.sweep import FAMILIES
from repro.core.gossip import gossip
from repro.exceptions import ReproError
from repro.runtime import (
    NetChaos,
    RestartPolicy,
    RuntimeConfig,
    run_gossip_processes,
)

#: The acceptance-criteria sweep shape.
FAMILY_SIZE = 12
KILL_FAMILY = "cycle:6"  # any single death leaves a connected path
KILL_TRIALS = 100
SEED = 7
MIN_COMPLETION = 0.95
#: Every RESTART_EVERY-th trial resolves by restart-with-rejoin (and must
#: then re-complete *full* gossip); the rest replan around the dead.
RESTART_EVERY = 5

#: Tier-1 subset for --quick (one per structural class, cheap to boot —
#: every extra family costs FAMILY_SIZE interpreter boots).
QUICK_FAMILIES = ("path", "star", "grid", "binary-tree", "random")
QUICK_TRIALS = 4

#: Child-fleet pacing: virtual-seconds knobs (scaled by TIME_SCALE into
#: real waits).  fail_after is deliberately generous — interpreter boot
#: storms on small machines must never read as peer death.
TIME_SCALE = 0.5
FAULT_FREE_CONFIG = dict(
    heartbeat_interval=0.5,
    fail_after=4.0,
    round_timeout=60.0,
    run_timeout=600.0,
)
KILL_TIME_SCALE = 0.25
KILL_CONFIG = dict(
    heartbeat_interval=0.25,
    fail_after=1.5,
    round_timeout=60.0,
    run_timeout=600.0,
)


def _offline_multiset(plan):
    """The offline schedule as a sorted transmission multiset."""
    return sorted(
        (t, tx.sender, tx.message, tuple(sorted(tx.destinations)))
        for t, rnd in enumerate(plan.schedule.rounds)
        for tx in rnd
    )


def _online_multiset(result):
    """A runtime transcript as a sorted transmission multiset."""
    return sorted(
        (e.round, e.sender, e.message, e.destinations)
        for e in result.transcript
    )


def run_fault_free(*, families=None, seed=SEED, size=FAMILY_SIZE):
    """One fault-free supervised run per family; offline-exactness rows.

    Returns ``(family, n, rounds, wall_seconds, complete, exact)`` rows
    where ``exact`` is the offline-transcript multiset gate.
    """
    rows = []
    config = RuntimeConfig(seed=seed, **FAULT_FREE_CONFIG)
    for name in sorted(families if families is not None else FAMILIES):
        plan = gossip(f"{name}:{size}")
        result = run_gossip_processes(
            plan, config=config, time_scale=TIME_SCALE
        )
        rows.append(
            (
                plan.graph.name or name,
                result.n,
                result.horizon,
                result.wall_seconds,
                result.complete and result.mode == "fault-free",
                _offline_multiset(plan) == _online_multiset(result),
            )
        )
    return rows


def _kill_trial_inputs(plan, trial, seed):
    """Deterministic SIGKILL profile + config + policy for one trial."""
    n = plan.graph.n
    victim = (trial * 5 + 1) % n
    kill_round = 1 + trial % 3
    chaos = NetChaos(
        seed=seed * 1_000_003 + trial,
        sigkill=((victim, kill_round),),
    )
    config = RuntimeConfig(seed=seed + trial, **KILL_CONFIG)
    restart = trial % RESTART_EVERY == 0
    policy = RestartPolicy(mode="restart" if restart else "replan")
    return chaos, config, policy, victim


def run_sigkill(*, trials=KILL_TRIALS, seed=SEED):
    """Seeded real-crash trials: one ``SIGKILL``\\ ed peer process each.

    Returns ``(victim, policy_mode, result_or_None)`` triples — ``None``
    records a trial the supervisor could not resolve (a typed error),
    which the completion gate counts against ``MIN_COMPLETION``.
    """
    plan = gossip(KILL_FAMILY)
    outcomes = []
    for trial in range(trials):
        chaos, config, policy, victim = _kill_trial_inputs(plan, trial, seed)
        try:
            result = run_gossip_processes(
                plan, chaos=chaos, config=config, policy=policy,
                time_scale=KILL_TIME_SCALE,
            )
        except ReproError:
            result = None
        outcomes.append((victim, policy.mode, result))
    return outcomes


def check_offline_exact(rows) -> None:
    """Gate: every fault-free run is complete and offline-identical."""
    bad = [(fam, complete, exact) for fam, _, _, _, complete, exact in rows
           if not (complete and exact)]
    assert not bad, (
        f"{len(bad)} families diverged from the offline schedule under "
        f"process supervision: {bad}"
    )


def _detected(victim, result) -> bool:
    """Whether the supervisor's journal shows the victim's death."""
    return any(
        incident.vertex == victim
        and incident.kind in ("crash-detected", "suspicion")
        for incident in result.incidents
    )


def check_sigkill_resolution(outcomes) -> None:
    """Gate: every death detected; >= MIN_COMPLETION trials resolve.

    A replan trial resolves when the survivors reach full degraded
    coverage around exactly the killed vertex; a restart trial resolves
    only by *re-completing full gossip* (mode ``rejoin``).  Detection is
    unconditional: even an unresolved trial must have journaled the
    victim's death.
    """
    undetected = [
        i for i, (victim, _, result) in enumerate(outcomes)
        if result is None or not _detected(victim, result)
    ]
    assert not undetected, (
        f"trials {undetected} never detected the SIGKILLed peer "
        f"(no crash-detected/suspicion incident)"
    )

    def resolved(victim, mode, result):
        if result is None:
            return False
        if mode == "restart":
            return result.mode == "rejoin" and result.complete
        return (
            result.mode == "replan"
            and result.dead == (victim,)
            and result.coverage == 1.0
        )

    completions = [resolved(*o) for o in outcomes]
    rate = sum(completions) / len(completions)
    assert rate >= MIN_COMPLETION, (
        f"only {rate:.1%} of {len(outcomes)} SIGKILL trials resolved "
        f"(< {MIN_COMPLETION:.0%}); failures at trials "
        f"{[i for i, ok in enumerate(completions) if not ok]}"
    )


def check_reproducible(*, seed=SEED) -> None:
    """Gate: one SIGKILL trial run twice is byte-for-byte identical."""
    plan = gossip(KILL_FAMILY)
    chaos, config, policy, _ = _kill_trial_inputs(plan, 1, seed)

    def once():
        return run_gossip_processes(
            plan, chaos=chaos, config=config, policy=policy,
            time_scale=KILL_TIME_SCALE,
        ).deterministic_summary()

    first, second = once(), once()
    assert first == second, (
        "identical seeds produced different deterministic summaries: "
        + str({k: (first[k], second[k]) for k in first if first[k] != second[k]})
    )


def check_service_execute(*, seed=SEED) -> None:
    """Gate: ``GossipService.execute`` degrades crashes, never deadlocks.

    * a crash-injected fleet that the supervisor *resolves* is served as
      a successful (non-degraded) execution;
    * a fleet that cannot meet its whole-run deadline is served degraded
      (the typed partial result), counts as an execution failure, and
      two such failures open the per-key execution breaker;
    * with the breaker open the fleet is never spawned again — the
      offline simulator replay is served degraded instead;
    * every outcome lands in the ``ServiceStats`` execution counters.
    """
    from repro.service import GossipService

    chaos = NetChaos(seed=seed, sigkill=((1, 1),))
    config = RuntimeConfig(seed=seed, **KILL_CONFIG)
    dead_on_arrival = RuntimeConfig(seed=seed, run_timeout=0.05)
    with GossipService(breaker_threshold=2, breaker_cooldown=600.0) as service:
        crashed = service.execute(
            KILL_FAMILY, runtime="processes", chaos=chaos, config=config,
            time_scale=KILL_TIME_SCALE,
        )
        assert not crashed.degraded and crashed.result.mode == "replan", (
            f"supervisor-resolved crash served wrong: {crashed.result.mode}"
        )
        assert crashed.result.coverage == 1.0

        first = service.execute(
            KILL_FAMILY, runtime="processes", config=dead_on_arrival,
            time_scale=KILL_TIME_SCALE,
        )
        assert first.degraded and first.result.mode == "partial"
        second = service.execute(
            KILL_FAMILY, runtime="processes", config=dead_on_arrival,
            time_scale=KILL_TIME_SCALE,
        )
        assert second.degraded

        shorted = service.execute(
            KILL_FAMILY, runtime="processes", config=dead_on_arrival,
            time_scale=KILL_TIME_SCALE,
        )
        assert shorted.degraded and shorted.runtime == "simulator", (
            "open breaker should have served the simulator replay, got "
            f"{shorted.runtime!r}"
        )

        stats = service.stats()
        assert stats.executions == 4, stats.executions
        assert stats.exec_failures == 2, stats.exec_failures
        assert stats.exec_degraded == 3, stats.exec_degraded
        assert stats.breaker_opens == 1, stats.breaker_opens


def test_runtime_proc_supervised(benchmark, report):
    """Supervised fleet vs simulator; detection + resolution must hold."""
    rows = benchmark.pedantic(
        lambda: run_fault_free(families=QUICK_FAMILIES, size=8),
        iterations=1,
        rounds=1,
    )
    for family, n, rounds, wall, complete, exact in rows:
        report.row(
            network=family,
            n=n,
            rounds=rounds,
            wall_ms=f"{wall * 1000:.1f}",
            complete=complete,
            offline_exact=exact,
        )
    check_offline_exact(rows)

    outcomes = run_sigkill(trials=2)
    for i, (victim, mode, r) in enumerate(outcomes):
        report.row(
            network=KILL_FAMILY,
            trial=i,
            policy=mode,
            resolved=None if r is None else r.mode,
            coverage=None if r is None else f"{r.coverage:.0%}",
            restarts=None if r is None else r.restarts,
        )
    check_sigkill_resolution(outcomes)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless the offline-exact, crash-resolution, "
             "per-seed-reproducibility and service-execution gates hold",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="run the small tier-1 subset instead of all families and the "
             "full 100-trial crash sweep",
    )
    parser.add_argument("--trials", type=int, default=None)
    parser.add_argument("--seed", type=int, default=SEED)
    args = parser.parse_args(argv)

    families = QUICK_FAMILIES if args.quick else sorted(FAMILIES)
    size = 8 if args.quick else FAMILY_SIZE
    rows = run_fault_free(families=families, seed=args.seed, size=size)
    header = (f"{'network':<16} {'n':>4} {'rounds':>6} {'wall ms':>8} "
              f"{'complete':>9} {'exact':>6}")
    print(f"supervised multi-process runtime  seed={args.seed}  "
          f"families={len(rows)}  (one OS process per peer)")
    print(header)
    print("-" * len(header))
    for family, n, rounds, wall, complete, exact in rows:
        print(f"{family:<16} {n:>4} {rounds:>6} {wall * 1000:>8.1f} "
              f"{str(complete):>9} {str(exact):>6}")

    trials = args.trials if args.trials is not None else (
        QUICK_TRIALS if args.quick else KILL_TRIALS
    )
    outcomes = run_sigkill(trials=trials, seed=args.seed)
    resolved = sum(
        1 for _, _, r in outcomes
        if r is not None and (r.complete or r.coverage == 1.0)
    )
    print(f"\nSIGKILL sweep: {trials} seeded trials on {KILL_FAMILY} "
          f"(1 real process death each; every {RESTART_EVERY}th trial "
          f"restart-with-rejoin), {resolved}/{trials} resolved")
    shown = outcomes if trials <= 12 else outcomes[:12]
    for i, (victim, mode, r) in enumerate(shown):
        if r is None:
            print(f"  trial {i}: victim={victim} policy={mode}  UNRESOLVED")
        else:
            print(f"  trial {i}: victim={victim} policy={mode} -> "
                  f"{r.mode} coverage={r.coverage:.0%} "
                  f"restarts={r.restarts} incidents={len(r.incidents)}")
    if len(shown) < trials:
        print(f"  ... {trials - len(shown)} more trials elided")

    if args.check:
        try:
            check_offline_exact(rows)
            check_sigkill_resolution(outcomes)
            check_reproducible(seed=args.seed)
            check_service_execute(seed=args.seed)
        except AssertionError as err:
            print(f"CHECK FAILED: {err}")
            return 1
        print("check: offline-exact transcripts, crash detection + "
              ">= 95% resolution, per-seed reproducibility, "
              "service execution degradation  OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
