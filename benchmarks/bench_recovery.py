"""RECOVERY — repair-round overhead of fault-tolerant gossip vs drop rate.

The robustness claim behind :mod:`repro.core.recovery`: a schedule
executed under a seeded :class:`~repro.simulator.lossy.FaultModel` can
be repaired back to completeness with model-legal extra rounds, and the
overhead grows smoothly with the drop rate.  Measured on the chaos-sweep
default family ``random:48``:

* the overhead-vs-drop-rate curve (p50/p90/max extra rounds per cell),
* the 0%-drop parity gate: a null fault model must reproduce
  :func:`~repro.simulator.engine.execute_schedule` bit-for-bit and
  :func:`~repro.core.recovery.recover` must append zero repair rounds.

Runs two ways:

* under pytest(-benchmark) with the rest of the suite — records rows in
  the reproduction summary;
* standalone: ``python benchmarks/bench_recovery.py --check`` exits
  non-zero unless the parity gate holds (wired into tier-1 via
  ``tests/analysis/test_chaos_check.py``).
"""

import argparse
import sys

from repro.analysis.chaos import run_chaos_sweep
from repro.core.gossip import gossip, resolve_network
from repro.core.recovery import execute_plan_with_faults, recover
from repro.simulator.engine import execute_schedule
from repro.simulator.lossy import FaultModel
from repro.simulator.state import labeled_holdings

#: The acceptance-criteria network and sweep shape.
FAMILY = "random:48"
DROP_RATES = (0.0, 0.1, 0.2, 0.3)
TRIALS = 10
SEED = 7


def run(*, trials: int = TRIALS, seed: int = SEED):
    """The overhead-vs-drop-rate curve on the chaos default family."""
    return run_chaos_sweep(
        families=(FAMILY,),
        drop_rates=DROP_RATES,
        trials=trials,
        seed=seed,
    )


def check_zero_drop_parity(*, seed: int = SEED) -> None:
    """Gate: a null fault model is indistinguishable from the real engine.

    Asserts that ``execute_with_faults`` under ``FaultModel()`` matches
    ``execute_schedule`` on every comparable field and that ``recover``
    is a no-op (zero attempts, zero appended rounds) on the result.
    """
    graph, tree = resolve_network(FAMILY)
    plan = gossip(graph, tree=tree)
    holds0 = labeled_holdings(plan.labeled.labels())

    faulty = execute_plan_with_faults(plan, FaultModel(seed=seed))
    reference = execute_schedule(
        graph, plan.schedule, initial_holds=holds0, require_complete=True
    )
    assert not faulty.lost and not faulty.suppressed, (
        "null fault model injected faults"
    )
    assert faulty.to_execution_result() == reference, (
        "null-model lossy execution diverged from execute_schedule"
    )

    outcome = recover(graph, plan, faulty)
    assert outcome.attempts == 0 and outcome.repair_rounds == 0, (
        f"recover() modified a complete run: attempts={outcome.attempts}, "
        f"repair_rounds={outcome.repair_rounds}"
    )
    assert outcome.overhead_rounds == 0


def test_recovery_overhead_curve(benchmark, report):
    """Overhead percentiles per drop rate; 0%-drop must be pure parity."""
    check_zero_drop_parity()
    sweep = benchmark.pedantic(run, iterations=1, rounds=1)
    for cell in sweep.cells:
        report.row(
            network=cell.family,
            drop=f"{cell.drop_rate:.2f}",
            completion=f"{cell.completion_rate:.0%}",
            baseline=cell.baseline_total,
            overhead_p50=cell.overhead_p50,
            overhead_p90=cell.overhead_p90,
            overhead_max=cell.overhead_max,
        )
    sweep.check()
    zero = next(c for c in sweep.cells if c.drop_rate == 0.0)
    assert zero.overhead_max == 0 and zero.deliveries_lost == 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless 0%%-drop parity and the sweep gates hold",
    )
    parser.add_argument("--trials", type=int, default=TRIALS)
    parser.add_argument("--seed", type=int, default=SEED)
    args = parser.parse_args(argv)

    sweep = run(trials=args.trials, seed=args.seed)
    print(sweep.format())
    if args.check:
        try:
            check_zero_drop_parity(seed=args.seed)
            sweep.check()
        except AssertionError as err:
            print(f"CHECK FAILED: {err}")
            return 1
        print("check: 0%-drop parity and recovery gates hold  OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
