"""OPT-PATH — the Discussion's 'improve by one unit' on odd paths.

The non-uniform alternating schedule achieves the Section 1 lower bound
``n + r - 1`` exactly, one round below the uniform ConcurrentUpDown —
closing the last gap of the path instance.
"""

import pytest

from repro.core.gossip import gossip
from repro.core.optimal_path import optimal_path_gossip
from repro.networks.topologies import path_graph
from repro.simulator.validator import assert_gossip_schedule


@pytest.mark.parametrize("m", [4, 8, 16, 32])
def test_optimal_path(benchmark, report, m):
    n = 2 * m + 1
    graph, schedule = benchmark(optimal_path_gossip, n)
    assert schedule.total_time == n + m - 1
    assert_gossip_schedule(graph, schedule, max_total_time=n + m - 1)
    uniform = gossip(path_graph(n))
    report.row(
        n=n,
        m=m,
        lower_bound=n + m - 1,
        non_uniform=schedule.total_time,
        concurrent=uniform.total_time,
        gap_closed=uniform.total_time - schedule.total_time,
    )
    assert uniform.total_time - schedule.total_time == 1
