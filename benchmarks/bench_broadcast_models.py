"""BCAST-MODELS — broadcasting: multicast vs telephone (Section 2).

The multicast model broadcasts in exactly ``ecc(source)``; the telephone
model needs ``>= max(ecc, ceil(log2 n))`` and collapses to ``n - 1`` on
stars.  The measured gap is the broadcasting face of the paper's "why
multicast" argument.
"""

import math

import pytest

from repro.analysis.sweep import family_instance
from repro.core.broadcast import broadcast, telephone_broadcast

FAMILIES = ["star", "complete", "path", "hypercube", "grid", "wheel"]


@pytest.mark.parametrize("family", FAMILIES)
def test_broadcast_model_gap(benchmark, report, family):
    g = family_instance(family, 32)
    telephone = benchmark(telephone_broadcast, g, 0)
    multicast = broadcast(g, 0)
    assert telephone.total_time >= multicast.total_time
    assert telephone.total_time >= math.ceil(math.log2(g.n))
    report.row(
        family=family,
        n=g.n,
        multicast=multicast.total_time,
        telephone=telephone.total_time,
        log2n=math.ceil(math.log2(g.n)),
        gap=f"{telephone.total_time / max(multicast.total_time, 1):.1f}x",
    )
