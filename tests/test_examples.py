"""Smoke tests: every shipped example runs to completion.

Executed in-process via runpy so assertion failures inside the examples
(they assert their own claims) surface as test failures.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_present():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 6


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_quickstart_reports_theorem1(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "Theorem 1 guarantee" in out
    assert "complete=True" in out


def test_walkthrough_covers_all_artefacts(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "paper_walkthrough.py"), run_name="__main__")
    out = capsys.readouterr().out
    for artefact in ("Fig. 1", "Fig. 2", "Fig. 3", "Fig. 4",
                     "Table 1", "Table 2", "Table 3", "Table 4", "Theorem 1"):
        assert artefact in out
