"""Unit tests for radius / diameter / center / summaries."""

import networkx as nx
import pytest

from repro.networks import topologies
from repro.networks.builders import to_networkx
from repro.networks.graph import Graph
from repro.networks.properties import (
    center,
    diameter,
    periphery,
    radius,
    summarize,
)
from repro.networks.random_graphs import random_connected_gnp


class TestRadiusDiameter:
    @pytest.mark.parametrize(
        "graph,expected_radius,expected_diameter",
        [
            (topologies.path_graph(7), 3, 6),
            (topologies.path_graph(8), 4, 7),
            (topologies.cycle_graph(8), 4, 4),
            (topologies.cycle_graph(9), 4, 4),
            (topologies.star_graph(10), 1, 2),
            (topologies.complete_graph(6), 1, 1),
            (topologies.grid_2d(3, 3), 2, 4),
            (topologies.hypercube(4), 4, 4),
        ],
    )
    def test_known_values(self, graph, expected_radius, expected_diameter):
        assert radius(graph) == expected_radius
        assert diameter(graph) == expected_diameter

    def test_radius_at_most_diameter_at_most_twice_radius(self):
        for seed in range(5):
            g = random_connected_gnp(20, 0.12, seed)
            r, d = radius(g), diameter(g)
            assert r <= d <= 2 * r

    def test_radius_at_most_half_n(self):
        """The Section 4 fact behind the 1.5-approximation: r <= n/2."""
        for g in [
            topologies.path_graph(9),
            topologies.cycle_graph(12),
            topologies.star_graph(7),
            topologies.grid_2d(4, 4),
        ]:
            assert radius(g) <= g.n / 2

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_networkx(self, seed):
        g = random_connected_gnp(18, 0.15, seed)
        nxg = to_networkx(g)
        assert radius(g) == nx.radius(nxg)
        assert diameter(g) == nx.diameter(nxg)
        assert center(g) == sorted(nx.center(nxg))
        assert periphery(g) == sorted(nx.periphery(nxg))


class TestCenterPeriphery:
    def test_odd_path_center(self):
        assert center(topologies.path_graph(7)) == [3]

    def test_even_path_center_pair(self):
        assert center(topologies.path_graph(8)) == [3, 4]

    def test_star_center(self):
        assert center(topologies.star_graph(9)) == [0]

    def test_path_periphery(self):
        assert periphery(topologies.path_graph(5)) == [0, 4]

    def test_complete_graph_everyone_central(self):
        g = topologies.complete_graph(5)
        assert center(g) == [0, 1, 2, 3, 4]
        assert periphery(g) == [0, 1, 2, 3, 4]


class TestSummary:
    def test_summary_fields(self):
        s = summarize(topologies.grid_2d(3, 4))
        assert s.n == 12
        assert s.m == 17
        assert s.radius == 3
        assert s.diameter == 5
        assert s.min_degree == 2
        assert s.max_degree == 4

    def test_summary_bounds(self):
        s = summarize(topologies.path_graph(9))
        assert s.trivial_lower_bound == 8
        assert s.concurrent_updown_bound == 9 + 4
        assert s.simple_bound == 18 + 4 - 3
        assert s.updown_bound == (8 + 4) + (2 * 3 + 1)

    def test_summary_center_tuple(self):
        s = summarize(topologies.path_graph(7))
        assert s.center == (3,)
        assert s.periphery == (0, 6)

    def test_single_vertex_summary(self):
        s = summarize(Graph(1, []))
        assert s.radius == 0
        assert s.diameter == 0
        assert s.trivial_lower_bound == 0
