"""Unit tests for (de)serialisation."""

import pytest

from repro.core.concurrent_updown import concurrent_updown
from repro.exceptions import GraphError
from repro.networks import topologies
from repro.networks.io import (
    graph_from_edgelist,
    graph_from_json,
    graph_to_edgelist,
    graph_to_json,
    schedule_from_json,
    schedule_to_json,
    tree_from_json,
    tree_to_json,
)
from repro.networks.paper_networks import fig5_tree
from repro.networks.spanning_tree import minimum_depth_spanning_tree
from repro.tree.labeling import LabeledTree
from repro.tree.tree import Tree


class TestEdgelist:
    def test_roundtrip(self):
        g = topologies.grid_2d(3, 3)
        assert graph_from_edgelist(graph_to_edgelist(g)) == g

    def test_header(self):
        text = graph_to_edgelist(topologies.path_graph(3))
        assert text.splitlines()[0] == "3 2"

    def test_missing_header_rejected(self):
        with pytest.raises(GraphError):
            graph_from_edgelist("0 1 2\n")

    def test_wrong_count_rejected(self):
        with pytest.raises(GraphError, match="header"):
            graph_from_edgelist("3 5\n0 1\n")


class TestGraphJson:
    def test_roundtrip_preserves_name(self):
        g = topologies.cycle_graph(6)
        back = graph_from_json(graph_to_json(g))
        assert back == g
        assert back.name == g.name


class TestTreeJson:
    def test_roundtrip(self):
        tree = fig5_tree()
        assert tree_from_json(tree_to_json(tree)) == tree

    def test_roundtrip_preserves_child_order(self):
        tree = Tree([-1, 0, 0], root=0, child_order=lambda v, kids: sorted(kids, reverse=True))
        back = tree_from_json(tree_to_json(tree))
        assert back.children(0) == (2, 1)

    def test_roundtrip_preserves_labeling(self):
        tree = minimum_depth_spanning_tree(topologies.grid_2d(3, 4))
        back = tree_from_json(tree_to_json(tree))
        assert LabeledTree(back).labels() == LabeledTree(tree).labels()


class TestScheduleJson:
    def test_roundtrip(self):
        schedule = concurrent_updown(LabeledTree(fig5_tree()))
        back = schedule_from_json(schedule_to_json(schedule))
        assert back == schedule
        assert back.total_time == schedule.total_time

    def test_roundtrip_preserves_name(self):
        schedule = concurrent_updown(LabeledTree(fig5_tree()))
        assert schedule_from_json(schedule_to_json(schedule)).name == schedule.name
