"""Tests for tree maintenance over network changes (Section 4)."""

import pytest

from repro.exceptions import GraphError, ReproError
from repro.networks import topologies
from repro.networks.dynamic import TreeMaintainer
from repro.networks.properties import radius


class TestCreate:
    def test_initial_tree_is_minimum_depth(self):
        g = topologies.grid_2d(3, 4)
        m = TreeMaintainer.create(g)
        assert m.tree.height == radius(g)
        assert m.rebuilds == 1
        assert m.schedule_bound == g.n + radius(g)

    def test_unknown_policy(self):
        with pytest.raises(ReproError):
            TreeMaintainer.create(topologies.path_graph(4), policy="sometimes")


class TestEager:
    def test_rebuilds_on_every_change(self):
        m = TreeMaintainer.create(topologies.cycle_graph(8), policy="eager")
        m = m.add_edge(0, 4)  # a chord
        assert m.rebuilds == 2
        m = m.remove_edge(0, 4)
        assert m.rebuilds == 3

    def test_guarantee_tracks_radius(self):
        m = TreeMaintainer.create(topologies.cycle_graph(10), policy="eager")
        assert m.tree.height == 5
        m = m.add_edge(0, 5)  # diameter-halving chord
        assert m.tree.height == radius(m.graph) == 3
        assert m.height_gap == 0


class TestLazy:
    def test_add_edge_keeps_tree(self):
        m = TreeMaintainer.create(topologies.cycle_graph(10), policy="lazy")
        m2 = m.add_edge(0, 5)
        assert m2.rebuilds == 1
        assert m2.tree == m.tree
        # staleness quantified: the chord halved the radius
        assert m2.height_gap == 2

    def test_remove_chord_keeps_tree(self):
        g = topologies.cycle_graph(8).add_edges([(0, 4)])
        m = TreeMaintainer.create(g, policy="lazy")
        m2 = m.remove_edge(0, 4) if not _is_tree_edge(m, 0, 4) else m.remove_edge(
            *_some_chord(m)
        )
        assert m2.rebuilds == m.rebuilds  # no rebuild for a non-tree edge

    def test_remove_tree_edge_rebuilds(self):
        g = topologies.cycle_graph(8)
        m = TreeMaintainer.create(g, policy="lazy")
        parent_child = next(
            (p, c) for p, c in m.tree.edges()
        )
        m2 = m.remove_edge(*parent_child)
        assert m2.rebuilds == m.rebuilds + 1
        assert m2.tree.height == radius(m2.graph)

    def test_refreshed(self):
        m = TreeMaintainer.create(topologies.cycle_graph(10), policy="lazy")
        stale = m.add_edge(0, 5)
        fresh = stale.refreshed()
        assert fresh.height_gap == 0
        assert fresh.rebuilds == stale.rebuilds + 1

    def test_plan_uses_maintained_tree(self):
        m = TreeMaintainer.create(topologies.cycle_graph(10), policy="lazy")
        stale = m.add_edge(0, 5)
        plan = stale.plan()
        # schedule length follows the (stale) tree height, not the radius
        assert plan.total_time == stale.graph.n + stale.tree.height
        plan.execute(on_tree_only=True)


class TestGuards:
    def test_disconnecting_removal_rejected(self):
        m = TreeMaintainer.create(topologies.path_graph(5))
        with pytest.raises(GraphError, match="disconnect"):
            m.remove_edge(1, 2)

    def test_absent_edge_rejected(self):
        m = TreeMaintainer.create(topologies.cycle_graph(5))
        with pytest.raises(GraphError):
            m.remove_edge(0, 2)

    def test_duplicate_edge_rejected(self):
        m = TreeMaintainer.create(topologies.cycle_graph(5))
        with pytest.raises(GraphError):
            m.add_edge(0, 1)


def _is_tree_edge(m, u, v):
    return m.tree.parent(u) == v or m.tree.parent(v) == u


def _some_chord(m):
    for u, v in m.graph.edges():
        if not _is_tree_edge(m, u, v):
            return (u, v)
    raise AssertionError("no chord")


class TestAmortisation:
    def test_lazy_fewer_rebuilds_than_eager(self):
        """A churn sequence of chord insertions/removals: lazy rebuilds
        far less while keeping a valid (if stale) tree throughout."""
        g = topologies.cycle_graph(12)
        lazy = TreeMaintainer.create(g, policy="lazy")
        eager = TreeMaintainer.create(g, policy="eager")
        chords = [(0, 6), (1, 7), (2, 8)]
        for u, v in chords:
            lazy, eager = lazy.add_edge(u, v), eager.add_edge(u, v)
        for u, v in chords:
            lazy, eager = lazy.remove_edge(u, v), eager.remove_edge(u, v)
        assert lazy.rebuilds == 1
        assert eager.rebuilds == 1 + 2 * len(chords)
        # both end with valid schedules
        lazy.plan().execute(on_tree_only=True)
        eager.plan().execute(on_tree_only=True)
