"""Tests: the fast all-pairs backend agrees with the reference BFS."""

import numpy as np
import pytest

from repro.exceptions import DisconnectedGraphError
from repro.networks import topologies
from repro.networks.bfs import all_eccentricities, distance_matrix
from repro.networks.fast_paths import (
    all_pairs_distances,
    fast_eccentricities,
    fast_radius,
    minimum_depth_spanning_tree_fast,
)
from repro.networks.graph import Graph
from repro.networks.properties import radius
from repro.networks.random_graphs import random_connected_gnp, random_tree
from repro.networks.spanning_tree import minimum_depth_spanning_tree


class TestDistances:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_reference_random(self, seed):
        g = random_connected_gnp(30, 0.1, seed)
        assert np.array_equal(all_pairs_distances(g), distance_matrix(g))

    @pytest.mark.parametrize(
        "graph",
        [
            topologies.path_graph(12),
            topologies.cycle_graph(9),
            topologies.hypercube(4),
            topologies.grid_2d(4, 5),
            Graph(1, []),
        ],
    )
    def test_matches_reference_structured(self, graph):
        assert np.array_equal(all_pairs_distances(graph), distance_matrix(graph))

    def test_disconnected_marked(self):
        g = Graph(4, [(0, 1), (2, 3)])
        d = all_pairs_distances(g)
        assert d[0, 2] == -1
        assert d[0, 1] == 1


class TestEccentricities:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_reference(self, seed):
        g = random_connected_gnp(25, 0.12, seed)
        assert np.array_equal(fast_eccentricities(g), all_eccentricities(g))

    def test_radius(self):
        g = topologies.grid_2d(5, 5)
        assert fast_radius(g) == radius(g)

    def test_disconnected_rejected(self):
        with pytest.raises(DisconnectedGraphError):
            fast_eccentricities(Graph(3, [(0, 1)]))


class TestFastTree:
    @pytest.mark.parametrize("seed", range(6))
    def test_identical_tree_random(self, seed):
        g = random_connected_gnp(25, 0.12, seed)
        assert minimum_depth_spanning_tree_fast(g) == minimum_depth_spanning_tree(g)

    def test_identical_tree_paper_example(self):
        from repro.networks.paper_networks import fig4_network, fig5_tree

        assert minimum_depth_spanning_tree_fast(fig4_network()) == fig5_tree()

    @pytest.mark.parametrize("n", [64, 150])
    def test_identical_on_larger_trees(self, n):
        g = random_tree(n, seed=1)
        assert minimum_depth_spanning_tree_fast(g) == minimum_depth_spanning_tree(g)

    def test_gossip_with_fast_tree(self):
        """End to end: the fast tree plugs into the pipeline unchanged."""
        from repro.core.gossip import gossip

        g = random_connected_gnp(40, 0.08, seed=2)
        plan = gossip(g, tree=minimum_depth_spanning_tree_fast(g))
        assert plan.total_time == g.n + radius(g)
        plan.execute(on_tree_only=True)
