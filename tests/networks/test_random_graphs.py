"""Unit tests for the seeded random graph families."""

import pytest

from repro.exceptions import GraphError
from repro.networks.bfs import is_connected
from repro.networks.random_graphs import (
    random_caterpillar,
    random_connected_gnp,
    random_geometric,
    random_power_law_tree,
    random_regular,
    random_tree,
)


class TestRandomTree:
    @pytest.mark.parametrize("n", [1, 2, 3, 10, 50])
    def test_tree_shape(self, n):
        g = random_tree(n, seed=1)
        assert g.n == n
        assert g.m == max(n - 1, 0)
        assert is_connected(g)

    def test_seed_determinism(self):
        assert random_tree(20, seed=5) == random_tree(20, seed=5)

    def test_seed_variation(self):
        trees = {random_tree(20, seed=s) for s in range(10)}
        assert len(trees) > 5  # overwhelmingly distinct

    def test_invalid_n(self):
        with pytest.raises(GraphError):
            random_tree(0)


class TestGnp:
    @pytest.mark.parametrize("seed", range(5))
    def test_always_connected(self, seed):
        g = random_connected_gnp(30, 0.05, seed)
        assert is_connected(g)

    def test_p_zero_gives_tree(self):
        g = random_connected_gnp(15, 0.0, seed=2)
        assert g.m == 14

    def test_p_one_gives_complete(self):
        g = random_connected_gnp(8, 1.0, seed=0)
        assert g.m == 8 * 7 // 2

    def test_determinism(self):
        assert random_connected_gnp(12, 0.2, seed=9) == random_connected_gnp(
            12, 0.2, seed=9
        )

    def test_invalid_p(self):
        with pytest.raises(GraphError):
            random_connected_gnp(5, 1.5)


class TestGeometric:
    @pytest.mark.parametrize("seed", range(4))
    def test_connected_even_with_small_radius(self, seed):
        g = random_geometric(25, 0.12, seed)
        assert is_connected(g)

    def test_large_radius_dense(self):
        g = random_geometric(10, 2.0, seed=0)
        assert g.m == 45  # everything within range -> complete

    def test_determinism(self):
        assert random_geometric(15, 0.3, seed=4) == random_geometric(15, 0.3, seed=4)


class TestRegular:
    @pytest.mark.parametrize("n,d", [(10, 3), (12, 4), (8, 2)])
    def test_regularity(self, n, d):
        g = random_regular(n, d, seed=1)
        assert all(g.degree(v) == d for v in range(n))
        assert is_connected(g)

    def test_odd_total_degree_rejected(self):
        with pytest.raises(GraphError):
            random_regular(5, 3)

    def test_degree_too_large_rejected(self):
        with pytest.raises(GraphError):
            random_regular(4, 4)

    def test_determinism(self):
        assert random_regular(10, 3, seed=7) == random_regular(10, 3, seed=7)


class TestSkewedTrees:
    def test_random_caterpillar_connected(self):
        g = random_caterpillar(8, 3, seed=2)
        assert is_connected(g)
        assert g.m == g.n - 1

    def test_power_law_tree(self):
        g = random_power_law_tree(40, seed=3)
        assert g.m == 39
        assert is_connected(g)
        degrees = sorted((g.degree(v) for v in range(g.n)), reverse=True)
        assert degrees[0] >= 4  # hubs emerge

    def test_power_law_gamma_validation(self):
        with pytest.raises(GraphError):
            random_power_law_tree(10, gamma=1.0)
