"""Tests for the paper-figure networks and their certificate schedules.

These are the FIG1-FIG5 reproduction checks of DESIGN.md's experiment
index, in unit-test form.
"""

import pytest

from repro.core.ring import hamiltonian_circuit, ring_gossip
from repro.networks.bfs import is_connected
from repro.networks.paper_networks import (
    FIG5_PARENTS,
    fig1_ring,
    fig4_network,
    fig5_tree,
    n3_multicast_schedule,
    n3_network,
    petersen,
    petersen_gossip_schedule,
)
from repro.networks.properties import radius
from repro.networks.spanning_tree import minimum_depth_spanning_tree
from repro.simulator.validator import assert_gossip_schedule
from repro.tree.labeling import LabeledTree


class TestFig1:
    """FIG1: the Hamiltonian ring gossips in the optimal n - 1 rounds."""

    def test_structure(self):
        g = fig1_ring(8)
        assert g.name == "N1"
        assert all(g.degree(v) == 2 for v in range(8))

    def test_has_hamiltonian_circuit(self):
        assert hamiltonian_circuit(fig1_ring(8)) is not None

    @pytest.mark.parametrize("n", [3, 5, 8, 12])
    def test_optimal_gossip(self, n):
        g = fig1_ring(n)
        schedule = ring_gossip(list(range(n)))
        assert schedule.total_time == n - 1
        assert_gossip_schedule(g, schedule, max_total_time=n - 1)


class TestFig2Petersen:
    """FIG2: Petersen has no Hamiltonian circuit yet gossips in n - 1
    rounds even under the telephone model."""

    def test_structure(self):
        g = petersen()
        assert (g.n, g.m) == (10, 15)
        assert all(g.degree(v) == 3 for v in range(10))
        assert radius(g) == 2

    def test_no_hamiltonian_circuit(self):
        assert hamiltonian_circuit(petersen()) is None

    def test_gossip_in_nine_rounds(self):
        schedule = petersen_gossip_schedule()
        assert schedule.total_time == 9
        assert_gossip_schedule(petersen(), schedule, max_total_time=9)

    def test_schedule_is_telephone(self):
        """Every transmission is a unicast — valid under both models."""
        assert petersen_gossip_schedule().max_fan_out() == 1


class TestFig3N3:
    """FIG3: N3 gossips in n - 1 rounds under multicast but provably not
    under telephone."""

    def test_structure(self):
        g = n3_network()
        assert (g.n, g.m) == (5, 6)
        assert g.name == "N3"
        assert is_connected(g)

    def test_no_hamiltonian_circuit(self):
        assert hamiltonian_circuit(n3_network()) is None

    def test_multicast_gossip_in_four_rounds(self):
        schedule = n3_multicast_schedule()
        assert schedule.total_time == 4
        assert_gossip_schedule(n3_network(), schedule, max_total_time=4)

    def test_multicast_genuinely_needed(self):
        """At least one transmission has fan-out > 1."""
        assert n3_multicast_schedule().max_fan_out() >= 2

    def test_telephone_counting_bound(self):
        """Each leaf needs 4 receives, all from the 2 centers, who deliver
        at most 2 unicasts per round: 12 deliveries / 2 per round = 6 > 4."""
        g = n3_network()
        leaves = [v for v in range(g.n) if g.degree(v) == 2]
        assert len(leaves) == 3
        deliveries_needed = len(leaves) * (g.n - 1)
        per_round_capacity = 2  # the two centers
        assert deliveries_needed / per_round_capacity > g.n - 1


class TestFig4Fig5:
    """FIG4/FIG5: the worked example's tree construction and labelling."""

    def test_fig4_radius(self):
        assert radius(fig4_network()) == 3

    def test_min_depth_tree_is_fig5(self):
        assert minimum_depth_spanning_tree(fig4_network()) == fig5_tree()

    def test_fig5_height(self):
        assert fig5_tree().height == 3

    def test_fig5_labels_are_identity(self):
        labeled = LabeledTree(fig5_tree())
        assert list(labeled.labels()) == list(range(16))

    def test_fig5_published_blocks(self):
        """The (i, j, k) values Tables 1-4 are computed from."""
        labeled = LabeledTree(fig5_tree())
        assert (labeled.block(0).i, labeled.block(0).j, labeled.block(0).k) == (0, 15, 0)
        assert (labeled.block(1).i, labeled.block(1).j, labeled.block(1).k) == (1, 3, 1)
        assert (labeled.block(4).i, labeled.block(4).j, labeled.block(4).k) == (4, 10, 1)
        assert (labeled.block(8).i, labeled.block(8).j, labeled.block(8).k) == (8, 10, 2)

    def test_fig5_parent_array_consistent(self):
        tree = fig5_tree()
        assert list(tree.parents()) == FIG5_PARENTS

    def test_fig4_contains_all_tree_edges(self):
        g = fig4_network()
        for parent, child in fig5_tree().edges():
            assert g.has_edge(parent, child)
