"""Unit tests for the fast-planner BFS primitives.

Covers the ``cutoff`` extension of :func:`bfs_levels`, the bit-parallel
:func:`bfs_levels_multi`, the vectorised
:func:`bfs_parents_from_levels`, and the batched
:func:`all_eccentricities` — each against its per-source reference.
"""

import numpy as np
import pytest

from repro.exceptions import DisconnectedGraphError, GraphError
from repro.networks import topologies
from repro.networks.bfs import (
    UNREACHED,
    all_eccentricities,
    all_eccentricities_reference,
    bfs_levels,
    bfs_levels_multi,
    bfs_parents_from_levels,
    bfs_tree,
    distance_matrix,
)
from repro.networks.graph import Graph
from repro.networks.random_graphs import random_connected_gnp


class TestCutoff:
    def test_cutoff_truncates_levels(self):
        g = topologies.path_graph(10)
        full = bfs_levels(g, 0)
        cut = bfs_levels(g, 0, cutoff=4)
        assert cut.tolist() == [0, 1, 2, 3, 4] + [UNREACHED] * 5
        assert (cut[cut != UNREACHED] == full[cut != UNREACHED]).all()

    def test_cutoff_zero_keeps_only_source(self):
        g = topologies.cycle_graph(6)
        cut = bfs_levels(g, 2, cutoff=0)
        assert cut[2] == 0
        assert (np.delete(cut, 2) == UNREACHED).all()

    def test_cutoff_at_or_beyond_eccentricity_is_a_noop(self):
        g = topologies.grid_2d(4, 4)
        full = bfs_levels(g, 5)
        ecc = int(full.max())
        assert (bfs_levels(g, 5, cutoff=ecc) == full).all()
        assert (bfs_levels(g, 5, cutoff=ecc + 3) == full).all()

    def test_negative_cutoff_rejected(self):
        with pytest.raises(GraphError):
            bfs_levels(topologies.path_graph(3), 0, cutoff=-1)


class TestBfsLevelsMulti:
    @pytest.mark.parametrize(
        "graph",
        [
            topologies.path_graph(9),
            topologies.cycle_graph(12),
            topologies.star_graph(8),
            topologies.grid_2d(5, 7),
            topologies.hypercube(5),
            random_connected_gnp(40, 0.1, seed=2),
        ],
        ids=lambda g: g.name,
    )
    def test_matches_per_source_reference(self, graph):
        dist = bfs_levels_multi(graph, range(graph.n))
        ref = np.stack([bfs_levels(graph, v) for v in range(graph.n)])
        assert (dist == ref).all()

    def test_more_than_64_sources_batches_correctly(self):
        g = random_connected_gnp(150, 0.05, seed=9)
        dist = bfs_levels_multi(g, range(g.n))
        ref = np.stack([bfs_levels(g, v) for v in range(g.n)])
        assert (dist == ref).all()

    def test_subset_and_repeated_sources(self):
        g = topologies.grid_2d(4, 4)
        sources = [3, 3, 0, 15]
        dist = bfs_levels_multi(g, sources)
        for row, s in zip(dist, sources):
            assert (row == bfs_levels(g, s)).all()

    def test_disconnected_marks_unreached(self):
        g = Graph(5, [(0, 1), (2, 3)])
        dist = bfs_levels_multi(g, [0, 2, 4])
        assert dist[0].tolist() == [0, 1, UNREACHED, UNREACHED, UNREACHED]
        assert dist[1].tolist() == [UNREACHED, UNREACHED, 0, 1, UNREACHED]
        assert dist[2].tolist() == [UNREACHED] * 4 + [0]

    def test_single_vertex_and_empty_sources(self):
        g = Graph(1, [])
        assert bfs_levels_multi(g, [0]).tolist() == [[0]]
        assert bfs_levels_multi(g, []).shape == (0, 1)

    def test_out_of_range_source_rejected(self):
        with pytest.raises(GraphError):
            bfs_levels_multi(topologies.path_graph(4), [0, 7])


class TestParentsFromLevels:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_bfs_tree(self, seed):
        g = random_connected_gnp(30, 0.12, seed=seed)
        for source in (0, g.n // 2, g.n - 1):
            dist, parent = bfs_tree(g, source)
            assert (bfs_parents_from_levels(g, dist) == parent).all()

    def test_root_and_unreached_get_minus_one(self):
        g = Graph(4, [(0, 1), (2, 3)])
        parent = bfs_parents_from_levels(g, bfs_levels(g, 0))
        assert parent.tolist() == [-1, 0, -1, -1]

    def test_single_vertex(self):
        g = Graph(1, [])
        assert bfs_parents_from_levels(g, np.array([0])).tolist() == [-1]

    def test_smallest_id_parent_chosen(self):
        # Vertex 3 is adjacent to both 1 and 2, both at level 1: the
        # canonical construction must pick 1.
        g = Graph(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        parent = bfs_parents_from_levels(g, bfs_levels(g, 0))
        assert parent.tolist() == [-1, 0, 0, 1]


class TestBatchedEccentricities:
    def test_matches_reference(self):
        g = random_connected_gnp(70, 0.08, seed=1)
        assert (all_eccentricities(g) == all_eccentricities_reference(g)).all()

    def test_disconnected_rejected_by_both(self):
        g = Graph(4, [(0, 1), (2, 3)])
        with pytest.raises(DisconnectedGraphError):
            all_eccentricities(g)
        with pytest.raises(DisconnectedGraphError):
            all_eccentricities_reference(g)

    def test_distance_matrix_uses_multi_path(self):
        g = topologies.de_bruijn(2, 4)
        ref = np.stack([bfs_levels(g, v) for v in range(g.n)])
        assert (distance_matrix(g) == ref).all()
