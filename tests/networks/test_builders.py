"""Unit tests for graph construction helpers and conversions."""

import networkx as nx
import pytest

from repro.exceptions import GraphError
from repro.networks import topologies
from repro.networks.builders import (
    from_adjacency,
    from_edges,
    from_networkx,
    graph_to_tree,
    to_networkx,
    tree_to_graph,
)
from repro.networks.graph import Graph
from repro.tree.tree import Tree


class TestFromEdges:
    def test_infer_n(self):
        g = from_edges([(0, 3), (1, 2)])
        assert g.n == 4

    def test_explicit_n_allows_isolated(self):
        g = from_edges([(0, 1)], n=4)
        assert g.n == 4
        assert g.degree(3) == 0

    def test_empty_needs_n(self):
        with pytest.raises(GraphError):
            from_edges([])


class TestFromAdjacency:
    def test_roundtrip(self):
        g = topologies.cycle_graph(5)
        assert from_adjacency(g.adjacency()) == g

    def test_one_directional_listing_ok(self):
        g = from_adjacency({0: [1], 1: [], 2: [1]})
        assert g.m == 2

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            from_adjacency({})


class TestNetworkx:
    def test_roundtrip(self):
        g = topologies.grid_2d(3, 3)
        back, mapping = from_networkx(to_networkx(g))
        assert back == g
        assert mapping == {v: v for v in range(9)}

    def test_relabels_arbitrary_nodes(self):
        nxg = nx.Graph()
        nxg.add_edges_from([("b", "a"), ("a", "c")])
        g, mapping = from_networkx(nxg)
        assert g.n == 3
        assert mapping == {"a": 0, "b": 1, "c": 2}
        assert g.degree(mapping["a"]) == 2

    def test_to_networkx_preserves_isolated(self):
        g = from_edges([(0, 1)], n=3)
        nxg = to_networkx(g)
        assert nxg.number_of_nodes() == 3


class TestTreeGraphConversion:
    def test_tree_to_graph(self):
        tree = Tree([-1, 0, 0, 1], root=0)
        g = tree_to_graph(tree)
        assert g.m == 3
        assert g.has_edge(0, 1) and g.has_edge(1, 3)

    def test_graph_to_tree_roundtrip(self):
        tree = Tree([-1, 0, 0, 1, 1], root=0)
        back = graph_to_tree(tree_to_graph(tree), root=0)
        assert back == tree

    def test_graph_to_tree_different_root(self):
        g = topologies.path_graph(4)
        tree = graph_to_tree(g, root=3)
        assert tree.root == 3
        assert tree.parent(0) == 1

    def test_graph_to_tree_rejects_cycle(self):
        with pytest.raises(GraphError):
            graph_to_tree(topologies.cycle_graph(4), root=0)

    def test_graph_to_tree_rejects_wrong_edge_count(self):
        with pytest.raises(GraphError, match="edges"):
            graph_to_tree(Graph(4, [(0, 1), (2, 3)]), root=0)

    def test_graph_to_tree_rejects_disconnected(self):
        # Triangle plus an isolated vertex: n - 1 edges yet not a tree.
        g = Graph(4, [(0, 1), (1, 2), (0, 2)])
        with pytest.raises(GraphError, match="disconnected"):
            graph_to_tree(g, root=0)
