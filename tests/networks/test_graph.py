"""Unit tests for the immutable Graph type."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.networks.graph import Graph


class TestConstruction:
    def test_basic(self):
        g = Graph(3, [(0, 1), (1, 2)])
        assert g.n == 3
        assert g.m == 2

    def test_single_vertex(self):
        g = Graph(1, [])
        assert g.n == 1
        assert g.m == 0
        assert g.neighbors(0) == ()

    def test_zero_vertices_rejected(self):
        with pytest.raises(GraphError):
            Graph(0, [])

    def test_negative_n_rejected(self):
        with pytest.raises(GraphError):
            Graph(-3, [])

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError, match="self-loop"):
            Graph(2, [(1, 1)])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(GraphError, match="duplicate"):
            Graph(3, [(0, 1), (1, 0)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(GraphError, match="out of range"):
            Graph(2, [(0, 2)])

    def test_malformed_edge_rejected(self):
        with pytest.raises(GraphError):
            Graph(3, [(0, 1, 2)])  # type: ignore[list-item]

    def test_edge_order_irrelevant(self):
        a = Graph(3, [(0, 1), (1, 2)])
        b = Graph(3, [(2, 1), (1, 0)])
        assert a == b


class TestAccessors:
    @pytest.fixture
    def triangle_plus(self):
        return Graph(4, [(0, 1), (1, 2), (0, 2), (2, 3)], name="tri+")

    def test_neighbors_sorted(self, triangle_plus):
        assert triangle_plus.neighbors(2) == (0, 1, 3)

    def test_degree(self, triangle_plus):
        assert triangle_plus.degree(2) == 3
        assert triangle_plus.degree(3) == 1

    def test_degrees_array(self, triangle_plus):
        assert triangle_plus.degrees().tolist() == [2, 2, 3, 1]

    def test_has_edge_symmetric(self, triangle_plus):
        assert triangle_plus.has_edge(0, 1)
        assert triangle_plus.has_edge(1, 0)
        assert not triangle_plus.has_edge(0, 3)

    def test_edges_sorted_canonical(self, triangle_plus):
        assert list(triangle_plus.edges()) == [(0, 1), (0, 2), (1, 2), (2, 3)]

    def test_adjacency_mapping(self, triangle_plus):
        adj = triangle_plus.adjacency()
        assert adj[3] == (2,)
        assert set(adj) == {0, 1, 2, 3}

    def test_vertices_range(self, triangle_plus):
        assert list(triangle_plus.vertices()) == [0, 1, 2, 3]

    def test_contains(self, triangle_plus):
        assert 3 in triangle_plus
        assert 4 not in triangle_plus
        assert "x" not in triangle_plus

    def test_len(self, triangle_plus):
        assert len(triangle_plus) == 4

    def test_name(self, triangle_plus):
        assert triangle_plus.name == "tri+"
        assert "tri+" in repr(triangle_plus)

    def test_neighbor_out_of_range(self, triangle_plus):
        with pytest.raises(GraphError):
            triangle_plus.neighbors(4)


class TestCSR:
    def test_indptr_shape_and_monotone(self):
        g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
        assert g.indptr.shape == (6,)
        assert (np.diff(g.indptr) >= 0).all()
        assert g.indptr[-1] == 2 * g.m

    def test_indices_match_adjacency(self):
        g = Graph(4, [(0, 1), (0, 2), (2, 3)])
        for v in range(4):
            segment = g.indices[g.indptr[v] : g.indptr[v + 1]]
            assert tuple(segment) == g.neighbors(v)

    def test_csr_views_readonly(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(ValueError):
            g.indptr[0] = 5
        with pytest.raises(ValueError):
            g.indices[0] = 5


class TestDerived:
    def test_with_name(self):
        g = Graph(3, [(0, 1)]).with_name("renamed")
        assert g.name == "renamed"
        assert g.m == 1

    def test_add_edges(self):
        g = Graph(3, [(0, 1)]).add_edges([(1, 2)])
        assert g.has_edge(1, 2)
        assert g.m == 2

    def test_add_duplicate_edge_rejected(self):
        with pytest.raises(GraphError):
            Graph(3, [(0, 1)]).add_edges([(1, 0)])

    def test_remove_edges(self):
        g = Graph(3, [(0, 1), (1, 2)]).remove_edges([(1, 2)])
        assert not g.has_edge(1, 2)
        assert g.m == 1

    def test_remove_absent_edge_rejected(self):
        with pytest.raises(GraphError, match="absent"):
            Graph(3, [(0, 1)]).remove_edges([(0, 2)])

    def test_relabeled(self):
        g = Graph(3, [(0, 1), (1, 2)]).relabeled([2, 1, 0])
        assert g.has_edge(2, 1)
        assert g.has_edge(1, 0)
        assert not g.has_edge(0, 2)

    def test_relabeled_rejects_non_permutation(self):
        with pytest.raises(GraphError):
            Graph(3, [(0, 1)]).relabeled([0, 0, 1])


class TestEqualityHash:
    def test_equal_graphs_equal_hash(self):
        a = Graph(3, [(0, 1), (1, 2)])
        b = Graph(3, [(1, 2), (0, 1)])
        assert a == b
        assert hash(a) == hash(b)

    def test_name_not_part_of_identity(self):
        a = Graph(2, [(0, 1)], name="x")
        b = Graph(2, [(0, 1)], name="y")
        assert a == b

    def test_different_n_not_equal(self):
        assert Graph(2, [(0, 1)]) != Graph(3, [(0, 1)])

    def test_not_equal_other_type(self):
        assert Graph(2, [(0, 1)]) != "graph"

    def test_usable_in_sets(self):
        s = {Graph(2, [(0, 1)]), Graph(2, [(0, 1)])}
        assert len(s) == 1
