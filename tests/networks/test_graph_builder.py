"""Unit tests for GraphBuilder."""

import pytest

from repro.exceptions import GraphError
from repro.networks.graph import Graph, GraphBuilder


class TestGraphBuilder:
    def test_add_edge_idempotent(self):
        b = GraphBuilder(3)
        b.add_edge(0, 1).add_edge(1, 0).add_edge(0, 1)
        assert b.m == 1
        assert b.build().m == 1

    def test_rejects_self_loop(self):
        with pytest.raises(GraphError):
            GraphBuilder(2).add_edge(1, 1)

    def test_rejects_out_of_range(self):
        with pytest.raises(GraphError):
            GraphBuilder(2).add_edge(0, 2)

    def test_rejects_empty(self):
        with pytest.raises(GraphError):
            GraphBuilder(0)

    def test_add_path(self):
        g = GraphBuilder(4).add_path([0, 1, 2, 3]).build()
        assert g.edge_list() == [(0, 1), (1, 2), (2, 3)]

    def test_add_path_single_vertex_noop(self):
        g = GraphBuilder(2).add_path([0]).add_edge(0, 1).build()
        assert g.m == 1

    def test_add_cycle(self):
        g = GraphBuilder(4).add_cycle([0, 1, 2, 3]).build()
        assert g.m == 4
        assert g.has_edge(3, 0)

    def test_add_cycle_of_two_is_one_edge(self):
        # Degenerate cycles must not create duplicate or self edges.
        g = GraphBuilder(2).add_cycle([0, 1]).build()
        assert g.m == 1

    def test_add_clique(self):
        g = GraphBuilder(5).add_clique([0, 2, 4]).build()
        assert g.m == 3
        assert g.has_edge(0, 4)
        assert not g.has_edge(0, 1)

    def test_has_edge(self):
        b = GraphBuilder(3).add_edge(2, 1)
        assert b.has_edge(1, 2)
        assert not b.has_edge(0, 1)

    def test_build_name_override(self):
        g = GraphBuilder(2, name="a").add_edge(0, 1).build(name="b")
        assert g.name == "b"

    def test_build_keeps_default_name(self):
        g = GraphBuilder(2, name="a").add_edge(0, 1).build()
        assert g.name == "a"

    def test_builder_repr(self):
        assert "n=3" in repr(GraphBuilder(3))

    def test_build_equals_direct_construction(self):
        b = GraphBuilder(4).add_path([0, 1, 2, 3])
        assert b.build() == Graph(4, [(0, 1), (1, 2), (2, 3)])
