"""Unit tests for BFS primitives, cross-checked against the reference
implementation and networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.exceptions import DisconnectedGraphError, GraphError
from repro.networks import topologies
from repro.networks.bfs import (
    UNREACHED,
    all_eccentricities,
    bfs_levels,
    bfs_levels_reference,
    bfs_tree,
    connected_components,
    distance_matrix,
    eccentricity,
    is_connected,
    require_connected,
    shortest_path,
)
from repro.networks.builders import to_networkx
from repro.networks.graph import Graph
from repro.networks.random_graphs import random_connected_gnp


class TestBfsLevels:
    def test_path_distances(self):
        g = topologies.path_graph(6)
        assert bfs_levels(g, 0).tolist() == [0, 1, 2, 3, 4, 5]
        assert bfs_levels(g, 3).tolist() == [3, 2, 1, 0, 1, 2]

    def test_cycle_distances(self):
        g = topologies.cycle_graph(6)
        assert bfs_levels(g, 0).tolist() == [0, 1, 2, 3, 2, 1]

    def test_single_vertex(self):
        g = Graph(1, [])
        assert bfs_levels(g, 0).tolist() == [0]

    def test_disconnected_marks_unreached(self):
        g = Graph(4, [(0, 1), (2, 3)])
        dist = bfs_levels(g, 0)
        assert dist[1] == 1
        assert dist[2] == UNREACHED
        assert dist[3] == UNREACHED

    def test_source_out_of_range(self):
        with pytest.raises(GraphError):
            bfs_levels(Graph(2, [(0, 1)]), 5)

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_reference(self, seed):
        g = random_connected_gnp(30, 0.1, seed)
        for source in (0, 7, 29):
            assert bfs_levels(g, source).tolist() == bfs_levels_reference(g, source)

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_networkx(self, seed):
        g = random_connected_gnp(25, 0.12, seed)
        nxg = to_networkx(g)
        lengths = nx.single_source_shortest_path_length(nxg, 0)
        assert bfs_levels(g, 0).tolist() == [lengths[v] for v in range(g.n)]


class TestBfsTree:
    def test_parent_is_smallest_id(self):
        # Vertex 3 is adjacent to both 1 and 2 at distance 1 from 0.
        g = Graph(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        _, parent = bfs_tree(g, 0)
        assert parent[3] == 1

    def test_root_parent_is_minus_one(self):
        g = topologies.path_graph(4)
        _, parent = bfs_tree(g, 2)
        assert parent[2] == -1

    def test_parents_consistent_with_distances(self):
        g = random_connected_gnp(20, 0.15, seed=1)
        dist, parent = bfs_tree(g, 5)
        for v in range(g.n):
            if v == 5:
                continue
            assert dist[parent[v]] == dist[v] - 1
            assert g.has_edge(v, int(parent[v]))


class TestEccentricityRadius:
    def test_path_eccentricities(self):
        g = topologies.path_graph(5)
        assert all_eccentricities(g).tolist() == [4, 3, 2, 3, 4]

    def test_eccentricity_single(self):
        assert eccentricity(topologies.path_graph(5), 2) == 2

    def test_eccentricity_disconnected(self):
        with pytest.raises(DisconnectedGraphError):
            eccentricity(Graph(3, [(0, 1)]), 0)

    def test_all_eccentricities_disconnected(self):
        with pytest.raises(DisconnectedGraphError):
            all_eccentricities(Graph(3, [(0, 1)]))

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_networkx_eccentricity(self, seed):
        g = random_connected_gnp(18, 0.2, seed)
        expected = nx.eccentricity(to_networkx(g))
        assert all_eccentricities(g).tolist() == [expected[v] for v in range(g.n)]


class TestDistanceMatrix:
    def test_symmetric(self):
        g = random_connected_gnp(15, 0.2, seed=2)
        d = distance_matrix(g)
        assert (d == d.T).all()
        assert (np.diag(d) == 0).all()

    def test_triangle_inequality(self):
        g = random_connected_gnp(12, 0.2, seed=3)
        d = distance_matrix(g)
        for i in range(g.n):
            for j in range(g.n):
                for k in range(g.n):
                    assert d[i, j] <= d[i, k] + d[k, j]


class TestConnectivity:
    def test_connected(self):
        assert is_connected(topologies.cycle_graph(5))

    def test_disconnected(self):
        assert not is_connected(Graph(4, [(0, 1), (2, 3)]))

    def test_require_connected_raises(self):
        with pytest.raises(DisconnectedGraphError, match="gossip"):
            require_connected(Graph(3, []), "gossip")

    def test_components(self):
        comps = connected_components(Graph(5, [(0, 1), (2, 3)]))
        assert comps == [[0, 1], [2, 3], [4]]

    def test_components_connected_graph(self):
        assert connected_components(topologies.star_graph(4)) == [[0, 1, 2, 3]]


class TestShortestPath:
    def test_path_endpoints(self):
        g = topologies.cycle_graph(8)
        p = shortest_path(g, 0, 3)
        assert p is not None
        assert p[0] == 0 and p[-1] == 3
        assert len(p) == 4  # 3 edges

    def test_path_edges_exist(self):
        g = random_connected_gnp(20, 0.12, seed=5)
        p = shortest_path(g, 0, 19)
        assert p is not None
        for u, v in zip(p, p[1:]):
            assert g.has_edge(u, v)

    def test_unreachable_returns_none(self):
        assert shortest_path(Graph(3, [(0, 1)]), 0, 2) is None

    def test_trivial_path(self):
        assert shortest_path(topologies.path_graph(3), 1, 1) == [1]
