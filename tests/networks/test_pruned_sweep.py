"""Property tests: the pruned sweep is bit-identical to the O(mn) sweep.

The fast planner's acceptance bar (ISSUE 3): on every topology family in
:data:`repro.analysis.sweep.FAMILIES`, ``center_sweep(method="pruned")``
must return the same root, the same eccentricity, and the same parent
array as the exhaustive reference — and the tree built from the sweep's
parents must exactly equal the tree the old two-step
``bfs_spanning_tree(graph, best_root(graph))`` path produced.
"""

import numpy as np
import pytest

from repro.analysis.sweep import FAMILIES, family_instance
from repro.exceptions import DisconnectedGraphError, ReproError
from repro.networks import topologies
from repro.networks.graph import Graph
from repro.networks.properties import radius
from repro.networks.random_graphs import random_connected_gnp
from repro.networks.spanning_tree import (
    CenterSweep,
    SWEEP_METHODS,
    best_root,
    bfs_spanning_tree,
    center_sweep,
    minimum_depth_spanning_tree,
)

#: Keeps every family quick while still crossing the 64-lane batch
#: boundary and the sequential-phase budget inside the pruned sweep.
FAMILY_SIZE = 96


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_pruned_matches_exhaustive_on_every_family(family):
    graph = family_instance(family, FAMILY_SIZE)
    fast = center_sweep(graph, method="pruned")
    slow = center_sweep(graph, method="exhaustive")
    assert fast.root == slow.root
    assert fast.eccentricity == slow.eccentricity
    assert (fast.parents == slow.parents).all()


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_tree_equals_old_two_step_construction(family):
    """Exact-equality regression: reusing the winning sweep's parent
    array must reproduce the old ``bfs_spanning_tree(g, best_root(g))``
    result, not merely an equally-shallow tree."""
    graph = family_instance(family, FAMILY_SIZE)
    new_tree = minimum_depth_spanning_tree(graph)
    old_tree = bfs_spanning_tree(graph, best_root(graph))
    assert new_tree == old_tree
    assert new_tree.root == old_tree.root
    assert new_tree.parents() == old_tree.parents()
    for v in range(graph.n):
        assert new_tree.children(v) == old_tree.children(v)


@pytest.mark.parametrize("seed", range(6))
def test_pruned_matches_exhaustive_on_random_graphs(seed):
    graph = random_connected_gnp(80, 0.05, seed=seed)
    fast = center_sweep(graph, method="pruned")
    slow = center_sweep(graph, method="exhaustive")
    assert (fast.root, fast.eccentricity) == (slow.root, slow.eccentricity)
    assert (fast.parents == slow.parents).all()


class TestCenterSweepApi:
    def test_returns_center_and_radius(self):
        g = topologies.path_graph(11)
        sweep = center_sweep(g)
        assert isinstance(sweep, CenterSweep)
        assert sweep.root == 5
        assert sweep.eccentricity == radius(g) == 5
        assert sweep.parents[sweep.root] == -1

    def test_both_methods_exported(self):
        assert SWEEP_METHODS == ("pruned", "exhaustive")
        g = topologies.cycle_graph(9)
        for method in SWEEP_METHODS:
            assert center_sweep(g, method=method).eccentricity == 4

    def test_unknown_method_rejected(self):
        with pytest.raises(ReproError, match="unknown sweep method"):
            center_sweep(topologies.path_graph(4), method="magic")
        with pytest.raises(ReproError, match="unknown sweep method"):
            minimum_depth_spanning_tree(
                topologies.path_graph(4), method="magic"
            )

    def test_disconnected_rejected(self):
        g = Graph(4, [(0, 1), (2, 3)])
        for method in SWEEP_METHODS:
            with pytest.raises(DisconnectedGraphError):
                center_sweep(g, method=method)

    def test_single_vertex(self):
        sweep = center_sweep(Graph(1, []))
        assert sweep.root == 0
        assert sweep.eccentricity == 0
        assert sweep.parents.tolist() == [-1]

    def test_root_selector_fallback_still_honoured(self):
        g = topologies.path_graph(9)
        tree = minimum_depth_spanning_tree(g, root_selector=lambda _: 0)
        assert tree.root == 0
        assert tree.height == 8

    def test_tree_height_is_radius(self):
        g = random_connected_gnp(60, 0.07, seed=3)
        assert minimum_depth_spanning_tree(g).height == radius(g)
