"""Unit tests for the deterministic topology generators."""

import pytest

from repro.exceptions import GraphError
from repro.networks import topologies as T
from repro.networks.bfs import is_connected
from repro.networks.properties import diameter, radius


class TestPathCycleStar:
    def test_path(self):
        g = T.path_graph(5)
        assert (g.n, g.m) == (5, 4)
        assert g.degree(0) == 1 and g.degree(2) == 2

    def test_cycle(self):
        g = T.cycle_graph(6)
        assert (g.n, g.m) == (6, 6)
        assert all(g.degree(v) == 2 for v in range(6))

    def test_cycle_too_small(self):
        with pytest.raises(GraphError):
            T.cycle_graph(2)

    def test_star(self):
        g = T.star_graph(7)
        assert g.degree(0) == 6
        assert all(g.degree(v) == 1 for v in range(1, 7))

    def test_star_too_small(self):
        with pytest.raises(GraphError):
            T.star_graph(1)


class TestCompleteBipartite:
    def test_complete(self):
        g = T.complete_graph(5)
        assert g.m == 10
        assert radius(g) == 1

    def test_complete_bipartite(self):
        g = T.complete_bipartite(2, 3)
        assert (g.n, g.m) == (5, 6)
        assert not g.has_edge(0, 1)
        assert g.has_edge(0, 2)

    def test_bipartite_validation(self):
        with pytest.raises(GraphError):
            T.complete_bipartite(0, 3)


class TestGridTorus:
    def test_grid_counts(self):
        g = T.grid_2d(3, 4)
        assert (g.n, g.m) == (12, 17)

    def test_grid_corner_degree(self):
        g = T.grid_2d(3, 3)
        assert g.degree(0) == 2
        assert g.degree(4) == 4  # center

    def test_grid_1xn_is_path(self):
        assert T.grid_2d(1, 5) == T.path_graph(5)

    def test_torus_regular(self):
        g = T.torus_2d(3, 4)
        assert all(g.degree(v) == 4 for v in range(12))
        assert g.m == 24

    def test_torus_too_small(self):
        with pytest.raises(GraphError):
            T.torus_2d(2, 4)

    def test_torus_diameter(self):
        assert diameter(T.torus_2d(4, 4)) == 4


class TestHypercube:
    @pytest.mark.parametrize("dim", [1, 2, 3, 4, 5])
    def test_counts_and_regularity(self, dim):
        g = T.hypercube(dim)
        assert g.n == 2**dim
        assert g.m == dim * 2 ** (dim - 1)
        assert all(g.degree(v) == dim for v in range(g.n))

    def test_diameter_is_dim(self):
        assert diameter(T.hypercube(4)) == 4
        assert radius(T.hypercube(4)) == 4

    def test_invalid_dim(self):
        with pytest.raises(GraphError):
            T.hypercube(0)


class TestTrees:
    def test_kary_tree_counts(self):
        g = T.kary_tree(3, 2)
        assert g.n == 1 + 3 + 9
        assert g.m == g.n - 1

    def test_binary_tree(self):
        g = T.binary_tree(3)
        assert g.n == 15
        assert g.degree(0) == 2

    def test_kary_height_zero(self):
        g = T.kary_tree(4, 0)
        assert (g.n, g.m) == (1, 0)

    def test_caterpillar(self):
        g = T.caterpillar(4, 2)
        assert g.n == 12
        assert g.m == 11
        assert is_connected(g)

    def test_spider(self):
        g = T.spider(3, 4)
        assert g.n == 13
        assert g.degree(0) == 3
        assert radius(g) == 4

    def test_broom(self):
        g = T.broom(4, 3)
        assert g.n == 7
        assert g.degree(3) == 4

    def test_tree_families_connected_and_acyclic(self):
        for g in [T.kary_tree(2, 4), T.caterpillar(6, 1), T.spider(5, 2), T.broom(5, 5)]:
            assert is_connected(g)
            assert g.m == g.n - 1


class TestDenseShapes:
    def test_wheel(self):
        g = T.wheel(7)
        assert g.degree(0) == 6
        assert all(g.degree(v) == 3 for v in range(1, 7))
        assert radius(g) == 1

    def test_wheel_too_small(self):
        with pytest.raises(GraphError):
            T.wheel(3)

    def test_barbell(self):
        g = T.barbell(4, 2)
        assert g.n == 10
        assert is_connected(g)
        # two K4's plus the bridge path
        assert g.m == 6 + 6 + 3

    def test_lollipop(self):
        g = T.lollipop(5, 3)
        assert g.n == 8
        assert g.m == 10 + 3
        assert is_connected(g)

    def test_double_star(self):
        g = T.double_star(3, 2)
        assert g.n == 7
        assert g.degree(0) == 4
        assert g.degree(1) == 3

    def test_friendship(self):
        g = T.friendship(3)
        assert g.n == 7
        assert g.degree(0) == 6
        assert radius(g) == 1


class TestFancyNetworks:
    def test_de_bruijn(self):
        g = T.de_bruijn(2, 3)
        assert g.n == 8
        assert is_connected(g)

    def test_de_bruijn_validation(self):
        with pytest.raises(GraphError):
            T.de_bruijn(1, 3)

    def test_ccc(self):
        g = T.cube_connected_cycles(3)
        assert g.n == 24
        assert all(g.degree(v) == 3 for v in range(g.n))
        assert is_connected(g)

    def test_butterfly(self):
        g = T.butterfly(2)
        assert g.n == 12
        assert is_connected(g)

    def test_butterfly_validation(self):
        with pytest.raises(GraphError):
            T.butterfly(0)


class TestNames:
    def test_all_generators_name_their_graphs(self):
        graphs = [
            T.path_graph(4),
            T.cycle_graph(4),
            T.star_graph(4),
            T.complete_graph(4),
            T.grid_2d(2, 2),
            T.torus_2d(3, 3),
            T.hypercube(2),
            T.kary_tree(2, 2),
            T.caterpillar(3, 1),
            T.spider(2, 2),
            T.broom(3, 2),
            T.wheel(5),
            T.barbell(3, 1),
            T.lollipop(3, 2),
            T.de_bruijn(2, 2),
            T.cube_connected_cycles(3),
            T.butterfly(1),
            T.double_star(1, 1),
            T.friendship(2),
        ]
        for g in graphs:
            assert g.name, f"generator produced unnamed graph: {g!r}"
