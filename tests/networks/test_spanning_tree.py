"""Unit tests for minimum-depth spanning tree construction (Section 3.1)."""

import pytest

from repro.exceptions import DisconnectedGraphError
from repro.networks import topologies
from repro.networks.graph import Graph
from repro.networks.properties import radius
from repro.networks.random_graphs import random_connected_gnp
from repro.networks.spanning_tree import (
    approximate_min_depth_tree,
    best_root,
    bfs_spanning_tree,
    minimum_depth_spanning_tree,
    tree_height_profile,
)


def assert_is_spanning_tree(tree, graph):
    """Every tree edge is a graph edge and the tree spans all vertices."""
    assert tree.n == graph.n
    for parent, child in tree.edges():
        assert graph.has_edge(parent, child)
    assert len(tree.edges()) == graph.n - 1


class TestBfsSpanningTree:
    def test_height_equals_root_eccentricity(self):
        g = topologies.path_graph(9)
        assert bfs_spanning_tree(g, 0).height == 8
        assert bfs_spanning_tree(g, 4).height == 4

    def test_spans(self):
        g = random_connected_gnp(20, 0.15, seed=0)
        assert_is_spanning_tree(bfs_spanning_tree(g, 3), g)

    def test_disconnected_rejected(self):
        with pytest.raises(DisconnectedGraphError):
            bfs_spanning_tree(Graph(3, [(0, 1)]), 0)

    def test_deterministic(self):
        g = random_connected_gnp(15, 0.2, seed=1)
        assert bfs_spanning_tree(g, 2) == bfs_spanning_tree(g, 2)


class TestMinimumDepth:
    @pytest.mark.parametrize(
        "graph",
        [
            topologies.path_graph(11),
            topologies.cycle_graph(10),
            topologies.grid_2d(4, 4),
            topologies.star_graph(9),
            topologies.hypercube(3),
        ],
        ids=lambda g: g.name,
    )
    def test_height_equals_radius(self, graph):
        """The defining property of Section 3.1's construction."""
        tree = minimum_depth_spanning_tree(graph)
        assert tree.height == radius(graph)

    @pytest.mark.parametrize("seed", range(6))
    def test_height_equals_radius_random(self, seed):
        g = random_connected_gnp(25, 0.12, seed)
        tree = minimum_depth_spanning_tree(g)
        assert tree.height == radius(g)
        assert_is_spanning_tree(tree, g)

    def test_root_is_smallest_center(self):
        g = topologies.path_graph(8)  # centers {3, 4}
        assert best_root(g) == 3
        assert minimum_depth_spanning_tree(g).root == 3

    def test_custom_root_selector(self):
        g = topologies.path_graph(9)
        tree = minimum_depth_spanning_tree(g, root_selector=lambda graph: 0)
        assert tree.root == 0
        assert tree.height == 8  # eccentricity of the chosen root

    def test_single_vertex(self):
        tree = minimum_depth_spanning_tree(Graph(1, []))
        assert tree.n == 1
        assert tree.height == 0

    def test_disconnected_rejected(self):
        with pytest.raises(DisconnectedGraphError):
            minimum_depth_spanning_tree(Graph(4, [(0, 1), (2, 3)]))


class TestApproximateTree:
    @pytest.mark.parametrize("seed", range(5))
    def test_within_factor_two(self, seed):
        g = random_connected_gnp(30, 0.1, seed)
        tree = approximate_min_depth_tree(g)
        assert tree.height <= 2 * radius(g)
        assert_is_spanning_tree(tree, g)

    def test_exact_on_path(self):
        # The midpoint of the two far endpoints IS the center of a path.
        g = topologies.path_graph(13)
        assert approximate_min_depth_tree(g).height == radius(g)

    def test_disconnected_rejected(self):
        with pytest.raises(DisconnectedGraphError):
            approximate_min_depth_tree(Graph(3, [(0, 1)]))


class TestHeightProfile:
    def test_profile_matches_eccentricities(self):
        from repro.networks.bfs import all_eccentricities

        g = random_connected_gnp(15, 0.15, seed=4)
        assert tree_height_profile(g).tolist() == all_eccentricities(g).tolist()

    def test_profile_min_is_radius(self):
        g = topologies.grid_2d(3, 5)
        assert int(tree_height_profile(g).min()) == radius(g)
