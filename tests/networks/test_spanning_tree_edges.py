"""Tests for the small spanning-tree helpers not covered elsewhere."""

from repro.networks import topologies
from repro.networks.spanning_tree import (
    minimum_depth_spanning_tree,
    spanning_tree_edges,
)


class TestSpanningTreeEdges:
    def test_edge_count(self):
        tree = minimum_depth_spanning_tree(topologies.grid_2d(3, 3))
        assert len(spanning_tree_edges(tree)) == tree.n - 1

    def test_edges_are_parent_child(self):
        tree = minimum_depth_spanning_tree(topologies.cycle_graph(7))
        for parent, child in spanning_tree_edges(tree):
            assert tree.parent(child) == parent

    def test_sorted_by_child(self):
        tree = minimum_depth_spanning_tree(topologies.star_graph(6))
        children = [child for _, child in spanning_tree_edges(tree)]
        assert children == sorted(children)

    def test_single_vertex(self):
        from repro.networks.graph import Graph

        tree = minimum_depth_spanning_tree(Graph(1, []))
        assert spanning_tree_edges(tree) == []
