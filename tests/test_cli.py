"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_gossip_defaults(self):
        args = build_parser().parse_args(["gossip"])
        assert args.topology == "grid"
        assert args.algorithm == "concurrent-updown"

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["gossip", "--algorithm", "nope"])

    def test_rejects_unknown_topology(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["gossip", "--topology", "nope"])


class TestCommands:
    def test_gossip(self, capsys):
        assert main(["gossip", "--topology", "cycle", "--n", "8"]) == 0
        out = capsys.readouterr().out
        assert "total time: 12" in out
        assert "complete  : True" in out

    def test_gossip_show_tree_and_schedule(self, capsys):
        assert main(
            ["gossip", "--topology", "star", "--n", "5", "--show-tree", "--show-schedule"]
        ) == 0
        out = capsys.readouterr().out
        assert "└── " in out
        assert "t=  0:" in out

    def test_gossip_alternative_algorithm(self, capsys):
        assert main(["gossip", "--topology", "path", "--n", "7", "--algorithm", "simple"]) == 0
        out = capsys.readouterr().out
        assert "simple" in out

    def test_tables_default(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        for title in ("Table 1", "Table 2", "Table 3", "Table 4"):
            assert title in out

    def test_tables_specific_vertex(self, capsys):
        assert main(["tables", "--vertex", "5"]) == 0
        out = capsys.readouterr().out
        assert "vertex with message 5" in out

    def test_compare(self, capsys):
        assert main(["compare", "--sizes", "8", "--families", "path", "star"]) == 0
        out = capsys.readouterr().out
        assert "path-8" in out
        assert "concurrent-updown" in out

    def test_paper(self, capsys):
        assert main(["paper"]) == 0
        out = capsys.readouterr().out
        assert out.count("OK") == 5

    def test_broadcast(self, capsys):
        assert main(["broadcast", "--topology", "star", "--n", "16"]) == 0
        out = capsys.readouterr().out
        assert "multicast: 1 rounds" in out
        assert "telephone: 15 rounds" in out

    def test_weighted(self, capsys):
        assert main(["weighted", "--topology", "path", "--n", "8"]) == 0
        out = capsys.readouterr().out
        assert "complete=True" in out
        assert "N + r'" in out

    def test_online(self, capsys):
        assert main(["online", "--topology", "grid", "--n", "9"]) == 0
        out = capsys.readouterr().out
        assert "schedules identical: True" in out

    def test_repeated(self, capsys):
        assert main(["repeated", "--topology", "star", "--n", "8",
                     "--instances", "3"]) == 0
        out = capsys.readouterr().out
        assert "complete : True" in out

    def test_bounds(self, capsys):
        assert main(["bounds", "--sizes", "12", "--families", "path", "star"]) == 0
        out = capsys.readouterr().out
        assert "all bounds hold exactly" in out
        assert "path-12" in out


class TestSweepTimeouts:
    def test_chaos_timeout_fails_fast(self, capsys):
        assert main(["chaos", "--family", "path:8", "--trials", "50",
                     "--timeout", "0.000001"]) == 1
        out = capsys.readouterr().out
        assert out.startswith("TIMEOUT:")
        assert "deadline" in out

    def test_survive_timeout_fails_fast(self, capsys):
        assert main(["survive", "--family", "path:8", "--trials", "50",
                     "--timeout", "0.000001"]) == 1
        out = capsys.readouterr().out
        assert out.startswith("TIMEOUT:")

    def test_chaos_without_timeout_still_runs(self, capsys):
        assert main(["chaos", "--family", "path:6", "--trials", "2",
                     "--drop", "0.0"]) == 0
        assert "chaos sweep" in capsys.readouterr().out


class TestRunNet:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["run-net"])
        assert args.family == "grid:16"
        assert args.timeout == 60.0
        assert args.time_scale == 1.0

    def test_fault_free_check_passes(self, capsys):
        assert main(["run-net", "--family", "path:5", "--check"]) == 0
        out = capsys.readouterr().out
        assert "transcript: identical to offline schedule" in out
        assert "check: full (degraded) coverage and offline-exact transcript  OK" in out

    def test_kill_run_reaches_degraded_coverage(self, capsys):
        assert main(["run-net", "--family", "grid:9", "--kill", "4:2",
                     "--seed", "11", "--time-scale", "0.2", "--check"]) == 0
        out = capsys.readouterr().out
        assert "coverage=100.0%" in out
        assert "dead=[4]" in out
        assert "survival" in out

    def test_bad_kill_spec_rejected(self, capsys):
        assert main(["run-net", "--kill", "nope"]) == 2
        assert "bad --kill spec" in capsys.readouterr().out
