"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_gossip_defaults(self):
        args = build_parser().parse_args(["gossip"])
        assert args.topology == "grid"
        assert args.algorithm == "concurrent-updown"

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["gossip", "--algorithm", "nope"])

    def test_rejects_unknown_topology(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["gossip", "--topology", "nope"])


class TestCommands:
    def test_gossip(self, capsys):
        assert main(["gossip", "--topology", "cycle", "--n", "8"]) == 0
        out = capsys.readouterr().out
        assert "total time: 12" in out
        assert "complete  : True" in out

    def test_gossip_show_tree_and_schedule(self, capsys):
        assert main(
            ["gossip", "--topology", "star", "--n", "5", "--show-tree", "--show-schedule"]
        ) == 0
        out = capsys.readouterr().out
        assert "└── " in out
        assert "t=  0:" in out

    def test_gossip_alternative_algorithm(self, capsys):
        assert main(["gossip", "--topology", "path", "--n", "7", "--algorithm", "simple"]) == 0
        out = capsys.readouterr().out
        assert "simple" in out

    def test_tables_default(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        for title in ("Table 1", "Table 2", "Table 3", "Table 4"):
            assert title in out

    def test_tables_specific_vertex(self, capsys):
        assert main(["tables", "--vertex", "5"]) == 0
        out = capsys.readouterr().out
        assert "vertex with message 5" in out

    def test_compare(self, capsys):
        assert main(["compare", "--sizes", "8", "--families", "path", "star"]) == 0
        out = capsys.readouterr().out
        assert "path-8" in out
        assert "concurrent-updown" in out

    def test_paper(self, capsys):
        assert main(["paper"]) == 0
        out = capsys.readouterr().out
        assert out.count("OK") == 5

    def test_broadcast(self, capsys):
        assert main(["broadcast", "--topology", "star", "--n", "16"]) == 0
        out = capsys.readouterr().out
        assert "multicast: 1 rounds" in out
        assert "telephone: 15 rounds" in out

    def test_weighted(self, capsys):
        assert main(["weighted", "--topology", "path", "--n", "8"]) == 0
        out = capsys.readouterr().out
        assert "complete=True" in out
        assert "N + r'" in out

    def test_online(self, capsys):
        assert main(["online", "--topology", "grid", "--n", "9"]) == 0
        out = capsys.readouterr().out
        assert "schedules identical: True" in out

    def test_repeated(self, capsys):
        assert main(["repeated", "--topology", "star", "--n", "8",
                     "--instances", "3"]) == 0
        out = capsys.readouterr().out
        assert "complete : True" in out

    def test_bounds(self, capsys):
        assert main(["bounds", "--sizes", "12", "--families", "path", "star"]) == 0
        out = capsys.readouterr().out
        assert "all bounds hold exactly" in out
        assert "path-12" in out
