"""Tier-1 smoke: the planner benchmark's ``--check`` gates hold.

Runs ``benchmarks/bench_planner.py --check --quick`` and
``python -m repro.cli plan-bench --check`` the same way CI does
(standalone processes), asserting the bit-identical-tree, >= 3x
``grid:400`` speedup, and <= ``COLD_MAX_RATIO``x cold-plan gates plus
the all-families schedule-identity sweep and the ``BENCH_planner.json``
trajectory artefact (including its ``cold_gate`` block), and exercises
:func:`repro.analysis.planner_bench.run_planner_bench` in-process for
coverage of both entry points.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.planner_bench import (
    COLD_MAX_RATIO,
    GATE_MIN_N,
    MIN_SPEEDUP,
    run_planner_bench,
)
from repro.exceptions import ReproError

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
BENCH = REPO_ROOT / "benchmarks" / "bench_planner.py"
ARTIFACT = REPO_ROOT / "BENCH_planner.json"

CHECK_OK = (
    "check: bit-identical trees, identical schedules, and "
    "planner speedup + cold-plan gates hold  OK"
)


def _run(cmd):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        cmd,
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
        cwd=str(REPO_ROOT),
    )


def test_benchmark_check_mode_passes_and_writes_artifact():
    proc = _run([sys.executable, str(BENCH), "--check", "--quick"])
    assert proc.returncode == 0, (
        f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    )
    assert CHECK_OK in proc.stdout
    assert ARTIFACT.exists()
    payload = json.loads(ARTIFACT.read_text())
    assert payload["benchmark"] == "planner"
    assert payload["gate"]["min_speedup"] == MIN_SPEEDUP
    cold_gate = payload["cold_gate"]
    assert cold_gate["max_ratio"] == COLD_MAX_RATIO
    assert cold_gate["measured"], "no gated cell recorded a cold ratio"
    assert all(r > 0 for r in cold_gate["measured"].values())
    enforced = cold_gate["enforced"]
    assert enforced, "no cell enforces the cold-plan ratio gate"
    assert all(
        cold_gate["measured"][spec] <= COLD_MAX_RATIO for spec in enforced
    )
    assert cold_gate["schedule_identity"]["families"] >= 21
    assert cold_gate["schedule_identity"]["identical"] is True
    cells = payload["cells"]
    assert any(c["gated"] for c in cells)
    assert all(c["identical"] for c in cells)
    assert all(c["cold_ratio"] > 0 for c in cells)


def test_cli_plan_bench_check_passes(tmp_path):
    artefact = tmp_path / "BENCH_planner.json"
    proc = _run([
        sys.executable, "-m", "repro.cli", "plan-bench",
        "--spec", "grid:400", "--spec", "path:128",
        "--repeats", "1", "--check", "--json", str(artefact),
    ])
    assert proc.returncode == 0, (
        f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    )
    assert CHECK_OK in proc.stdout
    payload = json.loads(artefact.read_text())
    assert [c["spec"] for c in payload["cells"]] == ["grid:400", "path:128"]
    assert payload["cold_gate"]["schedule_identity"]["identical"] is True


class TestInProcessBench:
    def test_cells_and_gates(self):
        report = run_planner_bench(("grid:400", "star:64"), repeats=1)
        assert [c.spec for c in report.cells] == ["grid:400", "star:64"]
        gate = report.cells[0]
        assert gate.gated and gate.cold_gated and gate.n == GATE_MIN_N
        assert not report.cells[1].gated and not report.cells[1].cold_gated
        assert all(c.identical for c in report.cells)
        assert all(c.cold_ratio == c.plan_cold_s / c.pruned_s for c in report.cells)
        assert len(report.schedule_identity) >= 21
        report.check()  # bit-identical + speedup + cold-plan + identity gates

    def test_check_requires_a_gate_network(self):
        report = run_planner_bench(
            ("star:32",), repeats=1, schedule_identity=False
        )
        with pytest.raises(AssertionError, match="no gate network"):
            report.check()

    def test_check_fails_below_speedup_gate(self):
        report = run_planner_bench(
            ("grid:400",), repeats=1, min_speedup=1e9, schedule_identity=False
        )
        with pytest.raises(AssertionError, match="below"):
            report.check()

    def test_check_fails_above_cold_ratio_gate(self):
        report = run_planner_bench(
            ("grid:400",), repeats=1, cold_max_ratio=1e-9,
            schedule_identity=False,
        )
        with pytest.raises(AssertionError, match="cold plan"):
            report.check()

    def test_check_fails_on_schedule_mismatch(self):
        report = run_planner_bench(
            ("grid:400",), repeats=1, schedule_identity=False
        )
        report.schedule_identity = {"path": True, "grid": False}
        with pytest.raises(AssertionError, match="differs from the seed builder"):
            report.check()

    def test_format_lists_every_cell(self):
        report = run_planner_bench(("path:64",), repeats=1)
        out = report.format()
        assert "path:64" in out and "speedup" in out

    def test_bad_parameters_rejected(self):
        with pytest.raises(ReproError):
            run_planner_bench(("grid:64",), repeats=0)
        with pytest.raises(ReproError):
            run_planner_bench(())
