"""Wall-clock deadlines on the chaos and survival sweeps fail fast."""

import pytest

from repro.analysis.chaos import run_chaos_sweep
from repro.analysis.survival import run_survival_sweep
from repro.exceptions import ReproError, SweepTimeoutError


class TestChaosDeadline:
    def test_expired_deadline_raises_typed_error(self):
        with pytest.raises(SweepTimeoutError) as exc_info:
            run_chaos_sweep(
                families=("path:8",),
                drop_rates=(0.1,),
                trials=50,
                deadline=1e-9,
            )
        err = exc_info.value
        assert err.elapsed > 0.0
        assert err.completed_cells == 0
        assert "deadline" in str(err)

    def test_generous_deadline_is_invisible(self):
        report = run_chaos_sweep(
            families=("path:6",),
            drop_rates=(0.0,),
            trials=2,
            deadline=300.0,
        )
        assert len(report.cells) == 1

    def test_invalid_deadline_rejected(self):
        with pytest.raises(ReproError, match="deadline"):
            run_chaos_sweep(families=("path:6",), trials=1, deadline=0.0)


class TestSurvivalDeadline:
    def test_expired_deadline_raises_typed_error(self):
        with pytest.raises(SweepTimeoutError) as exc_info:
            run_survival_sweep(
                families=("path:8",),
                fail_stop_rates=(0.05,),
                trials=50,
                deadline=1e-9,
            )
        assert exc_info.value.completed_cells == 0

    def test_generous_deadline_is_invisible(self):
        report = run_survival_sweep(
            families=("path:6",),
            fail_stop_rates=(0.0,),
            trials=2,
            deadline=300.0,
        )
        assert len(report.cells) == 1

    def test_invalid_deadline_rejected(self):
        with pytest.raises(ReproError, match="deadline"):
            run_survival_sweep(
                families=("path:6",), trials=1, deadline=-5.0
            )
