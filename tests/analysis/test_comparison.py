"""Unit tests for the comparison harness."""

import pytest

from repro.analysis.comparison import (
    compare_algorithms,
    comparison_table,
    format_comparison,
)
from repro.networks import topologies


@pytest.fixture(scope="module")
def grid_row():
    return compare_algorithms(topologies.grid_2d(3, 3))


class TestCompareAlgorithms:
    def test_row_fields(self, grid_row):
        assert grid_row.n == 9
        assert grid_row.radius == 2
        assert grid_row.lower_bound == 8
        assert grid_row.concurrent_bound == 11
        assert set(grid_row.times) == {
            "concurrent-updown",
            "updown",
            "simple",
            "greedy",
            "telephone",
        }

    def test_concurrent_meets_its_bound_exactly(self, grid_row):
        assert grid_row.times["concurrent-updown"] == grid_row.concurrent_bound

    def test_simple_meets_lemma1_exactly(self, grid_row):
        assert grid_row.times["simple"] == grid_row.simple_bound

    def test_updown_within_budget(self, grid_row):
        assert grid_row.times["updown"] <= grid_row.updown_bound

    def test_everything_at_least_trivial_bound(self, grid_row):
        for t in grid_row.times.values():
            assert t >= grid_row.lower_bound

    def test_winner(self, grid_row):
        assert grid_row.winner() in grid_row.times
        assert grid_row.times[grid_row.winner()] == min(grid_row.times.values())

    def test_ratio(self, grid_row):
        assert grid_row.ratio("concurrent-updown") == pytest.approx(11 / 8)

    def test_algorithm_subset(self):
        row = compare_algorithms(
            topologies.path_graph(5), algorithms=["simple", "concurrent-updown"]
        )
        assert set(row.times) == {"simple", "concurrent-updown"}


class TestComparisonTable:
    def test_multiple_graphs(self):
        rows = comparison_table(
            [topologies.path_graph(5), topologies.star_graph(5)],
            algorithms=["concurrent-updown"],
        )
        assert [r.name for r in rows] == ["path-5", "star-5"]

    def test_format(self):
        rows = comparison_table(
            [topologies.cycle_graph(6)], algorithms=["concurrent-updown", "simple"]
        )
        text = format_comparison(rows)
        assert "cycle-6" in text
        assert "concurrent-updown" in text

    def test_format_empty(self):
        assert format_comparison([]) == "(no rows)"
