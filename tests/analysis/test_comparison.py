"""Unit tests for the comparison harness."""

import pytest

from repro.analysis.comparison import (
    ComparisonRow,
    compare_algorithms,
    comparison_table,
    format_comparison,
    run_epidemic_comparison,
)
from repro.networks import topologies


@pytest.fixture(scope="module")
def grid_row():
    return compare_algorithms(topologies.grid_2d(3, 3))


class TestCompareAlgorithms:
    def test_row_fields(self, grid_row):
        assert grid_row.n == 9
        assert grid_row.radius == 2
        assert grid_row.lower_bound == 8
        assert grid_row.concurrent_bound == 11
        assert set(grid_row.times) == {
            "concurrent-updown",
            "updown",
            "simple",
            "greedy",
            "telephone",
        }

    def test_concurrent_meets_its_bound_exactly(self, grid_row):
        assert grid_row.times["concurrent-updown"] == grid_row.concurrent_bound

    def test_simple_meets_lemma1_exactly(self, grid_row):
        assert grid_row.times["simple"] == grid_row.simple_bound

    def test_updown_within_budget(self, grid_row):
        assert grid_row.times["updown"] <= grid_row.updown_bound

    def test_everything_at_least_trivial_bound(self, grid_row):
        for t in grid_row.times.values():
            assert t >= grid_row.lower_bound

    def test_winner(self, grid_row):
        assert grid_row.winner() in grid_row.times
        assert grid_row.times[grid_row.winner()] == min(grid_row.times.values())

    def test_ratio(self, grid_row):
        assert grid_row.ratio("concurrent-updown") == pytest.approx(11 / 8)

    def test_algorithm_subset(self):
        row = compare_algorithms(
            topologies.path_graph(5), algorithms=["simple", "concurrent-updown"]
        )
        assert set(row.times) == {"simple", "concurrent-updown"}


class TestComparisonTable:
    def test_multiple_graphs(self):
        rows = comparison_table(
            [topologies.path_graph(5), topologies.star_graph(5)],
            algorithms=["concurrent-updown"],
        )
        assert [r.name for r in rows] == ["path-5", "star-5"]

    def test_format(self):
        rows = comparison_table(
            [topologies.cycle_graph(6)], algorithms=["concurrent-updown", "simple"]
        )
        text = format_comparison(rows)
        assert "cycle-6" in text
        assert "concurrent-updown" in text

    def test_format_empty(self):
        assert format_comparison([]) == "(no rows)"

    def test_format_union_of_mismatched_rows(self):
        """Regression: rows built with different algorithm sets used to
        KeyError; now they render the union with an em-dash placeholder."""
        rows = [
            compare_algorithms(topologies.path_graph(5), algorithms=["simple"]),
            compare_algorithms(
                topologies.star_graph(5), algorithms=["concurrent-updown"]
            ),
        ]
        text = format_comparison(rows)
        assert "simple" in text and "concurrent-updown" in text
        assert "—" in text
        # column order is first-seen: simple (row 0) before concurrent-updown
        header = text.splitlines()[0]
        assert header.index("simple") < header.index("concurrent-updown")


class TestWinnerTieBreak:
    def _row(self, times):
        return ComparisonRow(
            name="t", n=4, radius=1, times=times,
            lower_bound=3, concurrent_bound=5, simple_bound=6, updown_bound=6,
        )

    def test_tie_breaks_by_insertion_order(self):
        """Regression: the O(k^2) index() tie-break is gone, but ties must
        still resolve to the first-inserted algorithm."""
        assert self._row({"a": 5, "b": 5, "c": 7}).winner() == "a"
        assert self._row({"b": 5, "a": 5, "c": 4}).winner() == "c"
        assert self._row({"z": 9, "y": 2, "x": 2}).winner() == "y"


class TestEpidemicComparison:
    @pytest.fixture(scope="class")
    def report(self):
        return run_epidemic_comparison(
            ["complete", "star"], n=10, trials=8, seed=3
        )

    def test_cell_grid_shape(self, report):
        assert len(report.cells) == 4  # 2 families x 2 drop rates
        null = [c for c in report.cells if c.is_null]
        assert len(null) == 2
        for c in null:
            assert {s.algorithm for s in c.stats} == {
                "concurrent-updown",
                "epidemic-push",
                "epidemic-pull",
                "epidemic-push-pull",
                "coded",
            }

    def test_gates_hold(self, report):
        report.check()

    def test_deterministic_and_reproducible(self, report):
        again = run_epidemic_comparison(
            ["complete", "star"], n=10, trials=8, seed=3
        )
        assert again.format() == report.format()

    def test_check_requires_both_regimes(self):
        null_only = run_epidemic_comparison(
            ["complete"], n=8, trials=4, seed=1, drop_rates=(0.0,)
        )
        with pytest.raises(AssertionError, match="resilience gate"):
            null_only.check()
        drop_only = run_epidemic_comparison(
            ["complete"], n=8, trials=4, seed=1, drop_rates=(0.2,)
        )
        with pytest.raises(AssertionError, match="makespan gate"):
            drop_only.check()
