"""Tier-1 smoke: the survival sweep's ``--check`` gates hold.

Runs ``python -m repro.cli survive --check``, the ``chaos --permanent``
rerouting, and ``benchmarks/bench_survival.py --check`` the same way CI
does (standalone processes), asserting the full-survivor-coverage and
typed-partition acceptance criteria plus byte-for-byte reproducibility,
and exercises :func:`repro.analysis.survival.run_survival_sweep`
in-process for coverage of both entry points.
"""

import os
import subprocess
import sys
from pathlib import Path

from repro.analysis.survival import run_survival_sweep
from repro.exceptions import ReproError

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
BENCH = REPO_ROOT / "benchmarks" / "bench_survival.py"

CLI_ARGS = [
    "-m", "repro.cli", "survive",
    "--family", "random:32", "--fail-stop", "0.05", "--trials", "6",
    "--seed", "7", "--check",
]


def _run(cmd):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        cmd,
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
        cwd=str(REPO_ROOT),
    )


def test_cli_survive_check_passes_and_is_reproducible():
    first = _run([sys.executable, *CLI_ARGS])
    assert first.returncode == 0, (
        f"stdout:\n{first.stdout}\nstderr:\n{first.stderr}"
    )
    assert "check: full survivor coverage" in first.stdout
    second = _run([sys.executable, *CLI_ARGS])
    assert second.stdout == first.stdout  # byte-for-byte reproducible


def test_cli_chaos_permanent_routes_through_survival():
    proc = _run([
        sys.executable, "-m", "repro.cli", "chaos",
        "--family", "path:12", "--permanent", "0.05",
        "--trials", "4", "--seed", "3", "--check",
    ])
    assert proc.returncode == 0, (
        f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    )
    assert "survival sweep" in proc.stdout
    assert "check: full survivor coverage" in proc.stdout


def test_benchmark_check_mode_passes():
    proc = _run([sys.executable, str(BENCH), "--check", "--trials", "4"])
    assert proc.returncode == 0, (
        f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    )
    assert (
        "check: null-permanence parity and survivor-coverage gates hold  OK"
        in proc.stdout
    )


class TestInProcessSweep:
    def test_cells_and_gates(self):
        report = run_survival_sweep(
            families=("grid:16",),
            fail_stop_rates=(0.0, 0.05),
            trials=5,
            seed=3,
        )
        assert len(report.cells) == 2
        zero, harsh = report.cells
        assert zero.fail_stop_rate == 0.0
        assert zero.intact == zero.trials and zero.partitioned == 0
        assert zero.rounds_max == 0
        assert harsh.dead_max > 0
        report.check()  # coverage, typed-partition, and bound gates

    def test_format_is_deterministic(self):
        a = run_survival_sweep(families=("grid:9",), trials=3, seed=5)
        b = run_survival_sweep(families=("grid:9",), trials=3, seed=5)
        assert a.format() == b.format()

    def test_transient_drops_layer_on_top(self):
        """A transient drop rate alongside the permanent failures must
        not break the coverage guarantee (survival rounds run fault-free)."""
        report = run_survival_sweep(
            families=("grid:16",),
            fail_stop_rates=(0.02,),
            trials=4,
            seed=11,
            drop_rate=0.3,
        )
        report.check()

    def test_link_failures_count_toward_partitions(self):
        report = run_survival_sweep(
            families=("path:10",),
            fail_stop_rates=(0.0,),
            trials=6,
            seed=2,
            link_fail_rate=0.1,
        )
        (cell,) = report.cells
        assert cell.partitioned > 0  # a severed path splits
        report.check()

    def test_zero_trials_rejected(self):
        with pytest.raises(ReproError):
            run_survival_sweep(trials=0)
