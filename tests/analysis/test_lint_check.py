"""Tier-1 hook for the static gate: the CI checks also run locally.

Runs the ``cli lint`` gate over the paper families (text and JSON), the
repository conventions script, and — when the tools are installed —
``ruff check`` and ``mypy --strict``, exactly as ``.github/workflows/ci.yml``
does.
"""

import json
import pathlib
import shutil
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parents[2]
SRC = REPO / "src"


def run(*argv):
    env_path = str(SRC)
    return subprocess.run(
        [sys.executable, *argv],
        cwd=REPO,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": env_path, "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )


class TestCliLintGate:
    def test_all_families_pass_check(self):
        proc = run("-m", "repro.cli", "lint", "--all", "--check", "--no-warnings")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 with errors" in proc.stdout

    def test_json_report_parses_and_is_ok(self):
        proc = run("-m", "repro.cli", "lint", "--family", "grid:16",
                   "--family", "random:24", "--json")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        doc = json.loads(proc.stdout)
        assert doc["ok"] is True
        assert {r["spec"] for r in doc["reports"]} == {"grid:16", "random:24"}
        for report in doc["reports"]:
            assert report["errors"] == 0
            assert all("rule" in d for d in report["diagnostics"])

    def test_check_fails_on_broken_algorithm(self):
        # the store-forward ablation deliberately breaks the model; the
        # gate must catch it and exit non-zero
        proc = run("-m", "repro.cli", "lint", "--family", "grid:16",
                   "--algorithm", "store-forward-updown", "--check",
                   "--no-warnings")
        if "invalid choice" in proc.stderr:
            pytest.skip("ablation algorithm not registered")
        assert proc.returncode in (0, 1)


class TestConventionsScript:
    def test_src_repro_is_clean(self):
        proc = run("scripts/check_conventions.py")
        assert proc.returncode == 0, proc.stdout

    def test_detects_builtin_raise(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f():\n    raise ValueError('nope')\n")
        proc = run("scripts/check_conventions.py", str(bad))
        assert proc.returncode == 1
        assert "builtin ValueError" in proc.stdout

    def test_detects_bin_count(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("x = bin(7).count('1')\n")
        proc = run("scripts/check_conventions.py", str(bad))
        assert proc.returncode == 1
        assert "bit_count" in proc.stdout

    def test_detects_positional_api_call(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("gossip(g, 'simple')\nplan.execute(True)\n")
        proc = run("scripts/check_conventions.py", str(bad))
        assert proc.returncode == 1
        assert "keyword-only" in proc.stdout

    def test_detects_hot_path_loop(self, tmp_path):
        core = tmp_path / "core"
        core.mkdir()
        bad = core / "concurrent_updown.py"
        bad.write_text("def f(events):\n    for e in events:\n        pass\n")
        proc = run("scripts/check_conventions.py", str(bad))
        assert proc.returncode == 1
        assert "hot path" in proc.stdout

    def test_detects_process_machinery_in_runtime(self, tmp_path):
        runtime = tmp_path / "runtime"
        runtime.mkdir()
        bad = runtime / "peer.py"
        bad.write_text(
            "import multiprocessing\n"
            "from signal import SIGKILL\n"
            "import os\n"
            "def f(pid):\n"
            "    os.kill(pid, SIGKILL)\n"
        )
        proc = run("scripts/check_conventions.py", str(bad))
        assert proc.returncode == 1
        assert proc.stdout.count("supervision tree") == 3

    def test_supervision_modules_are_exempt(self, tmp_path):
        runtime = tmp_path / "runtime"
        runtime.mkdir()
        ok = runtime / "supervisor.py"
        ok.write_text("import multiprocessing\nimport signal\n")
        proc = run("scripts/check_conventions.py", str(ok))
        assert proc.returncode == 0, proc.stdout

    def test_hot_path_loop_exemptions(self, tmp_path):
        core = tmp_path / "core"
        core.mkdir()
        ok = core / "propagate_down.py"
        ok.write_text(
            "def emit_builder(events):\n"
            "    for e in events:\n"
            "        pass\n"
            "def levels(tree):\n"
            "    'hot-loop-ok: iterates tree levels, not transmissions'\n"
            "    for lvl in tree:\n"
            "        pass\n"
        )
        proc = run("scripts/check_conventions.py", str(ok))
        assert proc.returncode == 0, proc.stdout


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
class TestRuff:
    def test_ruff_clean(self):
        proc = subprocess.run(
            ["ruff", "check", "src/repro", "scripts"],
            cwd=REPO, capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
class TestMypy:
    def test_mypy_strict_clean(self):
        proc = subprocess.run(
            ["mypy", "--strict", "src/repro"],
            cwd=REPO, capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
