"""Unit tests for the sweep families."""

import pytest

from repro.analysis.sweep import FAMILIES, family_instance, small_suite, sweep
from repro.networks.bfs import is_connected


class TestFamilies:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_every_family_generates_connected(self, family):
        g = family_instance(family, 16)
        assert g.n >= 2
        assert is_connected(g)

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_deterministic(self, family):
        assert family_instance(family, 12) == family_instance(family, 12)

    def test_exact_size_families(self):
        for family in ("path", "cycle", "star", "complete", "random-tree", "gnp"):
            assert family_instance(family, 17).n == 17


class TestSweep:
    def test_yields_all_points(self):
        points = list(sweep([8, 16], families=["path", "star"]))
        assert len(points) == 4
        assert {(p.family, p.requested_n) for p in points} == {
            ("path", 8),
            ("path", 16),
            ("star", 8),
            ("star", 16),
        }

    def test_default_families(self):
        points = list(sweep([10]))
        assert len(points) == len(FAMILIES)


class TestSmallSuite:
    def test_suite_connected_and_varied(self):
        suite = small_suite()
        assert len(suite) >= 12
        assert all(is_connected(g) for g in suite)
        names = {g.name for g in suite}
        assert len(names) == len(suite)  # all distinct topologies
