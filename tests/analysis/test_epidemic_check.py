"""Tier-1 smoke: the adversarial epidemic comparison's gates hold.

Runs ``python -m repro.cli compare --epidemic --check`` and
``benchmarks/bench_epidemic.py --check`` the same way CI does
(standalone processes) on a reduced-but-diverse slice, asserting both
statistical gates plus byte-for-byte reproducibility.  The full
21-family sweep at 100 trials runs standalone
(``python benchmarks/bench_epidemic.py --check``); the gates are
per-cell assertions, so the slice exercises identical code paths.
"""

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
BENCH = REPO_ROOT / "benchmarks" / "bench_epidemic.py"

CLI_ARGS = [
    "-m", "repro.cli", "compare", "--epidemic",
    "--families", "star", "complete", "grid",
    "--trials", "10", "--seed", "0", "--check",
]


def _run(cmd):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        cmd,
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
        cwd=str(REPO_ROOT),
    )


def test_cli_compare_epidemic_check_passes_and_is_reproducible():
    first = _run([sys.executable, *CLI_ARGS])
    assert first.returncode == 0, (
        f"stdout:\n{first.stdout}\nstderr:\n{first.stderr}"
    )
    assert "check: makespan + resilience gates hold  OK" in first.stdout
    second = _run([sys.executable, *CLI_ARGS])
    assert second.stdout == first.stdout  # byte-for-byte reproducible


def test_benchmark_check_mode_passes():
    proc = _run(
        [
            sys.executable, str(BENCH), "--check", "--trials", "10",
            "--families", "path", "star", "complete", "grid", "hypercube",
        ]
    )
    assert proc.returncode == 0, (
        f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    )
    assert "check: makespan and resilience gates hold  OK" in proc.stdout
