"""Tier-1 smoke: the supervised multi-process benchmark's gates hold.

Runs ``benchmarks/bench_runtime_proc.py --check --quick`` the same way
CI does (a standalone process — the children are real spawned
interpreters) and exercises the gate helpers in-process.  The full
21-family sweep plus the 100-trial SIGKILL campaign stays in the
benchmark tier.
"""

import importlib.util
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
BENCH = REPO_ROOT / "benchmarks" / "bench_runtime_proc.py"


def _load_bench():
    spec = importlib.util.spec_from_file_location("bench_runtime_proc", BENCH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _run(cmd):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        cmd,
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
        cwd=str(REPO_ROOT),
    )


def test_benchmark_check_mode_passes():
    proc = _run([sys.executable, str(BENCH), "--check", "--quick"])
    assert proc.returncode == 0, (
        f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    )
    assert ("check: offline-exact transcripts, crash detection + "
            ">= 95% resolution, per-seed reproducibility, "
            "service execution degradation  OK") in proc.stdout


class TestGateHelpers:
    def test_gate_rejects_divergence(self):
        bench = _load_bench()
        rows = [("path-8", 8, 14, 0.1, True, False)]
        with pytest.raises(AssertionError, match="diverged"):
            bench.check_offline_exact(rows)

    def test_gate_rejects_undetected_death(self):
        bench = _load_bench()

        class Fake:
            incidents = ()
            mode = "replan"
            dead = (1,)
            coverage = 1.0
            complete = False
            restarts = 0

        with pytest.raises(AssertionError, match="never detected"):
            bench.check_sigkill_resolution([(1, "replan", Fake())])

    def test_gate_rejects_unresolved_trials(self):
        bench = _load_bench()

        class Incident:
            kind = "crash-detected"
            vertex = 1

        class Fake:
            incidents = (Incident(),)
            mode = "replan"
            dead = (1,)
            coverage = 0.5
            complete = False
            restarts = 0

        with pytest.raises(AssertionError, match="resolved"):
            bench.check_sigkill_resolution([(1, "replan", Fake())])

    def test_gate_requires_restart_trials_to_recomplete(self):
        bench = _load_bench()

        class Incident:
            kind = "crash-detected"
            vertex = 1

        class Fake:  # resolved by replan, but the policy asked for rejoin
            incidents = (Incident(),)
            mode = "replan"
            dead = (1,)
            coverage = 1.0
            complete = False
            restarts = 0

        with pytest.raises(AssertionError, match="resolved"):
            bench.check_sigkill_resolution([(1, "restart", Fake())])
