"""Tier-1 smoke: the real-network runtime benchmark's gates hold.

Runs ``benchmarks/bench_runtime.py --check --quick`` the same way CI
does (a standalone process) and exercises the gate helpers in-process —
the full 21-family sweep plus six chaos trials stays in the benchmark
tier.
"""

import importlib.util
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
BENCH = REPO_ROOT / "benchmarks" / "bench_runtime.py"


def _load_bench():
    spec = importlib.util.spec_from_file_location("bench_runtime", BENCH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _run(cmd):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        cmd,
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
        cwd=str(REPO_ROOT),
    )


def test_benchmark_check_mode_passes():
    proc = _run([sys.executable, str(BENCH), "--check", "--quick"])
    assert proc.returncode == 0, (
        f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    )
    assert ("check: offline-exact transcripts, >= 95% chaos completion, "
            "per-seed reproducibility  OK") in proc.stdout


class TestGateHelpers:
    def test_fault_free_rows_pass_the_gate(self):
        bench = _load_bench()
        rows = bench.run_fault_free(families=("path", "star"))
        assert [r[0] for r in rows] == ["path-16", "star-16"]
        bench.check_offline_exact(rows)

    def test_gate_rejects_divergence(self):
        bench = _load_bench()
        rows = [("path-16", 16, 30, 0.1, True, False)]
        with pytest.raises(AssertionError, match="diverged"):
            bench.check_offline_exact(rows)

    def test_chaos_gate_rejects_low_coverage(self):
        bench = _load_bench()

        class Fake:
            coverage = 0.5
            dead = (1,)

        with pytest.raises(AssertionError, match="completion"):
            bench.check_chaos_completion([Fake()])
