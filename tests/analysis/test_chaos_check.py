"""Tier-1 smoke: the chaos sweep's ``--check`` gates hold.

Runs ``python -m repro.cli chaos --check`` and
``benchmarks/bench_recovery.py --check`` the same way CI does
(standalone processes), asserting the >= 95% completion-with-repair
acceptance criterion plus byte-for-byte reproducibility, and exercises
:func:`repro.analysis.chaos.run_chaos_sweep` in-process for coverage of
both entry points.
"""

import os
import subprocess
import sys
from pathlib import Path

from repro.analysis.chaos import run_chaos_sweep
from repro.exceptions import ReproError

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
BENCH = REPO_ROOT / "benchmarks" / "bench_recovery.py"

CLI_ARGS = [
    "-m", "repro.cli", "chaos",
    "--family", "random:32", "--drop", "0.2", "--trials", "10",
    "--seed", "7", "--check",
]


def _run(cmd):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        cmd,
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
        cwd=str(REPO_ROOT),
    )


def test_cli_chaos_check_passes_and_is_reproducible():
    first = _run([sys.executable, *CLI_ARGS])
    assert first.returncode == 0, (
        f"stdout:\n{first.stdout}\nstderr:\n{first.stderr}"
    )
    assert "check: completion >= 95%" in first.stdout
    second = _run([sys.executable, *CLI_ARGS])
    assert second.stdout == first.stdout  # byte-for-byte reproducible


def test_benchmark_check_mode_passes():
    proc = _run([sys.executable, str(BENCH), "--check", "--trials", "5"])
    assert proc.returncode == 0, (
        f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    )
    assert "check: 0%-drop parity and recovery gates hold  OK" in proc.stdout


class TestInProcessSweep:
    def test_cells_and_gates(self):
        report = run_chaos_sweep(
            families=("grid:16",), drop_rates=(0.0, 0.2), trials=5, seed=3
        )
        assert len(report.cells) == 2
        zero, lossy = report.cells
        assert zero.drop_rate == 0.0
        assert zero.deliveries_lost == 0 and zero.overhead_max == 0
        assert lossy.deliveries_lost > 0
        assert lossy.baseline_total == zero.baseline_total
        report.check()  # completion and fault-free verification gates

    def test_format_is_deterministic(self):
        a = run_chaos_sweep(families=("grid:9",), trials=3, seed=5)
        b = run_chaos_sweep(families=("grid:9",), trials=3, seed=5)
        assert a.format() == b.format()

    def test_check_fails_on_incompletion(self):
        """An impossible budget surfaces through the gate, not silently."""
        report = run_chaos_sweep(
            families=("path:12",),
            drop_rates=(0.5,),
            trials=4,
            seed=1,
            max_repair_rounds=1,
        )
        with pytest.raises(AssertionError):
            report.check()

    def test_zero_trials_rejected(self):
        with pytest.raises(ReproError):
            run_chaos_sweep(trials=0)
