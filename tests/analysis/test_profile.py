"""Tests for per-round activity profiles."""

import pytest

from repro.analysis.profile import activity_profile, completion_curve
from repro.core.gossip import gossip
from repro.core.schedule import Schedule
from repro.networks import topologies


@pytest.fixture(scope="module")
def grid_plan():
    return gossip(topologies.grid_2d(3, 4))


class TestActivityProfile:
    def test_lengths(self, grid_plan):
        profile = activity_profile(grid_plan.schedule)
        assert profile.total_time == grid_plan.total_time
        assert len(profile.deliveries_per_round) == profile.total_time

    def test_sums_match_schedule_counters(self, grid_plan):
        profile = activity_profile(grid_plan.schedule)
        assert sum(profile.senders_per_round) == grid_plan.schedule.total_messages()
        assert (
            sum(profile.deliveries_per_round)
            == grid_plan.schedule.total_deliveries()
        )
        assert max(profile.max_fan_out_per_round) == grid_plan.schedule.max_fan_out()

    def test_peak_and_utilisation(self, grid_plan):
        profile = activity_profile(grid_plan.schedule)
        n = grid_plan.graph.n
        assert 1 <= profile.peak_senders <= n
        assert 0.0 < profile.utilisation(n) <= 1.0

    def test_simple_has_idle_gap(self):
        """Simple's up phase ends before its down phase reaches deep
        vertices... the profile exposes idle rounds for shallow trees."""
        plan = gossip(topologies.star_graph(10), algorithm="simple")
        profile = activity_profile(plan.schedule)
        assert profile.idle_rounds >= 0  # never negative
        # Simple's two phases never overlap at the root of a star:
        # senders-per-round dips to 1 between collection and pumping.
        assert min(profile.senders_per_round) <= 2

    def test_empty_schedule(self):
        profile = activity_profile(Schedule([]))
        assert profile.total_time == 0
        assert profile.peak_senders == 0
        assert profile.utilisation(5) == 0.0


class TestCompletionCurve:
    def test_monotone_and_ends_at_n(self, grid_plan):
        execution = grid_plan.execute()
        curve = completion_curve(grid_plan.graph, execution)
        assert all(a <= b for a, b in zip(curve, curve[1:]))
        assert curve[-1] == grid_plan.graph.n
        assert curve[0] == 0  # nobody starts complete for n > 1

    def test_nobody_complete_before_n_minus_1(self, grid_plan):
        execution = grid_plan.execute()
        curve = completion_curve(grid_plan.graph, execution)
        n = grid_plan.graph.n
        for t in range(n - 1):
            assert curve[t] == 0

    def test_horizon_override(self, grid_plan):
        execution = grid_plan.execute()
        curve = completion_curve(grid_plan.graph, execution, horizon=5)
        assert len(curve) == 6
