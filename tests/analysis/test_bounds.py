"""Unit tests for the closed-form bounds."""

import pytest

from repro.analysis.bounds import (
    approximation_ratio_bound,
    concurrent_updown_upper_bound,
    gossip_lower_bound,
    max_broadcast_time,
    path_lower_bound,
    simple_exact_time,
    trivial_lower_bound,
    updown_upper_bound,
)
from repro.networks import topologies
from repro.networks.graph import Graph


class TestClosedForms:
    def test_trivial(self):
        assert trivial_lower_bound(1) == 0
        assert trivial_lower_bound(10) == 9

    def test_path_lower_bound_odd(self):
        # P_{2m+1}: n + m - 1
        assert path_lower_bound(3) == 3
        assert path_lower_bound(5) == 6
        assert path_lower_bound(7) == 9

    def test_path_lower_bound_even_falls_back(self):
        assert path_lower_bound(6) == 5

    def test_path_lower_bound_tiny(self):
        assert path_lower_bound(2) == 1

    def test_upper_bounds(self):
        g = topologies.grid_2d(3, 4)  # n=12, r=3
        assert concurrent_updown_upper_bound(g) == 15
        assert simple_exact_time(g) == 24
        assert updown_upper_bound(g) == (11 + 3) + (2 * 2 + 1)

    def test_single_vertex(self):
        g = Graph(1, [])
        assert simple_exact_time(g) == 0
        assert updown_upper_bound(g) == 0
        assert approximation_ratio_bound(g) == 1.0


class TestLowerBoundDispatch:
    def test_path_detected(self):
        assert gossip_lower_bound(topologies.path_graph(7)) == 9

    def test_cycle_not_a_path(self):
        assert gossip_lower_bound(topologies.cycle_graph(7)) == 6

    def test_star_not_a_path(self):
        assert gossip_lower_bound(topologies.star_graph(5)) == 4

    def test_p2_like_graphs(self):
        assert gossip_lower_bound(Graph(2, [(0, 1)])) == 1


class TestApproximationRatio:
    @pytest.mark.parametrize(
        "graph",
        [
            topologies.path_graph(9),
            topologies.cycle_graph(10),
            topologies.star_graph(8),
            topologies.grid_2d(4, 4),
            topologies.hypercube(4),
            topologies.complete_graph(6),
        ],
        ids=lambda g: g.name,
    )
    def test_at_most_1_5_n_over_n_minus_1(self, graph):
        """Section 4: r <= n/2, so (n + r)/(n - 1) <= 1.5 n/(n - 1)."""
        n = graph.n
        assert approximation_ratio_bound(graph) <= 1.5 * n / (n - 1) + 1e-12

    def test_worst_case_is_the_path(self):
        """The odd path maximises r/n, approaching the 1.5 limit."""
        ratios = {
            "path": approximation_ratio_bound(topologies.path_graph(15)),
            "star": approximation_ratio_bound(topologies.star_graph(15)),
        }
        assert ratios["path"] > ratios["star"]


class TestBroadcast:
    def test_max_broadcast_time_is_diameter(self):
        assert max_broadcast_time(topologies.path_graph(6)) == 5
        assert max_broadcast_time(topologies.star_graph(6)) == 2
