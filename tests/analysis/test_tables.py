"""TAB1-TAB4: the paper's tables reproduce exactly from the algorithm."""

import pytest

from repro.analysis.tables import EXPECTED_TABLES, paper_tables, render_timeline


@pytest.fixture(scope="module")
def tables():
    return paper_tables()


class TestPublishedTables:
    @pytest.mark.parametrize("vertex", [0, 1, 4, 8])
    @pytest.mark.parametrize(
        "row",
        ["receive_from_parent", "receive_from_child", "send_to_parent", "send_to_child"],
    )
    def test_row_matches_paper(self, tables, vertex, row):
        assert tables[vertex].row(row) == EXPECTED_TABLES[vertex][row], (
            f"Table for vertex {vertex}, row {row!r} deviates from the paper"
        )

    def test_table1_horizon(self, tables):
        assert tables[0].horizon == 16  # message 0 leaves the root at time n

    def test_table2_table3_horizon(self, tables):
        assert tables[1].horizon == 17  # n + k = 16 + 1
        assert tables[4].horizon == 17

    def test_table4_horizon(self, tables):
        assert tables[8].horizon == 18  # n + k = 16 + 2


class TestDelayedMessages:
    def test_table3_delays_2_and_3(self, tables):
        """The paper: 'the vertex with the message labeled 4 ... includes
        messages 2 and 3 that are delayed'."""
        sends = tables[4].send_to_child
        assert sends[10] == 2 and sends[11] == 3

    def test_table4_delays_6_and_7(self, tables):
        """'the vertex with message 8 ... messages 6 and 7 are the ones
        delayed at the node'."""
        sends = tables[8].send_to_child
        assert sends[9] == 6 and sends[10] == 7


class TestCustomVertices:
    def test_other_vertices_available(self):
        tables = paper_tables(vertices=[5, 11])
        assert set(tables) == {5, 11}
        # vertex 5 is a first child: lip-message 5 at time 0
        assert tables[5].send_to_parent[0] == 5


class TestRendering:
    def test_render_contains_rows_and_dashes(self, tables):
        text = render_timeline(tables[1], title="Table 2")
        assert "Table 2" in text
        assert "Receive from Parent" in text
        assert "Send to Child" in text
        assert " - " in text

    def test_render_fixed_horizon(self, tables):
        text = render_timeline(tables[0], horizon=5)
        header = text.splitlines()[0]
        assert header.rstrip().endswith("5")
