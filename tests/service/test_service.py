"""GossipService serving semantics: caching, batching, stats, injection."""

import pytest

from repro.core.gossip import GossipPlan, gossip
from repro.exceptions import ReproError
from repro.networks import topologies
from repro.service import GossipService


class CountingPlanner:
    """Injectable planner that counts its invocations per graph."""

    def __init__(self):
        self.calls = []

    def __call__(self, graph, *, algorithm, tree=None):
        self.calls.append(graph.canonical_hash())
        return gossip(graph, algorithm=algorithm, tree=tree)


class TestServing:
    def test_warm_hit_returns_identical_plan(self):
        service = GossipService()
        g = topologies.grid_2d(3, 3)
        assert service.plan(g) is service.plan(g)

    def test_equal_graph_different_object_hits(self):
        planner = CountingPlanner()
        service = GossipService(planner=planner)
        service.plan(topologies.grid_2d(3, 4))
        service.plan(topologies.grid_2d(3, 4))
        assert len(planner.calls) == 1
        stats = service.stats()
        assert (stats.hits, stats.misses) == (1, 1)

    def test_distinct_algorithms_cached_separately(self):
        service = GossipService()
        g = topologies.path_graph(6)
        fast = service.plan(g)
        simple = service.plan(g, algorithm="simple")
        assert fast.algorithm == "concurrent-updown"
        assert simple.algorithm == "simple"
        assert service.stats().misses == 2

    def test_string_and_tree_specs(self):
        service = GossipService()
        by_name = service.plan("grid:9")
        assert by_name.graph.name == "grid-3x3"
        pinned = service.plan(by_name.tree)
        assert pinned.tree == by_name.tree

    def test_explicit_tree_pins_key(self):
        """Plans on an explicitly maintained tree never collide with the
        canonical-tree entry for the same graph."""
        service = GossipService()
        g = topologies.cycle_graph(8)
        canonical = service.plan(g)
        from repro.networks.builders import graph_to_tree

        other_tree = graph_to_tree(topologies.path_graph(8), root=0)
        # cycle_graph(8) contains the path's edges plus (0, 7); the path
        # tree is a valid (taller) spanning tree of the cycle.
        pinned = service.plan(g, tree=other_tree)
        assert pinned is not canonical
        assert pinned.tree == other_tree
        assert service.stats().misses == 2

    def test_unknown_algorithm_not_cached(self):
        service = GossipService()
        g = topologies.path_graph(4)
        with pytest.raises(ReproError):
            service.plan(g, algorithm="nope")
        # failure left nothing behind; the good path still works
        assert len(service.cache) == 0
        assert service.plan(g).execute().complete

    def test_default_planner_matches_reference_gossip(self):
        service = GossipService()
        g = topologies.grid_2d(4, 5)
        served = service.plan(g)
        reference = gossip(g)
        assert served.tree == reference.tree
        assert served.schedule == reference.schedule


class TestPlanMany:
    def test_order_preserved_and_duplicates_coalesce(self):
        planner = CountingPlanner()
        with GossipService(planner=planner, max_workers=4) as service:
            specs = [
                topologies.path_graph(5),
                topologies.star_graph(5),
                topologies.path_graph(5),
                "grid:9",
            ]
            plans = service.plan_many(specs)
            assert [p.graph.name for p in plans] == [
                "path-5", "star-5", "path-5", "grid-3x3",
            ]
            assert plans[0] is plans[2]
            assert len(planner.calls) == 3  # unique networks only
            assert service.stats().batches == 1

    def test_empty_and_singleton_batches(self):
        with GossipService() as service:
            assert service.plan_many([]) == []
            [plan] = service.plan_many([topologies.path_graph(3)])
            assert isinstance(plan, GossipPlan)

    def test_batch_results_are_complete_plans(self):
        with GossipService(max_workers=8) as service:
            sizes = range(3, 11)
            plans = service.plan_many([topologies.cycle_graph(n) for n in sizes])
            for n, plan in zip(sizes, plans):
                assert plan.total_time == n + n // 2  # cycle: n + r
                assert plan.execute().complete


class TestEvictionAndStats:
    def test_lru_eviction_recorded(self):
        service = GossipService(max_entries=2)
        for n in (4, 5, 6, 7):
            service.plan(topologies.path_graph(n))
        stats = service.stats()
        assert stats.entries == 2
        assert stats.evictions == 2
        # evicted network plans again → another miss
        service.plan(topologies.path_graph(4))
        assert service.stats().misses == 5

    def test_invalidate_by_network(self):
        service = GossipService()
        g = topologies.grid_2d(3, 3)
        service.plan(g)
        service.plan(g, algorithm="simple")
        assert service.invalidate(g, algorithm="simple") == 1
        assert service.invalidate(g) == 1  # remaining entry, any algorithm
        assert service.invalidate(g) == 0
        assert service.stats().invalidations == 2

    def test_cache_clear(self):
        service = GossipService()
        service.plan("path:5")
        service.plan("star:5")
        assert service.cache_clear() == 2
        assert len(service.cache) == 0

    def test_latency_percentiles_populated(self):
        service = GossipService()
        for n in (4, 5, 6):
            service.plan(topologies.path_graph(n))
        service.plan(topologies.path_graph(4))
        stats = service.stats()
        assert stats.plan_p50_ms is not None
        assert stats.plan_p50_ms <= stats.plan_p90_ms <= stats.plan_p99_ms
        assert stats.plan_max_ms >= stats.plan_p99_ms
        assert stats.hit_p50_ms is not None
        assert stats.hit_rate == pytest.approx(0.25)
        # the report renders every counter
        assert "hit rate" in stats.format()

    def test_stats_before_traffic(self):
        stats = GossipService().stats()
        assert stats.hit_rate is None
        assert stats.plan_p50_ms is None
        assert "n/a" in stats.format()
