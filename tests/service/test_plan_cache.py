"""Unit tests for the bounded LRU plan cache."""

import pytest

from repro.core.gossip import gossip
from repro.exceptions import ReproError
from repro.networks import topologies
from repro.service.cache import PlanCache, plan_weight, tree_fingerprint


def _plan(n: int):
    return gossip(topologies.path_graph(n))


def _key(plan, algorithm="concurrent-updown"):
    return (plan.graph.canonical_hash(), "", algorithm)


class TestLRU:
    def test_get_miss_returns_none(self):
        assert PlanCache().get(("nope", "", "x")) is None

    def test_put_get_roundtrip(self):
        cache = PlanCache()
        plan = _plan(5)
        assert cache.put(_key(plan), plan) == 0
        assert cache.get(_key(plan)) is plan
        assert len(cache) == 1
        assert cache.weight == plan_weight(plan)

    def test_entry_bound_evicts_least_recently_used(self):
        cache = PlanCache(max_entries=2)
        a, b, c = _plan(3), _plan(4), _plan(5)
        cache.put(_key(a), a)
        cache.put(_key(b), b)
        assert cache.get(_key(a)) is a  # refresh a; b is now LRU
        evicted = cache.put(_key(c), c)
        assert evicted == 1
        assert cache.get(_key(b)) is None
        assert cache.get(_key(a)) is a
        assert cache.get(_key(c)) is c

    def test_weight_bound(self):
        plans = [_plan(n) for n in (3, 4, 5, 6, 7)]
        # Room for the largest plan plus a little — forces evictions
        # without tripping the oversized-entry escape hatch.
        cache = PlanCache(
            max_entries=100, max_weight=2 * plan_weight(plans[-1])
        )
        for p in plans:
            cache.put(_key(p), p)
        assert cache.weight <= cache.max_weight
        assert len(cache) < len(plans)

    def test_weight_is_schedule_array_bytes(self):
        plan = _plan(6)
        assert plan_weight(plan) == plan.arrays().nbytes

    def test_refresh_same_key_does_not_double_count_weight(self):
        """Regression guard: ``put`` on an existing key must subtract the
        old entry's weight before adding the new one, or repeated
        refreshes inflate ``cache.weight`` until everything is evicted."""
        cache = PlanCache()
        plan = _plan(6)
        for _ in range(3):
            assert cache.put(_key(plan), plan) == 0
        assert len(cache) == 1
        assert cache.weight == plan_weight(plan)
        # Replacing with a different plan under the same key accounts the
        # delta, not the sum.
        bigger = _plan(9)
        cache.put(_key(plan), bigger)
        assert len(cache) == 1
        assert cache.weight == plan_weight(bigger)

    def test_oversized_entry_still_admitted(self):
        cache = PlanCache(max_entries=10, max_weight=5)
        big = _plan(30)  # array bytes far above the bound
        cache.put(_key(big), big)
        assert cache.get(_key(big)) is big
        # ...but it crowds everything else out
        other = _plan(4)
        assert cache.put(_key(other), other) >= 1

    def test_reput_replaces_without_double_counting_weight(self):
        cache = PlanCache()
        plan = _plan(6)
        cache.put(_key(plan), plan)
        cache.put(_key(plan), plan)
        assert len(cache) == 1
        assert cache.weight == plan_weight(plan)


class TestInvalidation:
    def test_invalidate_single(self):
        cache = PlanCache()
        plan = _plan(5)
        cache.put(_key(plan), plan)
        assert cache.invalidate(_key(plan)) is True
        assert cache.invalidate(_key(plan)) is False
        assert len(cache) == 0 and cache.weight == 0

    def test_invalidate_where(self):
        cache = PlanCache()
        a, b = _plan(5), _plan(6)
        cache.put(_key(a), a)
        cache.put(_key(b), b)
        dropped = cache.invalidate_where(
            lambda k, _p: k[0] == a.graph.canonical_hash()
        )
        assert dropped == 1
        assert cache.get(_key(a)) is None
        assert cache.get(_key(b)) is b

    def test_clear(self):
        cache = PlanCache()
        for n in (3, 4, 5):
            p = _plan(n)
            cache.put(_key(p), p)
        assert cache.clear() == 3
        assert len(cache) == 0 and cache.weight == 0


class TestValidation:
    def test_rejects_bad_bounds(self):
        with pytest.raises(ReproError):
            PlanCache(max_entries=0)
        with pytest.raises(ReproError):
            PlanCache(max_weight=0)


class TestTreeFingerprint:
    def test_none_is_empty(self):
        assert tree_fingerprint(None) == ""

    def test_equal_trees_equal_fingerprints(self):
        plan = _plan(7)
        from repro.tree.tree import Tree

        clone = Tree(list(plan.tree.parents()), plan.tree.root)
        assert tree_fingerprint(clone) == tree_fingerprint(plan.tree)

    def test_child_order_matters(self):
        """Child order fixes the DFS labelling, hence the schedule —
        trees differing only in child order must not share cache keys."""
        from repro.tree.tree import Tree

        star = Tree([-1, 0, 0, 0], root=0)
        flipped = star.with_child_order(lambda v, kids: list(reversed(kids)))
        assert tree_fingerprint(flipped) != tree_fingerprint(star)

    def test_different_roots_differ(self):
        from repro.tree.tree import Tree

        a = Tree([-1, 0, 1], root=0)
        b = Tree([1, -1, 1], root=1)
        assert tree_fingerprint(a) != tree_fingerprint(b)
