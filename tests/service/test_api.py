"""API-redesign contract: keyword-only front doors, unified network
dispatch, eager registry, memoised plan execution."""

import warnings

import pytest

import repro.simulator.engine as engine_module
from repro.core.gossip import (
    ALGORITHMS,
    gossip,
    gossip_on_tree,
    resolve_network,
)
from repro.exceptions import ReproError
from repro.networks import topologies
from repro.networks.builders import tree_to_graph


class TestKeywordOnlyShims:
    def test_positional_algorithm_warns_but_works(self):
        g = topologies.path_graph(5)
        with pytest.warns(DeprecationWarning):
            plan = gossip(g, "simple")
        assert plan.algorithm == "simple"
        assert plan.schedule == gossip(g, algorithm="simple").schedule

    def test_positional_tree_warns_but_works(self):
        g = topologies.path_graph(5)
        tree = gossip(g).tree
        with pytest.warns(DeprecationWarning):
            plan = gossip(g, "concurrent-updown", tree)
        assert plan.tree == tree

    def test_gossip_on_tree_positional_warns(self):
        tree = gossip(topologies.star_graph(5)).tree
        with pytest.warns(DeprecationWarning):
            plan = gossip_on_tree(tree, "simple")
        assert plan.algorithm == "simple"

    def test_execute_positional_warns(self):
        plan = gossip(topologies.path_graph(4))
        with pytest.warns(DeprecationWarning):
            result = plan.execute(True)
        assert result.arrivals  # record_arrivals was mapped through

    def test_keyword_calls_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            plan = gossip(topologies.path_graph(5), algorithm="simple")
            plan.execute(record_arrivals=True)
            gossip_on_tree(plan.tree, algorithm="simple")

    def test_too_many_positionals_rejected(self):
        g = topologies.path_graph(4)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError):
                gossip(g, "simple", None, "extra")

    def test_gossip_typeerror_reports_exact_argument_count(self):
        """Regression: the shim double-counted the graph, reporting
        '5 given' for a 4-positional call."""
        g = topologies.path_graph(4)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(
                TypeError,
                match=r"takes at most 3 positional arguments \(4 given\)",
            ):
                gossip(g, "simple", None, "extra")

    def test_gossip_on_tree_typeerror_reports_exact_argument_count(self):
        tree = gossip(topologies.star_graph(4)).tree
        with pytest.warns(DeprecationWarning):
            with pytest.raises(
                TypeError,
                match=r"takes at most 2 positional arguments \(3 given\)",
            ):
                gossip_on_tree(tree, "simple", "extra")


class TestNetworkDispatch:
    def test_graph_passthrough(self):
        g = topologies.grid_2d(3, 3)
        graph, tree = resolve_network(g)
        assert graph is g and tree is None

    def test_tree_spec_pins_tree(self):
        base = gossip(topologies.grid_2d(3, 3)).tree
        graph, tree = resolve_network(base)
        assert tree is base
        assert graph == tree_to_graph(base)

    def test_tree_spec_with_conflicting_override_rejected(self):
        a = gossip(topologies.path_graph(4)).tree
        b = gossip(topologies.star_graph(4)).tree
        with pytest.raises(ReproError):
            resolve_network(a, tree=b)

    def test_tree_spec_with_equal_override_accepted(self):
        """An *equal* tree= override is redundant, not conflicting: the
        docstring promises rejection only for a *different* tree."""
        base = gossip(topologies.grid_2d(3, 3)).tree
        same = gossip(topologies.grid_2d(3, 3)).tree
        assert same == base and same is not base  # exercises Tree.__eq__
        graph, tree = resolve_network(base, tree=same)
        assert tree is base
        assert graph == tree_to_graph(base)

    def test_empty_size_reports_bad_topology_size(self):
        with pytest.raises(
            ReproError,
            match=r"bad topology size in 'grid:'; want 'family:n' with integer n",
        ):
            resolve_network("grid:")

    def test_non_integer_size_reports_bad_topology_size(self):
        with pytest.raises(
            ReproError,
            match=r"bad topology size in 'grid:abc'; want 'family:n' with integer n",
        ):
            resolve_network("grid:abc")

    def test_family_string_with_size(self):
        graph, _ = resolve_network("grid:9")
        assert graph.name == "grid-3x3"

    def test_family_string_default_size(self):
        graph, _ = resolve_network("path")
        assert graph.n == 16

    def test_gossip_accepts_string_and_tree(self):
        plan = gossip("star:8")
        assert plan.graph.name == "star-8"
        on_tree = gossip(plan.tree)
        assert on_tree.tree == plan.tree
        assert on_tree.execute().complete

    @pytest.mark.parametrize("bad", ["nope", "grid:lots", "grid:9:9"])
    def test_bad_strings_rejected(self, bad):
        with pytest.raises(ReproError):
            resolve_network(bad)

    def test_non_spec_rejected(self):
        with pytest.raises(ReproError):
            resolve_network(42)


class TestEagerRegistry:
    BUILTINS = {
        "concurrent-updown", "simple", "updown",
        "updown-greedy", "greedy", "telephone",
    }

    def test_registry_complete_at_import(self):
        """No gossip() call or private helper needed: importing the
        package registers every built-in algorithm."""
        assert self.BUILTINS <= set(ALGORITHMS)

    def test_registry_complete_from_bare_core_import(self):
        import subprocess
        import sys

        code = (
            "from repro.core.gossip import ALGORITHMS; "
            "names = {'concurrent-updown', 'simple', 'updown', "
            "'updown-greedy', 'greedy', 'telephone'}; "
            "missing = names - set(ALGORITHMS); "
            "assert not missing, missing"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True
        )
        assert proc.returncode == 0, proc.stderr

    def test_populate_registry_shim_warns(self):
        from repro.core.gossip import _populate_registry

        with pytest.warns(DeprecationWarning):
            _populate_registry()


class TestMemoisedExecution:
    def test_default_execution_computed_once(self, monkeypatch):
        plan = gossip(topologies.grid_2d(3, 3))
        calls = {"n": 0}
        real = engine_module.execute_schedule

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(engine_module, "execute_schedule", counting)
        times1 = plan.vertex_completion_times()
        times2 = plan.vertex_completion_times()
        result = plan.execute()
        assert calls["n"] == 1
        assert times1 == times2
        assert result is plan.execute()

    def test_non_default_execution_not_memoised(self, monkeypatch):
        plan = gossip(topologies.path_graph(5))
        calls = {"n": 0}
        real = engine_module.execute_schedule

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(engine_module, "execute_schedule", counting)
        plan.execute(record_arrivals=True)
        plan.execute(record_arrivals=True)
        assert calls["n"] == 2  # flagged replays stay fresh

    def test_memoised_result_correct(self):
        plan = gossip(topologies.star_graph(6))
        assert plan.vertex_completion_times() == {
            v: t
            for v, t in enumerate(plan.execute().completion_times)
            if t is not None
        }
