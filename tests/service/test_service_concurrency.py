"""Concurrency guarantees: the cache is thread-safe and coalescing.

The acceptance hammer: 8 threads fire a shuffled stream of requests over
a handful of unique networks at one service; planning must run *exactly
once per unique network* (in-flight coalescing), every thread must get
the one true plan object, and nothing may deadlock.
"""

import random
import threading
import time

from repro.core.gossip import gossip
from repro.networks import topologies
from repro.service import GossipService

THREADS = 8
REQUESTS_PER_THREAD = 30


class SlowCountingPlanner:
    """Counts planning runs; sleeps to widen the coalescing window."""

    def __init__(self, delay: float = 0.02):
        self.delay = delay
        self.calls = []
        self.lock = threading.Lock()

    def __call__(self, graph, *, algorithm, tree=None):
        with self.lock:
            self.calls.append(graph.canonical_hash())
        time.sleep(self.delay)
        return gossip(graph, algorithm=algorithm, tree=tree)


def _unique_graphs():
    return [
        topologies.grid_2d(3, 3),
        topologies.star_graph(9),
        topologies.path_graph(9),
        topologies.cycle_graph(9),
    ]


def test_hammer_exactly_one_planning_call_per_unique_graph():
    planner = SlowCountingPlanner()
    service = GossipService(planner=planner)
    graphs = _unique_graphs()
    barrier = threading.Barrier(THREADS)
    results = [[] for _ in range(THREADS)]
    errors = []

    def worker(idx: int) -> None:
        rng = random.Random(idx)
        # fresh-but-equal Graph objects: the cache must key on content
        local = [topologies.grid_2d(3, 3), topologies.star_graph(9),
                 topologies.path_graph(9), topologies.cycle_graph(9)]
        barrier.wait()
        try:
            for _ in range(REQUESTS_PER_THREAD):
                g = rng.choice(local)
                results[idx].append((g.canonical_hash(), service.plan(g)))
        except BaseException as exc:  # pragma: no cover - fails the test
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not errors
    assert all(not t.is_alive() for t in threads)

    # exactly one planning run per unique network, despite 240 requests
    assert sorted(planner.calls) == sorted(g.canonical_hash() for g in graphs)

    # every thread observed the single canonical plan object per network
    canonical = {g.canonical_hash(): service.plan(g) for g in graphs}
    for per_thread in results:
        assert per_thread  # each thread made progress
        for ghash, plan in per_thread:
            assert plan is canonical[ghash]

    stats = service.stats()
    assert stats.misses == len(graphs)
    assert stats.requests == THREADS * REQUESTS_PER_THREAD + len(graphs)
    assert stats.hits == stats.requests - stats.misses


def test_concurrent_distinct_graphs_all_planned():
    """plan_many across threads plans every distinct network exactly once."""
    planner = SlowCountingPlanner(delay=0.005)
    with GossipService(planner=planner, max_workers=8) as service:
        graphs = [topologies.path_graph(n) for n in range(3, 19)]
        plans = service.plan_many(graphs + graphs)
        assert len(plans) == 2 * len(graphs)
        assert len(planner.calls) == len(graphs)
        for g, plan in zip(graphs + graphs, plans):
            assert plan.graph == g


def test_failed_build_does_not_wedge_the_key():
    """An exploding planner releases the in-flight slot: later requests
    retry instead of hanging or reusing the failure."""
    boom = {"armed": True}

    def flaky(graph, *, algorithm, tree=None):
        if boom["armed"]:
            boom["armed"] = False
            raise RuntimeError("transient planner failure")
        return gossip(graph, algorithm=algorithm, tree=tree)

    # retries=0: the default policy would transparently retry this
    # transient failure; here the failure itself must surface so the
    # slot-release path is what gets exercised.
    service = GossipService(planner=flaky, retries=0)
    g = topologies.grid_2d(3, 3)
    try:
        service.plan(g)
        raise AssertionError("first call should have failed")
    except RuntimeError:
        pass
    plan = service.plan(g)
    assert plan.execute().complete
