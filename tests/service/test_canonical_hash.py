"""Property tests for ``Graph.canonical_hash()``.

The fingerprint is the serving layer's cache key, so it must be

* *invariant* under every way of presenting the same labeled graph —
  edge order, edge orientation, duplicated construction, names — and
* *distinct* for different graphs, in particular across non-isomorphic
  small graphs (non-isomorphic graphs differ as labeled graphs a
  fortiori, so a content hash separates them).
"""

from itertools import combinations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.networks import topologies
from repro.networks.graph import Graph
from tests.conftest import connected_graphs


@given(graph=connected_graphs(), seed=st.randoms(use_true_random=False))
@settings(max_examples=50, deadline=None)
def test_invariant_under_edge_order_and_orientation(graph, seed):
    edges = [list(e) for e in graph.edge_list()]
    seed.shuffle(edges)
    for e in edges:
        if seed.random() < 0.5:
            e.reverse()
    scrambled = Graph(graph.n, [tuple(e) for e in edges], name="scrambled")
    assert scrambled == graph
    assert scrambled.canonical_hash() == graph.canonical_hash()


@given(graph=connected_graphs())
@settings(max_examples=50, deadline=None)
def test_equal_graphs_equal_hashes_and_stable(graph):
    clone = Graph(graph.n, graph.edge_list())
    assert clone.canonical_hash() == graph.canonical_hash()
    # cached: repeated calls return the identical string
    assert graph.canonical_hash() is graph.canonical_hash()


@given(graph=connected_graphs(max_n=12), data=st.data())
@settings(max_examples=50, deadline=None)
def test_any_edge_change_changes_hash(graph, data):
    present = graph.edge_list()
    non_edges = [
        (u, v)
        for u, v in combinations(range(graph.n), 2)
        if not graph.has_edge(u, v)
    ]
    if non_edges:
        extra = data.draw(st.sampled_from(non_edges))
        assert graph.add_edges([extra]).canonical_hash() != graph.canonical_hash()
    if graph.m > graph.n - 1:  # keep it connected: only drop a cycle edge
        for gone in present:
            try:
                smaller = graph.remove_edges([gone])
            except Exception:  # pragma: no cover - remove_edges never raises here
                continue
            from repro.networks.bfs import is_connected

            if is_connected(smaller):
                assert smaller.canonical_hash() != graph.canonical_hash()
                break


def test_name_does_not_affect_hash():
    g = topologies.grid_2d(3, 3)
    assert g.with_name("renamed").canonical_hash() == g.canonical_hash()


def test_distinct_across_all_labeled_graphs_on_four_vertices():
    """Exhaustive: all 64 labeled graphs on 4 vertices hash distinctly."""
    all_edges = list(combinations(range(4), 2))
    hashes = set()
    count = 0
    for k in range(len(all_edges) + 1):
        for subset in combinations(all_edges, k):
            hashes.add(Graph(4, list(subset)).canonical_hash())
            count += 1
    assert len(hashes) == count == 64


def test_distinct_across_non_isomorphic_families():
    """Classic same-(n, m) non-isomorphic pairs get different fingerprints."""
    n = 6
    pairs = [
        (topologies.path_graph(n), topologies.star_graph(n)),
        (topologies.cycle_graph(n), Graph(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])),
        (topologies.kary_tree(2, 2), topologies.spider(3, 2)),
    ]
    for a, b in pairs:
        assert a.canonical_hash() != b.canonical_hash()


def test_relabeling_changes_hash_for_asymmetric_graph():
    """The fingerprint identifies the *labeled* graph: relabeling an
    asymmetric placement must re-key (a plan schedules concrete ids)."""
    star = topologies.star_graph(5)  # center is a specific vertex
    moved = star.relabeled([1, 0, 2, 3, 4])
    assert moved != star
    assert moved.canonical_hash() != star.canonical_hash()
