"""GossipService resilience: timeouts, bounded retry, degraded fallback."""

import time

import pytest

from repro.core.gossip import gossip
from repro.exceptions import PlanTimeoutError, ReproError
from repro.networks import topologies
from repro.service import GossipService


class FlakyPlanner:
    """Fails transiently ``failures`` times per key, then succeeds."""

    def __init__(self, failures, exc=OSError):
        self.failures = failures
        self.exc = exc
        self.calls = 0

    def __call__(self, graph, *, algorithm, tree=None):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc("transient planner hiccup")
        return gossip(graph, algorithm=algorithm, tree=tree)


class SlowPlanner:
    """Sleeps ``delay`` seconds per call for the configured algorithms."""

    def __init__(self, delay, slow_algorithms=("concurrent-updown",)):
        self.delay = delay
        self.slow_algorithms = set(slow_algorithms)
        self.calls = []

    def __call__(self, graph, *, algorithm, tree=None):
        self.calls.append(algorithm)
        if algorithm in self.slow_algorithms:
            time.sleep(self.delay)
        return gossip(graph, algorithm=algorithm, tree=tree)


class TestValidation:
    def test_bad_timeout_rejected(self):
        with pytest.raises(ReproError):
            GossipService(planner_timeout=0)

    def test_bad_retries_rejected(self):
        with pytest.raises(ReproError):
            GossipService(retries=-1)


class TestRetries:
    def test_transient_failures_retried_and_counted(self):
        planner = FlakyPlanner(failures=2)
        service = GossipService(planner=planner, retries=2, retry_backoff=0.001)
        plan = service.plan(topologies.grid_2d(3, 3))
        assert plan.graph.n == 9
        assert planner.calls == 3
        assert service.stats().retries == 2

    def test_retries_exhausted_reraises(self):
        planner = FlakyPlanner(failures=10)
        service = GossipService(planner=planner, retries=1, retry_backoff=0.001)
        with pytest.raises(OSError):
            service.plan(topologies.grid_2d(3, 3))
        assert planner.calls == 2  # initial try + 1 retry

    def test_deterministic_errors_never_retried(self):
        planner = FlakyPlanner(failures=10, exc=ReproError)
        service = GossipService(planner=planner, retries=3, retry_backoff=0.001)
        with pytest.raises(ReproError):
            service.plan(topologies.grid_2d(3, 3))
        assert planner.calls == 1
        assert service.stats().retries == 0


class TestTimeouts:
    def test_timeout_raises_typed_error_without_fallback(self):
        service = GossipService(
            planner=SlowPlanner(delay=2.0), planner_timeout=0.05
        )
        with pytest.raises(PlanTimeoutError):
            service.plan(topologies.path_graph(6))
        assert service.stats().timeouts == 1

    def test_fast_build_unaffected_by_budget(self):
        service = GossipService(planner_timeout=30.0)
        plan = service.plan(topologies.grid_2d(3, 3))
        assert plan.total_time > 0
        stats = service.stats()
        assert stats.timeouts == 0 and stats.degraded == 0

    def test_late_build_adopted_into_cache(self):
        planner = SlowPlanner(delay=0.3)
        service = GossipService(planner=planner, planner_timeout=0.05)
        g = topologies.path_graph(6)
        with pytest.raises(PlanTimeoutError):
            service.plan(g)
        # The abandoned build finishes in the background and warms the
        # cache; the next request is a hit, with no second planner run.
        deadline = time.monotonic() + 5.0
        while len(service.cache) == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert len(service.cache) == 1
        plan = service.plan(g)
        assert plan.graph.n == 6
        assert planner.calls == ["concurrent-updown"]


class TestDegradedFallback:
    def test_timeout_serves_fallback_flagged_degraded(self):
        planner = SlowPlanner(delay=2.0)
        service = GossipService(
            planner=planner,
            planner_timeout=0.05,
            fallback_algorithm="simple",
        )
        plan = service.plan(topologies.path_graph(8))
        assert plan.algorithm == "simple"
        stats = service.stats()
        assert stats.degraded == 1 and stats.timeouts == 1

    def test_degraded_plan_cached_under_fallback_key_only(self):
        """The primary key stays cold so the service heals itself."""
        planner = SlowPlanner(delay=2.0)
        service = GossipService(
            planner=planner,
            planner_timeout=0.05,
            fallback_algorithm="simple",
        )
        g = topologies.path_graph(8)
        service.plan(g)
        assert service.plan(g, algorithm="simple").algorithm == "simple"
        # Direct fallback requests hit the degraded entry...
        assert planner.calls.count("simple") == 1
        # ...while the primary is re-attempted (and times out again).
        service.plan(g)
        assert service.stats().degraded == 2

    def test_service_heals_once_planner_recovers(self):
        planner = SlowPlanner(delay=2.0)
        service = GossipService(
            planner=planner,
            planner_timeout=0.5,
            fallback_algorithm="simple",
        )
        g = topologies.path_graph(8)
        assert service.plan(g).algorithm == "simple"
        planner.delay = 0.0  # planner recovers
        assert service.plan(g).algorithm == "concurrent-updown"

    def test_persistent_transient_failure_degrades(self):
        calls = []

        def planner(graph, *, algorithm, tree=None):
            calls.append(algorithm)
            if algorithm == "concurrent-updown":
                raise OSError("primary planner keeps failing")
            return gossip(graph, algorithm=algorithm, tree=tree)

        service = GossipService(
            planner=planner,
            retries=1,
            retry_backoff=0.001,
            fallback_algorithm="simple",
        )
        plan = service.plan(topologies.grid_2d(3, 3))
        assert plan.algorithm == "simple"
        assert calls == ["concurrent-updown", "concurrent-updown", "simple"]
        assert service.stats().degraded == 1

    def test_both_paths_failing_raises_plan_timeout_error(self):
        service = GossipService(
            planner=SlowPlanner(delay=2.0, slow_algorithms=("concurrent-updown", "simple")),
            planner_timeout=0.05,
            fallback_algorithm="simple",
        )
        with pytest.raises(PlanTimeoutError):
            service.plan(topologies.path_graph(6))

    def test_stats_format_shows_resilience_line(self):
        service = GossipService(
            planner=SlowPlanner(delay=2.0),
            planner_timeout=0.05,
            fallback_algorithm="simple",
        )
        service.plan(topologies.path_graph(8))
        text = service.stats().format()
        assert "resilience" in text
        assert "1 timeouts" in text and "1 degraded" in text
