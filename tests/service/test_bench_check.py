"""Tier-1 smoke: the service-cache benchmark's ``--check`` gate holds.

Runs ``benchmarks/bench_service_cache.py --check`` the same way CI does
(standalone process), asserting the >= 10x warm-hit speedup on
``grid_2d(16, 16)`` — the ISSUE's acceptance criterion — and exercises
the in-process measurement helper for coverage of both entry points.
"""

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
BENCH = REPO_ROOT / "benchmarks" / "bench_service_cache.py"


def test_benchmark_check_mode_passes():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, str(BENCH), "--check", "--warm-rounds", "50", "--batch", "8"],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
        cwd=str(REPO_ROOT),
    )
    assert proc.returncode == 0, f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    assert "check: warm hit >= 10x faster than cold  OK" in proc.stdout


def test_in_process_measurement_agrees():
    from repro.service.workload import bench_plan_cache

    result = bench_plan_cache(
        "grid:256", warm_rounds=50, cold_rounds=1, batch_size=4, batch_unique=2
    )
    assert result.n == 256 and result.topology == "grid-16x16"
    result.check(min_speedup=10.0)
    assert result.batch_unique == 2
    assert result.batch_warm_throughput > 0
