"""Regression tests: workload helpers close every service they create.

``bench_plan_cache`` used to construct one ``GossipService`` per cold
sample (never closed) and close the warm service only on the happy
path; ``run_synthetic_workload`` created a default service it never
closed.  An unclosed service can hold a live ``ThreadPoolExecutor``
whose worker threads outlive the call — these tests pin the fix by
recording every service constructed and by watching the thread count.
"""

import threading

import pytest

from repro.service import workload
from repro.service.service import GossipService
from repro.service.workload import bench_plan_cache, run_synthetic_workload


class RecordingService(GossipService):
    """A GossipService that records construction and close events."""

    instances = []

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.closed = False
        RecordingService.instances.append(self)

    def close(self):
        self.closed = True
        super().close()


@pytest.fixture
def recording(monkeypatch):
    RecordingService.instances = []
    monkeypatch.setattr(workload, "GossipService", RecordingService)
    return RecordingService


def test_bench_plan_cache_closes_every_service(recording):
    bench_plan_cache(
        "grid:16", cold_rounds=2, warm_rounds=2, batch_size=4, batch_unique=2,
        max_workers=2,
    )
    # cold_rounds fresh services + warm + batch
    assert len(recording.instances) == 4
    assert all(s.closed for s in recording.instances)


def test_bench_plan_cache_closes_on_failure(recording, monkeypatch):
    """The warm/batch services are closed even when planning raises."""
    calls = {"n": 0}
    original = RecordingService.plan

    def flaky(self, *args, **kwargs):
        calls["n"] += 1
        if calls["n"] > 3:  # fail inside the warm loop
            raise RuntimeError("boom")
        return original(self, *args, **kwargs)

    monkeypatch.setattr(RecordingService, "plan", flaky)
    with pytest.raises(RuntimeError):
        bench_plan_cache(
            "grid:16", cold_rounds=2, warm_rounds=5, batch_size=2, batch_unique=1
        )
    assert all(s.closed for s in recording.instances)


def test_bench_plan_cache_no_daemon_thread_growth():
    """No thread created during the bench survives it."""
    before = set(threading.enumerate())
    bench_plan_cache(
        "grid:16", cold_rounds=1, warm_rounds=1, batch_size=4, batch_unique=2,
        max_workers=2,
    )
    leaked = set(threading.enumerate()) - before
    assert not leaked, f"threads leaked by bench_plan_cache: {leaked}"


def test_run_synthetic_workload_closes_internal_service(recording):
    stats = run_synthetic_workload(families=("grid",), sizes=(9,), requests=4)
    assert stats.requests == 4
    assert len(recording.instances) == 1
    assert recording.instances[0].closed


def test_run_synthetic_workload_leaves_caller_service_open(recording):
    with RecordingService() as mine:
        stats = run_synthetic_workload(
            mine, families=("grid",), sizes=(9,), requests=3
        )
        assert stats.requests == 3
        assert not mine.closed  # caller-supplied services stay open
        follow_up = mine.plan("grid:9")
        assert follow_up is not None
    assert mine.closed
