"""GossipService circuit breaker: open, fast-fail, degraded, half-open probe."""

import pytest

from repro.core.gossip import gossip
from repro.exceptions import CircuitOpenError, PlanTimeoutError, ReproError
from repro.networks import topologies
from repro.service import CircuitBreaker, GossipService


class FakeClock:
    """A manually-advanced monotonic clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class SwitchablePlanner:
    """Fails (transiently) while ``broken`` for the listed algorithms."""

    def __init__(self, broken_algorithms=("concurrent-updown",)):
        self.broken = True
        self.broken_algorithms = set(broken_algorithms)
        self.calls = []

    def __call__(self, graph, *, algorithm, tree=None):
        self.calls.append(algorithm)
        if self.broken and algorithm in self.broken_algorithms:
            raise OSError("planner down")
        return gossip(graph, algorithm=algorithm, tree=tree)


def breaker_service(planner, clock, *, threshold=3, cooldown=10.0, **kwargs):
    return GossipService(
        planner=planner,
        retries=0,
        breaker_threshold=threshold,
        breaker_cooldown=cooldown,
        clock=clock,
        **kwargs,
    )


class TestCircuitBreakerUnit:
    def test_validation(self):
        with pytest.raises(ReproError):
            CircuitBreaker(0, 1.0)
        with pytest.raises(ReproError):
            CircuitBreaker(1, 0.0)

    def test_threshold_consecutive_failures_open(self):
        b = CircuitBreaker(3, 5.0)
        assert not b.record_failure(now=0.0)
        assert not b.record_failure(now=1.0)
        assert b.state == "closed"
        assert b.record_failure(now=2.0)  # third consecutive failure trips
        assert b.state == "open"
        assert b.retry_after(3.0) == 4.0

    def test_success_resets_the_streak(self):
        b = CircuitBreaker(2, 5.0)
        b.record_failure(now=0.0)
        b.record_success()
        b.record_failure(now=1.0)
        assert b.state == "closed"  # streak broken: 1 + 1, never 2 in a row

    def test_probe_handed_to_exactly_one_caller(self):
        b = CircuitBreaker(1, 5.0)
        b.record_failure(now=0.0)
        assert b.acquire(now=1.0) == "reject"  # still cooling down
        assert b.acquire(now=5.0) == "probe"
        assert b.state == "half-open"
        assert b.acquire(now=5.0) == "reject"  # probe already in flight

    def test_probe_success_closes_probe_failure_reopens(self):
        b = CircuitBreaker(1, 5.0)
        b.record_failure(now=0.0)
        assert b.acquire(now=6.0) == "probe"
        assert b.record_success() is True  # healed
        assert b.state == "closed"
        b.record_failure(now=10.0)
        assert b.acquire(now=16.0) == "probe"
        assert b.record_failure(now=16.0) is True  # probe failed: reopen
        assert b.state == "open"
        assert b.acquire(now=17.0) == "reject"  # fresh cooldown from 16.0
        assert b.acquire(now=21.5) == "probe"

    def test_cancelled_probe_allows_the_next_request_to_probe(self):
        b = CircuitBreaker(1, 5.0)
        b.record_failure(now=0.0)
        assert b.acquire(now=6.0) == "probe"
        b.cancel_probe()  # probe never exercised the planner
        assert b.state == "open"
        assert b.acquire(now=6.0) == "probe"  # original timestamp kept


class TestBreakerFastFail:
    def test_opens_after_k_failures_and_fast_fails(self):
        clock, planner = FakeClock(), SwitchablePlanner()
        service = breaker_service(planner, clock, threshold=3)
        g = topologies.grid_2d(3, 3)
        for _ in range(3):
            with pytest.raises(OSError):
                service.plan(g)
        assert service.breaker_state(g) == "open"
        with pytest.raises(CircuitOpenError) as err:
            service.plan(g)
        assert err.value.algorithm == "concurrent-updown"
        assert err.value.retry_after == pytest.approx(10.0)
        # The open breaker never touched the planner.
        assert len(planner.calls) == 3
        stats = service.stats()
        assert stats.breaker_opens == 1 and stats.fast_fails == 1

    def test_half_open_probe_success_closes(self):
        clock, planner = FakeClock(), SwitchablePlanner()
        service = breaker_service(planner, clock, threshold=2)
        g = topologies.grid_2d(3, 3)
        for _ in range(2):
            with pytest.raises(OSError):
                service.plan(g)
        clock.advance(10.0)
        planner.broken = False  # planner recovers during the cooldown
        plan = service.plan(g)  # the probe
        assert plan.algorithm == "concurrent-updown"
        assert service.breaker_state(g) == "closed"
        stats = service.stats()
        assert stats.breaker_probes == 1 and stats.breaker_closes == 1

    def test_half_open_probe_failure_reopens(self):
        clock, planner = FakeClock(), SwitchablePlanner()
        service = breaker_service(planner, clock, threshold=2)
        g = topologies.grid_2d(3, 3)
        for _ in range(2):
            with pytest.raises(OSError):
                service.plan(g)
        clock.advance(10.0)
        with pytest.raises(OSError):
            service.plan(g)  # probe runs the (still broken) planner
        assert service.breaker_state(g) == "open"
        assert len(planner.calls) == 3
        assert service.stats().breaker_opens == 2  # trip + failed probe

    def test_timeout_counts_as_breaker_failure(self):
        import time as time_module

        def slow(graph, *, algorithm, tree=None):
            time_module.sleep(1.0)
            return gossip(graph, algorithm=algorithm, tree=tree)

        clock = FakeClock()
        service = GossipService(
            planner=slow,
            planner_timeout=0.05,
            breaker_threshold=1,
            breaker_cooldown=10.0,
            clock=clock,
        )
        g = topologies.path_graph(6)
        with pytest.raises(PlanTimeoutError):
            service.plan(g)
        assert service.breaker_state(g) == "open"
        with pytest.raises(CircuitOpenError):
            service.plan(g)

    def test_deterministic_errors_do_not_trip_the_breaker(self):
        clock = FakeClock()

        def bad_input(graph, *, algorithm, tree=None):
            raise ReproError("deterministic: the input is at fault")

        service = GossipService(
            planner=bad_input,
            breaker_threshold=1,
            breaker_cooldown=10.0,
            clock=clock,
        )
        g = topologies.path_graph(4)
        for _ in range(3):
            with pytest.raises(ReproError):
                service.plan(g)
        assert service.breaker_state(g) == "closed"

    def test_keys_have_independent_breakers(self):
        clock, planner = FakeClock(), SwitchablePlanner()
        service = breaker_service(planner, clock, threshold=1)
        broken, healthy = topologies.grid_2d(3, 3), topologies.path_graph(5)
        with pytest.raises(OSError):
            service.plan(broken)
        assert service.breaker_state(broken) == "open"
        planner.broken_algorithms = set()  # only 'broken' is poisoned now
        assert service.plan(healthy).graph.n == 5
        assert service.breaker_state(healthy) == "closed"
        with pytest.raises(CircuitOpenError):
            service.plan(broken)


class TestBreakerDegraded:
    def test_open_breaker_serves_fallback_without_primary(self):
        clock, planner = FakeClock(), SwitchablePlanner()
        service = breaker_service(
            planner, clock, threshold=2, fallback_algorithm="simple"
        )
        g = topologies.grid_2d(3, 3)
        for _ in range(2):
            assert service.plan(g).algorithm == "simple"  # degraded
        assert service.breaker_state(g) == "open"
        primary_calls = planner.calls.count("concurrent-updown")
        plan = service.plan(g)  # breaker open: fallback only
        assert plan.algorithm == "simple"
        assert planner.calls.count("concurrent-updown") == primary_calls
        stats = service.stats()
        assert stats.degraded == 3 and stats.fast_fails == 1

    def test_probe_after_cooldown_heals_the_degraded_key(self):
        clock, planner = FakeClock(), SwitchablePlanner()
        service = breaker_service(
            planner, clock, threshold=1, fallback_algorithm="simple"
        )
        g = topologies.grid_2d(3, 3)
        assert service.plan(g).algorithm == "simple"
        assert service.breaker_state(g) == "open"
        clock.advance(10.0)
        planner.broken = False
        assert service.plan(g).algorithm == "concurrent-updown"
        assert service.breaker_state(g) == "closed"

    def test_open_with_failing_fallback_raises_circuit_open(self):
        clock = FakeClock()
        planner = SwitchablePlanner(
            broken_algorithms=("concurrent-updown", "simple")
        )
        service = breaker_service(
            planner, clock, threshold=1, fallback_algorithm="simple"
        )
        g = topologies.path_graph(6)
        with pytest.raises(PlanTimeoutError):
            service.plan(g)  # primary and fallback both fail: trips breaker
        with pytest.raises(CircuitOpenError):
            service.plan(g)  # open: fallback still failing, typed fast-fail


class TestBreakerConfig:
    def test_validation(self):
        with pytest.raises(ReproError):
            GossipService(breaker_threshold=0)
        with pytest.raises(ReproError):
            GossipService(breaker_threshold=1, breaker_cooldown=0.0)

    def test_disabled_by_default(self):
        service = GossipService()
        g = topologies.path_graph(4)
        assert service.breaker_state(g) is None
        service.plan(g)
        assert service.breaker_state(g) is None

    def test_untouched_key_has_no_state(self):
        service = GossipService(breaker_threshold=2)
        assert service.breaker_state(topologies.path_graph(4)) is None

    def test_stats_format_shows_breaker_line(self):
        clock, planner = FakeClock(), SwitchablePlanner()
        service = breaker_service(planner, clock, threshold=1)
        with pytest.raises(OSError):
            service.plan(topologies.path_graph(6))
        with pytest.raises(CircuitOpenError):
            service.plan(topologies.path_graph(6))
        text = service.stats().format()
        assert "breaker" in text
        assert "1 opens" in text and "1 fast-fails" in text
