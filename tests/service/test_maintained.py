"""Maintenance integration: churn patches or invalidates, never lies.

The safety property (acceptance criterion): after any
``TreeMaintainer``-driven mutation, no plan served for the maintained
network may have a tree that uses a deleted edge — and cheap mutations
must *reuse* cached plans rather than flush them.
"""

import pytest

from repro.core.gossip import gossip
from repro.exceptions import GraphError
from repro.networks import topologies
from repro.service import GossipService


class CountingPlanner:
    def __init__(self):
        self.calls = 0

    def __call__(self, graph, *, algorithm, tree=None):
        self.calls += 1
        return gossip(graph, algorithm=algorithm, tree=tree)


def _tree_edges(tree):
    return {(min(p, v), max(p, v)) for p, v in tree.edges()}


class TestLazyPatching:
    def test_add_edge_patches_instead_of_replanning(self):
        planner = CountingPlanner()
        service = GossipService(planner=planner)
        net = service.maintain(topologies.cycle_graph(12), policy="lazy")
        before = net.plan()
        assert planner.calls == 1

        net.add_edge(0, 6)
        after = net.plan()
        # same tree, same schedule — re-homed, not re-planned
        assert planner.calls == 1
        assert after.schedule is before.schedule
        assert after.tree == before.tree
        assert after.graph.has_edge(0, 6)
        assert after.execute().complete
        stats = service.stats()
        assert stats.patched == 1
        assert stats.rebuilds == 0  # beyond the initial construction

    def test_remove_non_tree_edge_patches(self):
        planner = CountingPlanner()
        service = GossipService(planner=planner)
        g = topologies.cycle_graph(10)
        net = service.maintain(g, policy="lazy")
        net.plan()
        # find a cycle edge that is not a tree edge (exactly one exists)
        tree_edges = _tree_edges(net.tree)
        chord = next(e for e in g.edge_list() if e not in tree_edges)
        net.remove_edge(*chord)
        plan = net.plan()
        assert planner.calls == 1  # patched, not re-planned
        assert not plan.graph.has_edge(*chord)
        assert plan.execute().complete

    def test_patching_is_scoped_to_the_maintained_network(self):
        service = GossipService()
        bystander = topologies.grid_2d(3, 3)
        service.plan(bystander)
        net = service.maintain(topologies.cycle_graph(8), policy="lazy")
        net.plan()
        net.add_edge(0, 4)
        # the unrelated entry is untouched (still a warm hit)
        misses_before = service.stats().misses
        service.plan(bystander)
        assert service.stats().misses == misses_before


class TestTreeRebuildInvalidation:
    @pytest.mark.parametrize("policy", ["eager", "lazy"])
    def test_deleted_tree_edge_never_served(self, policy):
        service = GossipService()
        net = service.maintain(topologies.cycle_graph(12), policy=policy)
        net.plan()
        victim = next(iter(_tree_edges(net.tree)))
        net.remove_edge(*victim)

        plan = net.plan()
        assert victim not in _tree_edges(plan.tree)
        assert not plan.graph.has_edge(*victim)
        assert plan.execute(on_tree_only=True).complete

        # ...and nothing in the cache for this lineage still uses it
        current_hash = net.graph.canonical_hash()
        for _key, cached in service.cache.items_where(lambda k, p: True):
            if cached.graph.canonical_hash() == current_hash:
                assert victim not in _tree_edges(cached.tree)
        assert service.stats().invalidations >= 1

    def test_churn_sequence_always_serves_valid_plans(self):
        """Random-ish chord churn on a wheel: every served plan executes
        on its own (current) network, tree edges included."""
        service = GossipService()
        net = service.maintain(topologies.wheel(10), policy="lazy")
        ops = [
            ("remove", (0, 1)), ("add", (0, 1)), ("remove", (0, 2)),
            ("remove", (1, 2)), ("add", (1, 2)), ("remove", (0, 3)),
        ]
        for op, (u, v) in ops:
            if op == "add":
                net.add_edge(u, v)
            else:
                net.remove_edge(u, v)
            plan = net.plan()
            assert plan.graph == net.graph
            for a, b in _tree_edges(plan.tree):
                assert plan.graph.has_edge(a, b)
            assert plan.execute(on_tree_only=True).complete

    def test_rebuild_counter_flows_into_stats(self):
        service = GossipService()
        net = service.maintain(topologies.cycle_graph(8), policy="eager")
        net.add_edge(0, 4)  # eager: rebuild on every mutation
        assert service.stats().rebuilds == 1
        assert net.rebuilds == 2  # initial + rebuild


class TestMaintainerSafety:
    def test_disconnecting_removal_raises_and_preserves_state(self):
        service = GossipService()
        net = service.maintain(topologies.path_graph(6), policy="lazy")
        plan = net.plan()
        with pytest.raises(GraphError):
            net.remove_edge(2, 3)  # would disconnect the path
        assert net.graph.has_edge(2, 3)
        assert net.plan() is plan  # cache untouched

    def test_plan_keyed_by_maintained_tree(self):
        """Two maintained lineages reaching the same graph with different
        lazy trees must not share cache entries."""
        service = GossipService()
        base = topologies.cycle_graph(9)

        fresh = service.maintain(base, policy="lazy")
        stale = service.maintain(base.add_edges([(0, 4)]), policy="lazy")
        stale.remove_edge(0, 4)  # same graph as `base` now, but is the
        # tree the same?  Only if (0, 4) wasn't a tree edge; force the
        # interesting case by comparing and asserting key separation.
        plan_fresh = fresh.plan()
        plan_stale = stale.plan()
        assert plan_fresh.graph == plan_stale.graph
        if fresh.tree == stale.tree:
            assert plan_fresh is plan_stale  # legitimately shared
        else:
            assert plan_fresh.tree == fresh.tree
            assert plan_stale.tree == stale.tree
