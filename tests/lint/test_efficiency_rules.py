"""Efficiency-tier lints: legal but wasteful constructs, all warnings."""

import pytest

from repro.core.gossip import gossip
from repro.core.schedule import Round, Schedule, Transmission
from repro.lint import Severity, lint_schedule
from repro.networks import topologies


def tx(sender, message, dests):
    return Transmission(sender=sender, message=message, destinations=frozenset(dests))


def sched(*rounds):
    return Schedule([Round(r) for r in rounds])


@pytest.fixture(scope="module")
def path():
    return topologies.path_graph(4)


class TestRedundantDelivery:
    def test_delivery_to_holder_flagged(self, path):
        # 1 already holds message 1; 0 delivers it again at t=1
        wasteful = sched([tx(1, 1, {0})], [tx(0, 1, {1})])
        report = lint_schedule(path, wasteful, require_complete=False)
        found = report.by_rule("efficiency/redundant-delivery")
        assert len(found) == 1
        d = found[0]
        assert (d.round, d.sender, d.destination, d.message_id) == (1, 0, 1, 1)
        assert d.severity is Severity.WARNING

    def test_warnings_never_break_ok(self, path):
        wasteful = sched([tx(1, 1, {0})], [tx(0, 1, {1})])
        report = lint_schedule(path, wasteful, require_complete=False)
        assert report.ok
        assert report.warnings


class TestIdleRound:
    def test_interior_empty_round_flagged(self, path):
        rounds = [
            [tx(0, 0, {1})],
            [],
            [tx(1, 0, {2})],
        ]
        report = lint_schedule(path, rounds, require_complete=False)
        found = report.by_rule("efficiency/idle-round")
        assert [d.round for d in found] == [1]


class TestIdleSender:
    def test_idle_holder_next_to_free_needy_neighbour(self, path):
        # Round 0: only 0 -> 1.  Processor 2 idles although 3 is free
        # and misses message 2.
        report = lint_schedule(
            path, sched([tx(0, 0, {1})]), require_complete=False
        )
        idle = {d.sender for d in report.by_rule("efficiency/idle-sender")}
        assert 2 in idle

    def test_busy_processors_not_flagged(self, path):
        report = lint_schedule(
            path, sched([tx(0, 0, {1})]), require_complete=False
        )
        idle = {d.sender for d in report.by_rule("efficiency/idle-sender")}
        assert 0 not in idle


class TestUnicastMergeable:
    def test_repeat_send_flagged(self):
        star = topologies.star_graph(4)  # center 0
        repeat = sched(
            [tx(0, 0, {1})],
            [tx(0, 0, {2})],  # 2 was free at t=0: could have joined
        )
        report = lint_schedule(star, repeat, require_complete=False)
        found = report.by_rule("efficiency/unicast-mergeable")
        assert len(found) == 1
        assert found[0].round == 1 and found[0].sender == 0

    def test_busy_destination_not_flagged(self):
        # destination 2 was receiving in round 0, so the repeat send in
        # round 1 could not have been merged — no warning
        k4 = topologies.complete_graph(4)
        forced = sched(
            [tx(0, 0, {1}), tx(3, 3, {2})],
            [tx(0, 0, {2})],
        )
        report = lint_schedule(k4, forced, require_complete=False)
        assert report.by_rule("efficiency/unicast-mergeable") == ()


class TestOverBudget:
    def test_padded_schedule_flagged(self, path):
        plan = gossip(path)
        rounds = [list(r) for r in plan.schedule] + [[], [tx(0, 0, {1})]]
        report = lint_schedule(path, rounds, plan=plan, ignore=["paper"])
        found = report.by_rule("efficiency/over-budget")
        assert len(found) == 1
        # the locus is the budget boundary n + r
        assert found[0].round == path.n + plan.tree.height

    def test_exact_plan_within_budget(self, path):
        plan = gossip(path)
        report = lint_schedule(path, plan.schedule, plan=plan)
        assert report.by_rule("efficiency/over-budget") == ()

    def test_radius_fallback_without_plan(self, path):
        # without a plan the budget falls back to n + radius(graph)
        plan = gossip(path)
        rounds = [list(r) for r in plan.schedule] + [[], []]
        report = lint_schedule(
            path, rounds,
            initial_holds=[1 << plan.labeled.label_of(v) for v in range(path.n)],
        )
        assert report.by_rule("efficiency/over-budget")
