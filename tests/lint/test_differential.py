"""Differential tests: the static analyzer vs the dynamic validator.

Two claims, both required by the issue:

1. **Agreement** — on every deliberately-broken schedule the
   fault-injection suite produces (``tests/simulator/test_faults.py``
   mutators), ``lint_schedule`` reports an error-severity diagnostic
   exactly when ``validate_schedule`` raises, with the right rule id and
   round locus.
2. **Execution-freedom** — producing those verdicts never imports the
   execution engine: the ``repro.lint`` package has no static import of
   ``repro.simulator``, and running the analyzer does not (re)load any
   ``repro.simulator*`` module.
"""

import ast
import pathlib
import sys

import pytest

import repro.lint
from repro.core.concurrent_updown import concurrent_updown
from repro.core.schedule import Schedule
from repro.exceptions import (
    IncompleteGossipError,
    ModelViolationError,
    ScheduleError,
)
from repro.lint import lint_schedule
from repro.networks import topologies
from repro.networks.builders import tree_to_graph
from repro.networks.spanning_tree import minimum_depth_spanning_tree
from repro.simulator.faults import (
    corrupt_message,
    drop_round,
    drop_transmission,
    redirect_to_nonneighbor,
    swap_rounds,
)
from repro.simulator.state import labeled_holdings
from repro.simulator.validator import validate_schedule
from repro.tree.labeling import LabeledTree


@pytest.fixture(scope="module")
def setup():
    """The exact fixture of ``tests/simulator/test_faults.py``."""
    tree = minimum_depth_spanning_tree(topologies.grid_2d(3, 4))
    labeled = LabeledTree(tree)
    schedule = concurrent_updown(labeled)
    network = tree_to_graph(tree)
    holds = labeled_holdings(labeled.labels())
    return network, schedule, holds


def dynamic_verdict(network, schedule, holds):
    """True if the engine-backed validator accepts the schedule."""
    try:
        validate_schedule(network, schedule, initial_holds=holds)
    except (ScheduleError,):
        return False
    return True


def static_verdict(network, schedule, holds):
    report = lint_schedule(
        network, schedule, initial_holds=holds, select=["model"]
    )
    return report.ok, report


class TestAgreement:
    def test_unperturbed_agrees(self, setup):
        network, schedule, holds = setup
        ok, report = static_verdict(network, schedule, holds)
        assert ok
        assert dynamic_verdict(network, schedule, holds)

    def test_every_dropped_round_agrees(self, setup):
        network, schedule, holds = setup
        for index in range(schedule.total_time):
            broken = drop_round(schedule, index)
            ok, report = static_verdict(network, broken, holds)
            dyn = dynamic_verdict(network, broken, holds)
            assert ok == dyn, f"disagreement at dropped round {index}"
            assert not ok, f"dropping round {index} went undetected"

    def test_every_dropped_transmission_agrees(self, setup):
        network, schedule, holds = setup
        for t in range(schedule.total_time):
            for i in range(len(schedule.round_at(t))):
                broken = drop_transmission(schedule, t, i)
                ok, _ = static_verdict(network, broken, holds)
                assert ok == dynamic_verdict(network, broken, holds)

    def test_corrupt_message_agrees_with_locus(self, setup):
        network, schedule, holds = setup
        tx0 = schedule.round_at(0).transmissions[0]
        wrong = (tx0.message + 5) % network.n
        broken = corrupt_message(schedule, 0, 0, wrong)
        ok, report = static_verdict(network, broken, holds)
        assert not ok and not dynamic_verdict(network, broken, holds)
        # the forged send is flagged at its true locus: round 0
        possession = report.by_rule("model/send-without-hold")
        assert any(d.round == 0 and d.message_id == wrong for d in possession)

    def test_redirect_agrees_with_rule_id(self, setup):
        network, schedule, holds = setup
        broken = redirect_to_nonneighbor(schedule, network, 1, 0)
        ok, report = static_verdict(network, broken, holds)
        assert not ok and not dynamic_verdict(network, broken, holds)
        assert report.by_rule("model/non-edge")
        assert all(d.round == 1 for d in report.by_rule("model/non-edge"))

    def test_every_adjacent_swap_agrees(self, setup):
        network, schedule, holds = setup
        for a in range(schedule.total_time - 1):
            broken = swap_rounds(schedule, a, a + 1)
            ok, _ = static_verdict(network, broken, holds)
            assert ok == dynamic_verdict(network, broken, holds), (
                f"disagreement after swapping rounds {a} and {a + 1}"
            )

    def test_out_of_range_message_now_caught_statically(self, setup):
        """The satellite bugfix, differentially: the engine used to be
        the only layer rejecting a forged message id."""
        network, schedule, holds = setup
        broken = corrupt_message(schedule, 0, 0, network.n + 7)
        ok, report = static_verdict(network, broken, holds)
        assert not ok
        assert report.by_rule("model/message-range")
        with pytest.raises(ScheduleError):
            validate_schedule(network, broken, initial_holds=holds)

    def test_incomplete_maps_to_same_exception_family(self, setup):
        network, schedule, holds = setup
        truncated = Schedule(list(schedule)[: schedule.total_time // 2])
        ok, report = static_verdict(network, truncated, holds)
        errors = {d.rule for d in report.errors}
        try:
            validate_schedule(network, truncated, initial_holds=holds)
            pytest.fail("engine accepted a truncated schedule")
        except IncompleteGossipError:
            assert "model/incomplete-gossip" in errors
        except ModelViolationError:
            assert errors & {"model/send-without-hold", "model/non-edge"}


class TestExecutionFree:
    LINT_DIR = pathlib.Path(repro.lint.__file__).parent

    def test_no_static_import_of_simulator(self):
        """No file in repro.lint imports repro.simulator, even lazily."""
        for path in self.LINT_DIR.glob("*.py"):
            tree = ast.parse(path.read_text(), filename=str(path))
            for node in ast.walk(tree):
                if isinstance(node, ast.Import):
                    names = [a.name for a in node.names]
                elif isinstance(node, ast.ImportFrom):
                    mod = node.module or ""
                    # resolve relative imports against the package
                    names = [f"{'repro.' if node.level else ''}{mod}"]
                else:
                    continue
                for name in names:
                    assert "simulator" not in name, (
                        f"{path.name} imports {name!r}"
                    )

    def test_linting_never_loads_the_engine(self, setup):
        """Even at runtime: drop every repro.simulator* module from
        sys.modules, lint a broken schedule, and verify none returned.

        (A subprocess test is impossible — ``import repro`` itself pulls
        in the engine — so this isolates the analyzer's own behavior.)
        """
        network, schedule, holds = setup
        broken = drop_round(schedule, 2)
        saved = {
            name: sys.modules.pop(name)
            for name in list(sys.modules)
            if name == "repro.simulator" or name.startswith("repro.simulator.")
        }
        assert saved, "fixture should have loaded the simulator already"
        try:
            report = lint_schedule(network, broken, initial_holds=holds)
            assert not report.ok
            reloaded = [
                name for name in sys.modules
                if name == "repro.simulator" or name.startswith("repro.simulator.")
            ]
            assert reloaded == [], f"lint_schedule imported {reloaded}"
        finally:
            sys.modules.update(saved)
