"""GossipService(lint=...): static analysis gating cache admission."""

import dataclasses

import pytest

from repro.core.gossip import gossip
from repro.core.schedule import Schedule
from repro.exceptions import ReproError, ScheduleLintError
from repro.networks import topologies
from repro.service import GossipService


@pytest.fixture
def grid():
    return topologies.grid_2d(3, 4)


def broken_planner(graph, *, algorithm, tree=None):
    """A planner whose plans lose their final rounds (incomplete gossip)."""
    plan = gossip(graph, algorithm=algorithm, tree=tree)
    truncated = Schedule(list(plan.schedule)[:-3], name=plan.schedule.name)
    return dataclasses.replace(plan, schedule=truncated)


class TestModes:
    def test_bad_mode_rejected(self):
        with pytest.raises(ReproError, match="lint"):
            GossipService(lint="loud")

    def test_off_admits_broken_plan(self, grid):
        service = GossipService(lint="off", planner=broken_planner)
        service.plan(grid)
        assert len(service.cache) == 1
        assert service.stats().lints == 0

    def test_error_mode_serves_clean_plans(self, grid):
        service = GossipService(lint="error")
        plan = service.plan(grid)
        assert plan.total_time == grid.n + plan.tree.height
        stats = service.stats()
        assert stats.lints == 1 and stats.lint_errors == 0

    def test_error_mode_rejects_and_never_caches(self, grid):
        service = GossipService(lint="error", planner=broken_planner)
        with pytest.raises(ScheduleLintError) as excinfo:
            service.plan(grid)
        assert len(service.cache) == 0
        assert excinfo.value.diagnostics  # carries the findings
        rules = {d.rule for d in excinfo.value.diagnostics}
        assert "model/incomplete-gossip" in rules
        assert service.stats().lint_errors > 0

    def test_warn_mode_admits_but_counts(self, grid):
        service = GossipService(lint="warn", planner=broken_planner)
        service.plan(grid)
        assert len(service.cache) == 1
        stats = service.stats()
        assert stats.lints == 1
        assert stats.lint_errors > 0

    def test_cache_hits_are_not_relinted(self, grid):
        service = GossipService(lint="error")
        service.plan(grid)
        service.plan(grid)
        assert service.stats().lints == 1  # only the cold build


class TestResilienceInteraction:
    def test_lint_rejection_never_trips_breaker(self, grid):
        service = GossipService(
            lint="error",
            planner=broken_planner,
            breaker_threshold=1,
            breaker_cooldown=1000.0,
        )
        for _ in range(3):
            with pytest.raises(ScheduleLintError):
                service.plan(grid)
        # a ScheduleLintError is a deterministic ReproError: the breaker
        # must still be closed and no fallback/fast-fail was attempted
        assert service.breaker_state(grid) == "closed"
        stats = service.stats()
        assert stats.breaker_opens == 0 and stats.fast_fails == 0

    def test_lint_rejection_never_degrades(self, grid):
        service = GossipService(
            lint="error",
            planner=broken_planner,
            fallback_algorithm="simple",
        )
        with pytest.raises(ScheduleLintError):
            service.plan(grid)
        assert service.stats().degraded == 0

    def test_stats_format_reports_lint_line(self, grid):
        service = GossipService(lint="warn")
        service.plan(grid)
        assert "lint" in service.stats().format()
