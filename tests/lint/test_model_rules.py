"""Model-tier rules: each fires with the right rule id and locus."""

import pytest

from repro.core.gossip import gossip
from repro.core.schedule import Round, Schedule, Transmission
from repro.exceptions import (
    ModelViolationError,
    ReproError,
    ScheduleConflictError,
    ScheduleError,
)
from repro.lint import (
    RULES,
    STATIC_MODEL_RULES,
    Severity,
    diagnostic_exception,
    expand_selection,
    lint_schedule,
)
from repro.networks import topologies


def tx(sender, message, dests):
    return Transmission(sender=sender, message=message, destinations=frozenset(dests))


def sched(*rounds):
    return Schedule([Round(r) for r in rounds])


@pytest.fixture(scope="module")
def grid():
    return topologies.grid_2d(3, 4)


@pytest.fixture(scope="module")
def plan(grid):
    return gossip(grid)


class TestCleanPlan:
    def test_no_errors_on_concurrent_updown(self, grid, plan):
        report = lint_schedule(grid, plan.schedule, plan=plan)
        assert report.ok
        assert report.errors == ()

    def test_rules_run_recorded(self, grid, plan):
        report = lint_schedule(grid, plan.schedule, plan=plan)
        assert set(report.rules_run) == set(RULES)  # all tiers active

    def test_model_only_selection(self, grid, plan):
        report = lint_schedule(grid, plan.schedule, plan=plan, select=["model"])
        assert all(RULES[r].tier == "model" for r in report.rules_run)


class TestSendWithoutHold:
    def test_flagged_with_locus(self, grid):
        # processor 0 sends message 5 it never received
        broken = sched([tx(0, 5, {1})])
        report = lint_schedule(grid, broken, require_complete=False)
        found = report.by_rule("model/send-without-hold")
        assert len(found) == 1
        assert found[0].round == 0
        assert found[0].sender == 0
        assert found[0].message_id == 5
        assert found[0].severity is Severity.ERROR

    def test_possession_propagates(self, grid):
        # 0 -> 1 at t=0, so 1 may forward message 0 at t=1 (receive-before-send)
        ok = sched([tx(0, 0, {1})], [tx(1, 0, {2})])
        report = lint_schedule(grid, ok, require_complete=False)
        assert report.by_rule("model/send-without-hold") == ()

    def test_same_round_forward_is_too_early(self, grid):
        # delivery lands at t+1: forwarding in the same round is illegal
        early = sched([tx(0, 0, {1}), tx(1, 0, {2})])
        report = lint_schedule(grid, early, require_complete=False)
        found = report.by_rule("model/send-without-hold")
        assert [d.sender for d in found] == [1]


class TestRanges:
    def test_message_out_of_range(self, grid):
        report = lint_schedule(
            grid, [[tx(0, 99, {1})]], require_complete=False
        )
        found = report.by_rule("model/message-range")
        assert len(found) == 1 and found[0].round == 0

    def test_negative_message(self, grid):
        report = lint_schedule(
            grid, [[tx(0, -1, {1})]], require_complete=False
        )
        assert report.by_rule("model/message-range")

    def test_sender_out_of_range(self, grid):
        report = lint_schedule(
            grid, [[tx(50, 0, {1})]], require_complete=False
        )
        found = report.by_rule("model/vertex-range")
        assert found and found[0].sender == 50

    def test_destination_out_of_range(self, grid):
        report = lint_schedule(
            grid, [[tx(0, 0, {77})]], require_complete=False
        )
        found = report.by_rule("model/vertex-range")
        assert found and found[0].destination == 77

    def test_n_messages_override(self, grid):
        report = lint_schedule(
            grid, [[tx(0, 0, {1})]], n_messages=24, require_complete=False
        )
        assert report.by_rule("model/message-range") == ()


class TestNonEdge:
    def test_flagged(self, grid):
        # 0 and 2 are not adjacent in the 3x4 grid (row-major, width 4)
        report = lint_schedule(
            grid, [[tx(0, 0, {2})]], require_complete=False
        )
        found = report.by_rule("model/non-edge")
        assert found and (found[0].sender, found[0].destination) == (0, 2)


class TestCollisions:
    """Raw (non-``Round``) input is the only way to reach these rules —
    the constructors reject colliding rounds outright."""

    def test_sender_collision(self, grid):
        report = lint_schedule(
            grid, [[tx(0, 0, {1}), tx(0, 0, {4})]], require_complete=False
        )
        found = report.by_rule("model/sender-collision")
        assert found and found[0].sender == 0 and found[0].round == 0

    def test_receiver_collision(self, grid):
        report = lint_schedule(
            grid, [[tx(0, 0, {1}), tx(5, 5, {1})]], require_complete=False
        )
        found = report.by_rule("model/receiver-collision")
        assert found and found[0].destination == 1


class TestIncompleteGossip:
    def test_empty_schedule_flagged(self, grid):
        report = lint_schedule(grid, [])
        found = report.by_rule("model/incomplete-gossip")
        assert len(found) == 1
        assert not report.ok

    def test_suppressed_without_require_complete(self, grid):
        report = lint_schedule(grid, [], require_complete=False)
        assert report.by_rule("model/incomplete-gossip") == ()


class TestSelection:
    def test_unknown_rule_raises(self, grid):
        with pytest.raises(ReproError, match="unknown lint rule"):
            lint_schedule(grid, [], select=["model/typo"])

    def test_paper_rules_need_plan(self, grid):
        with pytest.raises(ReproError, match="plan"):
            lint_schedule(grid, [], select=["paper"])

    def test_ignore_disables_rule(self, grid):
        report = lint_schedule(
            grid, [[tx(0, 99, {1})]],
            ignore=["model/message-range"], require_complete=False,
        )
        assert report.by_rule("model/message-range") == ()

    def test_expand_tier_name(self):
        ids = expand_selection(["efficiency"], default_tiers=())
        assert ids and all(RULES[r].tier == "efficiency" for r in ids)


class TestDiagnosticException:
    def test_mapping_matches_dynamic_layer(self, grid):
        cases = [
            ([[tx(50, 0, {1})]], "model/vertex-range", ScheduleError),
            ([[tx(0, 99, {1})]], "model/message-range", ScheduleError),
            ([[tx(0, 0, {2})]], "model/non-edge", ModelViolationError),
            (
                [[tx(0, 0, {1}), tx(0, 0, {4})]],
                "model/sender-collision",
                ScheduleConflictError,
            ),
        ]
        for rounds, rule, exc_type in cases:
            report = lint_schedule(
                grid, rounds, select=STATIC_MODEL_RULES, require_complete=False
            )
            diag = report.by_rule(rule)[0]
            exc = diagnostic_exception(diag)
            assert isinstance(exc, exc_type)
            assert str(exc) == diag.message


class TestCheckStaticBugfix:
    """Satellite: ``check_static`` must reject out-of-range message ids."""

    def test_message_range_rejected(self, grid):
        from repro.simulator.validator import check_static

        broken = sched([tx(0, 99, {1})])
        with pytest.raises(ScheduleError, match="message 99 out of range"):
            check_static(grid, broken)

    def test_negative_message_rejected(self, grid):
        from repro.simulator.validator import check_static

        broken = sched([tx(0, -3, {1})])
        with pytest.raises(ScheduleError, match="out of range"):
            check_static(grid, broken)

    def test_clean_schedule_passes(self, grid, plan):
        from repro.simulator.validator import check_static

        check_static(grid, plan.schedule)
