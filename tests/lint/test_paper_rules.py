"""Paper-invariant rules: the structural shape of ConcurrentUpDown plans.

These rules re-verify Theorem 1's invariants from the schedule and the
labelling alone: tree-edge-only traffic, contiguous DFS label intervals,
label-monotone up-phase, no downward backflow, root completion by round
``n``, and the exact ``n + r`` length.
"""

import dataclasses

import pytest

from repro.core.gossip import gossip
from repro.core.schedule import Transmission
from repro.lint import lint_schedule
from repro.networks import topologies
from repro.tree.labeling import LabeledTree


def tx(sender, message, dests):
    return Transmission(sender=sender, message=message, destinations=frozenset(dests))


@pytest.fixture(scope="module")
def plan():
    return gossip(topologies.grid_2d(3, 4))


def paper_lint(plan_, rounds):
    return lint_schedule(plan_.graph, rounds, plan=plan_, select=["paper"])


class TestCleanPlans:
    @pytest.mark.parametrize(
        "family", ["path", "star", "grid", "hypercube", "binary-tree", "random"]
    )
    def test_all_paper_rules_hold(self, family):
        from repro.analysis.sweep import family_instance

        p = gossip(family_instance(family, 16))
        report = lint_schedule(p.graph, p.schedule, plan=p)
        assert report.errors == ()

    def test_paper_tier_auto_active_for_concurrent_updown(self, plan):
        report = lint_schedule(plan.graph, plan.schedule, plan=plan)
        assert any(r.startswith("paper/") for r in report.rules_run)

    def test_paper_tier_inactive_for_other_algorithms(self):
        p = gossip(topologies.grid_2d(3, 4), algorithm="simple")
        report = lint_schedule(p.graph, p.schedule, plan=p)
        assert not any(r.startswith("paper/") for r in report.rules_run)


class TestTreeEdge:
    def test_non_tree_edge_flagged(self, plan):
        tree = plan.tree
        # find a graph edge that is not a tree parent-child pair
        u, v = next(
            (a, b)
            for a in range(plan.graph.n)
            for b in plan.graph.neighbors(a)
            if tree.parent(a) != b and tree.parent(b) != a
        )
        rounds = [list(r) for r in plan.schedule]
        rounds.append([tx(u, plan.labeled.label_of(u), {v})])
        report = paper_lint(plan, rounds)
        found = report.by_rule("paper/tree-edge")
        assert len(found) == 1
        d = found[0]
        assert (d.round, d.sender, d.destination) == (len(rounds) - 1, u, v)


class TestUpMonotone:
    def _up_sends(self, plan):
        """(round, tx_index, tx) triples whose destinations include the
        sender's parent."""
        out = []
        for t, rnd in enumerate(plan.schedule):
            for i, transmission in enumerate(rnd):
                if plan.tree.parent(transmission.sender) in transmission.destinations:
                    out.append((t, i, transmission))
        return out

    def test_foreign_message_up_flagged(self, plan):
        t, i, up = self._up_sends(plan)[0]
        blk = plan.labeled.block(up.sender)
        foreign = (blk.j + 1) % plan.graph.n
        assert not blk.i <= foreign <= blk.j
        rounds = [list(r) for r in plan.schedule]
        rounds[t][i] = dataclasses.replace(up, message=foreign)
        report = paper_lint(plan, rounds)
        found = report.by_rule("paper/up-monotone")
        assert found and found[0].round == t and found[0].sender == up.sender

    def test_order_violation_flagged(self, plan):
        # find one vertex with two up-sends and swap their messages
        by_vertex = {}
        for t, i, up in self._up_sends(plan):
            by_vertex.setdefault(up.sender, []).append((t, i, up))
        sender, events = next(
            (s, e) for s, e in by_vertex.items() if len(e) >= 2
        )
        (t1, i1, up1), (t2, i2, up2) = events[0], events[1]
        rounds = [list(r) for r in plan.schedule]
        rounds[t1][i1] = dataclasses.replace(up1, message=up2.message)
        rounds[t2][i2] = dataclasses.replace(up2, message=up1.message)
        report = paper_lint(plan, rounds)
        found = report.by_rule("paper/up-monotone")
        assert any(d.sender == sender for d in found)


class TestDownNoBackflow:
    def test_backflow_flagged(self, plan):
        # find a down-send and replace its message with the child's own label
        for t, rnd in enumerate(plan.schedule):
            for i, transmission in enumerate(rnd):
                kids = set(plan.tree.children(transmission.sender))
                down = sorted(kids & transmission.destinations)
                if down:
                    child = down[0]
                    rounds = [list(r) for r in plan.schedule]
                    rounds[t][i] = dataclasses.replace(
                        transmission, message=plan.labeled.label_of(child)
                    )
                    report = paper_lint(plan, rounds)
                    found = report.by_rule("paper/down-no-backflow")
                    assert any(
                        d.round == t and d.destination == child for d in found
                    )
                    return
        pytest.fail("no down-send found in the plan")


class TestLabelContiguity:
    def test_swapped_labels_flagged(self, plan):
        # forge a labelling whose label map disagrees with its blocks
        good = plan.labeled
        labels = list(good.labels())
        a, b = 0, plan.graph.n - 1
        labels[a], labels[b] = labels[b], labels[a]
        forged = object.__new__(LabeledTree)
        vertex = [0] * len(labels)
        for v, lbl in enumerate(labels):
            vertex[lbl] = v
        forged._tree = good.tree
        forged._arrays = good.arrays
        forged._label = tuple(labels)
        forged._vertex = tuple(vertex)
        forged._blocks = good.blocks()
        broken_plan = dataclasses.replace(plan, labeled=forged)
        report = paper_lint(broken_plan, plan.schedule)
        assert report.by_rule("paper/label-contiguity")


class TestRootComplete:
    def test_truncated_schedule_flagged(self, plan):
        rounds = [list(r) for r in plan.schedule][:5]
        report = paper_lint(plan, rounds)
        found = report.by_rule("paper/root-complete")
        assert found and "never" in found[0].message


class TestLengthCertificate:
    def test_padded_schedule_flagged(self, plan):
        rounds = [list(r) for r in plan.schedule] + [[]]
        report = paper_lint(plan, rounds)
        found = report.by_rule("paper/length-certificate")
        assert len(found) == 1
        assert found[0].round == len(rounds)

    def test_exact_plan_passes(self, plan):
        report = paper_lint(plan, plan.schedule)
        assert report.by_rule("paper/length-certificate") == ()
