"""Property: lossy execution under round reordering stays well-behaved.

``swap_rounds`` models what a real network's reordering does to a
schedule: transmissions execute out of their planned order.  The lossy
engine must degrade *gracefully* under any such permutation — a sender
missing its message suppresses the send (never invents data), and the
observable result obeys two invariants the runtime's correctness rests
on:

* **monotone possession** — replaying the recorded arrivals on top of
  the initial holdings reconstructs ``final_holds`` exactly: hold sets
  only ever grow, and nothing is held that never arrived;
* **completion is counted once** — ``completion_times[v]`` is exactly
  the first instant ``v`` held everything (never reset, never counted
  again), and duplicate deliveries are tallied without re-completing.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gossip import gossip
from repro.networks import topologies
from repro.networks.random_graphs import random_connected_gnp, random_tree
from repro.simulator.faults import swap_rounds
from repro.simulator.lossy import FaultModel, execute_with_faults
from repro.simulator.state import labeled_holdings


@st.composite
def plans(draw):
    """Gossip plans on paths, random trees, and connected G(n, p)."""
    n = draw(st.integers(min_value=3, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    kind = draw(st.sampled_from(["path", "tree", "gnp"]))
    if kind == "path":
        graph = topologies.path_graph(n)
    elif kind == "tree":
        graph = random_tree(n, seed=seed)
    else:
        graph = random_connected_gnp(n, 0.35, seed=seed)
    return gossip(graph)


@given(
    plan=plans(),
    a=st.integers(min_value=0, max_value=10_000),
    b=st.integers(min_value=0, max_value=10_000),
    drop=st.sampled_from([0.0, 0.15]),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=60, deadline=None)
def test_reordered_execution_monotone_single_completion(plan, a, b, drop, seed):
    total = plan.schedule.total_time
    mutated = swap_rounds(plan.schedule, a % total, b % total)
    holds0 = labeled_holdings(plan.labeled.labels())
    result = execute_with_faults(
        plan.graph,
        mutated,
        FaultModel(seed=seed, drop_rate=drop),
        initial_holds=holds0,
        record_arrivals=True,
    )

    n = plan.graph.n
    full = (1 << n) - 1

    # Independent replay of the arrival stream.
    holds = list(holds0)
    completion = [0 if h == full else None for h in holds]
    duplicates = 0
    last_time = 0
    for ev in result.arrivals:
        assert ev.time >= last_time, "arrivals must be time-ordered"
        last_time = ev.time
        bit = 1 << ev.message
        if holds[ev.receiver] & bit:
            duplicates += 1
            continue
        holds[ev.receiver] |= bit
        if holds[ev.receiver] == full and completion[ev.receiver] is None:
            completion[ev.receiver] = ev.time

    # Monotone possession: the replay lands exactly on final_holds, and
    # every final hold set contains its initial one.
    assert holds == list(result.final_holds)
    for v in range(n):
        assert result.final_holds[v] & holds0[v] == holds0[v]

    # Completion counted exactly once, at the first full-possession time.
    assert completion == list(result.completion_times)
    assert result.duplicate_deliveries == duplicates
    assert result.complete == all(h == full for h in holds)

    # Reordering never makes the engine invent data: either the run
    # completed anyway (harmless swap) or some sends were suppressed /
    # some processors never finished — but no third outcome.
    if not result.complete:
        assert any(t is None for t in result.completion_times)
