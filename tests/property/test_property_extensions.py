"""Property-based tests for the Section 4 extensions and UpDown."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.online import online_matches_offline, run_online_gossip
from repro.core.updown import updown_gossip, updown_total_time_bound
from repro.core.weighted import expand_weighted_tree, weighted_gossip
from repro.networks.builders import tree_to_graph
from repro.simulator.engine import execute_schedule
from repro.simulator.state import labeled_holdings
from tests.conftest import connected_graphs, labeled_trees


@given(labeled=labeled_trees(max_n=24))
@settings(max_examples=40, deadline=None)
def test_updown_within_two_phase_budget(labeled):
    """The reconstructed UpDown never exceeds (n-1+r) + (2(r-1)+1)."""
    schedule = updown_gossip(labeled)
    assert schedule.total_time <= updown_total_time_bound(
        labeled.n, labeled.height
    )
    execute_schedule(
        tree_to_graph(labeled.tree),
        schedule,
        initial_holds=labeled_holdings(labeled.labels()),
        require_complete=True,
    )


@given(labeled=labeled_trees(max_n=24))
@settings(max_examples=40, deadline=None)
def test_updown_never_faster_than_concurrent_minus_slack(labeled):
    """UpDown >= n - 1 always (receive capacity)."""
    if labeled.n > 1:
        assert updown_gossip(labeled).total_time >= labeled.n - 1


@given(labeled=labeled_trees(max_n=20))
@settings(max_examples=40, deadline=None)
def test_online_always_matches_offline(labeled):
    """The (i, j, k)-only protocol is schedule-for-schedule identical."""
    assert online_matches_offline(labeled)


@given(labeled=labeled_trees(max_n=16))
@settings(max_examples=25, deadline=None)
def test_online_total_time(labeled):
    expected = 0 if labeled.n == 1 else labeled.n + labeled.height
    assert run_online_gossip(labeled).total_time == expected


@given(
    graph=connected_graphs(max_n=10),
    data=st.data(),
)
@settings(max_examples=25, deadline=None)
def test_weighted_gossip_exact_bound(graph, data):
    weights = data.draw(
        st.lists(
            st.integers(min_value=1, max_value=3),
            min_size=graph.n,
            max_size=graph.n,
        )
    )
    plan = weighted_gossip(graph, weights)
    assert plan.total_messages == sum(weights)
    assert plan.total_time == plan.bound
    result = plan.execute()
    assert result.complete
    assert max(plan.real_round_load().values()) <= 2


@given(
    labeled=labeled_trees(max_n=14),
    data=st.data(),
)
@settings(max_examples=25, deadline=None)
def test_chain_expansion_invariants(labeled, data):
    weights = data.draw(
        st.lists(
            st.integers(min_value=1, max_value=3),
            min_size=labeled.n,
            max_size=labeled.n,
        )
    )
    expanded, owner = expand_weighted_tree(labeled.tree, weights)
    assert expanded.n == sum(weights)
    # each real vertex owns a contiguous chain of its weight
    for v in range(labeled.n):
        chain = [virt for virt in range(expanded.n) if owner[virt] == v]
        assert len(chain) == weights[v]
        assert chain == list(range(chain[0], chain[0] + len(chain)))
    # expanded height >= original height (chains only stretch paths)
    assert expanded.height >= labeled.tree.height
