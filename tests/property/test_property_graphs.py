"""Property-based tests: graph substrate invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.networks.bfs import (
    all_eccentricities,
    bfs_levels,
    bfs_levels_reference,
    bfs_tree,
    distance_matrix,
)
from repro.networks.properties import center, diameter, radius
from repro.networks.spanning_tree import minimum_depth_spanning_tree
from tests.conftest import connected_graphs


@given(graph=connected_graphs(), source=st.integers(min_value=0, max_value=100))
@settings(max_examples=50, deadline=None)
def test_vectorised_bfs_matches_reference(graph, source):
    src = source % graph.n
    assert bfs_levels(graph, src).tolist() == bfs_levels_reference(graph, src)


@given(graph=connected_graphs())
@settings(max_examples=40, deadline=None)
def test_bfs_distances_are_metric(graph):
    d = distance_matrix(graph)
    n = graph.n
    assert (d == d.T).all()
    for u, v in graph.edges():
        assert abs(int(d[0, u]) - int(d[0, v])) <= 1  # edges span <= 1 level


@given(graph=connected_graphs())
@settings(max_examples=40, deadline=None)
def test_radius_diameter_sandwich(graph):
    r, d = radius(graph), diameter(graph)
    assert r <= d <= 2 * r
    assert r <= graph.n / 2 or graph.n == 1


@given(graph=connected_graphs())
@settings(max_examples=40, deadline=None)
def test_center_attains_radius(graph):
    r = radius(graph)
    ecc = all_eccentricities(graph)
    for c in center(graph):
        assert ecc[c] == r


@given(graph=connected_graphs())
@settings(max_examples=40, deadline=None)
def test_min_depth_tree_spans_with_radius_height(graph):
    tree = minimum_depth_spanning_tree(graph)
    assert tree.n == graph.n
    assert tree.height == radius(graph)
    for p, c in tree.edges():
        assert graph.has_edge(p, c)


@given(graph=connected_graphs(), source=st.integers(min_value=0, max_value=100))
@settings(max_examples=40, deadline=None)
def test_bfs_tree_parents_decrease_distance(graph, source):
    src = source % graph.n
    dist, parent = bfs_tree(graph, src)
    for v in range(graph.n):
        if v != src:
            assert dist[parent[v]] == dist[v] - 1
