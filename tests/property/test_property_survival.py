"""Property tests: permanent-failure parity and survival completeness.

Two acceptance-criteria invariants:

* a fault model with *explicitly zero* permanent rates is bit-identical
  to the pre-existing transient-only model — same dataclass value, same
  draws, same execution on every field;
* on any topology family in :data:`repro.analysis.sweep.FAMILIES`,
  :func:`~repro.core.survival.survive` either achieves **full survivor
  coverage** in a single diagnose pass (validated strictly, with the
  dead untouched) or raises the typed
  :class:`~repro.exceptions.SurvivorSetError` (nobody survived) —
  never a partial, silent answer.  When the residual network is
  partitioned, ``allow_partition=False`` must refuse with the typed
  :class:`~repro.exceptions.PartitionedNetworkError`.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.sweep import FAMILIES, family_instance
from repro.core.gossip import gossip
from repro.core.recovery import execute_plan_with_faults
from repro.core.survival import survive, validate_survival
from repro.exceptions import PartitionedNetworkError, SurvivorSetError
from repro.simulator.lossy import FaultModel


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    drop=st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
    outage=st.floats(min_value=0.0, max_value=0.3, allow_nan=False),
    crash=st.floats(min_value=0.0, max_value=0.3, allow_nan=False),
    family=st.sampled_from(sorted(FAMILIES)),
    n=st.integers(min_value=4, max_value=12),
)
@settings(max_examples=25, deadline=None)
def test_zero_permanent_rates_are_bit_identical(
    seed, drop, outage, crash, family, n
):
    """``fail_stop_rate=0, link_fail_rate=0`` must not change a single
    observable of the transient-only semantics."""
    transient = FaultModel(
        seed=seed, drop_rate=drop, link_outage_rate=outage, crash_rate=crash
    )
    explicit = FaultModel(
        seed=seed,
        drop_rate=drop,
        link_outage_rate=outage,
        crash_rate=crash,
        fail_stop_rate=0.0,
        link_fail_rate=0.0,
    )
    assert transient == explicit
    assert transient.is_null == explicit.is_null
    assert not explicit.has_permanent
    graph = family_instance(family, n)
    plan = gossip(graph)
    a = execute_plan_with_faults(plan, transient, record_arrivals=True)
    b = execute_plan_with_faults(plan, explicit, record_arrivals=True)
    assert a.lost == b.lost
    assert a.suppressed == b.suppressed
    assert a.final_holds == b.final_holds
    assert a.completion_times == b.completion_times
    assert a.arrivals == b.arrivals


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    rate=st.floats(min_value=0.0, max_value=0.15, allow_nan=False),
    link_rate=st.floats(min_value=0.0, max_value=0.05, allow_nan=False),
    family=st.sampled_from(sorted(FAMILIES)),
    n=st.integers(min_value=4, max_value=14),
)
@settings(max_examples=25, deadline=None)
def test_survive_full_coverage_or_typed_error(
    seed, rate, link_rate, family, n
):
    """One diagnose pass: full survivor coverage, or a typed refusal."""
    graph = family_instance(family, n)
    plan = gossip(graph)
    model = FaultModel(
        seed=seed, fail_stop_rate=rate, link_fail_rate=link_rate
    )
    faulty = execute_plan_with_faults(plan, model)
    try:
        outcome = survive(graph, plan, faulty)
    except SurvivorSetError:
        # Legal only when literally nobody survived.
        horizon = faulty.total_time
        assert all(model.fail_stopped(horizon, v) for v in range(graph.n))
        return
    assert outcome.survivor_coverage == 1.0
    validate_survival(
        outcome.diagnosis,
        outcome.labels,
        outcome.final_holds,
        before=faulty.final_holds,
    )
    for v in outcome.diagnosis.dead:
        assert outcome.final_holds[v] == faulty.final_holds[v]
    for cp in outcome.component_plans:
        assert cp.rounds <= cp.degraded_bound
    if outcome.diagnosis.partitioned:
        try:
            survive(graph, plan, faulty, allow_partition=False)
            raise AssertionError("partitioned run must refuse strict mode")
        except PartitionedNetworkError as err:
            assert err.pairs
            assert err.components == outcome.diagnosis.components
    else:
        # Connected residual: the guarantee is *all live messages
        # everywhere alive*, and strict mode must accept it too.
        strict = survive(graph, plan, faulty, allow_partition=False)
        assert strict.survivor_coverage == 1.0
