"""Property tests: timeline extraction is lossless.

Every transmission of a tree schedule appears in the senders' and
receivers' timelines with consistent times, so the paper's tables are a
faithful projection — not a re-derivation that could hide a mismatch.
"""

from hypothesis import given, settings

from repro.core.concurrent_updown import concurrent_updown
from repro.simulator.trace import all_timelines
from tests.conftest import labeled_trees


@given(labeled=labeled_trees(max_n=20))
@settings(max_examples=30, deadline=None)
def test_every_transmission_projected(labeled):
    tree = labeled.tree
    schedule = concurrent_updown(labeled)
    timelines = all_timelines(tree, schedule)
    for t, rnd in enumerate(schedule):
        for tx in rnd:
            sender_tl = timelines[tx.sender]
            parent = tree.parent(tx.sender)
            for d in tx.destinations:
                if d == parent:
                    assert sender_tl.send_to_parent[t] == tx.message
                else:
                    assert sender_tl.send_to_child[t] == tx.message
                # receiver's view at time t + 1
                recv_tl = timelines[d]
                if tree.parent(d) == tx.sender:
                    assert recv_tl.receive_from_parent[t + 1] == tx.message
                else:
                    assert recv_tl.receive_from_child[t + 1] == tx.message


@given(labeled=labeled_trees(max_n=20))
@settings(max_examples=30, deadline=None)
def test_send_receive_row_duality(labeled):
    """Each send-to-parent entry has the matching receive-from-child entry
    at the parent, one round later."""
    tree = labeled.tree
    schedule = concurrent_updown(labeled)
    timelines = all_timelines(tree, schedule)
    for v in range(labeled.n):
        parent = tree.parent(v)
        if parent < 0:
            continue
        for t, m in timelines[v].send_to_parent.items():
            assert timelines[parent].receive_from_child[t + 1] == m


@given(labeled=labeled_trees(max_n=18))
@settings(max_examples=25, deadline=None)
def test_receive_rows_cover_all_messages(labeled):
    """Each vertex's receive rows contain exactly its n - 1 foreign
    messages (ConcurrentUpDown never delivers duplicates)."""
    tree = labeled.tree
    schedule = concurrent_updown(labeled)
    for tl in all_timelines(tree, schedule):
        received = list(tl.receive_from_parent.values()) + list(
            tl.receive_from_child.values()
        )
        own = labeled.label_of(tl.vertex)
        assert sorted(received) == [m for m in range(labeled.n) if m != own]
