"""Property-based tests: Theorem 1 and friends over random trees/graphs.

The heart of the reproduction: for *any* connected network, the
ConcurrentUpDown pipeline yields a valid, complete gossip schedule of
total communication time exactly ``n + r``.
"""

from hypothesis import given, settings

from repro.core.concurrent_updown import concurrent_updown
from repro.core.gossip import gossip
from repro.core.propagate_down import propagate_down
from repro.core.propagate_up import propagate_up
from repro.core.simple import simple_gossip
from repro.networks.builders import tree_to_graph
from repro.networks.properties import radius
from repro.simulator.engine import execute_schedule
from repro.simulator.state import labeled_holdings
from tests.conftest import connected_graphs, labeled_trees


@given(labeled=labeled_trees())
@settings(max_examples=50, deadline=None)
def test_theorem1_on_trees(labeled):
    """Exactly n + height rounds; complete; zero duplicate deliveries."""
    schedule = concurrent_updown(labeled)
    n = labeled.n
    expected = 0 if n == 1 else n + labeled.height
    assert schedule.total_time == expected
    result = execute_schedule(
        tree_to_graph(labeled.tree),
        schedule,
        initial_holds=labeled_holdings(labeled.labels()),
        require_complete=True,
    )
    assert result.complete
    assert result.duplicate_deliveries == 0


@given(graph=connected_graphs())
@settings(max_examples=40, deadline=None)
def test_theorem1_on_networks(graph):
    """The full pipeline: min-depth tree then ConcurrentUpDown = n + r."""
    plan = gossip(graph)
    expected = 0 if graph.n == 1 else graph.n + radius(graph)
    assert plan.total_time == expected
    plan.execute(on_tree_only=True)


@given(labeled=labeled_trees())
@settings(max_examples=40, deadline=None)
def test_lemma1_simple_exact(labeled):
    schedule = simple_gossip(labeled)
    n = labeled.n
    expected = 0 if n == 1 else 2 * n + labeled.height - 3
    assert schedule.total_time == expected
    execute_schedule(
        tree_to_graph(labeled.tree),
        schedule,
        initial_holds=labeled_holdings(labeled.labels()),
        require_complete=True,
    )


@given(labeled=labeled_trees())
@settings(max_examples=40, deadline=None)
def test_up_down_halves_never_conflict(labeled):
    """The Theorem 1 no-interference claim, checked by merging through
    the conflict-detecting builder (raises on any violation)."""
    up = propagate_up(labeled)
    down = propagate_down(labeled)
    merged = concurrent_updown(labeled)  # would raise on interference
    assert merged.total_messages() <= up.total_messages() + down.total_messages()


@given(labeled=labeled_trees(max_n=24))
@settings(max_examples=30, deadline=None)
def test_propagate_up_alone_fills_the_root(labeled):
    result = execute_schedule(
        tree_to_graph(labeled.tree),
        propagate_up(labeled),
        initial_holds=labeled_holdings(labeled.labels()),
    )
    assert result.final_holds[labeled.tree.root] == (1 << labeled.n) - 1


@given(graph=connected_graphs(max_n=16))
@settings(max_examples=25, deadline=None)
def test_gossip_never_below_trivial_bound(graph):
    plan = gossip(graph)
    if graph.n > 1:
        assert plan.total_time >= graph.n - 1


@given(graph=connected_graphs(max_n=14))
@settings(max_examples=20, deadline=None)
def test_approximation_ratio_asymptotically_1_5(graph):
    """Section 4: r <= n/2, so the schedule length n + r is at most
    1.5 n = 1.5 (n - 1) + 1.5 — the paper's near-optimality claim."""
    if graph.n < 3:
        return
    plan = gossip(graph)
    assert plan.total_time <= 1.5 * plan.graph.n
