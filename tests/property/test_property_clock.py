"""Property tests: the injectable clock's scaling contract.

:class:`~repro.runtime.clock.ScaledClock` is the lever that lets a whole
failure-detection scenario run in tens of milliseconds: *waits* shrink
by ``scale`` while *reported time* stays in virtual seconds.  Three
properties carry the runtime's correctness under any scale:

* ``sleep(v)`` and ``wait_for(..., v)`` block for about ``v * scale``
  real seconds;
* ``time()`` advances in virtual seconds — real elapsed divided by
  ``scale`` — so staleness arithmetic against configured intervals needs
  no rescaling;
* therefore deadline arithmetic of the form ``clock.time() + timeout``
  (the :meth:`GossipPeer._await_tokens` barrier, heartbeat staleness,
  the runner's run deadline) is *scale-invariant*: the virtual seconds a
  wait consumes equal the wait's argument, whatever the scale.

Timing assertions use one-sided lower bounds plus generous slack — CI
boxes stall, they do not hurry.
"""

import asyncio
import time

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gossip import gossip
from repro.core.online import build_processors
from repro.exceptions import RuntimeDeadlineError
from repro.runtime import GossipPeer, RuntimeConfig, ScaledClock

import pytest

#: Real-seconds slack for "did not oversleep" upper bounds: loaded
#: single-core CI can stall an event loop for a long beat.
_SLACK = 0.25

scales = st.sampled_from([0.05, 0.1, 0.2, 0.5, 1.0])
virtual_waits = st.floats(min_value=0.01, max_value=0.08)


@given(scale=scales, virtual=virtual_waits)
@settings(max_examples=8, deadline=None)
def test_sleep_scales_real_waits(scale, virtual):
    clock = ScaledClock(scale)

    async def run():
        start = time.monotonic()
        await clock.sleep(virtual)
        return time.monotonic() - start

    real = asyncio.run(run())
    assert real >= virtual * scale * 0.9
    assert real <= virtual * scale + _SLACK


@given(scale=scales, virtual=virtual_waits)
@settings(max_examples=8, deadline=None)
def test_wait_for_timeout_scales_real_waits(scale, virtual):
    clock = ScaledClock(scale)

    async def run():
        start = time.monotonic()
        with pytest.raises(asyncio.TimeoutError):
            await clock.wait_for(asyncio.Event().wait(), virtual)
        return time.monotonic() - start

    real = asyncio.run(run())
    assert real >= virtual * scale * 0.9
    assert real <= virtual * scale + _SLACK


@given(scale=scales, virtual=virtual_waits)
@settings(max_examples=8, deadline=None)
def test_time_reports_virtual_seconds(scale, virtual):
    """Virtual elapsed across a sleep equals the sleep argument, any scale.

    This is the scale-invariance every ``clock.time() + timeout``
    deadline (round barriers, heartbeat staleness, run deadlines) rests
    on: the arithmetic never mentions ``scale``.
    """
    clock = ScaledClock(scale)

    async def run():
        before = clock.time()
        await clock.sleep(virtual)
        return clock.time() - before

    elapsed = asyncio.run(run())
    assert elapsed >= virtual * 0.9
    # Slack is in real seconds; convert to the virtual ruler.
    assert elapsed <= virtual + _SLACK / scale


@given(scale=st.sampled_from([0.05, 0.1, 0.25]))
@settings(max_examples=3, deadline=None)
def test_await_tokens_deadline_is_scale_invariant(scale):
    """The round barrier times out after ``round_timeout`` *virtual* seconds.

    A peer whose neighbour never speaks must raise the typed round
    deadline after about ``round_timeout * scale`` real seconds — the
    deadline arithmetic itself never changes with the scale.
    """
    round_timeout = 0.8
    config = RuntimeConfig(
        ack_timeout=0.02, heartbeat_interval=0.05, fail_after=0.2,
        round_timeout=round_timeout, run_timeout=60.0,
    )
    plan = gossip("path:3")
    procs = build_processors(plan.labeled)
    clock = ScaledClock(scale)
    peer = GossipPeer(1, procs[1], config=config, clock=clock,
                      suspect=lambda src, dst: None)

    async def run():
        start = time.monotonic()
        with pytest.raises(RuntimeDeadlineError, match="no token"):
            await peer._await_tokens(0, 0, (0,))
        return time.monotonic() - start

    real = asyncio.run(run())
    assert real >= round_timeout * scale * 0.9
    assert real <= round_timeout * scale + _SLACK
