"""Property-based tests: simulator conservation laws and validator power."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gossip import gossip
from repro.simulator.engine import execute_schedule
from repro.simulator.metrics import compute_metrics, link_loads
from repro.simulator.state import labeled_holdings, popcount
from tests.conftest import connected_graphs


@given(graph=connected_graphs(max_n=18))
@settings(max_examples=30, deadline=None)
def test_hold_sets_grow_monotonically(graph):
    """Replaying round prefixes: nobody ever loses a message."""
    plan = gossip(graph)
    from repro.core.schedule import Schedule

    holds = labeled_holdings(plan.labeled.labels())
    prev_counts = [popcount(h) for h in holds]
    for t in range(1, plan.schedule.total_time + 1):
        prefix = Schedule(plan.schedule.rounds[:t])
        result = execute_schedule(plan.graph, prefix, initial_holds=holds)
        counts = [popcount(h) for h in result.final_holds]
        assert all(c >= p for c, p in zip(counts, prev_counts))
        prev_counts = counts


@given(graph=connected_graphs(max_n=20))
@settings(max_examples=30, deadline=None)
def test_message_count_conservation(graph):
    """Total messages held = initial n + deliveries - duplicates."""
    plan = gossip(graph)
    holds = labeled_holdings(plan.labeled.labels())
    result = execute_schedule(plan.graph, plan.schedule, initial_holds=holds)
    total_held = sum(popcount(h) for h in result.final_holds)
    deliveries = plan.schedule.total_deliveries()
    assert total_held == graph.n + deliveries - result.duplicate_deliveries


@given(graph=connected_graphs(max_n=20))
@settings(max_examples=30, deadline=None)
def test_per_round_receive_rule(graph):
    """No round of a generated schedule delivers twice to one processor
    (rule 1) or sends twice from one processor (rule 2)."""
    plan = gossip(graph)
    for rnd in plan.schedule:
        receivers = [d for tx in rnd for d in tx.destinations]
        assert len(receivers) == len(set(receivers))
        senders = [tx.sender for tx in rnd]
        assert len(senders) == len(set(senders))


@given(graph=connected_graphs(max_n=18))
@settings(max_examples=25, deadline=None)
def test_link_loads_only_on_tree_edges(graph):
    plan = gossip(graph)
    tree_edges = {
        (min(p, c), max(p, c)) for p, c in plan.tree.edges()
    }
    assert set(link_loads(plan.schedule)) <= tree_edges


@given(graph=connected_graphs(max_n=18), data=st.data())
@settings(max_examples=25, deadline=None)
def test_dropping_any_round_breaks_gossip(graph, data):
    """Minimality probe: ConcurrentUpDown has no spare rounds."""
    if graph.n < 3:
        return
    plan = gossip(graph)
    index = data.draw(
        st.integers(min_value=0, max_value=plan.schedule.total_time - 1)
    )
    from repro.exceptions import ScheduleError
    from repro.simulator.faults import drop_round
    from repro.simulator.validator import validate_schedule

    broken = drop_round(plan.schedule, index)
    holds = labeled_holdings(plan.labeled.labels())
    try:
        result = validate_schedule(
            plan.graph, broken, initial_holds=holds, require_complete=True
        )
    except ScheduleError:
        return  # violation detected — expected
    assert not result.complete  # pragma: no cover


@given(graph=connected_graphs(max_n=16))
@settings(max_examples=20, deadline=None)
def test_metrics_consistency(graph):
    plan = gossip(graph)
    result = plan.execute()
    m = compute_metrics(plan.schedule, execution=result)
    assert m.total_deliveries >= m.total_multicasts
    assert m.max_fan_out >= 1 or m.total_multicasts == 0
    if result.complete and graph.n > 1:
        assert m.max_completion_time == plan.schedule.total_time
