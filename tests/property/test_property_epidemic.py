"""Properties of the randomized baselines.

* **Seeded determinism** — an epidemic or coded run is a pure function
  of ``(graph, variant, seed)``: re-running yields an identical
  transcript, identical counters, identical completion times.
* **Push-pull completes on every connected family** — the ISSUE-8
  liveness property: on any connected network the online push-pull
  protocol reaches complete gossip within the default horizon (pull
  requests always target a lacking message, so progress can stall only
  on an empty frontier — impossible while connected and incomplete).
* **Coded completes iff rank reaches n** — completion is exactly the
  all-vertices-rank-``n`` predicate, under any round budget.
* **Replay parity** — an online faulty run's transcript replayed
  through :func:`execute_with_faults` under the same model reproduces
  the online outcome (fault draws are pure coordinate functions).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coded import run_coded_gossip
from repro.core.epidemic import run_epidemic
from repro.core.gossip import resolve_network
from repro.simulator.lossy import FaultModel, execute_with_faults
from repro.simulator.state import identity_holdings

# Connected members of the sweep suite, cheap at property-test sizes.
CONNECTED_FAMILIES = (
    "path",
    "cycle",
    "star",
    "complete",
    "grid",
    "binary-tree",
    "caterpillar",
    "spider",
    "wheel",
    "random-tree",
    "random",
)


@st.composite
def networks(draw):
    family = draw(st.sampled_from(CONNECTED_FAMILIES))
    n = draw(st.integers(min_value=2, max_value=14))
    graph, _ = resolve_network(f"{family}:{n}")
    return graph


@given(
    graph=networks(),
    variant=st.sampled_from(["push", "pull", "push-pull"]),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=40, deadline=None)
def test_epidemic_seeded_determinism(graph, variant, seed):
    a = run_epidemic(graph, variant=variant, seed=seed)
    b = run_epidemic(graph, variant=variant, seed=seed)
    assert a == b


@given(graph=networks(), seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_push_pull_completes_on_every_connected_family(graph, seed):
    result = run_epidemic(graph, variant="push-pull", seed=seed)
    assert result.complete
    assert all(t is not None for t in result.completion_times)


@given(
    graph=networks(),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    budget=st.one_of(st.none(), st.integers(min_value=0, max_value=12)),
)
@settings(max_examples=50, deadline=None)
def test_coded_completes_iff_rank_reaches_n(graph, seed, budget):
    result = run_coded_gossip(graph, seed=seed, max_rounds=budget)
    assert result.complete == all(r == graph.n for r in result.ranks)
    if result.complete:
        assert result.completion_round is not None
    else:
        assert result.completion_round is None


@given(
    graph=networks(),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    fault_seed=st.integers(min_value=0, max_value=2**32 - 1),
    drop=st.sampled_from([0.05, 0.2]),
)
@settings(max_examples=30, deadline=None)
def test_online_transcript_replay_parity(graph, seed, fault_seed, drop):
    model = FaultModel(seed=fault_seed, drop_rate=drop)
    online = run_epidemic(graph, variant="push-pull", seed=seed, model=model)
    replay = execute_with_faults(
        graph, online.schedule, model, initial_holds=identity_holdings(graph.n)
    )
    assert tuple(replay.final_holds) == online.final_holds
    assert replay.complete == online.complete
    assert len(replay.lost) == online.lost
