"""Cross-validation: the bitset engine vs the naive reference executor.

Two independently-written implementations of the Section 1 model must
agree on every schedule the library produces — and on broken schedules
they must both object.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gossip import gossip
from repro.exceptions import ModelViolationError
from repro.networks import topologies
from repro.simulator.engine import execute_schedule
from repro.simulator.reference import reference_execute
from repro.simulator.state import bits_of, labeled_holdings
from tests.conftest import connected_graphs


ALGOS = ["concurrent-updown", "simple", "updown", "greedy", "telephone"]


@given(graph=connected_graphs(max_n=16), data=st.data())
@settings(max_examples=40, deadline=None)
def test_backends_agree_on_generated_schedules(graph, data):
    algorithm = data.draw(st.sampled_from(ALGOS))
    plan = gossip(graph, algorithm=algorithm)
    holds_bits = labeled_holdings(plan.labeled.labels())
    engine = execute_schedule(plan.graph, plan.schedule, initial_holds=holds_bits)
    reference = reference_execute(
        plan.graph,
        plan.schedule,
        initial_holds=[set(bits_of(h)) for h in holds_bits],
    )
    assert engine.complete == reference.complete
    assert tuple(engine.completion_times) == reference.completion_times
    assert tuple(frozenset(bits_of(h)) for h in engine.final_holds) == (
        reference.final_holds
    )


@given(graph=connected_graphs(max_n=12), data=st.data())
@settings(max_examples=25, deadline=None)
def test_backends_agree_on_broken_schedules(graph, data):
    """Corrupt one message id; both backends must reach the same verdict."""
    if graph.n < 3:
        return
    plan = gossip(graph)
    schedule = plan.schedule
    round_index = data.draw(
        st.integers(min_value=0, max_value=schedule.total_time - 1)
    )
    rnd = schedule.round_at(round_index)
    if not len(rnd):
        return
    from repro.simulator.faults import corrupt_message

    tx_index = data.draw(st.integers(min_value=0, max_value=len(rnd) - 1))
    new_message = data.draw(st.integers(min_value=0, max_value=graph.n - 1))
    broken = corrupt_message(schedule, round_index, tx_index, new_message)
    holds_bits = labeled_holdings(plan.labeled.labels())

    def engine_verdict():
        try:
            return execute_schedule(
                plan.graph, broken, initial_holds=holds_bits
            ).complete
        except ModelViolationError:
            return "violation"

    def reference_verdict():
        try:
            return reference_execute(
                plan.graph,
                broken,
                initial_holds=[set(bits_of(h)) for h in holds_bits],
            ).complete
        except ModelViolationError:
            return "violation"

    assert engine_verdict() == reference_verdict()


class TestReferenceUnit:
    def test_trivial(self):
        from repro.core.schedule import Round, Schedule, Transmission

        g = topologies.path_graph(2)
        s = Schedule(
            [
                Round(
                    [
                        Transmission(sender=0, message=0, destinations=frozenset({1})),
                        Transmission(sender=1, message=1, destinations=frozenset({0})),
                    ]
                )
            ]
        )
        result = reference_execute(g, s)
        assert result.complete
        assert result.completion_times == (1, 1)

    def test_possession_violation(self):
        from repro.core.schedule import Round, Schedule, Transmission

        g = topologies.path_graph(2)
        s = Schedule(
            [Round([Transmission(sender=0, message=1, destinations=frozenset({1}))])]
        )
        with pytest.raises(ModelViolationError, match="lacks"):
            reference_execute(g, s)

    def test_adjacency_violation(self):
        from repro.core.schedule import Round, Schedule, Transmission

        g = topologies.path_graph(3)
        s = Schedule(
            [Round([Transmission(sender=0, message=0, destinations=frozenset({2}))])]
        )
        with pytest.raises(ModelViolationError, match="not a link"):
            reference_execute(g, s)
