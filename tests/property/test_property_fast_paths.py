"""Property tests: the fast path backend equals the reference everywhere."""

import numpy as np
from hypothesis import given, settings

from repro.networks.bfs import all_eccentricities, distance_matrix
from repro.networks.fast_paths import (
    all_pairs_distances,
    fast_eccentricities,
    minimum_depth_spanning_tree_fast,
)
from repro.networks.spanning_tree import minimum_depth_spanning_tree
from tests.conftest import connected_graphs


@given(graph=connected_graphs(max_n=22))
@settings(max_examples=40, deadline=None)
def test_distances_identical(graph):
    assert np.array_equal(all_pairs_distances(graph), distance_matrix(graph))


@given(graph=connected_graphs(max_n=22))
@settings(max_examples=40, deadline=None)
def test_eccentricities_identical(graph):
    assert np.array_equal(fast_eccentricities(graph), all_eccentricities(graph))


@given(graph=connected_graphs(max_n=20))
@settings(max_examples=40, deadline=None)
def test_canonical_tree_identical(graph):
    assert minimum_depth_spanning_tree_fast(graph) == minimum_depth_spanning_tree(
        graph
    )
