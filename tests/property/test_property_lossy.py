"""Property tests: lossy execution parity and recovery completeness.

Two acceptance-criteria invariants:

* under a zero-fault model, :func:`execute_with_faults` is
  indistinguishable from :func:`execute_schedule` on every field;
* for any seeded drop rate strictly below 1.0 on connected topologies,
  :func:`recover` finishes gossip within a generous round budget, and
  the repaired schedule passes the strict fault-free engine.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gossip import gossip
from repro.core.recovery import execute_plan_with_faults, recover
from repro.networks import topologies
from repro.networks.random_graphs import random_connected_gnp, random_tree
from repro.simulator.engine import execute_schedule
from repro.simulator.lossy import FaultModel
from repro.simulator.state import labeled_holdings


@st.composite
def connected_graphs(draw):
    """Paths, random trees, and random connected graphs up to n = 12."""
    n = draw(st.integers(min_value=2, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    kind = draw(st.sampled_from(["path", "tree", "gnp"]))
    if kind == "path":
        return topologies.path_graph(n)
    if kind == "tree":
        return random_tree(n, seed=seed)
    return random_connected_gnp(n, 0.35, seed=seed)


@given(
    graph=connected_graphs(),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    algorithm=st.sampled_from(["concurrent-updown", "simple"]),
)
@settings(max_examples=60, deadline=None)
def test_zero_fault_execution_matches_engine(graph, seed, algorithm):
    """A null fault model reproduces execute_schedule field for field."""
    plan = gossip(graph, algorithm=algorithm)
    holds = labeled_holdings(plan.labeled.labels())
    faulty = execute_plan_with_faults(
        plan, FaultModel(seed=seed), record_arrivals=True
    )
    reference = execute_schedule(
        graph, plan.schedule, initial_holds=holds,
        record_arrivals=True, require_complete=True,
    )
    assert faulty.lost == () and faulty.suppressed == ()
    assert faulty.complete == reference.complete
    assert faulty.total_time == reference.total_time
    assert faulty.completion_times == reference.completion_times
    assert faulty.duplicate_deliveries == reference.duplicate_deliveries
    assert faulty.final_holds == reference.final_holds
    assert faulty.arrivals == reference.arrivals
    assert faulty.to_execution_result() == reference


@given(
    graph=connected_graphs(),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    drop=st.floats(min_value=0.0, max_value=0.9, allow_nan=False),
)
@settings(max_examples=40, deadline=None)
def test_recover_completes_below_certain_loss(graph, seed, drop):
    """Any drop rate < 1.0 is repairable within a generous budget, and
    the repaired schedule is model-legal on the fault-free engine.

    The budget is sized from the drop-0.9 worst case: repair throughput
    degrades to ~(1 - drop) hops per round and a failed hop suppresses
    the rest of its planned chain, so path-12 at 0.9 has been observed
    to need ~1.8k repair rounds; 6000 leaves a wide margin.
    """
    plan = gossip(graph)
    model = FaultModel(seed=seed, drop_rate=drop)
    faulty = execute_plan_with_faults(plan, model)
    outcome = recover(graph, plan, faulty, max_repair_rounds=6000)
    assert outcome.result.complete
    assert outcome.schedule.total_time >= plan.schedule.total_time
    replay = execute_schedule(
        graph,
        outcome.schedule,
        initial_holds=labeled_holdings(plan.labeled.labels()),
        require_complete=True,
    )
    assert replay.complete
