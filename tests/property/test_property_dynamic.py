"""Property tests: tree maintenance invariants under random churn."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError
from repro.networks.dynamic import TreeMaintainer
from repro.networks.properties import radius
from repro.networks.random_graphs import random_connected_gnp


@st.composite
def churn_sequences(draw):
    """A seeded starting graph plus a list of random edge toggles."""
    n = draw(st.integers(min_value=4, max_value=14))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    graph = random_connected_gnp(n, 0.3, seed)
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["add", "remove"]),
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=12,
        )
    )
    return graph, ops


def apply_churn(maintainer, ops):
    for op, u, v in ops:
        if u == v:
            continue
        try:
            maintainer = (
                maintainer.add_edge(u, v) if op == "add" else maintainer.remove_edge(u, v)
            )
        except GraphError:
            continue  # duplicate add / absent or disconnecting removal
    return maintainer


@given(data=churn_sequences())
@settings(max_examples=30, deadline=None)
def test_eager_always_fresh(data):
    graph, ops = data
    m = apply_churn(TreeMaintainer.create(graph, policy="eager"), ops)
    assert m.tree.height == radius(m.graph)
    assert m.height_gap == 0
    m.plan().execute(on_tree_only=True)


@given(data=churn_sequences())
@settings(max_examples=30, deadline=None)
def test_lazy_tree_always_valid(data):
    """Lazy never holds a broken tree: every tree edge exists, and the
    schedule on it is valid and complete."""
    graph, ops = data
    m = apply_churn(TreeMaintainer.create(graph, policy="lazy"), ops)
    for parent, child in m.tree.edges():
        assert m.graph.has_edge(parent, child)
    assert m.height_gap >= 0
    plan = m.plan()
    assert plan.total_time == m.schedule_bound
    plan.execute(on_tree_only=True)


@given(data=churn_sequences())
@settings(max_examples=30, deadline=None)
def test_lazy_never_rebuilds_more_than_eager(data):
    graph, ops = data
    lazy = apply_churn(TreeMaintainer.create(graph, policy="lazy"), ops)
    eager = apply_churn(TreeMaintainer.create(graph, policy="eager"), ops)
    assert lazy.rebuilds <= eager.rebuilds
    assert lazy.graph == eager.graph  # same surviving topology


@given(data=churn_sequences())
@settings(max_examples=20, deadline=None)
def test_refresh_restores_guarantee(data):
    graph, ops = data
    m = apply_churn(TreeMaintainer.create(graph, policy="lazy"), ops)
    fresh = m.refreshed()
    assert fresh.height_gap == 0
    assert fresh.schedule_bound <= m.schedule_bound
