"""Property-based tests: DFS labelling invariants on random trees."""

from hypothesis import given, settings

from repro.tree.labeling import LabeledTree
from tests.conftest import labeled_trees, random_trees


@given(tree=random_trees())
@settings(max_examples=60, deadline=None)
def test_dfs_labels_are_a_permutation(tree):
    labeled = LabeledTree(tree)
    assert sorted(labeled.labels()) == list(range(tree.n))


@given(tree=random_trees())
@settings(max_examples=60, deadline=None)
def test_root_label_zero_and_intervals_nest(tree):
    labeled = LabeledTree(tree)
    assert labeled.label_of(tree.root) == 0
    for v in range(tree.n):
        b = labeled.block(v)
        p = tree.parent(v)
        if p >= 0:
            pb = labeled.block(p)
            # child interval strictly inside the parent's
            assert pb.i < b.i and b.j <= pb.j


@given(labeled=labeled_trees())
@settings(max_examples=60, deadline=None)
def test_children_intervals_tile_the_parent_interval(labeled):
    tree = labeled.tree
    for v in range(tree.n):
        b = labeled.block(v)
        cursor = b.i + 1
        for c in tree.children(v):
            cb = labeled.block(c)
            assert cb.i == cursor
            cursor = cb.j + 1
        assert cursor == b.j + 1


@given(labeled=labeled_trees())
@settings(max_examples=60, deadline=None)
def test_label_bounds(labeled):
    """i >= k everywhere (needed by Lemma 2) and j <= n - 1."""
    for v in range(labeled.n):
        b = labeled.block(v)
        assert b.i >= b.k
        assert b.j <= labeled.n - 1
        assert b.i <= b.j


@given(labeled=labeled_trees())
@settings(max_examples=40, deadline=None)
def test_lip_messages_unique_per_parent(labeled):
    """Exactly one child of every internal vertex carries the lip."""
    tree = labeled.tree
    for v in range(labeled.n):
        kids = tree.children(v)
        if kids:
            lips = [c for c in kids if labeled.block(c).is_first_child]
            assert len(lips) == 1


@given(labeled=labeled_trees(max_n=20))
@settings(max_examples=40, deadline=None)
def test_owner_child_total_on_descendant_labels(labeled):
    tree = labeled.tree
    for v in range(labeled.n):
        b = labeled.block(v)
        for m in range(b.i + 1, b.j + 1):
            owner = labeled.owner_child(v, m)
            ob = labeled.block(owner)
            assert ob.i <= m <= ob.j
