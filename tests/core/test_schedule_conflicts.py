"""Conflict paths of ``merge_schedules`` / ``ScheduleBuilder`` misuse,
and loci parity with the static analyzer.

The constructors reject rule-violating rounds eagerly; the lint layer
must report the *same* violations at the *same* loci when handed the raw
(pre-construction) transmissions — proving the two enforcement points
agree on what a conflict is and where it happens.
"""

import pytest

from repro.core.schedule import (
    Round,
    Schedule,
    ScheduleBuilder,
    Transmission,
    merge_schedules,
)
from repro.exceptions import ScheduleConflictError, ScheduleError
from repro.lint import lint_schedule
from repro.networks import topologies


def tx(sender, message, dests):
    return Transmission(sender=sender, message=message, destinations=frozenset(dests))


@pytest.fixture(scope="module")
def k4():
    return topologies.complete_graph(4)


class TestBuilderMisuse:
    def test_sender_message_conflict(self):
        builder = ScheduleBuilder().send(0, 1, 1, {2})
        with pytest.raises(
            ScheduleConflictError, match=r"send both message 1 and message 2"
        ):
            builder.send(0, 1, 2, {3})

    def test_same_message_merges_destinations(self):
        sched = (
            ScheduleBuilder().send(0, 1, 1, {2}).send(0, 1, 1, {3}).build()
        )
        assert sched.round_at(0).transmissions[0].destinations == frozenset({2, 3})

    def test_overlapping_destinations_rejected_at_build(self):
        builder = ScheduleBuilder().send(0, 1, 1, {3}).send(0, 2, 2, {3})
        with pytest.raises(ScheduleConflictError, match="receives two"):
            builder.build()

    def test_negative_time_rejected(self):
        with pytest.raises(ScheduleError, match="negative send time"):
            ScheduleBuilder().send(-1, 0, 0, {1})

    def test_empty_destinations_dropped(self):
        assert ScheduleBuilder().send(0, 1, 1, set()).build().total_time == 0


class TestMergeConflicts:
    def test_sender_collision_across_merged_schedules(self):
        a = ScheduleBuilder().send(0, 1, 1, {2}).build()
        b = ScheduleBuilder().send(0, 1, 2, {3}).build()
        with pytest.raises(ScheduleConflictError, match="send both"):
            merge_schedules(a, b)

    def test_receiver_collision_across_merged_schedules(self):
        a = ScheduleBuilder().send(0, 1, 1, {3}).build()
        b = ScheduleBuilder().send(0, 2, 2, {3}).build()
        with pytest.raises(ScheduleConflictError, match="receives two"):
            merge_schedules(a, b)

    def test_conflict_only_at_overlap_time(self):
        # same events at different times merge cleanly
        a = ScheduleBuilder().send(0, 1, 1, {3}).build()
        b = ScheduleBuilder().send(1, 2, 2, {3}).build()
        merged = merge_schedules(a, b)
        assert merged.total_time == 2


class TestLintLociParity:
    """The lint rules report the same loci the constructors reject."""

    def test_sender_collision_locus(self, k4):
        # the raw rounds ScheduleBuilder would refuse to build at t=0
        raw = [[tx(1, 1, {2}), tx(1, 2, {3})]]
        report = lint_schedule(k4, raw, require_complete=False)
        found = report.by_rule("model/sender-collision")
        assert len(found) == 1
        assert (found[0].round, found[0].sender) == (0, 1)
        with pytest.raises(ScheduleConflictError):
            Round(raw[0])

    def test_receiver_collision_locus(self, k4):
        raw = [[tx(1, 1, {3}), tx(2, 2, {3})]]
        report = lint_schedule(k4, raw, require_complete=False)
        found = report.by_rule("model/receiver-collision")
        assert len(found) == 1
        assert (found[0].round, found[0].destination) == (0, 3)
        with pytest.raises(ScheduleConflictError):
            Round(raw[0])

    def test_collision_round_matches_merge_overlap(self, k4):
        # the merge conflict happens at time 1 — so does the diagnostic
        raw = [
            [tx(0, 0, {1})],
            [tx(1, 1, {3}), tx(2, 2, {3})],
        ]
        report = lint_schedule(k4, raw, require_complete=False)
        found = report.by_rule("model/receiver-collision")
        assert [d.round for d in found] == [1]

    def test_clean_merge_lints_clean(self, k4):
        a = ScheduleBuilder().send(0, 1, 1, {3}).build()
        b = ScheduleBuilder().send(1, 2, 2, {3}).build()
        merged = merge_schedules(a, b)
        report = lint_schedule(k4, merged, require_complete=False)
        assert report.errors == ()
