"""Tests for weighted gossiping via chain expansion (Section 4)."""

import pytest

from repro.core.weighted import WeightedGossipPlan, expand_weighted_tree, weighted_gossip
from repro.exceptions import ReproError
from repro.networks import topologies
from repro.networks.random_graphs import random_connected_gnp
from repro.tree.tree import Tree


class TestExpansion:
    def test_unit_weights_identity_shape(self):
        tree = Tree([-1, 0, 0], root=0)
        expanded, owner = expand_weighted_tree(tree, [1, 1, 1])
        assert expanded.n == 3
        assert owner == [0, 1, 2]
        assert expanded.height == tree.height

    def test_chain_sizes(self):
        tree = Tree([-1, 0], root=0)
        expanded, owner = expand_weighted_tree(tree, [3, 2])
        assert expanded.n == 5
        assert owner == [0, 0, 0, 1, 1]
        # root chain 0-1-2, then child chain 3-4 hangs off chain bottom 2
        assert expanded.parent(1) == 0
        assert expanded.parent(2) == 1
        assert expanded.parent(3) == 2
        assert expanded.parent(4) == 3

    def test_children_attach_to_chain_bottom(self):
        tree = Tree([-1, 0, 0], root=0)
        expanded, owner = expand_weighted_tree(tree, [2, 1, 1])
        # virtual: 0,1 (root chain), 2 (vertex 1), 3 (vertex 2)
        assert expanded.parent(2) == 1
        assert expanded.parent(3) == 1

    def test_height_grows_with_path_weights(self):
        tree = Tree([-1, 0, 1], root=0)  # chain of 3
        expanded, _ = expand_weighted_tree(tree, [2, 2, 2])
        assert expanded.height == 5  # 6 virtual vertices in a chain

    def test_invalid_weights(self):
        tree = Tree([-1, 0], root=0)
        with pytest.raises(ReproError):
            expand_weighted_tree(tree, [1])
        with pytest.raises(ReproError):
            expand_weighted_tree(tree, [1, 0])


class TestWeightedGossip:
    def test_unit_weights_match_plain_gossip(self):
        from repro.core.gossip import gossip

        g = topologies.grid_2d(3, 3)
        plan = weighted_gossip(g, [1] * 9)
        assert plan.total_time == gossip(g).total_time

    @pytest.mark.parametrize("seed", range(4))
    def test_exact_bound_and_completeness(self, seed):
        g = random_connected_gnp(10, 0.15, seed)
        weights = [(v % 3) + 1 for v in range(10)]
        plan = weighted_gossip(g, weights)
        assert plan.total_messages == sum(weights)
        assert plan.total_time == plan.bound  # N + r'
        result = plan.execute()
        assert result.complete

    def test_messages_of_real(self):
        g = topologies.path_graph(3)
        plan = weighted_gossip(g, [2, 1, 2])
        all_messages = sorted(
            m for v in range(3) for m in plan.messages_of_real(v)
        )
        assert all_messages == list(range(5))
        assert len(plan.messages_of_real(0)) == 2

    def test_real_round_load_at_most_two(self):
        """A real processor mimics at most its chain-top + chain-bottom."""
        g = topologies.grid_2d(3, 3)
        plan = weighted_gossip(g, [2] * 9)
        assert max(plan.real_round_load().values()) <= 2

    def test_unit_weights_load_one(self):
        g = topologies.star_graph(5)
        plan = weighted_gossip(g, [1] * 5)
        assert max(plan.real_round_load().values()) == 1

    def test_plan_is_dataclass_with_fields(self):
        plan = weighted_gossip(topologies.path_graph(3), [1, 2, 1])
        assert isinstance(plan, WeightedGossipPlan)
        assert plan.weights == (1, 2, 1)
        assert plan.graph.n == 3
