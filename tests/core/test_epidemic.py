"""Epidemic gossip: determinism, model validity, fault semantics, registry."""

import threading

import pytest

from repro.core.epidemic import (
    EPIDEMIC_VARIANTS,
    default_epidemic_horizon,
    epidemic_schedule,
    run_epidemic,
)
from repro.core.gossip import gossip, resolve_network
from repro.core.rng import SplitMix64, keyed_u64, mix64
from repro.exceptions import ReproError
from repro.networks import topologies
from repro.simulator.engine import execute_schedule
from repro.simulator.lossy import _mix64, execute_with_faults, FaultModel
from repro.simulator.state import identity_holdings


GRID, _ = resolve_network("grid:16")


class TestRng:
    def test_mix64_matches_lossy_finaliser(self):
        for x in (0, 1, 7, 2**63, 2**64 - 1, 0xDEADBEEF):
            assert mix64(x) == _mix64(x)

    def test_keyed_u64_is_coordinate_pure(self):
        a = keyed_u64(5, 0xE41, 3, 9)
        b = keyed_u64(5, 0xE41, 3, 9)
        assert a == b
        assert keyed_u64(5, 0xE41, 9, 3) != a  # coordinates are ordered
        assert keyed_u64(5, 0xE42, 3, 9) != a  # tags separate domains

    def test_randrange_bounds_and_determinism(self):
        rng = SplitMix64(42)
        draws = [rng.randrange(7) for _ in range(200)]
        assert set(draws) <= set(range(7))
        assert [SplitMix64(42).randrange(7) for _ in range(3)][0] == draws[0]
        with pytest.raises(ReproError):
            rng.randrange(0)

    def test_sample_is_a_distinct_subset(self):
        rng = SplitMix64(1)
        got = rng.sample(range(10), 4)
        assert len(got) == 4 and len(set(got)) == 4
        assert rng.sample([1, 2], 5) in ([1, 2], [2, 1])

    def test_bit_subset_stays_inside_mask(self):
        rng = SplitMix64(9)
        mask = (1 << 130) - 1 ^ (1 << 65)  # force multi-word path
        for _ in range(50):
            assert rng.bit_subset(mask) & ~mask == 0


class TestDeterminism:
    @pytest.mark.parametrize("variant", EPIDEMIC_VARIANTS)
    def test_same_seed_identical_transcript(self, variant):
        a = run_epidemic(GRID, variant=variant, seed=11)
        b = run_epidemic(GRID, variant=variant, seed=11)
        assert a.schedule == b.schedule
        assert a.completion_times == b.completion_times
        assert a.messages_sent == b.messages_sent

    def test_different_seeds_differ(self):
        a = run_epidemic(GRID, variant="push-pull", seed=1)
        b = run_epidemic(GRID, variant="push-pull", seed=2)
        assert a.schedule != b.schedule


class TestModelValidity:
    @pytest.mark.parametrize("variant", EPIDEMIC_VARIANTS)
    def test_transcript_replays_on_strict_engine(self, variant):
        result = run_epidemic(GRID, variant=variant, seed=3)
        assert result.complete
        replay = execute_schedule(
            GRID,
            result.schedule,
            initial_holds=identity_holdings(GRID.n),
            require_complete=True,
        )
        assert replay.complete
        assert replay.total_time == result.schedule.total_time

    def test_completion_round_matches_replay(self):
        result = run_epidemic(GRID, variant="push-pull", seed=5)
        replay = execute_schedule(
            GRID, result.schedule, initial_holds=identity_holdings(GRID.n)
        )
        assert list(replay.completion_times) == list(result.completion_times)

    def test_single_vertex_completes_instantly(self):
        g = topologies.path_graph(1)
        r = run_epidemic(g, variant="push", seed=0)
        assert r.complete and r.rounds == 0 and r.completion_round == 0


class TestFaultSemantics:
    def test_online_run_survives_drops_that_kill_replay(self):
        model = FaultModel(seed=77, drop_rate=0.15)
        online = run_epidemic(GRID, variant="push-pull", seed=4, model=model)
        assert online.complete and online.lost > 0
        fixed = run_epidemic(GRID, variant="push-pull", seed=4)
        dead = execute_with_faults(
            GRID, fixed.schedule, model, initial_holds=identity_holdings(GRID.n)
        )
        assert not dead.complete  # the fixed transcript has no retries

    def test_transcript_replay_parity_under_same_model(self):
        """The online run and the lossy engine agree on what happened."""
        model = FaultModel(seed=21, drop_rate=0.2)
        online = run_epidemic(GRID, variant="push-pull", seed=9, model=model)
        replay = execute_with_faults(
            GRID, online.schedule, model, initial_holds=identity_holdings(GRID.n)
        )
        assert tuple(replay.final_holds) == online.final_holds
        assert replay.complete == online.complete
        assert len(replay.lost) == online.lost

    def test_null_model_equals_no_model(self):
        a = run_epidemic(GRID, variant="pull", seed=6)
        b = run_epidemic(GRID, variant="pull", seed=6, model=FaultModel(seed=1))
        assert a == b


class TestProtocolShape:
    def test_pull_deliveries_are_never_redundant(self):
        """Pull responses are demand-driven: every delivery is useful."""
        r = run_epidemic(GRID, variant="pull", seed=8)
        assert r.duplicate_deliveries == 0 and r.redundancy == 0.0

    def test_push_pays_redundancy(self):
        r = run_epidemic(GRID, variant="push", seed=8)
        assert r.duplicate_deliveries > 0 and 0.0 < r.redundancy < 1.0

    def test_fanout_widens_multicasts(self):
        narrow = run_epidemic(GRID, variant="push", seed=2, fanout=1)
        wide = run_epidemic(GRID, variant="push", seed=2, fanout=3)
        assert wide.complete
        assert max(
            tx.fan_out() for rnd in wide.schedule.rounds for tx in rnd.transmissions
        ) > 1
        assert wide.completion_round < narrow.completion_round

    def test_finite_ttl_can_kill_the_rumour(self):
        """With a 1-round hot window push-only gossip dies incomplete."""
        path = topologies.path_graph(8)
        r = run_epidemic(path, variant="push", seed=3, ttl=1, max_rounds=200)
        assert not r.complete
        with pytest.raises(ReproError, match="did not complete"):
            epidemic_schedule(path, variant="push", seed=3, ttl=1, max_rounds=200)

    def test_pull_ignores_ttl(self):
        """Anti-entropy repairs cold rumours: pull completes despite ttl=1."""
        path = topologies.path_graph(8)
        r = run_epidemic(path, variant="pull", seed=3, ttl=1)
        assert r.complete

    def test_horizon_scale(self):
        assert default_epidemic_horizon(1) == 256
        assert default_epidemic_horizon(16) == 32 * 256


class TestValidation:
    def test_unknown_variant_rejected(self):
        with pytest.raises(ReproError, match="unknown epidemic variant"):
            run_epidemic(GRID, variant="shout")

    def test_bad_fanout_and_ttl_rejected(self):
        with pytest.raises(ReproError):
            run_epidemic(GRID, fanout=0)
        with pytest.raises(ReproError):
            run_epidemic(GRID, ttl=0)

    def test_bad_messages_rejected(self):
        with pytest.raises(ReproError):
            run_epidemic(GRID, messages=[0, 1])
        with pytest.raises(ReproError):
            run_epidemic(GRID, messages=list(range(15)) + [99])


class TestRegistry:
    @pytest.mark.parametrize(
        "name", ["epidemic-push", "epidemic-pull", "epidemic-push-pull"]
    )
    def test_registered_and_complete(self, name):
        plan = gossip("random-tree:12", algorithm=name)
        result = plan.execute()
        assert result.complete

    def test_registry_plan_is_deterministic(self):
        a = gossip("path:10", algorithm="epidemic-push-pull")
        b = gossip("path:10", algorithm="epidemic-push-pull")
        assert a.schedule == b.schedule

    def test_thread_identical_transcripts(self):
        """Coordinate-keyed draws: concurrent runs can't perturb each other."""
        results = [None] * 4

        def worker(i):
            results[i] = run_epidemic(GRID, variant="push-pull", seed=13)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(r.schedule == results[0].schedule for r in results)
