"""Tests for the online protocol (Section 4): local knowledge suffices."""

import pytest

from repro.core.online import (
    build_processors,
    online_matches_offline,
    run_online_gossip,
)
from repro.networks import topologies
from repro.networks.builders import graph_to_tree
from repro.networks.paper_networks import fig5_tree
from repro.networks.random_graphs import random_tree
from repro.networks.spanning_tree import minimum_depth_spanning_tree
from repro.tree.labeling import LabeledTree
from repro.tree.tree import Tree


class TestOnlineEqualsOffline:
    def test_fig5(self):
        assert online_matches_offline(LabeledTree(fig5_tree()))

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 10, 25])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_random_trees(self, n, seed):
        tree = graph_to_tree(random_tree(n, seed), root=0)
        assert online_matches_offline(LabeledTree(tree))

    @pytest.mark.parametrize(
        "graph",
        [
            topologies.path_graph(9),
            topologies.star_graph(8),
            topologies.grid_2d(3, 4),
            topologies.hypercube(3),
        ],
        ids=lambda g: g.name,
    )
    def test_structured(self, graph):
        tree = minimum_depth_spanning_tree(graph)
        assert online_matches_offline(LabeledTree(tree))


class TestOnlineExecution:
    def test_everyone_completes(self):
        labeled = LabeledTree(fig5_tree())
        schedule = run_online_gossip(labeled)
        assert schedule.total_time == 16 + 3

    def test_schedule_name(self):
        labeled = LabeledTree(Tree([-1, 0], root=0))
        assert run_online_gossip(labeled).name == "ConcurrentUpDown-online"

    def test_processors_only_get_local_info(self):
        """The processor objects carry (i, j, k), parent, first-child flag
        and children intervals — nothing else about the tree."""
        labeled = LabeledTree(fig5_tree())
        procs = build_processors(labeled)
        p4 = procs[4]
        assert (p4.i, p4.j, p4.k) == (4, 10, 1)
        assert p4.parent == 0
        assert not p4.is_first_child
        assert sorted(c.vertex for c in p4.children) == [5, 8]
        assert not hasattr(p4, "tree")

    def test_held_messages_grow_to_full(self):
        labeled = LabeledTree(Tree([-1, 0, 0], root=0))
        procs = build_processors(labeled)
        assert procs[0].held_messages == [0]
        run_online_gossip(labeled)  # independent run; procs above untouched
        assert not procs[0].is_complete()

    def test_timeout_guard(self):
        labeled = LabeledTree(fig5_tree())
        from repro.exceptions import SimulationError

        with pytest.raises(SimulationError, match="did not finish"):
            run_online_gossip(labeled, max_rounds=3)
