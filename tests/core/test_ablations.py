"""Tests for the no-lip ablation (the paper's Section 3.2 counterfactual)."""

import pytest

from repro.core.ablations import (
    concurrent_updown_no_lip,
    no_lip_penalty,
    propagate_up_no_lip,
)
from repro.exceptions import ScheduleConflictError
from repro.networks.builders import graph_to_tree, tree_to_graph
from repro.networks.paper_networks import fig5_tree
from repro.networks.random_graphs import random_tree
from repro.simulator.engine import execute_schedule
from repro.simulator.state import labeled_holdings
from repro.tree.labeling import LabeledTree
from repro.tree.tree import Tree


class TestUpNoLipAlone:
    def test_still_fills_the_root(self):
        """Without the down-stream, laziness is harmless: the root still
        receives message m at time m."""
        labeled = LabeledTree(fig5_tree())
        result = execute_schedule(
            tree_to_graph(labeled.tree),
            propagate_up_no_lip(labeled),
            initial_holds=labeled_holdings(labeled.labels()),
            record_arrivals=True,
        )
        arrivals = {ev.message: ev.time for ev in result.arrivals if ev.receiver == 0}
        assert arrivals == {m: m for m in range(1, 16)}

    def test_no_time_zero_traffic_from_non_s_vertices(self):
        labeled = LabeledTree(fig5_tree())
        round0 = propagate_up_no_lip(labeled).round_at(0)
        # only vertices with i == k (the leftmost spine) may send at 0
        for tx in round0:
            b = labeled.block(tx.sender)
            assert b.i == b.k


class TestOverlapConflicts:
    def test_fig5_collision_matches_paper(self):
        """The paper's worked example: dropping the lookahead makes the
        child's message 5 collide with the root's message 3 at the vertex
        holding message 4."""
        labeled = LabeledTree(fig5_tree())
        with pytest.raises(ScheduleConflictError, match="receives two messages"):
            concurrent_updown_no_lip(labeled)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_bushy_trees_conflict(self, seed):
        tree = graph_to_tree(random_tree(20, seed), root=0)
        labeled = LabeledTree(tree)
        # Conflict requires some vertex with i > k and an internal child;
        # detect structurally and assert agreement with the overlap.
        structurally_conflicting = any(
            labeled.block(v).i > labeled.block(v).k
            and any(not tree.is_leaf(c) for c in tree.children(v))
            for v in range(tree.n)
        )
        try:
            concurrent_updown_no_lip(labeled)
            conflicted = False
        except ScheduleConflictError:
            conflicted = True
        if structurally_conflicting:
            assert conflicted

    def test_pure_chain_never_conflicts(self):
        """On the leftmost spine (i == k everywhere) there is nothing to
        collide with — the ablation degenerates gracefully."""
        labeled = LabeledTree(Tree([-1, 0, 1, 2, 3], root=0))
        schedule = concurrent_updown_no_lip(labeled)
        result = execute_schedule(
            tree_to_graph(labeled.tree),
            schedule,
            initial_holds=labeled_holdings(labeled.labels()),
            require_complete=True,
        )
        assert result.complete


class TestPenalty:
    def test_fig5_penalty_positive(self):
        p = no_lip_penalty(LabeledTree(fig5_tree()))
        assert p.conflicts
        assert p.with_lip_time == 19
        assert p.extra_rounds > 0

    @pytest.mark.parametrize("seed", range(4))
    def test_fallback_within_updown_budget(self, seed):
        """The no-lookahead fallback may win or lose on individual
        instances (it is adaptive where ConcurrentUpDown is uniform) but
        always stays within UpDown's two-phase worst-case budget."""
        from repro.core.updown import updown_total_time_bound

        tree = graph_to_tree(random_tree(24, seed), root=0)
        p = no_lip_penalty(LabeledTree(tree))
        assert p.without_lip_time <= updown_total_time_bound(tree.n, tree.height)
