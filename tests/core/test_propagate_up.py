"""Unit tests for algorithm Propagate-Up (steps U1-U4, Lemma 2)."""

import pytest

from repro.core.propagate_up import propagate_up
from repro.networks.builders import graph_to_tree, tree_to_graph
from repro.networks.paper_networks import fig5_tree
from repro.networks.random_graphs import random_tree
from repro.simulator.engine import execute_schedule
from repro.simulator.state import labeled_holdings
from repro.tree.labeling import LabeledTree
from repro.tree.tree import Tree


@pytest.fixture
def fig5_labeled():
    return LabeledTree(fig5_tree())


class TestEventStructure:
    def test_all_sends_are_to_parent(self, fig5_labeled):
        tree = fig5_labeled.tree
        for t, rnd in enumerate(propagate_up(fig5_labeled)):
            for tx in rnd:
                assert tx.destinations == frozenset({tree.parent(tx.sender)})

    def test_u3_lip_messages_at_time_zero(self, fig5_labeled):
        """Every first child sends its s-message at time 0."""
        schedule = propagate_up(fig5_labeled)
        round0 = schedule.round_at(0)
        senders = {tx.sender: tx.message for tx in round0}
        # first children of fig5: 1 (of 0), 2 (of 1), 5 (of 4), 6 (of 5),
        # 9 (of 8), 12 (of 11), 14 (of 13)
        assert senders == {1: 1, 2: 2, 5: 5, 6: 6, 9: 9, 12: 12, 14: 14}

    def test_u4_rip_message_times(self, fig5_labeled):
        """Message m leaves a level-k vertex at time m - k."""
        schedule = propagate_up(fig5_labeled)
        tree = fig5_labeled.tree
        for t, rnd in enumerate(schedule):
            for tx in rnd:
                if t == 0 and fig5_labeled.block(tx.sender).is_first_child \
                        and tx.message == fig5_labeled.block(tx.sender).i:
                    continue  # the (U3) lip send
                assert t == tx.message - tree.level(tx.sender)

    def test_root_never_sends(self, fig5_labeled):
        for rnd in propagate_up(fig5_labeled):
            assert rnd.sent_by(0) is None


class TestLemma2:
    """Lemma 2: the root receives message m exactly at time m."""

    def test_root_arrival_times_fig5(self, fig5_labeled):
        result = execute_schedule(
            tree_to_graph(fig5_labeled.tree),
            propagate_up(fig5_labeled),
            initial_holds=labeled_holdings(fig5_labeled.labels()),
            record_arrivals=True,
        )
        root_arrivals = {
            ev.message: ev.time for ev in result.arrivals if ev.receiver == 0
        }
        assert root_arrivals == {m: m for m in range(1, 16)}

    @pytest.mark.parametrize("seed", range(8))
    def test_root_collects_everything_by_n_minus_1(self, seed):
        tree = graph_to_tree(random_tree(18, seed), root=0)
        labeled = LabeledTree(tree)
        schedule = propagate_up(labeled)
        result = execute_schedule(
            tree_to_graph(tree),
            schedule,
            initial_holds=labeled_holdings(labeled.labels()),
        )
        assert result.final_holds[tree.root] == (1 << 18) - 1
        assert schedule.total_time <= 18 - 1

    @pytest.mark.parametrize("seed", range(8))
    def test_vertex_receives_lookahead_at_time_1(self, seed):
        """(U1): every nonleaf vertex receives message i+1 at time 1."""
        tree = graph_to_tree(random_tree(15, seed), root=0)
        labeled = LabeledTree(tree)
        result = execute_schedule(
            tree_to_graph(tree),
            propagate_up(labeled),
            initial_holds=labeled_holdings(labeled.labels()),
            record_arrivals=True,
        )
        got = {(ev.receiver, ev.time): ev.message for ev in result.arrivals}
        for v in range(tree.n):
            b = labeled.block(v)
            if b.i + 1 <= b.j:  # nonleaf
                assert got[(v, 1)] == b.i + 1

    @pytest.mark.parametrize("seed", range(8))
    def test_u2_r_message_arrival_times(self, seed):
        """(U2): r-message m arrives at a level-k vertex at time m - k."""
        tree = graph_to_tree(random_tree(15, seed), root=0)
        labeled = LabeledTree(tree)
        result = execute_schedule(
            tree_to_graph(tree),
            propagate_up(labeled),
            initial_holds=labeled_holdings(labeled.labels()),
            record_arrivals=True,
        )
        arrival = {(ev.receiver, ev.message): ev.time for ev in result.arrivals}
        for v in range(tree.n):
            b = labeled.block(v)
            for m in range(b.i + 2, b.j + 1):
                assert arrival[(v, m)] == m - b.k


class TestEdgeCases:
    def test_single_vertex(self):
        labeled = LabeledTree(Tree([-1], root=0))
        assert propagate_up(labeled).total_time == 0

    def test_two_vertices(self):
        labeled = LabeledTree(Tree([-1, 0], root=0))
        schedule = propagate_up(labeled)
        # lone child is a first child: lip at time 0, no rip
        assert schedule.total_time == 1
        assert schedule.round_at(0).sent_by(1).message == 1

    def test_path_tree(self):
        # Chain 0 - 1 - 2 - 3 rooted at 0: every vertex is a first child.
        labeled = LabeledTree(Tree([-1, 0, 1, 2], root=0))
        schedule = propagate_up(labeled)
        result = execute_schedule(
            tree_to_graph(labeled.tree),
            schedule,
            initial_holds=labeled_holdings(labeled.labels()),
        )
        assert result.final_holds[0] == 0b1111
