"""Unit tests for the recovery scheduler (`repro.core.recovery`)."""

import pytest

from repro.core.gossip import gossip
from repro.core.recovery import (
    REPAIR_POLICIES,
    execute_plan_with_faults,
    plan_repair_rounds,
    recover,
)
from repro.exceptions import (
    PartitionedNetworkError,
    RecoveryExhaustedError,
    ReproError,
)
from repro.networks import topologies
from repro.networks.random_graphs import random_connected_gnp
from repro.simulator.engine import execute_schedule
from repro.simulator.lossy import FaultModel
from repro.simulator.state import labeled_holdings


def lossy_run(graph, *, seed, drop=0.3, algorithm="concurrent-updown"):
    plan = gossip(graph, algorithm=algorithm)
    model = FaultModel(seed=seed, drop_rate=drop)
    return plan, execute_plan_with_faults(plan, model)


class TestRecover:
    @pytest.mark.parametrize(
        "graph",
        [
            topologies.path_graph(8),
            topologies.star_graph(9),
            topologies.grid_2d(3, 4),
            random_connected_gnp(16, 0.25, seed=2),
        ],
        ids=["path", "star", "grid", "gnp"],
    )
    def test_repairs_to_completion(self, graph):
        plan, faulty = lossy_run(graph, seed=11)
        assert not faulty.complete  # drop 0.3 reliably loses something
        outcome = recover(graph, plan, faulty)
        assert outcome.result.complete
        assert outcome.attempts >= 1
        assert outcome.repair_rounds >= 1
        assert outcome.overhead_rounds == (
            outcome.schedule.total_time - plan.schedule.total_time
        )

    def test_repaired_schedule_passes_fault_free_engine(self):
        """Acceptance criterion: repairs are model-legal in their own
        right, verified by the strict fault-free engine."""
        graph = topologies.grid_2d(4, 4)
        plan, faulty = lossy_run(graph, seed=3)
        outcome = recover(graph, plan, faulty)
        replay = execute_schedule(
            graph,
            outcome.schedule,
            initial_holds=labeled_holdings(plan.labeled.labels()),
            require_complete=True,
        )
        assert replay.complete

    def test_already_complete_is_a_no_op(self):
        graph = topologies.path_graph(6)
        plan = gossip(graph)
        clean = execute_plan_with_faults(plan, FaultModel(seed=0))
        outcome = recover(graph, plan, clean)
        assert outcome.attempts == 0
        assert outcome.repair_rounds == 0
        assert outcome.overhead_rounds == 0
        assert outcome.overhead_ratio == 0.0
        assert outcome.schedule is plan.schedule

    def test_exhaustion_raises_typed_error(self):
        """A 100% drop rate can never be repaired; the error carries the
        diagnosis."""
        graph = topologies.path_graph(5)
        plan, faulty = lossy_run(graph, seed=1, drop=1.0)
        with pytest.raises(RecoveryExhaustedError) as err:
            recover(graph, plan, faulty, max_repair_rounds=16)
        assert err.value.repair_rounds == 16
        assert err.value.attempts >= 1
        assert err.value.missing  # per-processor missing sets preserved

    def test_unicast_policy_completes_with_more_rounds(self):
        graph = topologies.star_graph(10)
        plan, faulty = lossy_run(graph, seed=7)
        multicast = recover(graph, plan, faulty, policy="nearest-holder")
        unicast = recover(graph, plan, faulty, policy="unicast")
        assert multicast.result.complete and unicast.result.complete
        assert unicast.repair_rounds >= multicast.repair_rounds

    def test_unknown_policy_rejected(self):
        graph = topologies.path_graph(4)
        plan, faulty = lossy_run(graph, seed=0)
        with pytest.raises(ReproError):
            recover(graph, plan, faulty, policy="telepathy")

    def test_bad_budget_rejected(self):
        graph = topologies.path_graph(4)
        plan, faulty = lossy_run(graph, seed=0)
        with pytest.raises(ReproError):
            recover(graph, plan, faulty, max_repair_rounds=0)

    def test_deterministic_for_fixed_seed(self):
        graph = topologies.grid_2d(3, 3)
        plan, faulty = lossy_run(graph, seed=21)
        a = recover(graph, plan, faulty)
        b = recover(graph, plan, faulty)
        assert a.schedule.rounds == b.schedule.rounds
        assert a.repair_rounds == b.repair_rounds


class TestPartitionPreCheck:
    """Permanent failures must be diagnosed *before* the repair budget."""

    def test_dead_cut_vertex_raises_typed_error_immediately(self):
        """A path severed by a fail-stopped middle vertex can never be
        repaired; the typed error fires without burning the exponential
        budget (a huge budget would take minutes to exhaust)."""
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class MidDeath(FaultModel):
            @property
            def is_null(self):
                return False

            @property
            def has_permanent(self):
                return True

            def fail_stopped(self, time, v):
                return v == 4

        graph = topologies.path_graph(8)
        plan = gossip(graph)
        faulty = execute_plan_with_faults(plan, MidDeath())
        assert not faulty.complete
        with pytest.raises(PartitionedNetworkError) as err:
            recover(graph, plan, faulty, max_repair_rounds=10**9)
        assert err.value.dead == (4,)
        assert err.value.pairs
        # Every witness names a live (or dead) processor and a message it
        # can genuinely never obtain across the dead cut vertex.
        labels = [int(x) for x in plan.labeled.labels()]
        for v, m in err.value.pairs:
            if v == 4:
                continue  # the dead processor itself misses everything
            origin = labels.index(m)
            assert (v < 4) != (origin < 4) or origin == 4

    def test_transient_only_path_is_unchanged(self):
        """Without permanent failures the pre-check never engages and
        recovery completes exactly as before."""
        graph = topologies.grid_2d(3, 3)
        plan, faulty = lossy_run(graph, seed=5)
        outcome = recover(graph, plan, faulty)
        assert outcome.result.complete

    def test_dead_leaf_witnesses_are_exact(self):
        """A leaf that dies before sending takes its own message to the
        grave: the typed error names the dead leaf's pairs plus every
        live processor's claim on the leaf's origin message — nothing
        else is unrecoverable on a star."""
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class LeafDeath(FaultModel):
            @property
            def is_null(self):
                return False

            @property
            def has_permanent(self):
                return True

            def fail_stopped(self, time, v):
                return v == 3

        graph = topologies.star_graph(6)
        plan = gossip(graph)
        faulty = execute_plan_with_faults(plan, LeafDeath())
        with pytest.raises(PartitionedNetworkError) as err:
            recover(graph, plan, faulty)
        leaf_message = int(plan.labeled.labels()[3])
        assert err.value.pairs
        assert all(
            v == 3 or m == leaf_message for v, m in err.value.pairs
        )


class TestPlanRepairRounds:
    def test_rounds_respect_communication_rules(self):
        """One send per sender, one receive per receiver, per round."""
        adjacency = {0: (1, 2), 1: (0,), 2: (0, 3), 3: (2,)}
        holds = [0b1111, 0b0010, 0b0100, 0b1000]  # only 0 is complete
        rounds = plan_repair_rounds(adjacency, holds, 4, max_rounds=10)
        assert rounds
        for rnd in rounds:
            senders = [t.sender for t in rnd]
            receivers = [d for t in rnd for d in t.destinations]
            assert len(senders) == len(set(senders))
            assert len(receivers) == len(set(receivers))
            for t in rnd:
                assert all(d in adjacency[t.sender] for d in t.destinations)

    def test_completes_hold_state(self):
        adjacency = {0: (1,), 1: (0, 2), 2: (1,)}
        holds = [0b001, 0b010, 0b100]
        rounds = plan_repair_rounds(adjacency, holds, 3, max_rounds=10)
        for rnd in rounds:
            for t in rnd:
                for d in t.destinations:
                    holds[d] |= 1 << t.message
        assert all(h == 0b111 for h in holds)

    def test_empty_when_already_complete(self):
        assert plan_repair_rounds({0: (1,), 1: (0,)}, [3, 3], 2, max_rounds=5) == []

    def test_policies_constant_is_exhaustive(self):
        assert set(REPAIR_POLICIES) == {"nearest-holder", "unicast"}
