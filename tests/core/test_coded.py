"""Algebraic (network-coded) gossip: rank algebra, engines, registry."""

import pytest

from repro.core.coded import (
    CodedPacket,
    RankTracker,
    run_coded_gossip,
    systematic_coded_schedule,
)
from repro.core.gossip import gossip, resolve_network
from repro.exceptions import ReproError
from repro.networks import topologies
from repro.simulator.engine import ModelViolationError, execute_schedule
from repro.simulator.lossy import FaultModel
from repro.simulator.state import identity_holdings


GRID, _ = resolve_network("grid:16")


class TestRankTracker:
    def test_rank_grows_only_on_innovative_rows(self):
        tr = RankTracker()
        assert tr.insert(0b101)
        assert tr.insert(0b011)
        assert not tr.insert(0b110)  # 0b101 ^ 0b011: already spanned
        assert tr.rank == 2

    def test_zero_vector_is_never_innovative(self):
        tr = RankTracker()
        assert not tr.insert(0)
        assert tr.rank == 0

    def test_spans(self):
        tr = RankTracker()
        tr.insert(0b1100)
        tr.insert(0b0110)
        assert tr.spans(0b1010) and tr.spans(0)
        assert not tr.spans(0b0001)

    def test_rows_are_pivot_sorted(self):
        tr = RankTracker()
        tr.insert(0b1)
        tr.insert(0b1000)
        tr.insert(0b110)
        rows = tr.rows()
        assert [r.bit_length() for r in rows] == sorted(
            (r.bit_length() for r in rows), reverse=True
        )

    def test_full_rank_means_every_unit_decodable(self):
        tr = RankTracker()
        for vec in (0b111, 0b110, 0b010):
            tr.insert(vec)
        assert tr.rank == 3
        for m in range(3):
            assert tr.spans(1 << m)


class TestCodedEngine:
    def test_completes_and_is_deterministic(self):
        a = run_coded_gossip(GRID, seed=5)
        b = run_coded_gossip(GRID, seed=5)
        assert a.complete and a == b
        assert a.ranks == (GRID.n,) * GRID.n

    def test_complete_iff_rank_reaches_n(self):
        """The completion flag is exactly the all-ranks-n predicate."""
        full = run_coded_gossip(GRID, seed=1)
        assert full.complete and min(full.ranks) == GRID.n
        starved = run_coded_gossip(GRID, seed=1, max_rounds=3)
        assert not starved.complete and min(starved.ranks) < GRID.n
        assert starved.completion_round is None

    def test_innovative_plus_redundant_is_delivered(self):
        r = run_coded_gossip(GRID, seed=2)
        assert r.innovative + r.redundant == r.delivered
        # every vertex starts with its own unit and must gain n-1 dims
        assert r.innovative == GRID.n * (GRID.n - 1)

    def test_faulty_run_still_completes_with_losses(self):
        r = run_coded_gossip(GRID, seed=3, model=FaultModel(seed=7, drop_rate=0.2))
        assert r.complete and r.lost > 0

    def test_coding_beats_pathological_push_on_the_path(self):
        """Combinations crossing a cut are innovative w.p. >= 1/2 — no
        coupon collector, so coded completes in O(n) on the path where
        uniform push needs O(n^2)."""
        path = topologies.path_graph(12)
        r = run_coded_gossip(path, seed=4)
        assert r.complete
        assert r.completion_round < 12 * 12

    def test_packet_words_round_trip(self):
        p = CodedPacket(sender=0, coeffs=(1 << 100) | 5, destinations=(1,))
        words = p.words()
        assert len(words) == 2
        assert words[0] | (words[1] << 64) == p.coeffs

    def test_bad_fanout_rejected(self):
        with pytest.raises(ReproError):
            run_coded_gossip(GRID, fanout=0)


class TestProjectionImpossibility:
    def test_pure_coded_state_is_not_possession(self):
        """Concrete counterexample for the module-docstring claim: a
        receiver can *decode* a message from combinations without the
        simulator considering it held — so scheduling pure combinations
        as single labels breaks the possession rule."""
        tr = RankTracker()
        tr.insert(0b011)  # m0 ^ m1
        tr.insert(0b110)  # m1 ^ m2
        tr.insert(0b001)  # m0 arrives in the clear
        # rank 3: the vertex can decode m1 and m2 ...
        assert tr.spans(0b010) and tr.spans(0b100)
        # ... but a schedule that had only ever *labelled* m0 leaves the
        # hold-set at {m0}; sending the decodable m1 now is a violation.
        g = topologies.path_graph(2)
        from repro.core.schedule import Round, Schedule, Transmission

        bad = Schedule(
            [Round([Transmission(sender=0, message=1, destinations=(1,))])]
        )
        with pytest.raises(ModelViolationError):
            execute_schedule(g, bad, initial_holds=[0b001, 0b010])


class TestSystematicProjection:
    def test_schedule_is_model_valid_and_complete(self):
        g, _ = resolve_network("complete:10")
        sched = systematic_coded_schedule(g, seed=1)
        replay = execute_schedule(
            g, sched, initial_holds=identity_holdings(g.n), require_complete=True
        )
        assert replay.complete

    def test_deterministic(self):
        g = topologies.path_graph(8)
        assert systematic_coded_schedule(g, seed=2) == systematic_coded_schedule(
            g, seed=2
        )

    def test_registry_entry_executes(self):
        plan = gossip("random-tree:10", algorithm="coded")
        assert plan.execute().complete
