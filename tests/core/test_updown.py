"""Tests for the reconstructed UpDown algorithm (two-phase budget)."""

import pytest

from repro.core.concurrent_updown import concurrent_updown
from repro.core.updown import updown_gossip, updown_gossip_on_tree, updown_total_time_bound
from repro.networks import topologies
from repro.networks.builders import graph_to_tree, tree_to_graph
from repro.networks.random_graphs import random_tree
from repro.networks.spanning_tree import minimum_depth_spanning_tree
from repro.simulator.engine import execute_schedule
from repro.simulator.state import labeled_holdings
from repro.tree.labeling import LabeledTree
from repro.tree.tree import Tree


def run(labeled, schedule):
    return execute_schedule(
        tree_to_graph(labeled.tree),
        schedule,
        initial_holds=labeled_holdings(labeled.labels()),
        require_complete=True,
    )


class TestBudgetFormula:
    def test_formula(self):
        assert updown_total_time_bound(10, 3) == (9 + 3) + (2 * 2 + 1)
        assert updown_total_time_bound(1, 0) == 0


class TestWithinBudget:
    @pytest.mark.parametrize("n", [2, 5, 10, 20, 40])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_trees(self, n, seed):
        tree = graph_to_tree(random_tree(n, seed), root=0)
        labeled = LabeledTree(tree)
        schedule = updown_gossip(labeled)
        assert schedule.total_time <= updown_total_time_bound(n, tree.height)
        run(labeled, schedule)

    @pytest.mark.parametrize(
        "graph",
        [
            topologies.path_graph(13),
            topologies.star_graph(10),
            topologies.grid_2d(4, 4),
            topologies.hypercube(4),
            topologies.kary_tree(3, 3),
            topologies.caterpillar(8, 2),
        ],
        ids=lambda g: g.name,
    )
    def test_structured_topologies(self, graph):
        tree = minimum_depth_spanning_tree(graph)
        labeled = LabeledTree(tree)
        schedule = updown_gossip(labeled)
        assert schedule.total_time <= updown_total_time_bound(graph.n, tree.height)
        run(labeled, schedule)


class TestRelativePerformance:
    @pytest.mark.parametrize("seed", range(5))
    def test_never_faster_than_trivial_bound(self, seed):
        tree = graph_to_tree(random_tree(15, seed), root=0)
        labeled = LabeledTree(tree)
        assert updown_gossip(labeled).total_time >= 15 - 1

    def test_slower_than_concurrent_on_deep_bushy_trees(self):
        """The lookahead trick matters when messages pile at each level:
        UpDown must exceed n + r somewhere (else it would be the better
        algorithm and the paper moot).  The 3-ary tree exhibits it."""
        tree = minimum_depth_spanning_tree(topologies.kary_tree(3, 3))
        labeled = LabeledTree(tree)
        assert updown_gossip(labeled).total_time > concurrent_updown(labeled).total_time


class TestEdgeCases:
    def test_single_vertex(self):
        assert updown_gossip(LabeledTree(Tree([-1], root=0))).total_time == 0

    def test_on_tree_wrapper(self):
        tree = graph_to_tree(random_tree(8, 0), root=0)
        assert updown_gossip_on_tree(tree) == updown_gossip(LabeledTree(tree))
