"""Tests for multicast broadcasting (Section 2)."""

import pytest

from repro.core.broadcast import broadcast, broadcast_time
from repro.exceptions import DisconnectedGraphError
from repro.networks import topologies
from repro.networks.bfs import bfs_levels
from repro.networks.graph import Graph
from repro.networks.random_graphs import random_connected_gnp
from repro.simulator.engine import execute_schedule


class TestBroadcastTime:
    @pytest.mark.parametrize(
        "graph,source,expected",
        [
            (topologies.path_graph(7), 0, 6),
            (topologies.path_graph(7), 3, 3),
            (topologies.star_graph(9), 0, 1),
            (topologies.star_graph(9), 3, 2),
            (topologies.hypercube(4), 0, 4),
        ],
    )
    def test_equals_eccentricity(self, graph, source, expected):
        assert broadcast_time(graph, source) == expected
        assert broadcast(graph, source).total_time == expected

    def test_disconnected(self):
        with pytest.raises(DisconnectedGraphError):
            broadcast_time(Graph(3, [(0, 1)]), 0)


class TestBroadcastSchedule:
    @pytest.mark.parametrize("seed", range(6))
    def test_everyone_informed_at_shortest_path_distance(self, seed):
        """Section 2: processor v receives the message exactly at time
        dist(source, v)."""
        g = random_connected_gnp(22, 0.12, seed)
        source = seed % g.n
        dist = bfs_levels(g, source)
        result = execute_schedule(
            g,
            broadcast(g, source),
            initial_holds=[1 << source if v == source else 0 for v in range(g.n)],
            n_messages=g.n,
            record_arrivals=True,
        )
        arrivals = {ev.receiver: ev.time for ev in result.arrivals}
        for v in range(g.n):
            if v == source:
                assert v not in arrivals
            else:
                assert arrivals[v] == dist[v]

    def test_every_processor_receives_once(self):
        g = topologies.grid_2d(4, 4)
        schedule = broadcast(g, 0)
        receivers = [v for rnd in schedule for tx in rnd for v in tx.destinations]
        assert sorted(receivers) == list(range(1, 16))

    def test_custom_message_id(self):
        g = topologies.path_graph(4)
        schedule = broadcast(g, 1, message=3)
        for rnd in schedule:
            for tx in rnd:
                assert tx.message == 3

    def test_single_vertex(self):
        assert broadcast(Graph(1, []), 0).total_time == 0

    def test_star_single_multicast(self):
        """From the hub, one multicast informs everyone — fan-out n - 1."""
        schedule = broadcast(topologies.star_graph(8), 0)
        assert schedule.total_time == 1
        assert schedule.max_fan_out() == 7

    def test_disconnected_rejected(self):
        with pytest.raises(DisconnectedGraphError):
            broadcast(Graph(4, [(0, 1), (2, 3)]), 0)
