"""OnlineProcessor.receive hardening: malformed deliveries are rejected.

The real-network runtime feeds ``receive`` straight from decoded
datagrams, so a malformed (or malicious) datagram must raise a typed
:class:`~repro.exceptions.SimulationError` naming the processor and the
offending delivery instead of silently corrupting protocol state.
"""

import pytest

from repro.core.online import build_processors
from repro.exceptions import SimulationError
from repro.networks import topologies
from repro.networks.spanning_tree import minimum_depth_spanning_tree
from repro.tree.labeling import LabeledTree


def star_processors():
    """A labelled star:5 — processor 0 is the hub, leaves hang off it."""
    tree = minimum_depth_spanning_tree(topologies.star_graph(5))
    return build_processors(LabeledTree(tree))


def a_leaf(procs):
    return next(p for p in procs if p.parent is not None)


class TestUnknownLink:
    def test_non_neighbour_sender_rejected(self):
        procs = star_processors()
        leaf = a_leaf(procs)
        stranger = next(
            p.vertex for p in procs
            if p.vertex not in (leaf.vertex, leaf.parent)
        )
        with pytest.raises(SimulationError, match="unknown link"):
            leaf.receive(1, stranger, 0)

    def test_self_delivery_rejected(self):
        procs = star_processors()
        leaf = a_leaf(procs)
        with pytest.raises(SimulationError, match="unknown link"):
            leaf.receive(1, leaf.vertex, 0)

    def test_error_names_the_locus(self):
        procs = star_processors()
        leaf = a_leaf(procs)
        stranger = next(
            p.vertex for p in procs if p.vertex not in (leaf.vertex, leaf.parent)
        )
        with pytest.raises(SimulationError, match=f"processor {leaf.vertex}"):
            leaf.receive(3, stranger, 2)


class TestOutOfRange:
    def test_message_id_too_large(self):
        procs = star_processors()
        leaf = a_leaf(procs)
        with pytest.raises(SimulationError, match="out-of-range message"):
            leaf.receive(1, leaf.parent, leaf.n)

    def test_negative_message_id(self):
        procs = star_processors()
        leaf = a_leaf(procs)
        with pytest.raises(SimulationError, match="out-of-range message"):
            leaf.receive(1, leaf.parent, -1)

    def test_arrival_round_zero(self):
        """Round-0 sends land at time 1; time 0 deliveries are bogus."""
        procs = star_processors()
        leaf = a_leaf(procs)
        with pytest.raises(SimulationError, match="impossible arrival round"):
            leaf.receive(0, leaf.parent, 0)

    def test_arrival_round_beyond_horizon(self):
        procs = star_processors()
        leaf = a_leaf(procs)
        with pytest.raises(SimulationError, match="impossible arrival round"):
            leaf.receive(2 * leaf.n + 1, leaf.parent, 0)


class TestDuplicates:
    def test_exact_duplicate_triple_rejected(self):
        procs = star_processors()
        leaf = a_leaf(procs)
        leaf.receive(1, leaf.parent, 0)
        with pytest.raises(SimulationError, match="duplicate"):
            leaf.receive(1, leaf.parent, 0)

    def test_benign_redelivery_at_other_round_still_legal(self):
        """The model allows receiving an already-held message again —
        only the exact same (time, sender, message) triple is a protocol
        violation."""
        procs = star_processors()
        leaf = a_leaf(procs)
        leaf.receive(1, leaf.parent, 0)
        leaf.receive(2, leaf.parent, 0)  # held already: silently ignored
        assert 0 in leaf.held_messages

    def test_rejected_delivery_leaves_state_untouched(self):
        procs = star_processors()
        leaf = a_leaf(procs)
        before = list(leaf.held_messages)
        with pytest.raises(SimulationError):
            leaf.receive(1, leaf.parent, leaf.n + 3)
        assert leaf.held_messages == before
