"""Tests for the algorithm registry extension point."""

import pytest

from repro.core.gossip import ALGORITHMS, gossip, register_algorithm
from repro.core.simple import simple_gossip
from repro.networks import topologies


class TestRegisterAlgorithm:
    def test_custom_algorithm_usable_end_to_end(self):
        """Downstream users can plug a scheduling algorithm into the
        pipeline with one decorator."""

        @register_algorithm("test-custom")
        def custom(labeled):
            return simple_gossip(labeled).with_name("Custom")

        try:
            plan = gossip(topologies.path_graph(6), algorithm="test-custom")
            assert plan.schedule.name == "Custom"
            assert plan.execute().complete
        finally:
            del ALGORITHMS["test-custom"]

    def test_decorator_returns_function(self):
        @register_algorithm("test-passthrough")
        def algo(labeled):
            return simple_gossip(labeled)

        try:
            assert ALGORITHMS["test-passthrough"] is algo
            assert algo.__name__ == "algo"
        finally:
            del ALGORITHMS["test-passthrough"]

    def test_builtin_names_present_after_any_gossip(self):
        gossip(topologies.path_graph(3))
        assert {
            "concurrent-updown",
            "simple",
            "updown",
            "updown-greedy",
            "greedy",
            "telephone",
        } <= set(ALGORITHMS)

    def test_bad_custom_algorithm_caught_by_execute(self):
        """A broken custom algorithm cannot slip an invalid schedule
        through — the simulator rejects it."""
        from repro.core.schedule import Round, Schedule, Transmission

        @register_algorithm("test-broken")
        def broken(labeled):
            # sends a message the sender does not hold
            return Schedule(
                [
                    Round(
                        [
                            Transmission(
                                sender=0,
                                message=labeled.n - 1,
                                destinations=frozenset({labeled.tree.children(0)[0]}),
                            )
                        ]
                    )
                ]
            )

        try:
            plan = gossip(topologies.star_graph(5), algorithm="test-broken")
            from repro.exceptions import ModelViolationError

            with pytest.raises(ModelViolationError):
                plan.execute()
        finally:
            del ALGORITHMS["test-broken"]
