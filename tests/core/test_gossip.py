"""Tests for the end-to-end gossip() pipeline."""

import pytest

from repro.core.gossip import ALGORITHMS, gossip, gossip_on_tree
from repro.exceptions import DisconnectedGraphError, ReproError
from repro.networks import topologies
from repro.networks.builders import graph_to_tree
from repro.networks.graph import Graph
from repro.networks.properties import radius
from repro.networks.random_graphs import random_tree
from repro.networks.spanning_tree import bfs_spanning_tree


class TestPipeline:
    def test_default_algorithm_is_concurrent(self):
        plan = gossip(topologies.grid_2d(3, 3))
        assert plan.algorithm == "concurrent-updown"
        assert plan.schedule.name == "ConcurrentUpDown"

    def test_total_time_n_plus_radius(self):
        g = topologies.grid_2d(4, 5)
        plan = gossip(g)
        assert plan.total_time == g.n + radius(g)
        assert plan.total_time == plan.radius_bound

    def test_execute_checks_completeness(self):
        plan = gossip(topologies.cycle_graph(8))
        result = plan.execute()
        assert result.complete

    def test_execute_on_tree_only(self):
        """The schedule uses only spanning-tree edges (Section 3.1)."""
        plan = gossip(topologies.complete_graph(7))
        result = plan.execute(on_tree_only=True)
        assert result.complete

    def test_vertex_completion_times(self):
        g = topologies.star_graph(6)
        times = gossip(g).vertex_completion_times()
        assert set(times) == set(range(6))
        assert all(t >= g.n - 1 for t in times.values())

    def test_unknown_algorithm(self):
        with pytest.raises(ReproError, match="unknown algorithm"):
            gossip(topologies.path_graph(4), algorithm="magic")

    def test_disconnected_rejected(self):
        with pytest.raises(DisconnectedGraphError):
            gossip(Graph(4, [(0, 1), (2, 3)]))

    def test_registry_contains_all_published_algorithms(self):
        gossip(topologies.path_graph(3))  # force registry population
        assert {"concurrent-updown", "simple", "updown", "greedy", "telephone"} <= set(
            ALGORITHMS
        )


class TestTreeOverride:
    def test_custom_tree_used(self):
        g = topologies.path_graph(9)
        bad_tree = bfs_spanning_tree(g, 0)  # height 8, not the radius 4
        plan = gossip(g, tree=bad_tree)
        assert plan.tree.root == 0
        assert plan.total_time == 9 + 8  # n + height of the supplied tree
        plan.execute()

    def test_gossip_on_tree(self):
        tree = graph_to_tree(random_tree(12, 3), root=0)
        plan = gossip_on_tree(tree)
        assert plan.tree == tree
        assert plan.total_time == 12 + tree.height
        plan.execute(on_tree_only=True)


class TestAllAlgorithmsComplete:
    @pytest.mark.parametrize(
        "algorithm", ["concurrent-updown", "simple", "updown", "greedy", "telephone"]
    )
    @pytest.mark.parametrize(
        "graph",
        [
            topologies.path_graph(6),
            topologies.cycle_graph(7),
            topologies.star_graph(6),
            topologies.grid_2d(3, 3),
        ],
        ids=lambda g: g.name,
    )
    def test_complete_gossip(self, algorithm, graph):
        plan = gossip(graph, algorithm=algorithm)
        result = plan.execute(on_tree_only=True)
        assert result.complete
        assert plan.total_time >= graph.n - 1  # the trivial lower bound
