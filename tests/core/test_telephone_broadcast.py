"""Tests for telephone-model broadcasting (the Section 2 model contrast)."""

import math

import pytest

from repro.core.broadcast import broadcast, broadcast_time, telephone_broadcast
from repro.exceptions import DisconnectedGraphError
from repro.networks import topologies
from repro.networks.graph import Graph
from repro.networks.random_graphs import random_connected_gnp
from repro.simulator.engine import execute_schedule


def run(graph, schedule, source):
    return execute_schedule(
        graph,
        schedule,
        initial_holds=[1 << source if v == source else 0 for v in range(graph.n)],
        n_messages=graph.n,
    )


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(5))
    def test_everyone_informed(self, seed):
        g = random_connected_gnp(20, 0.15, seed)
        schedule = telephone_broadcast(g, 3)
        result = run(g, schedule, 3)
        assert all(h & (1 << 3) for h in result.final_holds)

    def test_all_unicast(self):
        assert telephone_broadcast(topologies.grid_2d(3, 4), 0).max_fan_out() == 1

    def test_custom_message(self):
        g = topologies.path_graph(4)
        schedule = telephone_broadcast(g, 1, message=9)
        assert all(tx.message == 9 for rnd in schedule for tx in rnd)

    def test_single_vertex(self):
        assert telephone_broadcast(Graph(1, []), 0).total_time == 0

    def test_disconnected_rejected(self):
        with pytest.raises(DisconnectedGraphError):
            telephone_broadcast(Graph(3, [(0, 1)]), 0)


class TestLowerBounds:
    @pytest.mark.parametrize("seed", range(4))
    def test_at_least_log2_and_ecc(self, seed):
        """Telephone broadcasting needs >= max(ecc, ceil(log2 n))."""
        g = random_connected_gnp(18, 0.2, seed)
        schedule = telephone_broadcast(g, 0)
        floor = max(broadcast_time(g, 0), math.ceil(math.log2(g.n)))
        assert schedule.total_time >= floor

    def test_complete_graph_achieves_log2(self):
        """On K_n greedy doubling is optimal: ceil(log2 n) rounds."""
        for n in (4, 8, 16, 15):
            schedule = telephone_broadcast(topologies.complete_graph(n), 0)
            assert schedule.total_time == math.ceil(math.log2(n))

    def test_hypercube_achieves_dimension(self):
        schedule = telephone_broadcast(topologies.hypercube(4), 0)
        assert schedule.total_time == 4  # matches multicast: degree = dim


class TestModelSeparation:
    def test_star_collapse(self):
        """The multicast model's headline win: 1 round vs n - 1."""
        g = topologies.star_graph(16)
        assert broadcast(g, 0).total_time == 1
        assert telephone_broadcast(g, 0).total_time == g.n - 1

    def test_telephone_never_beats_multicast(self):
        for g in (
            topologies.path_graph(9),
            topologies.wheel(9),
            topologies.grid_2d(3, 3),
            topologies.complete_graph(9),
        ):
            assert (
                telephone_broadcast(g, 0).total_time
                >= broadcast(g, 0).total_time
            )

    def test_path_no_separation(self):
        """On degree-2 topologies the models coincide for broadcast."""
        g = topologies.path_graph(11)
        assert telephone_broadcast(g, 0).total_time == broadcast(g, 0).total_time
