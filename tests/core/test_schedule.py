"""Unit tests for the schedule data model (Transmission/Round/Schedule)."""

import pytest

from repro.core.schedule import (
    Round,
    Schedule,
    ScheduleBuilder,
    Transmission,
    merge_schedules,
)
from repro.exceptions import ScheduleConflictError, ScheduleError


def tx(sender, message, dests):
    return Transmission(sender=sender, message=message, destinations=frozenset(dests))


class TestTransmission:
    def test_basic(self):
        t = tx(0, 3, {1, 2})
        assert t.fan_out() == 2
        assert t.destinations == frozenset({1, 2})

    def test_normalises_iterables(self):
        t = Transmission(sender=0, message=1, destinations=[2, 3])  # type: ignore[arg-type]
        assert isinstance(t.destinations, frozenset)

    def test_empty_destinations_rejected(self):
        with pytest.raises(ScheduleError, match="empty"):
            tx(0, 1, set())

    def test_self_send_rejected(self):
        with pytest.raises(ScheduleError, match="itself"):
            tx(0, 1, {0, 1})

    def test_ordering_stable(self):
        a, b = tx(0, 1, {2}), tx(1, 0, {3})
        assert sorted([b, a]) == [a, b]

    def test_repr(self):
        assert repr(tx(0, 5, {2, 1})) == "(5, 0 -> {1,2})"


class TestRound:
    def test_lookups(self):
        r = Round([tx(0, 0, {1, 2}), tx(3, 3, {4})])
        assert r.sent_by(0).message == 0
        assert r.sent_by(5) is None
        assert r.received_by(2).sender == 0
        assert r.received_by(0) is None
        assert r.senders() == {0, 3}
        assert r.receivers() == {1, 2, 4}

    def test_counts(self):
        r = Round([tx(0, 0, {1, 2}), tx(3, 3, {4})])
        assert r.message_count() == 2
        assert r.delivery_count() == 3
        assert len(r) == 2

    def test_rule_two_duplicate_sender_rejected(self):
        with pytest.raises(ScheduleConflictError, match="sends two"):
            Round([tx(0, 0, {1}), tx(0, 2, {3})])

    def test_rule_one_duplicate_receiver_rejected(self):
        with pytest.raises(ScheduleConflictError, match="receives two"):
            Round([tx(0, 0, {2}), tx(1, 1, {2})])

    def test_sender_may_also_receive(self):
        # Full-duplex is allowed: sending and receiving are independent.
        r = Round([tx(0, 0, {1}), tx(1, 1, {0})])
        assert r.message_count() == 2

    def test_empty_round(self):
        r = Round()
        assert r.is_empty()
        assert r.delivery_count() == 0

    def test_equality_hash(self):
        a = Round([tx(0, 0, {1})])
        b = Round([tx(0, 0, {1})])
        assert a == b
        assert hash(a) == hash(b)


class TestSchedule:
    def test_total_time(self):
        s = Schedule([Round([tx(0, 0, {1})]), Round([tx(1, 0, {2})])])
        assert s.total_time == 2
        assert len(s) == 2

    def test_trailing_empty_rounds_trimmed(self):
        s = Schedule([Round([tx(0, 0, {1})]), Round(), Round()])
        assert s.total_time == 1

    def test_interior_empty_round_kept(self):
        s = Schedule([Round(), Round([tx(0, 0, {1})])])
        assert s.total_time == 2
        assert s.round_at(0).is_empty()

    def test_round_at_past_end_is_empty(self):
        s = Schedule([Round([tx(0, 0, {1})])])
        assert s.round_at(99).is_empty()
        assert s.transmissions_at(99) == ()

    def test_counters(self):
        s = Schedule([Round([tx(0, 0, {1, 2})]), Round([tx(1, 0, {3})])])
        assert s.total_messages() == 2
        assert s.total_deliveries() == 3
        assert s.max_fan_out() == 2

    def test_empty_schedule(self):
        s = Schedule([])
        assert s.total_time == 0
        assert s.max_fan_out() == 0

    def test_with_name(self):
        s = Schedule([], name="a").with_name("b")
        assert s.name == "b"

    def test_equality(self):
        mk = lambda: Schedule([Round([tx(0, 0, {1})])])
        assert mk() == mk()
        assert hash(mk()) == hash(mk())


class TestScheduleBuilder:
    def test_build_orders_rounds(self):
        b = ScheduleBuilder()
        b.send(2, 0, 0, {1})
        b.send(0, 1, 1, {0})
        s = b.build()
        assert s.total_time == 3
        assert s.round_at(0).sent_by(1).message == 1
        assert s.round_at(1).is_empty()

    def test_merges_same_message_same_sender(self):
        b = ScheduleBuilder()
        b.send(0, 0, 7, {1})
        b.send(0, 0, 7, {2, 3})
        s = b.build()
        assert s.round_at(0).sent_by(0).destinations == frozenset({1, 2, 3})
        assert s.total_messages() == 1

    def test_rejects_different_message_same_sender(self):
        b = ScheduleBuilder()
        b.send(0, 0, 7, {1})
        with pytest.raises(ScheduleConflictError):
            b.send(0, 0, 8, {2})

    def test_receiver_conflict_caught_at_build(self):
        b = ScheduleBuilder()
        b.send(0, 0, 0, {2})
        b.send(0, 1, 1, {2})
        with pytest.raises(ScheduleConflictError):
            b.build()

    def test_empty_destination_ignored(self):
        b = ScheduleBuilder()
        b.send(0, 0, 0, [])
        assert b.build().total_time == 0

    def test_negative_time_rejected(self):
        with pytest.raises(ScheduleError):
            ScheduleBuilder().send(-1, 0, 0, {1})

    def test_from_schedule_roundtrip(self):
        s = Schedule([Round([tx(0, 0, {1, 2})]), Round([tx(2, 0, {3})])], name="x")
        assert ScheduleBuilder.from_schedule(s).build(name="x") == s


class TestMergeSchedules:
    def test_disjoint_merge(self):
        a = Schedule([Round([tx(0, 0, {1})])])
        b = Schedule([Round(), Round([tx(1, 0, {2})])])
        merged = merge_schedules(a, b)
        assert merged.total_time == 2
        assert merged.total_messages() == 2

    def test_same_send_fuses(self):
        a = Schedule([Round([tx(0, 5, {1})])])
        b = Schedule([Round([tx(0, 5, {2})])])
        merged = merge_schedules(a, b)
        assert merged.round_at(0).sent_by(0).destinations == frozenset({1, 2})

    def test_conflicting_merge_raises(self):
        a = Schedule([Round([tx(0, 5, {1})])])
        b = Schedule([Round([tx(0, 6, {2})])])
        with pytest.raises(ScheduleConflictError):
            merge_schedules(a, b)

    def test_receiver_conflict_merge_raises(self):
        a = Schedule([Round([tx(0, 5, {2})])])
        b = Schedule([Round([tx(1, 6, {2})])])
        with pytest.raises(ScheduleConflictError):
            merge_schedules(a, b)
