"""Tests for the non-uniform optimal odd-path schedule (Discussion)."""

import pytest

from repro.core.gossip import gossip
from repro.core.optimal import minimum_gossip_time
from repro.core.optimal_path import optimal_path_gossip, optimal_path_time
from repro.exceptions import ReproError
from repro.networks.topologies import path_graph
from repro.simulator.validator import assert_gossip_schedule


class TestOptimalPathTime:
    def test_formula(self):
        assert optimal_path_time(3) == 3
        assert optimal_path_time(5) == 6
        assert optimal_path_time(9) == 12

    def test_rejects_even_and_tiny(self):
        with pytest.raises(ReproError):
            optimal_path_time(4)
        with pytest.raises(ReproError):
            optimal_path_time(1)


class TestSchedule:
    @pytest.mark.parametrize("m", [1, 2, 3, 5, 8, 13, 21])
    def test_exactly_n_plus_r_minus_1(self, m):
        n = 2 * m + 1
        graph, schedule = optimal_path_gossip(n)
        assert schedule.total_time == n + m - 1
        assert_gossip_schedule(graph, schedule, max_total_time=n + m - 1)

    @pytest.mark.parametrize("m", [1, 2])
    def test_matches_exact_optimum(self, m):
        """The schedule meets the exhaustively-certified optimum."""
        n = 2 * m + 1
        _, schedule = optimal_path_gossip(n)
        assert schedule.total_time == minimum_gossip_time(path_graph(n))

    @pytest.mark.parametrize("m", [2, 4, 8])
    def test_one_round_below_concurrent_updown(self, m):
        """The Discussion's 'improve by one unit', head to head."""
        n = 2 * m + 1
        _, schedule = optimal_path_gossip(n)
        uniform = gossip(path_graph(n))
        assert uniform.total_time - schedule.total_time == 1

    def test_rejects_even(self):
        with pytest.raises(ReproError):
            optimal_path_gossip(6)


class TestAlternation:
    """The structural signature the paper describes: the center receives
    from the two subtrees on alternating rounds."""

    @pytest.mark.parametrize("m", [3, 6])
    def test_center_receives_alternate_arms(self, m):
        n = 2 * m + 1
        center = m
        graph, schedule = optimal_path_gossip(n)
        side_by_time = {}
        for t, rnd in enumerate(schedule):
            for tx in rnd:
                if center in tx.destinations:
                    side_by_time[t + 1] = -1 if tx.sender < center else +1
        times = sorted(side_by_time)
        assert times == list(range(1, 2 * m + 1))  # one arrival every round
        assert all(
            side_by_time[t] != side_by_time[t + 1] for t in times[:-1]
        ), "arrivals must alternate between the two subtrees"

    @pytest.mark.parametrize("m", [3, 6])
    def test_non_uniform(self, m):
        """Mirror-symmetric vertices behave differently — the protocol is
        genuinely non-uniform (left arms deliver on odd rounds, right on
        even), unlike ConcurrentUpDown's per-vertex uniform rules."""
        n = 2 * m + 1
        _, schedule = optimal_path_gossip(n)
        left, right = m - 1, m + 1  # the two center neighbours
        left_sends = {t for t in range(schedule.total_time)
                      if schedule.round_at(t).sent_by(left)}
        right_sends = {t for t in range(schedule.total_time)
                       if schedule.round_at(t).sent_by(right)}
        assert left_sends != right_sends

    def test_origin_first_hop_is_a_multicast(self):
        """Interior origins send their first transmission both ways."""
        n = 9
        _, schedule = optimal_path_gossip(n)
        # vertex 2 (position -2): first send of message 2 goes to 1 and 3
        first = next(
            tx
            for t in range(schedule.total_time)
            for tx in schedule.round_at(t)
            if tx.sender == 2 and tx.message == 2
        )
        assert first.destinations == frozenset({1, 3})
