"""The array-native schedule pipeline: structure, round-trips, parity.

Covers the :class:`~repro.core.schedule.ArraySchedule` canonical form
end to end:

* structural invariants of the flat columns and the destination-mask
  matrix, the analytic ``nbytes``, and the npz round-trip;
* losslessness of the array <-> object-view round-trip (property-tested
  over random labeled trees);
* bit-identity of the array-built ConcurrentUpDown against the seed
  per-vertex builder across every topology family and random trees;
* identical diagnostics from every ``repro.lint`` rule on both forms;
* the packed possession bitset (:class:`PackedHoldState`) agreeing with
  the object-path :class:`HoldState` — ``int.bit_count()`` parity — and
  the simulator's array fast path agreeing with the object engine;
* the deprecation fence on the legacy builder mutation path.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings

from repro.analysis.sweep import FAMILIES, family_instance
from repro.core.concurrent_updown import (
    concurrent_updown,
    concurrent_updown_reference,
)
from repro.core.gossip import gossip
from repro.core.schedule import (
    ArraySchedule,
    Schedule,
    ScheduleBuilder,
)
from repro.exceptions import ScheduleConflictError, ScheduleError
from repro.lint import lint_schedule
from repro.networks.builders import tree_to_graph
from repro.networks.spanning_tree import minimum_depth_spanning_tree
from repro.simulator.engine import execute_schedule
from repro.simulator.state import HoldState, PackedHoldState, labeled_holdings
from repro.tree.labeling import LabeledTree
from tests.conftest import labeled_trees


def _plan(spec="grid:16"):
    return gossip(spec)


class TestStructure:
    def test_canonical_columns(self):
        arr = _plan().arrays()
        assert arr.round.dtype == np.int32
        assert arr.sender.dtype == np.int32
        assert arr.message.dtype == np.int32
        assert arr.dest_mask.dtype == np.uint64
        # strict (round, sender) lexicographic order
        key = arr.round.astype(np.int64) * arr.n + arr.sender
        assert np.all(np.diff(key) > 0)

    def test_nbytes_is_analytic(self):
        plan = _plan()
        arr = plan.arrays()
        words = (arr.n + 63) // 64
        expected = (
            arr.round.nbytes + arr.sender.nbytes + arr.message.nbytes
            + len(arr.round) * words * 8
        )
        assert arr.nbytes == expected

    def test_nbytes_does_not_materialise_lazy_masks(self):
        arr = _plan().arrays()
        if arr._dest_mask is not None:
            pytest.skip("mask already materialised for this build")
        _ = arr.nbytes
        assert arr._dest_mask is None

    def test_round_ptr_and_destination_pairs(self):
        arr = _plan().arrays()
        ptr = arr.round_ptr
        assert ptr[0] == 0 and ptr[-1] == len(arr.round)
        assert np.all(np.diff(ptr) >= 0)
        row, dest = arr.destination_pairs()
        assert len(row) == arr.delivery_count()
        assert np.all(np.diff(row) >= 0)
        assert dest.min() >= 0 and dest.max() < arr.n

    def test_widen_preserves_contents(self):
        arr = _plan("path:9").arrays()
        wide = arr.widen(200)
        assert wide.n == 200
        assert np.array_equal(wide.round, arr.round)
        assert wide.dest_mask.shape[1] == (200 + 63) // 64
        with pytest.raises(ScheduleError):
            arr.widen(2)


class TestNpzRoundTrip:
    def test_lossless(self, tmp_path):
        arr = _plan().arrays()
        path = tmp_path / "sched.npz"
        arr.to_npz(path)
        back = ArraySchedule.from_npz(path)
        assert back == arr
        assert back.name == arr.name
        assert back.n == arr.n and back.n_messages == arr.n_messages

    def test_empty_schedule(self, tmp_path):
        arr = gossip("path:1").arrays()
        path = tmp_path / "empty.npz"
        arr.to_npz(path)
        back = ArraySchedule.from_npz(path)
        assert back == arr and back.total_time == 0


class TestValidation:
    def _cols(self):
        t = np.array([0, 1], dtype=np.int64)
        s = np.array([0, 1], dtype=np.int64)
        m = np.array([0, 1], dtype=np.int64)
        return t, s, m

    def test_self_send_rejected(self):
        t, s, m = self._cols()
        masks = np.zeros((2, 1), dtype=np.uint64)
        masks[0, 0] = 1  # processor 0 multicasts to itself
        masks[1, 0] = 1
        with pytest.raises(ScheduleError):
            ArraySchedule.from_events(t, s, m, masks, n=4)

    def test_receiver_collision_rejected(self):
        t = np.array([0, 0], dtype=np.int64)
        s = np.array([0, 1], dtype=np.int64)
        m = np.array([0, 1], dtype=np.int64)
        masks = np.zeros((2, 1), dtype=np.uint64)
        masks[0, 0] = 1 << 2
        masks[1, 0] = 1 << 2  # processor 2 receives twice in round 0
        with pytest.raises(ScheduleConflictError):
            ArraySchedule.from_events(t, s, m, masks, n=4)

    def test_lazy_mask_validation_is_deferred(self):
        t, s, m = self._cols()

        def bad_masks():
            masks = np.zeros((2, 1), dtype=np.uint64)
            masks[0, 0] = 1  # self-send, only discovered on materialise
            masks[1, 0] = 1 << 2
            return masks

        fans = np.array([1, 1], dtype=np.int64)
        arr = ArraySchedule._from_canonical(
            t.astype(np.int32), s.astype(np.int32), m.astype(np.int32),
            None, fans, n=4, mask_builder=bad_masks,
        )
        with pytest.raises(ScheduleError):
            _ = arr.dest_mask


class TestFacadeLaziness:
    def test_counters_answer_from_arrays(self):
        plan = _plan()
        sched = plan.schedule
        assert sched.is_array_backed
        assert sched._rounds is None
        _ = sched.total_time
        _ = sched.total_deliveries()
        _ = sched.max_fan_out()
        assert sched._rounds is None  # nothing materialised yet
        _ = sched.rounds
        assert sched._rounds is not None

    def test_plan_accessors(self):
        plan = _plan()
        arr = plan.arrays()
        assert isinstance(arr, ArraySchedule)
        assert plan.rounds() == plan.schedule.rounds
        assert arr is plan.schedule.arrays()

    def test_facade_equals_object_schedule(self):
        plan = _plan("path:8")
        objects = Schedule(plan.schedule.rounds, name=plan.schedule.name)
        assert plan.schedule == objects


@given(labeled=labeled_trees(max_n=24))
@settings(max_examples=40, deadline=None)
def test_array_object_round_trip_lossless(labeled):
    """arrays -> rounds -> arrays is the identity (property-tested)."""
    arr = concurrent_updown(labeled).arrays()
    rebuilt = ArraySchedule.from_schedule(
        Schedule(arr.build_rounds(), name=arr.name), n=arr.n,
        n_messages=arr.n_messages,
    )
    assert rebuilt == arr


@given(labeled=labeled_trees(max_n=24))
@settings(max_examples=40, deadline=None)
def test_array_pipeline_matches_seed_builder_random(labeled):
    """Round-for-round bit-identity on hypothesis-random trees."""
    fast = concurrent_updown(labeled)
    seed = concurrent_updown_reference(labeled)
    assert fast.rounds == seed.rounds
    if labeled.n > 1:
        # n = 1 schedules are empty: the object-built seed cannot infer
        # the processor universe, so only the rounds compare there.
        assert fast.arrays() == seed.arrays()


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_array_pipeline_matches_seed_builder_families(family):
    """Round-for-round bit-identity on every topology family."""
    graph = family_instance(family, 24)
    labeled = LabeledTree(minimum_depth_spanning_tree(graph, method="pruned"))
    fast = concurrent_updown(labeled)
    seed = concurrent_updown_reference(labeled)
    assert fast.arrays() == seed.arrays()
    assert fast.rounds == seed.rounds


class TestLintDifferential:
    @pytest.mark.parametrize("spec", ["grid:16", "path:12", "star:10", "random:24"])
    def test_identical_diagnostics_on_both_forms(self, spec):
        """Every lint rule judges the array and object forms identically."""
        plan = gossip(spec)
        on_arrays = lint_schedule(plan.graph, plan.arrays(), plan=plan)
        on_objects = lint_schedule(
            plan.graph, Schedule(plan.rounds(), name=plan.schedule.name),
            plan=plan,
        )
        assert len(on_arrays.rules_run) == 18
        assert on_arrays.rules_run == on_objects.rules_run
        assert on_arrays.diagnostics == on_objects.diagnostics
        assert on_arrays.name == on_objects.name


class TestPackedStateParity:
    @pytest.mark.parametrize("spec", ["grid:25", "path:17", "random:32"])
    def test_fast_path_matches_object_engine(self, spec):
        plan = gossip(spec)
        holds = labeled_holdings(plan.labeled.labels())
        fast = execute_schedule(
            plan.graph, plan.schedule, initial_holds=holds,
            require_complete=True,
        )
        slow = execute_schedule(
            plan.graph, plan.schedule, initial_holds=holds,
            require_complete=True, record_arrivals=True,  # forces object path
        )
        assert fast.completion_times == slow.completion_times
        assert fast.duplicate_deliveries == slow.duplicate_deliveries
        assert fast.final_holds == slow.final_holds
        assert fast.makespan == slow.makespan

    def test_bit_count_parity_per_round(self):
        """Step both representations round by round; popcounts agree."""
        plan = gossip("grid:16")
        labels = plan.labeled.labels()
        packed = PackedHoldState(plan.graph.n, initial=labeled_holdings(labels))
        obj = HoldState(plan.graph.n, initial=labeled_holdings(labels))
        for t, rnd in enumerate(plan.rounds(), start=1):
            recv, msg = [], []
            for tx in rnd:
                for d in tx.destinations:
                    recv.append(d)
                    msg.append(tx.message)
                    obj.deliver(d, tx.message, t)
            packed.deliver_round(
                np.asarray(recv, dtype=np.int64),
                np.asarray(msg, dtype=np.int64),
                t,
            )
            packed.assert_parity(obj)
        assert packed.all_complete() and obj.all_complete()
        assert packed.completion_times() == obj.completion_times()
        assert packed.duplicate_deliveries == obj.duplicate_deliveries

    def test_fast_path_reports_possession_violation(self):
        """Same error text as the object engine, receive-before-send."""
        plan = gossip("path:6")
        wrong_holds = [1 << 0] * plan.graph.n  # nobody holds their label
        with pytest.raises(Exception) as fast_err:
            execute_schedule(plan.graph, plan.schedule, initial_holds=wrong_holds)
        with pytest.raises(Exception) as slow_err:
            execute_schedule(
                plan.graph, plan.schedule, initial_holds=wrong_holds,
                record_arrivals=True,
            )
        assert str(fast_err.value) == str(slow_err.value)
        assert type(fast_err.value) is type(slow_err.value)


class TestDeprecations:
    def test_from_schedule_on_array_backed_warns(self):
        plan = _plan("path:6")
        with pytest.warns(DeprecationWarning, match="array-backed"):
            builder = ScheduleBuilder.from_schedule(plan.schedule)
        # ...but still round-trips faithfully
        assert builder.build(name=plan.schedule.name) == plan.schedule

    def test_builder_builds_arrays_underneath(self):
        builder = ScheduleBuilder()
        builder.send(0, 0, 0, (1,))
        builder.send(1, 1, 0, (2,))
        sched = builder.build(name="tiny")
        assert sched.is_array_backed
        assert sched.arrays().n_transmissions == 2

    def test_object_constructed_schedule_does_not_warn(self):
        plan = _plan("path:6")
        objects = Schedule(plan.rounds(), name="objects")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ScheduleBuilder.from_schedule(objects)
