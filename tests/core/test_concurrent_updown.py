"""Tests for ConcurrentUpDown — Theorem 1's n + r guarantee."""

import pytest

from repro.core.concurrent_updown import concurrent_updown, concurrent_updown_on_tree
from repro.networks import topologies
from repro.networks.builders import graph_to_tree, tree_to_graph
from repro.networks.paper_networks import fig5_tree
from repro.networks.random_graphs import random_tree
from repro.networks.spanning_tree import minimum_depth_spanning_tree
from repro.simulator.engine import execute_schedule
from repro.simulator.state import labeled_holdings
from repro.tree.labeling import LabeledTree
from repro.tree.tree import Tree


def run(labeled, schedule, **kw):
    return execute_schedule(
        tree_to_graph(labeled.tree),
        schedule,
        initial_holds=labeled_holdings(labeled.labels()),
        require_complete=True,
        **kw,
    )


class TestTheorem1Fig5:
    def test_total_time_is_n_plus_r(self):
        labeled = LabeledTree(fig5_tree())
        schedule = concurrent_updown(labeled)
        assert schedule.total_time == 16 + 3

    def test_complete_and_valid(self):
        labeled = LabeledTree(fig5_tree())
        result = run(labeled, concurrent_updown(labeled))
        assert result.complete

    def test_no_duplicate_deliveries(self):
        """ConcurrentUpDown never wastes a receive slot."""
        labeled = LabeledTree(fig5_tree())
        result = run(labeled, concurrent_updown(labeled))
        assert result.duplicate_deliveries == 0

    def test_u4_d3_sends_fused_into_multicasts(self):
        """At times i-k+w..j-k the same message goes to the parent and to
        children in ONE multicast (Theorem 1's overlap argument)."""
        labeled = LabeledTree(fig5_tree())
        schedule = concurrent_updown(labeled)
        tree = labeled.tree
        # vertex 4 at time 5 sends message 6 up to 0 and down to child 8
        tx = schedule.round_at(5).sent_by(4)
        assert tx.message == 6
        assert 0 in tx.destinations and 8 in tx.destinations


class TestTheorem1Trees:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 8, 13, 21, 34])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_exact_n_plus_height_random_trees(self, n, seed):
        tree = graph_to_tree(random_tree(n, seed), root=0)
        labeled = LabeledTree(tree)
        schedule = concurrent_updown(labeled)
        assert schedule.total_time == n + tree.height if n > 1 else 0
        run(labeled, schedule)

    def test_star_tree(self):
        labeled = LabeledTree(Tree([-1] + [0] * 9, root=0))
        schedule = concurrent_updown(labeled)
        assert schedule.total_time == 10 + 1
        run(labeled, schedule)

    def test_chain_tree(self):
        parents = [-1] + list(range(9))
        labeled = LabeledTree(Tree(parents, root=0))
        schedule = concurrent_updown(labeled)
        assert schedule.total_time == 10 + 9
        run(labeled, schedule)

    def test_single_vertex(self):
        assert concurrent_updown(LabeledTree(Tree([-1], root=0))).total_time == 0

    def test_two_vertices(self):
        labeled = LabeledTree(Tree([-1, 0], root=0))
        schedule = concurrent_updown(labeled)
        assert schedule.total_time == 3  # n + r = 2 + 1
        run(labeled, schedule)

    def test_on_tree_wrapper(self):
        tree = fig5_tree()
        assert concurrent_updown_on_tree(tree) == concurrent_updown(LabeledTree(tree))


class TestChildOrderInvariance:
    """The paper: subtree order is arbitrary — length never changes."""

    @pytest.mark.parametrize("seed", range(5))
    def test_total_time_invariant_under_child_order(self, seed):
        tree = graph_to_tree(random_tree(20, seed), root=0)
        normal = concurrent_updown(LabeledTree(tree))
        reversed_order = tree.with_child_order(lambda v, k: sorted(k, reverse=True))
        flipped = concurrent_updown(LabeledTree(reversed_order))
        assert normal.total_time == flipped.total_time
        run(LabeledTree(reversed_order), flipped)


class TestCompletionTimes:
    def test_completion_no_earlier_than_n_minus_1(self):
        """Every vertex needs n - 1 receives, so completes at >= n - 1."""
        labeled = LabeledTree(fig5_tree())
        result = run(labeled, concurrent_updown(labeled))
        for t in result.completion_times:
            assert t >= 16 - 1

    def test_last_completion_equals_total_time(self):
        tree = minimum_depth_spanning_tree(topologies.grid_2d(4, 4))
        labeled = LabeledTree(tree)
        schedule = concurrent_updown(labeled)
        result = run(labeled, schedule)
        assert max(result.completion_times) == schedule.total_time
