"""Tests for the exact optimal search (tiny instances).

These certify the paper's lower-bound arguments computationally.  The
search is exponential, so every instance here has n <= 6.
"""

import pytest

from repro.core.optimal import is_gossipable_within, minimum_gossip_time, optimal_schedule
from repro.exceptions import ReproError
from repro.networks import topologies
from repro.networks.graph import Graph
from repro.networks.paper_networks import n3_network
from repro.simulator.validator import assert_gossip_schedule


class TestKnownOptima:
    def test_path3_needs_n_plus_r_minus_1(self):
        """Section 1's three-processor line argument: optimum is 3."""
        assert minimum_gossip_time(topologies.path_graph(3)) == 3

    def test_path5_needs_n_plus_r_minus_1(self):
        """P_5 (m=2): n + r - 1 = 6, and 6 is achievable."""
        assert minimum_gossip_time(topologies.path_graph(5)) == 6

    def test_cycle_optimal_n_minus_1(self):
        assert minimum_gossip_time(topologies.cycle_graph(5)) == 4

    def test_complete_graph_n4(self):
        assert minimum_gossip_time(topologies.complete_graph(4)) == 3

    def test_n3_multicast_optimum_is_n_minus_1(self):
        assert minimum_gossip_time(n3_network()) == 4

    def test_single_vertex(self):
        assert minimum_gossip_time(Graph(1, [])) == 0

    def test_two_vertices(self):
        assert minimum_gossip_time(Graph(2, [(0, 1)])) == 1


class TestTelephoneModel:
    def test_n3_not_gossipable_in_4_under_telephone(self):
        """The Fig. 3 separation, certified by exhaustive search."""
        assert not is_gossipable_within(n3_network(), 4, telephone=True)

    def test_n3_gossipable_in_4_under_multicast(self):
        assert is_gossipable_within(n3_network(), 4, telephone=False)

    def test_cycle_telephone_still_n_minus_1(self):
        """The ring schedule is all-unicast, so telephone achieves 4 too."""
        assert is_gossipable_within(topologies.cycle_graph(5), 4, telephone=True)

    def test_telephone_never_beats_multicast(self):
        g = topologies.star_graph(4)
        assert minimum_gossip_time(g, telephone=True) >= minimum_gossip_time(g)


class TestDecisionSearch:
    def test_below_trivial_bound_infeasible(self):
        g = topologies.cycle_graph(5)
        assert not is_gossipable_within(g, 3)  # < n - 1

    def test_budget_zero(self):
        assert not is_gossipable_within(Graph(2, [(0, 1)]), 0)
        assert is_gossipable_within(Graph(1, []), 0)


class TestOptimalSchedule:
    def test_reconstruction_valid_and_optimal(self):
        g = topologies.path_graph(4)
        schedule = optimal_schedule(g)
        assert schedule.total_time == minimum_gossip_time(g)
        assert_gossip_schedule(g, schedule)

    def test_reconstruction_star(self):
        g = topologies.star_graph(4)
        schedule = optimal_schedule(g)
        assert_gossip_schedule(g, schedule)
        assert schedule.total_time == minimum_gossip_time(g)


class TestGuards:
    def test_large_instance_rejected(self):
        with pytest.raises(ReproError, match="n <= 7"):
            minimum_gossip_time(topologies.cycle_graph(12))

    def test_upper_limit_exceeded(self):
        with pytest.raises(ReproError, match="no gossip schedule"):
            minimum_gossip_time(topologies.path_graph(5), upper_limit=3)

    def test_concurrent_updown_within_one_of_optimal_on_paths(self):
        """The Discussion: our n + r is one above the path optimum."""
        from repro.core.gossip import gossip

        g = topologies.path_graph(5)
        plan = gossip(g)
        assert plan.total_time == minimum_gossip_time(g) + 1
