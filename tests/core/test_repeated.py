"""Tests for repeated (pipelined) gossiping on a fixed tree."""

import pytest

from repro.core.concurrent_updown import concurrent_updown
from repro.core.repeated import (
    minimal_pipeline_offset,
    repeated_gossip,
)
from repro.exceptions import ReproError
from repro.networks import topologies
from repro.networks.builders import graph_to_tree
from repro.networks.random_graphs import random_tree
from repro.networks.spanning_tree import minimum_depth_spanning_tree
from repro.tree.labeling import LabeledTree


def labeled_of(graph):
    return LabeledTree(minimum_depth_spanning_tree(graph))


class TestMinimalOffset:
    def test_at_least_capacity_floor(self):
        """No processor can receive two messages per round, so the offset
        is at least n - 1."""
        labeled = labeled_of(topologies.grid_2d(3, 3))
        assert minimal_pipeline_offset(concurrent_updown(labeled)) >= labeled.n - 1

    def test_at_most_schedule_length(self):
        labeled = labeled_of(topologies.path_graph(8))
        single = concurrent_updown(labeled)
        assert minimal_pipeline_offset(single) <= single.total_time

    def test_receive_saturation_finding(self):
        """The negative result: on paths/grids the offset IS the full
        schedule length — ConcurrentUpDown admits no pipelining."""
        for g in (topologies.path_graph(9), topologies.grid_2d(3, 4)):
            labeled = labeled_of(g)
            single = concurrent_updown(labeled)
            assert minimal_pipeline_offset(single) == single.total_time

    def test_star_gains_a_round(self):
        labeled = labeled_of(topologies.star_graph(12))
        single = concurrent_updown(labeled)
        assert minimal_pipeline_offset(single) == single.total_time - 1

    def test_empty_schedule(self):
        from repro.core.schedule import Schedule

        assert minimal_pipeline_offset(Schedule([])) == 0


class TestRepeatedGossip:
    @pytest.mark.parametrize("instances", [1, 2, 4])
    def test_complete_and_valid(self, instances):
        labeled = labeled_of(topologies.star_graph(8))
        plan = repeated_gossip(labeled, instances=instances)
        result = plan.execute()
        assert result.complete
        assert plan.instances == instances

    def test_total_time_formula(self):
        labeled = labeled_of(topologies.star_graph(10))
        plan = repeated_gossip(labeled, instances=3)
        single = concurrent_updown(labeled).total_time
        assert plan.total_time == 2 * plan.offset + single
        assert plan.total_time <= plan.sequential_time

    def test_amortised_time(self):
        labeled = labeled_of(topologies.star_graph(10))
        plan = repeated_gossip(labeled, instances=5)
        assert plan.amortised_time <= concurrent_updown(labeled).total_time

    def test_message_spaces_disjoint(self):
        """Instance q's messages are q*n + label."""
        labeled = labeled_of(topologies.path_graph(5))
        plan = repeated_gossip(labeled, instances=2)
        messages = {tx.message for rnd in plan.schedule for tx in rnd}
        assert messages <= set(range(2 * labeled.n))
        assert any(m >= labeled.n for m in messages)

    def test_explicit_safe_offset(self):
        labeled = labeled_of(topologies.path_graph(6))
        single = concurrent_updown(labeled)
        plan = repeated_gossip(labeled, instances=3, offset=single.total_time)
        assert plan.execute().complete

    def test_unsafe_offset_rejected(self):
        labeled = labeled_of(topologies.path_graph(6))
        with pytest.raises(ReproError, match="unsafe"):
            repeated_gossip(labeled, instances=2, offset=1)

    def test_zero_instances_rejected(self):
        labeled = labeled_of(topologies.path_graph(4))
        with pytest.raises(ReproError):
            repeated_gossip(labeled, instances=0)

    @pytest.mark.parametrize("seed", range(3))
    def test_random_trees(self, seed):
        tree = graph_to_tree(random_tree(12, seed), root=0)
        plan = repeated_gossip(LabeledTree(tree), instances=3)
        assert plan.execute().complete
