"""Tests for Hamiltonian-circuit gossiping (Fig. 1)."""

import pytest

from repro.core.ring import hamiltonian_circuit, ring_gossip, ring_gossip_on_graph
from repro.exceptions import GraphError
from repro.networks import topologies
from repro.networks.graph import Graph
from repro.networks.paper_networks import petersen
from repro.simulator.validator import assert_gossip_schedule


class TestRingGossip:
    @pytest.mark.parametrize("n", [3, 4, 7, 16])
    def test_optimal_n_minus_1(self, n):
        schedule = ring_gossip(list(range(n)))
        assert schedule.total_time == n - 1
        assert_gossip_schedule(topologies.cycle_graph(n), schedule)

    def test_all_unicasts(self):
        assert ring_gossip(list(range(6))).max_fan_out() == 1

    def test_every_processor_busy_every_round(self):
        schedule = ring_gossip(list(range(5)))
        for rnd in schedule:
            assert len(rnd) == 5

    def test_arbitrary_circuit_order(self):
        # Gossip along the circuit 0-2-4-1-3 of K5.
        circuit = [0, 2, 4, 1, 3]
        schedule = ring_gossip(circuit)
        assert_gossip_schedule(topologies.complete_graph(5), schedule)

    def test_rejects_tiny(self):
        with pytest.raises(GraphError):
            ring_gossip([0, 1])

    def test_rejects_non_permutation(self):
        with pytest.raises(GraphError):
            ring_gossip([0, 1, 1, 2])


class TestHamiltonianSearch:
    def test_cycle_has_circuit(self):
        circuit = hamiltonian_circuit(topologies.cycle_graph(7))
        assert circuit is not None
        assert sorted(circuit) == list(range(7))

    def test_complete_graph(self):
        assert hamiltonian_circuit(topologies.complete_graph(6)) is not None

    def test_hypercube(self):
        assert hamiltonian_circuit(topologies.hypercube(3)) is not None

    def test_circuit_uses_edges(self):
        g = topologies.grid_2d(2, 4)
        circuit = hamiltonian_circuit(g)
        assert circuit is not None
        for u, v in zip(circuit, circuit[1:] + circuit[:1]):
            assert g.has_edge(u, v)

    def test_petersen_has_none(self):
        assert hamiltonian_circuit(petersen()) is None

    def test_tree_has_none(self):
        assert hamiltonian_circuit(topologies.path_graph(5)) is None

    def test_star_has_none(self):
        assert hamiltonian_circuit(topologies.star_graph(5)) is None

    def test_tiny_graph(self):
        assert hamiltonian_circuit(Graph(2, [(0, 1)])) is None


class TestRingGossipOnGraph:
    def test_hamiltonian_graph(self):
        g = topologies.torus_2d(3, 3)
        schedule = ring_gossip_on_graph(g)
        assert schedule.total_time == g.n - 1
        assert_gossip_schedule(g, schedule)

    def test_non_hamiltonian_raises(self):
        with pytest.raises(GraphError, match="Hamiltonian"):
            ring_gossip_on_graph(topologies.star_graph(5))
