"""Tests for procedure Simple — Lemma 1's exact 2n + r - 3 time."""

import pytest

from repro.core.simple import simple_gossip, simple_gossip_on_tree, simple_total_time
from repro.networks.builders import graph_to_tree, tree_to_graph
from repro.networks.paper_networks import fig5_tree
from repro.networks.random_graphs import random_tree
from repro.simulator.engine import execute_schedule
from repro.simulator.state import labeled_holdings
from repro.tree.labeling import LabeledTree
from repro.tree.tree import Tree


def run(labeled, schedule):
    return execute_schedule(
        tree_to_graph(labeled.tree),
        schedule,
        initial_holds=labeled_holdings(labeled.labels()),
        require_complete=True,
    )


class TestLemma1:
    """Simple takes exactly 2n + r - 3, independent of tree shape."""

    @pytest.mark.parametrize("n", [2, 3, 5, 9, 17, 30])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_exact_time_random_trees(self, n, seed):
        tree = graph_to_tree(random_tree(n, seed), root=0)
        labeled = LabeledTree(tree)
        schedule = simple_gossip(labeled)
        assert schedule.total_time == simple_total_time(n, tree.height)
        assert schedule.total_time == 2 * n + tree.height - 3
        run(labeled, schedule)

    def test_fig5(self):
        labeled = LabeledTree(fig5_tree())
        schedule = simple_gossip(labeled)
        assert schedule.total_time == 2 * 16 + 3 - 3
        run(labeled, schedule)

    def test_star(self):
        labeled = LabeledTree(Tree([-1, 0, 0, 0], root=0))
        schedule = simple_gossip(labeled)
        assert schedule.total_time == 2 * 4 + 1 - 3
        run(labeled, schedule)

    def test_chain(self):
        labeled = LabeledTree(Tree([-1, 0, 1, 2, 3], root=0))
        schedule = simple_gossip(labeled)
        assert schedule.total_time == 2 * 5 + 4 - 3
        run(labeled, schedule)


class TestPhaseStructure:
    def test_root_receives_message_m_at_time_m(self):
        labeled = LabeledTree(fig5_tree())
        result = execute_schedule(
            tree_to_graph(labeled.tree),
            simple_gossip(labeled),
            initial_holds=labeled_holdings(labeled.labels()),
            record_arrivals=True,
        )
        arrivals = {ev.message: ev.time for ev in result.arrivals if ev.receiver == 0}
        assert arrivals == {m: m for m in range(1, 16)}

    def test_down_phase_starts_at_n_minus_2(self):
        labeled = LabeledTree(fig5_tree())
        schedule = simple_gossip(labeled)
        tx = schedule.round_at(16 - 2).sent_by(0)
        assert tx is not None
        assert tx.message == 0
        assert tx.destinations == frozenset({1, 4, 11})

    def test_down_phase_wasteful_duplicates(self):
        """Simple multicasts to ALL children, so duplicates abound —
        quantifying its inefficiency against ConcurrentUpDown."""
        labeled = LabeledTree(fig5_tree())
        result = run(labeled, simple_gossip(labeled))
        assert result.duplicate_deliveries > 0


class TestEdgeCases:
    def test_single_vertex(self):
        assert simple_gossip(LabeledTree(Tree([-1], root=0))).total_time == 0
        assert simple_total_time(1, 0) == 0

    def test_two_vertices(self):
        labeled = LabeledTree(Tree([-1, 0], root=0))
        schedule = simple_gossip(labeled)
        assert schedule.total_time == 2  # 2n + r - 3 = 4 + 1 - 3
        run(labeled, schedule)

    def test_on_tree_wrapper(self):
        tree = fig5_tree()
        assert simple_gossip_on_tree(tree) == simple_gossip(LabeledTree(tree))


class TestComparisonWithConcurrent:
    @pytest.mark.parametrize("seed", range(5))
    def test_simple_never_beats_concurrent(self, seed):
        """2n + r - 3 >= n + r for n >= 3."""
        from repro.core.concurrent_updown import concurrent_updown

        tree = graph_to_tree(random_tree(12, seed), root=0)
        labeled = LabeledTree(tree)
        assert (
            simple_gossip(labeled).total_time
            >= concurrent_updown(labeled).total_time
        )
