"""Unit tests for algorithm Propagate-Down (steps D1-D3, Lemma 3)."""

import pytest

from repro.core.propagate_down import propagate_down
from repro.networks.builders import graph_to_tree
from repro.networks.paper_networks import fig5_tree
from repro.networks.random_graphs import random_tree
from repro.tree.labeling import LabeledTree
from repro.tree.tree import Tree


@pytest.fixture
def fig5_labeled():
    return LabeledTree(fig5_tree())


class TestRootD3:
    def test_root_sends_m_at_time_m(self, fig5_labeled):
        schedule = propagate_down(fig5_labeled)
        for m in range(1, 16):
            tx = schedule.round_at(m).sent_by(0)
            assert tx is not None and tx.message == m

    def test_root_s_message_at_time_n(self, fig5_labeled):
        """i == k at the root: message 0 postponed to j - k + 1 = n."""
        tx = propagate_down(fig5_labeled).round_at(16).sent_by(0)
        assert tx is not None
        assert tx.message == 0
        assert tx.destinations == frozenset({1, 4, 11})

    def test_owner_child_excluded(self, fig5_labeled):
        schedule = propagate_down(fig5_labeled)
        # message 5 originates below child 4: sent to {1, 11} only
        tx = schedule.round_at(5).sent_by(0)
        assert tx.destinations == frozenset({1, 11})

    def test_s_message_goes_to_all_children(self, fig5_labeled):
        # vertex 4 (i=4 > k=1): s-message 4 at time i - k = 3 to both kids
        tx = propagate_down(fig5_labeled).round_at(3).sent_by(4)
        assert tx.message == 4
        assert tx.destinations == frozenset({5, 8})


class TestD2Forwarding:
    def test_immediate_cut_through(self, fig5_labeled):
        """Vertex 4 receives message 1 at time 2 and relays it at time 2."""
        tx = propagate_down(fig5_labeled).round_at(2).sent_by(4)
        assert tx.message == 1
        assert tx.destinations == frozenset({5, 8})

    def test_delayed_slots(self, fig5_labeled):
        """Messages arriving at i-k and i-k+1 flush at j-k+1 and j-k+2."""
        schedule = propagate_down(fig5_labeled)
        # vertex 4: arrivals 2@3 and 3@4 delayed to times 10 and 11
        assert schedule.round_at(10).sent_by(4).message == 2
        assert schedule.round_at(11).sent_by(4).message == 3
        # vertex 8: arrivals 6@6 and 7@7 delayed to times 9 and 10
        assert schedule.round_at(9).sent_by(8).message == 6
        assert schedule.round_at(10).sent_by(8).message == 7

    def test_leaves_never_send(self, fig5_labeled):
        schedule = propagate_down(fig5_labeled)
        for leaf in fig5_labeled.tree.leaves():
            for rnd in schedule:
                assert rnd.sent_by(leaf) is None


class TestD1Windows:
    @pytest.mark.parametrize("seed", range(8))
    def test_arrivals_inside_lemma3_windows(self, seed):
        """Every o-message reaches a level-k vertex within
        [2, i-k+1] or [j-k+3, n+k] — the (D1) receive windows."""
        tree = graph_to_tree(random_tree(16, seed), root=0)
        labeled = LabeledTree(tree)
        n = tree.n
        schedule = propagate_down(labeled)
        for t, rnd in enumerate(schedule):
            for tx in rnd:
                for v in tx.destinations:
                    b = labeled.block(v)
                    arrival = t + 1
                    low_ok = 2 <= arrival <= b.i - b.k + 1
                    high_ok = b.j - b.k + 3 <= arrival <= n + b.k
                    assert low_ok or high_ok, (
                        f"vertex {v} (i={b.i}, j={b.j}, k={b.k}) receives "
                        f"message {tx.message} at time {arrival}"
                    )

    @pytest.mark.parametrize("seed", range(8))
    def test_every_vertex_gets_every_o_message(self, seed):
        tree = graph_to_tree(random_tree(16, seed), root=0)
        labeled = LabeledTree(tree)
        received = {v: set() for v in range(tree.n)}
        for rnd in propagate_down(labeled):
            for tx in rnd:
                for v in tx.destinations:
                    received[v].add(tx.message)
        for v in range(tree.n):
            b = labeled.block(v)
            expected_o = set(range(0, b.i)) | set(range(b.j + 1, tree.n))
            assert expected_o <= received[v]


class TestEdgeCases:
    def test_single_vertex(self):
        assert propagate_down(LabeledTree(Tree([-1], root=0))).total_time == 0

    def test_star_tree(self):
        # Root 0 with 4 leaves: labels are identity.
        labeled = LabeledTree(Tree([-1, 0, 0, 0, 0], root=0))
        schedule = propagate_down(labeled)
        # message m>=1 at time m, to all children except its owner
        tx = schedule.round_at(2).sent_by(0)
        assert tx.message == 2
        assert tx.destinations == frozenset({1, 3, 4})

    def test_only_root_and_internal_vertices_send(self, fig5_labeled):
        schedule = propagate_down(fig5_labeled)
        internal = {v for v in range(16) if fig5_labeled.tree.children(v)}
        for rnd in schedule:
            for tx in rnd:
                assert tx.sender in internal
