"""Tests for the policy-driven store-and-forward scheduler."""

import pytest

from repro.core.store_forward import (
    GreedyMulticastPolicy,
    TelephonePolicy,
    UpDownTreePolicy,
    greedy_gossip_on_graph,
    greedy_multicast_gossip,
    store_forward_schedule,
    telephone_gossip,
    telephone_gossip_on_graph,
)
from repro.networks import topologies
from repro.networks.builders import graph_to_tree, tree_to_graph
from repro.networks.paper_networks import n3_network
from repro.networks.random_graphs import random_connected_gnp, random_tree
from repro.simulator.state import labeled_holdings
from repro.simulator.validator import assert_gossip_schedule
from repro.tree.labeling import LabeledTree


class TestGreedyOnGraphs:
    @pytest.mark.parametrize("seed", range(6))
    def test_completes_on_random_graphs(self, seed):
        g = random_connected_gnp(18, 0.15, seed)
        schedule = greedy_gossip_on_graph(g)
        assert_gossip_schedule(g, schedule)

    def test_ring_reasonable(self):
        g = topologies.cycle_graph(10)
        schedule = greedy_gossip_on_graph(g)
        assert_gossip_schedule(g, schedule)
        assert schedule.total_time >= g.n - 1

    def test_star_uses_multicast(self):
        g = topologies.star_graph(8)
        schedule = greedy_gossip_on_graph(g)
        assert schedule.max_fan_out() > 1
        assert_gossip_schedule(g, schedule)


class TestTelephone:
    @pytest.mark.parametrize("seed", range(4))
    def test_all_unicast(self, seed):
        g = random_connected_gnp(14, 0.2, seed)
        schedule = telephone_gossip_on_graph(g)
        assert schedule.max_fan_out() == 1
        assert_gossip_schedule(g, schedule)

    def test_strictly_slower_than_multicast_on_n3(self):
        """The Fig. 3 claim, on the reconstruction: telephone cannot reach
        the multicast optimum n - 1 = 4."""
        g = n3_network()
        tel = telephone_gossip_on_graph(g)
        assert tel.total_time >= 6  # the counting bound
        assert_gossip_schedule(g, tel)

    def test_star_telephone_quadratic(self):
        """Under telephone the hub must unicast each message to each leaf."""
        g = topologies.star_graph(6)
        tel = telephone_gossip_on_graph(g)
        greedy = greedy_gossip_on_graph(g)
        assert tel.total_time > 2 * greedy.total_time


class TestRegistryWrappers:
    def test_tree_wrappers_complete(self):
        labeled = LabeledTree(graph_to_tree(random_tree(15, 2), root=0))
        network = tree_to_graph(labeled.tree)
        holds = labeled_holdings(labeled.labels())
        for schedule in (greedy_multicast_gossip(labeled), telephone_gossip(labeled)):
            assert_gossip_schedule(network, schedule, initial_holds=holds)


class TestRankedArbitration:
    def test_updown_policy_falls_back_to_down(self):
        """A vertex losing the up-slot race must relay downward instead:
        in a two-child root tree, both children want the root at t=0/1."""
        labeled = LabeledTree(
            graph_to_tree(random_tree(20, 5), root=0)
        )
        network = tree_to_graph(labeled.tree)
        schedule = store_forward_schedule(
            network,
            UpDownTreePolicy(labeled),
            initial_holds=labeled_holdings(labeled.labels()),
            name="updown",
        )
        assert_gossip_schedule(
            network, schedule, initial_holds=labeled_holdings(labeled.labels())
        )

    def test_policy_protocol_single_preference(self):
        """A plain propose() policy still works through the engine."""
        g = topologies.path_graph(5)
        schedule = store_forward_schedule(g, GreedyMulticastPolicy())
        assert_gossip_schedule(g, schedule)

    def test_telephone_policy_propose_returns_candidates(self):
        g = topologies.star_graph(4)
        policy = TelephonePolicy()
        from repro.simulator.state import HoldState

        state = HoldState(4)
        proposal = policy.propose(0, state, g, 0)
        assert proposal is not None
        message, dests = proposal
        assert message == 0
        assert set(dests) == {1, 2, 3}


class TestProgressGuarantee:
    @pytest.mark.parametrize("seed", range(4))
    def test_terminates_well_under_safety_valve(self, seed):
        g = random_connected_gnp(20, 0.1, seed)
        schedule = greedy_gossip_on_graph(g)
        assert schedule.total_time < g.n * g.n

    def test_single_vertex(self):
        from repro.networks.graph import Graph

        schedule = greedy_gossip_on_graph(Graph(1, []))
        assert schedule.total_time == 0
