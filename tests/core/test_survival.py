"""Unit tests for the survivability layer (`repro.core.survival`)."""

from dataclasses import dataclass

import pytest

from repro.core.gossip import gossip
from repro.core.recovery import execute_plan_with_faults
from repro.core.survival import (
    diagnose_survival,
    survive,
    survivor_coverage,
    validate_survival,
)
from repro.exceptions import (
    PartitionedNetworkError,
    ReproError,
    SurvivorSetError,
)
from repro.networks import topologies
from repro.networks.graph import Graph
from repro.simulator.lossy import FaultModel


@dataclass(frozen=True)
class ScriptedModel(FaultModel):
    """A fault model with a hand-picked permanent casualty list."""

    dead_set: frozenset = frozenset()
    dead_links: frozenset = frozenset()

    @property
    def is_null(self):
        return not self.dead_set and not self.dead_links and super().is_null

    @property
    def has_permanent(self):
        return bool(self.dead_set or self.dead_links) or super().has_permanent

    def fail_stopped(self, time, v):
        return v in self.dead_set

    def link_failed(self, time, u, v):
        key = (u, v) if u < v else (v, u)
        return key in self.dead_links


def scripted_run(graph, *, dead=(), links=(), algorithm="concurrent-updown"):
    plan = gossip(graph, algorithm=algorithm)
    model = ScriptedModel(
        dead_set=frozenset(dead),
        dead_links=frozenset(tuple(sorted(e)) for e in links),
    )
    return plan, execute_plan_with_faults(plan, model)


class TestDiagnose:
    def test_partition_of_a_path(self):
        g = topologies.path_graph(5)
        plan, faulty = scripted_run(g, dead={2})
        diag = diagnose_survival(g, faulty)
        assert diag.dead == (2,)
        assert diag.components == ((0, 1), (3, 4))
        assert diag.partitioned and not diag.intact
        assert diag.live == (0, 1, 3, 4)
        assert diag.component_of(3) == (3, 4)
        assert diag.component_of(2) is None

    def test_failed_link_with_chord_stays_connected(self):
        """Killing one cycle edge leaves the ring connected the long way."""
        g = topologies.cycle_graph(6)
        plan, faulty = scripted_run(g, links={(0, 1)})
        diag = diagnose_survival(g, faulty)
        assert diag.dead == ()
        assert diag.failed_links == ((0, 1),)
        assert not diag.partitioned
        assert diag.components == (tuple(range(6)),)

    def test_intact_when_nothing_permanent(self):
        g = topologies.star_graph(5)
        plan, faulty = scripted_run(g)
        diag = diagnose_survival(g, faulty)
        assert diag.intact and not diag.partitioned
        assert len(diag.components) == 1

    def test_deterministic_across_passes(self):
        g = topologies.grid_2d(3, 3)
        plan = gossip(g)
        model = FaultModel(seed=6, fail_stop_rate=0.03)
        faulty = execute_plan_with_faults(plan, model)
        assert diagnose_survival(g, faulty) == diagnose_survival(g, faulty)


class TestSurvive:
    def test_partitioned_path_reaches_full_survivor_coverage(self):
        g = topologies.path_graph(7)
        plan, faulty = scripted_run(g, dead={3})
        outcome = survive(g, plan, faulty)
        assert outcome.survivor_coverage == 1.0
        assert outcome.diagnosis.partitioned
        validate_survival(
            outcome.diagnosis, outcome.labels, outcome.final_holds,
            before=faulty.final_holds,
        )

    def test_partition_refused_with_typed_error_and_witnesses(self):
        g = topologies.path_graph(5)
        plan, faulty = scripted_run(g, dead={2})
        with pytest.raises(PartitionedNetworkError) as err:
            survive(g, plan, faulty, allow_partition=False)
        labels = [int(x) for x in plan.labeled.labels()]
        expected = sorted(
            (v, labels[u])
            for v in (0, 1, 3, 4)
            for u in (0, 1, 3, 4)
            if (v <= 1) != (u <= 1)
        )
        assert list(err.value.pairs) == expected
        assert err.value.components == ((0, 1), (3, 4))
        assert err.value.dead == (2,)

    def test_leaf_death_keeps_network_connected(self):
        """Killing a star leaf leaves one component; the survival rounds
        respect the degraded Theorem 1 bound n_i + r_i."""
        g = topologies.star_graph(8)
        plan, faulty = scripted_run(g, dead={5})
        outcome = survive(g, plan, faulty)
        assert not outcome.diagnosis.partitioned
        assert outcome.survivor_coverage == 1.0
        for cp in outcome.component_plans:
            assert cp.rounds <= cp.degraded_bound
        if outcome.component_plans:
            bound = max(cp.degraded_bound for cp in outcome.component_plans)
            assert outcome.appended_rounds <= bound

    def test_severed_cycle_uses_the_long_way_round(self):
        g = topologies.cycle_graph(8)
        plan, faulty = scripted_run(g, links={(0, 1)})
        outcome = survive(g, plan, faulty)
        assert outcome.survivor_coverage == 1.0
        assert not outcome.diagnosis.partitioned
        # The survival schedule must never use the severed link.
        failed = set(outcome.diagnosis.failed_links)
        for rnd in outcome.schedule:
            for tx in rnd:
                for d in tx.destinations:
                    key = (tx.sender, d) if tx.sender < d else (d, tx.sender)
                    assert key not in failed

    def test_all_dead_raises_survivor_set_error(self):
        g = topologies.path_graph(4)
        plan, faulty = scripted_run(g, dead={0, 1, 2, 3})
        with pytest.raises(SurvivorSetError):
            survive(g, plan, faulty)

    def test_already_complete_run_appends_nothing(self):
        g = topologies.grid_2d(3, 3)
        plan, faulty = scripted_run(g)  # no permanent faults at all
        outcome = survive(g, plan, faulty)
        assert outcome.appended_rounds == 0
        assert outcome.component_plans == ()
        assert outcome.final_holds == tuple(faulty.final_holds)

    def test_nothing_delivered_to_the_dead(self):
        g = topologies.grid_2d(3, 4)
        plan, faulty = scripted_run(g, dead={5})
        outcome = survive(g, plan, faulty)
        for v in outcome.diagnosis.dead:
            assert outcome.final_holds[v] == faulty.final_holds[v]

    def test_non_gossip_instance_rejected(self):
        g = topologies.path_graph(4)
        plan, faulty = scripted_run(g, dead={1})
        faulty.n_messages = g.n + 1  # mutable dataclass: fake a weighted run
        with pytest.raises(ReproError):
            survive(g, plan, faulty)

    def test_seeded_fail_stop_end_to_end(self):
        g = topologies.grid_2d(4, 4)
        plan = gossip(g)
        model = FaultModel(seed=3, fail_stop_rate=0.02)
        faulty = execute_plan_with_faults(plan, model)
        outcome = survive(g, plan, faulty)
        assert outcome.survivor_coverage == 1.0
        again = survive(g, plan, faulty)
        assert again.schedule.rounds == outcome.schedule.rounds


class TestValidateAndCoverage:
    def test_coverage_counts_guaranteed_pairs_only(self):
        g = topologies.path_graph(5)
        plan, faulty = scripted_run(g, dead={2})
        diag = diagnose_survival(g, faulty)
        labels = [int(x) for x in plan.labeled.labels()]
        # Give every live processor everything: coverage is still 1.0
        # (cross-component messages are not owed, holding them is fine).
        full = (1 << g.n) - 1
        holds = [full] * g.n
        assert survivor_coverage(diag, labels, holds) == 1.0

    def test_missing_guaranteed_pair_is_reported(self):
        g = topologies.path_graph(4)
        plan, faulty = scripted_run(g, dead={3})
        diag = diagnose_survival(g, faulty)
        labels = [int(x) for x in plan.labeled.labels()]
        holds = [1 << labels[v] for v in range(g.n)]  # only own messages
        assert survivor_coverage(diag, labels, holds) < 1.0
        with pytest.raises(SurvivorSetError) as err:
            validate_survival(diag, labels, holds)
        assert err.value.pairs  # offending (processor, message) witnesses
        assert all(v not in diag.dead for v, _ in err.value.pairs)

    def test_delivery_to_the_dead_is_rejected(self):
        g = topologies.path_graph(3)
        plan, faulty = scripted_run(g, dead={2})
        diag = diagnose_survival(g, faulty)
        labels = [int(x) for x in plan.labeled.labels()]
        before = list(faulty.final_holds)
        grown = list(before)
        grown[2] = (1 << g.n) - 1  # the dead processor "received" everything
        comp_mask = (1 << labels[0]) | (1 << labels[1])
        grown[0] = grown[1] = comp_mask
        with pytest.raises(SurvivorSetError):
            validate_survival(diag, labels, grown, before=before)
