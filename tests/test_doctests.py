"""Run the doctest examples embedded in the library's docstrings.

Keeps the documentation honest: every ``>>>`` example in a public
docstring must execute and produce the shown output.
"""

import doctest

import pytest

import repro
import repro.core.schedule
import repro.networks.graph
import repro.service
import repro.service.service
import repro.tree.labeling
import repro.tree.tree

#: (module, whether we require it to contain at least one example)
MODULES = [
    (repro, True),
    (repro.networks.graph, True),
    (repro.tree.tree, True),
    (repro.tree.labeling, True),
    (repro.core.schedule, False),
    (repro.service, True),
    (repro.service.service, True),
]


@pytest.mark.parametrize(
    "module,requires_examples", MODULES, ids=lambda m: getattr(m, "__name__", "")
)
def test_doctests(module, requires_examples):
    result = doctest.testmod(module)
    assert result.failed == 0, (
        f"{result.failed} doctest failure(s) in {module.__name__}"
    )
    if requires_examples:
        assert result.attempted > 0, f"no doctests found in {module.__name__}"
