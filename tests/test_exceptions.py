"""Tests for the exception hierarchy contract."""

import pytest

from repro import exceptions as exc


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in exc.__all__:
            cls = getattr(exc, name)
            assert issubclass(cls, exc.ReproError)

    def test_graph_family(self):
        assert issubclass(exc.DisconnectedGraphError, exc.GraphError)

    def test_tree_family(self):
        assert issubclass(exc.LabelingError, exc.TreeError)

    def test_schedule_family(self):
        for cls in (
            exc.ScheduleConflictError,
            exc.ModelViolationError,
            exc.IncompleteGossipError,
        ):
            assert issubclass(cls, exc.ScheduleError)

    def test_catch_all(self):
        """Library failures are catchable with one except clause."""
        from repro import gossip
        from repro.networks.graph import Graph

        with pytest.raises(exc.ReproError):
            gossip(Graph(4, [(0, 1), (2, 3)]))  # disconnected
        with pytest.raises(exc.ReproError):
            Graph(2, [(0, 0)])  # self loop
        with pytest.raises(exc.ReproError):
            gossip(Graph(3, [(0, 1), (1, 2)]), algorithm="bogus")
