"""Fixture tests for the promoted conventions lint (repro.check.codelint).

Each new concurrency rule gets a firing fixture and a clean fixture; the
legacy rules keep their behaviour (the full legacy matrix lives in
``tests/analysis/test_lint_check.py``, which drives the back-compat shim
``scripts/check_conventions.py``); and the whole source tree must lint
clean.
"""

import pathlib
import subprocess
import textwrap

import pytest

from repro.check.codelint import (
    check_file,
    collect_violations,
    main,
    tracked_artifact_violations,
)

REPO = pathlib.Path(__file__).resolve().parents[2]


def lint(tmp_path, parent, name, source):
    d = tmp_path / parent
    d.mkdir(exist_ok=True)
    f = d / name
    f.write_text(textwrap.dedent(source))
    return [message for _, _, message in check_file(f)]


class TestLockGuardRule:
    def test_unlocked_access_to_guarded_attr_fires(self, tmp_path):
        messages = lint(tmp_path, "service", "service.py", """\
            class Service:
                def __init__(self):
                    self._lock = object()
                    self._inflight = {}
                def submit(self, key):
                    with self._lock:
                        self._inflight[key] = 1
                def peek(self, key):
                    return self._inflight.get(key)
            """)
        assert len(messages) == 1
        assert "lock-guarded" in messages[0]
        assert "_inflight" in messages[0]

    def test_mutating_call_marks_attr_guarded(self, tmp_path):
        messages = lint(tmp_path, "service", "stats.py", """\
            class Stats:
                def record(self, x):
                    with self._lock:
                        self._samples.append(x)
                def drain(self):
                    return list(self._samples)
            """)
        assert len(messages) == 1 and "_samples" in messages[0]

    def test_all_access_under_lock_is_clean(self, tmp_path):
        messages = lint(tmp_path, "service", "cache.py", """\
            class Cache:
                def __init__(self):
                    self._lock = object()
                    self._entries = {}
                def put(self, k, v):
                    with self._lock:
                        self._entries[k] = v
                def get(self, k):
                    with self._lock:
                        return self._entries.get(k)
            """)
        assert messages == []

    def test_init_and_unguarded_attrs_exempt(self, tmp_path):
        messages = lint(tmp_path, "service", "plain.py", """\
            class Plain:
                def __init__(self):
                    self._n = 0
                def bump(self):
                    self._n += 1
            """)
        assert messages == []

    def test_rule_only_applies_to_service_layer(self, tmp_path):
        messages = lint(tmp_path, "core", "thing.py", """\
            class Thing:
                def submit(self, key):
                    with self._lock:
                        self._pending[key] = 1
                def peek(self, key):
                    return self._pending.get(key)
            """)
        assert messages == []


class TestAwaitUnderLockRule:
    def test_await_inside_lock_fires(self, tmp_path):
        messages = lint(tmp_path, "runtime", "flow.py", """\
            class Flow:
                async def push(self, item):
                    async with self._lock:
                        await self._channel.put(item)
            """)
        assert any("await while holding a lock" in m for m in messages)

    def test_await_after_lock_released_is_clean(self, tmp_path):
        messages = lint(tmp_path, "runtime", "flow.py", """\
            class Flow:
                async def push(self, item):
                    with self._lock:
                        staged = self.prepare(item)
                    await self.channel_put(staged)
            """)
        assert messages == []


class TestPipeOrderRule:
    def test_start_before_addrs_fires(self, tmp_path):
        messages = lint(tmp_path, "runtime", "supervisor.py", """\
            def rendezvous(pipes, book):
                for pipe in pipes:
                    pipe.send((START, None))
                for pipe in pipes:
                    pipe.send((ADDRS, book))
            """)
        assert len(messages) == 1
        assert "ADDRS after START" in messages[0]
        assert "HELLO" in messages[0]

    def test_protocol_order_is_clean(self, tmp_path):
        messages = lint(tmp_path, "runtime", "proc.py", """\
            def child(pipe, book):
                pipe.send((HELLO, 0))
                pipe.send((ADDRS, book))
                pipe.send((START, None))
            """)
        assert messages == []

    def test_real_supervisor_and_proc_obey_the_protocol(self):
        for name in ("supervisor.py", "proc.py"):
            path = REPO / "src" / "repro" / "runtime" / name
            assert not [
                m for _, _, m in check_file(path) if "control-pipe" in m
            ]


class TestBlockingAsyncRule:
    def test_blocking_recv_in_async_fires(self, tmp_path):
        messages = lint(tmp_path, "runtime", "bad.py", """\
            async def pump(conn):
                while True:
                    msg = conn.recv()
                    handle(msg)
            """)
        assert any("blocking call" in m and ".recv" in m for m in messages)

    def test_time_sleep_in_async_fires(self, tmp_path):
        messages = lint(tmp_path, "runtime", "bad.py", """\
            import time
            async def backoff():
                time.sleep(1.0)
            """)
        assert any("time.sleep" in m for m in messages)

    def test_sync_function_is_exempt(self, tmp_path):
        messages = lint(tmp_path, "runtime", "ok.py", """\
            def pump(conn):
                return conn.recv()
            """)
        assert messages == []


class TestTrackedArtifacts:
    def test_non_git_dir_is_silent(self, tmp_path):
        assert tracked_artifact_violations(tmp_path) == []

    def test_tracked_pyc_fires(self, tmp_path):
        subprocess.run(["git", "init", "-q", str(tmp_path)], check=True)
        bad = tmp_path / "__pycache__"
        bad.mkdir()
        (bad / "mod.cpython-311.pyc").write_bytes(b"\x00")
        subprocess.run(
            ["git", "-C", str(tmp_path), "add", "-f", "."], check=True
        )
        violations = tracked_artifact_violations(tmp_path)
        assert len(violations) == 1
        assert "compiled artifact" in violations[0][2]

    def test_this_repository_tracks_no_artifacts(self):
        assert tracked_artifact_violations(REPO) == []


class TestWholeTreeIsClean:
    def test_src_repro_lints_clean(self):
        assert collect_violations([REPO / "src" / "repro"]) == []

    def test_main_reports_ok(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO)
        assert main([]) == 0
        assert "conventions: OK" in capsys.readouterr().out

    def test_main_counts_violations(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f():\n    raise ValueError('x')\n")
        assert main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "builtin ValueError" in out
        assert "1 convention violation(s)" in out
