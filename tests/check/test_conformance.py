"""Conformance replay: the abstract model agrees with the real runtime.

Tier-1 gate for the model checker's soundness premise (ISSUE 10): every
recorded seeded runtime transcript — clean, lossy, reordering, and
crash-at-round runs across the committed corpus, plus supervised
SIGKILL + rejoin runs — must replay through the model with exact
agreement on the phase-1 transcript, dead set, completion flag, round
count, and final hold bitsets.
"""

import pytest

from repro.check.replay import (
    default_cases,
    replay_rejoin,
    run_conformance,
)


class TestRecordedCorpus:
    def test_corpus_is_large_enough(self):
        cases = default_cases()
        assert len(cases) >= 50
        assert len({c.seed for c in cases}) == len(cases), "seeds collide"
        assert any(c.kill for c in cases), "corpus lacks kill runs"
        assert any(c.drop_rate for c in cases), "corpus lacks lossy runs"
        assert any(c.delay_rate for c in cases), "corpus lacks reorder runs"

    def test_every_recording_replays_exactly(self):
        reports = run_conformance()
        failures = [
            f"{r.case.name} (seed {r.case.seed}): {'; '.join(r.mismatches)}"
            for r in reports
            if not r.ok
        ]
        assert not failures, "\n".join(failures)


class TestSupervisedRejoinReplay:
    @pytest.mark.parametrize(
        "spec,seed,victim,round_",
        [("cycle:6", 401, 3, 1), ("grid:9", 402, 4, 2)],
    )
    def test_sigkill_rejoin_replays_exactly(self, spec, seed, victim, round_):
        report = replay_rejoin(spec, seed, victim, round_)
        assert report.ok, "; ".join(report.mismatches)
