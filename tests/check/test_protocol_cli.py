"""CLI surface of the model checker: ``repro-gossip check-protocol``."""

import json
import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parents[2]


def run(*argv):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        cwd=REPO,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO / "src"),
             "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )


class TestCheckProtocolCommand:
    def test_single_family_fault_free(self):
        proc = run("check-protocol", "--family", "path:3", "--crashes", "0")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "path:3" in proc.stdout
        assert " ok " in proc.stdout

    def test_json_document(self):
        proc = run("check-protocol", "--family", "star:3", "--crashes", "0",
                   "--json")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        doc = json.loads(proc.stdout)
        assert doc["ok"] is True
        assert doc["crashes"] == 0
        assert "star:3" in doc["families"]
        assert doc["families"]["star:3"]["states"] > 0

    def test_check_against_committed_subset(self):
        # one family of the committed matrix recomputed and compared
        proc = run("check-protocol", "--family", "path:3", "--check")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "state counts match" in proc.stdout

    def test_bad_spec_is_a_clean_error(self):
        proc = run("check-protocol", "--family", "path:99")
        assert proc.returncode == 2
        assert "Traceback" not in proc.stderr
        assert "bounded" in proc.stderr
