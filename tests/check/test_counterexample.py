"""A deliberately broken model must yield a minimal, readable trace.

The ``fence_skew=1`` test-only mutation makes every barrier willing to
admit a round-``t-1+skew`` message into round ``t`` — exactly the
off-by-one a broken fence implementation would exhibit.  The checker
must refute it with a counterexample that names the violating wire
message and the rounds involved (ISSUE 10, satellite 4).
"""

import pytest

from repro.check import check_family
from repro.check.explore import explore, plan_for
from repro.check.model import ProtocolModel


@pytest.fixture(scope="module")
def broken():
    return check_family("path", 4, crashes=0, fence_skew=1)


class TestFenceMutationIsCaught:
    def test_counterexample_found(self, broken):
        assert not broken.ok

    def test_violation_names_wire_message_and_round(self, broken):
        violation = broken.counterexample.violation
        # the culprit is rendered as a wire message with its round …
        assert "FENCE(" in violation or "DATA(" in violation
        assert "round" in violation
        # … and the report says which barrier it slipped through
        assert "admitted into round" in violation

    def test_trace_is_minimal(self, broken):
        # BFS order guarantees a shortest path to the violation; the
        # path:4 witness needs no more than a dozen actions.
        assert 1 <= len(broken.counterexample.trace) <= 12

    def test_render_replays_the_wire_sequence(self, broken):
        cex = broken.counterexample
        model = ProtocolModel(
            plan_for("path", 4), crash=cex.scenario, fence_skew=1
        )
        rendered = cex.render(model)
        assert "VIOLATION:" in rendered
        assert "deliver" in rendered or "step" in rendered

    def test_clean_model_unaffected(self):
        # the same instance with no mutation explores clean
        report = explore(ProtocolModel(plan_for("path", 4)))
        assert report.ok
