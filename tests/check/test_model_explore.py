"""Exhaustive small-scope exploration of the protocol model.

The full committed matrix (path/star/complete × 3..5) runs in CI via
``cli check-protocol --check``; tier-1 pins the n=3 column (and one n=4
instance) against the committed ``CHECK_protocol.json`` so state-count
drift — a changed model is a changed specification — fails fast.
"""

import json
import pathlib

import pytest

from repro.check import check_family, parse_family_spec
from repro.check.explore import DEFAULT_BUDGET, explore, plan_for
from repro.check.model import ProtocolModel
from repro.exceptions import ProtocolCheckError

REPO = pathlib.Path(__file__).resolve().parents[2]
COMMITTED = json.loads((REPO / "CHECK_protocol.json").read_text())


class TestFaultFreeExploration:
    def test_path3_reaches_all_hold_all_everywhere(self):
        model = ProtocolModel(plan_for("path", 3))
        report = explore(model)
        assert report.ok, report.counterexample
        assert report.quiescent.get("complete", 0) > 0
        assert report.quiescent.get("wavefront", 0) == 0
        assert report.quiescent.get("deadlock", 0) == 0

    def test_fault_free_terminals_match_offline_schedule(self):
        # explore() self-checks every complete terminal against
        # offline_records(); a clean report certifies the agreement.
        for family in ("path", "star", "complete"):
            model = ProtocolModel(plan_for(family, 4))
            report = explore(model)
            assert report.ok, (family, report.counterexample)


class TestCrashExploration:
    @pytest.mark.parametrize("spec", ["path:3", "star:3", "complete:3", "star:4"])
    def test_matches_committed_matrix(self, spec):
        family, n = parse_family_spec(spec)
        result = check_family(family, n, crashes=1)
        assert result.ok, result.counterexample
        assert result.summary() == COMMITTED["families"][spec]

    def test_crash_scenarios_reach_unique_wavefront_aborts(self):
        result = check_family("path", 3, crashes=1)
        assert result.ok
        # every crashing scenario quiesces at a wavefront abort, the
        # fault-free one at all-hold-all
        assert result.wavefront_terminals > 0
        assert result.complete_terminals > 0

    def test_no_por_fallbacks(self):
        # the ample-set certification never fails on the real model
        result = check_family("star", 3, crashes=1)
        assert result.fallback_states == 0

    def test_committed_matrix_is_self_consistent(self):
        assert COMMITTED["ok"] is True
        assert COMMITTED["budget"] == DEFAULT_BUDGET
        assert set(COMMITTED["families"]) == {
            f"{fam}:{n}"
            for fam in ("path", "star", "complete")
            for n in (3, 4, 5)
        }
        for spec, summary in COMMITTED["families"].items():
            assert summary["fallback_states"] == 0, spec
            assert summary["states"] <= DEFAULT_BUDGET, spec


class TestInfrastructureErrors:
    def test_budget_exceeded_is_typed(self):
        with pytest.raises(ProtocolCheckError):
            check_family("path", 5, crashes=0, budget=50)

    @pytest.mark.parametrize("spec", ["path", "path:", "path:1", "path:99",
                                      "nosuch:4", "path:four"])
    def test_bad_family_spec_is_typed(self, spec):
        with pytest.raises(ProtocolCheckError):
            parse_family_spec(spec)

    def test_crash_victim_out_of_range_is_typed(self):
        with pytest.raises(ProtocolCheckError):
            ProtocolModel(plan_for("path", 3), crash=((7, 0),))
