"""Unit tests for hold-set state tracking."""

import pytest

from repro.exceptions import SimulationError
from repro.simulator.state import (
    HoldState,
    bits_of,
    identity_holdings,
    labeled_holdings,
    popcount,
    union_all,
)


class TestBitHelpers:
    def test_bits_of(self):
        assert bits_of(0) == []
        assert bits_of(0b1011) == [0, 1, 3]

    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b10110) == 3

    def test_union_all(self):
        assert union_all([0b001, 0b100]) == 0b101
        assert union_all([]) == 0


class TestInitialHoldings:
    def test_identity(self):
        assert identity_holdings(3) == [1, 2, 4]

    def test_labeled(self):
        assert labeled_holdings([2, 0, 1]) == [4, 1, 2]


class TestHoldState:
    def test_initial(self):
        s = HoldState(3)
        assert s.holds(0, 0)
        assert not s.holds(0, 1)
        assert s.messages_of(1) == [1]
        assert s.missing_of(1) == [0, 2]

    def test_deliver(self):
        s = HoldState(2)
        s.deliver(0, 1, time=3)
        assert s.holds(0, 1)
        assert s.is_complete(0)
        assert s.completion_time(0) == 3
        assert not s.all_complete()

    def test_duplicate_counted_not_restamped(self):
        s = HoldState(2)
        s.deliver(0, 1, time=1)
        s.deliver(0, 1, time=5)
        assert s.duplicate_deliveries == 1
        assert s.completion_time(0) == 1

    def test_all_complete(self):
        s = HoldState(2)
        s.deliver(0, 1, time=1)
        s.deliver(1, 0, time=1)
        assert s.all_complete()
        assert s.completion_times() == [1, 1]

    def test_initial_complete_at_time_zero(self):
        s = HoldState(2, initial=[0b11, 0b01])
        assert s.completion_time(0) == 0
        assert s.completion_time(1) is None

    def test_custom_message_count(self):
        s = HoldState(2, initial=[0b1, 0b10], n_messages=3)
        assert not s.is_complete(0)
        s.deliver(0, 1, 1)
        s.deliver(0, 2, 2)
        assert s.is_complete(0)

    def test_arrival_tracking(self):
        s = HoldState(2, track_arrivals=True)
        s.deliver(0, 1, time=4)
        assert s.arrival_time(0, 1) == 4
        assert s.arrival_time(0, 0) == 0
        assert s.arrival_time(1, 0) is None

    def test_arrival_tracking_disabled(self):
        with pytest.raises(SimulationError):
            HoldState(2).arrival_time(0, 0)

    def test_snapshot_is_copy(self):
        s = HoldState(2)
        snap = s.snapshot()
        s.deliver(0, 1, 1)
        assert snap == [1, 2]

    def test_message_out_of_range(self):
        with pytest.raises(SimulationError):
            HoldState(2).deliver(0, 5, 0)

    def test_bad_initial_length(self):
        with pytest.raises(SimulationError):
            HoldState(3, initial=[1, 2])

    def test_initial_out_of_range_bits(self):
        with pytest.raises(SimulationError):
            HoldState(2, initial=[0b100, 0b1])

    def test_zero_processors_rejected(self):
        with pytest.raises(SimulationError):
            HoldState(0)
