"""Unit tests for schedule metrics."""

import pytest

from repro.core.concurrent_updown import concurrent_updown
from repro.core.simple import simple_gossip
from repro.networks import topologies
from repro.networks.builders import tree_to_graph
from repro.networks.spanning_tree import minimum_depth_spanning_tree
from repro.simulator.engine import execute_schedule
from repro.simulator.metrics import compute_metrics, link_loads
from repro.simulator.state import labeled_holdings
from repro.tree.labeling import LabeledTree


@pytest.fixture(scope="module")
def star_run():
    tree = minimum_depth_spanning_tree(topologies.star_graph(6))
    labeled = LabeledTree(tree)
    schedule = concurrent_updown(labeled)
    result = execute_schedule(
        tree_to_graph(tree),
        schedule,
        initial_holds=labeled_holdings(labeled.labels()),
        require_complete=True,
    )
    return labeled, schedule, result


class TestLinkLoads:
    def test_loads_sum_to_deliveries(self, star_run):
        _, schedule, _ = star_run
        assert sum(link_loads(schedule).values()) == schedule.total_deliveries()

    def test_canonical_keys(self, star_run):
        _, schedule, _ = star_run
        for u, v in link_loads(schedule):
            assert u < v

    def test_empty_schedule(self):
        from repro.core.schedule import Schedule

        assert link_loads(Schedule([])) == {}


class TestComputeMetrics:
    def test_schedule_only(self, star_run):
        _, schedule, _ = star_run
        m = compute_metrics(schedule)
        assert m.total_time == schedule.total_time
        assert m.total_multicasts == schedule.total_messages()
        assert m.total_deliveries == schedule.total_deliveries()
        assert m.duplicate_deliveries is None
        assert m.redundancy is None

    def test_with_execution(self, star_run):
        _, schedule, result = star_run
        m = compute_metrics(schedule, execution=result)
        assert m.duplicate_deliveries == 0
        assert m.redundancy == 0.0
        assert m.max_completion_time == schedule.total_time
        assert m.mean_completion_time <= m.max_completion_time

    def test_mean_fan_out(self, star_run):
        _, schedule, _ = star_run
        m = compute_metrics(schedule)
        assert m.mean_fan_out == pytest.approx(
            m.total_deliveries / m.total_multicasts
        )
        assert 1.0 <= m.mean_fan_out <= m.max_fan_out

    def test_simple_has_redundancy(self):
        """Simple's naive down phase wastes deliveries; ConcurrentUpDown
        does not — the efficiency story the metrics quantify."""
        tree = minimum_depth_spanning_tree(topologies.grid_2d(3, 3))
        labeled = LabeledTree(tree)
        network = tree_to_graph(tree)
        holds = labeled_holdings(labeled.labels())

        def run(schedule):
            return compute_metrics(
                schedule,
                execution=execute_schedule(
                    network, schedule, initial_holds=holds, require_complete=True
                ),
            )

        assert run(simple_gossip(labeled)).redundancy > 0
        assert run(concurrent_updown(labeled)).redundancy == 0.0

    def test_empty_schedule_metrics(self):
        from repro.core.schedule import Schedule

        m = compute_metrics(Schedule([]))
        assert m.total_time == 0
        assert m.mean_fan_out == 0.0
        assert m.busiest_link_load == 0
