"""Unit tests for the round-based execution engine."""

import pytest

from repro.core.schedule import Round, Schedule, Transmission
from repro.exceptions import IncompleteGossipError, ModelViolationError
from repro.networks import topologies
from repro.networks.graph import Graph
from repro.simulator.engine import execute_schedule


def tx(sender, message, dests):
    return Transmission(sender=sender, message=message, destinations=frozenset(dests))


def sched(*rounds):
    return Schedule([Round(r) for r in rounds])


class TestBasicExecution:
    def test_single_hop(self):
        g = Graph(2, [(0, 1)])
        result = execute_schedule(
            g, sched([tx(0, 0, {1}), tx(1, 1, {0})]), require_complete=True
        )
        assert result.complete
        assert result.total_time == 1
        assert result.completion_times == [1, 1]

    def test_empty_schedule_incomplete(self):
        g = Graph(2, [(0, 1)])
        result = execute_schedule(g, Schedule([]))
        assert not result.complete
        assert result.completion_times == [None, None]

    def test_single_vertex_trivially_complete(self):
        result = execute_schedule(Graph(1, []), Schedule([]))
        assert result.complete
        assert result.completion_times == [0]


class TestReceiveBeforeSend:
    def test_forward_same_round_as_arrival(self):
        """A message sent at t-1 arrives at t and may be forwarded at t."""
        g = topologies.path_graph(3)
        s = sched(
            [tx(0, 0, {1})],          # round 0: 0 -> 1
            [tx(1, 0, {2})],          # round 1: 1 forwards what arrived at t=1
        )
        result = execute_schedule(g, s)
        assert result.final_holds[2] & 1

    def test_forward_too_early_rejected(self):
        """Forwarding in the same round it was *sent* is impossible."""
        g = topologies.path_graph(3)
        s = sched([tx(0, 0, {1}), tx(1, 0, {2})])  # 1 does not hold 0 yet
        with pytest.raises(ModelViolationError, match="does not hold"):
            execute_schedule(g, s)


class TestModelEnforcement:
    def test_possession_required(self):
        g = Graph(2, [(0, 1)])
        with pytest.raises(ModelViolationError, match="does not hold"):
            execute_schedule(g, sched([tx(0, 1, {1})]))

    def test_adjacency_required(self):
        g = topologies.path_graph(3)
        with pytest.raises(ModelViolationError, match="not an adjacent"):
            execute_schedule(g, sched([tx(0, 0, {2})]))

    def test_multicast_to_neighbors_ok(self):
        g = topologies.star_graph(4)
        result = execute_schedule(g, sched([tx(0, 0, {1, 2, 3})]))
        for v in (1, 2, 3):
            assert result.final_holds[v] & 1

    def test_require_complete_raises_with_missing_report(self):
        g = Graph(2, [(0, 1)])
        with pytest.raises(IncompleteGossipError, match="missing"):
            execute_schedule(g, sched([tx(0, 0, {1})]), require_complete=True)


class TestBookkeeping:
    def test_duplicates_counted(self):
        g = Graph(2, [(0, 1)])
        s = sched([tx(0, 0, {1})], [tx(0, 0, {1})], [tx(1, 1, {0})])
        result = execute_schedule(g, s, require_complete=True)
        assert result.duplicate_deliveries == 1

    def test_arrival_log(self):
        g = topologies.path_graph(3)
        s = sched([tx(0, 0, {1})], [tx(1, 0, {2})])
        result = execute_schedule(g, s, record_arrivals=True)
        assert [(ev.time, ev.receiver, ev.sender, ev.message) for ev in result.arrivals] == [
            (1, 1, 0, 0),
            (2, 2, 1, 0),
        ]

    def test_no_arrival_log_by_default(self):
        g = Graph(2, [(0, 1)])
        result = execute_schedule(g, sched([tx(0, 0, {1})]))
        assert result.arrivals == []

    def test_makespan(self):
        g = Graph(2, [(0, 1)])
        result = execute_schedule(
            g, sched([tx(0, 0, {1}), tx(1, 1, {0})]), require_complete=True
        )
        assert result.makespan == 1

    def test_makespan_none_when_incomplete(self):
        g = Graph(2, [(0, 1)])
        result = execute_schedule(g, sched([tx(0, 0, {1})]))
        assert not result.complete
        assert result.makespan is None

    def test_custom_initial_holds(self):
        """Labeled holdings: vertex v starts with its DFS label."""
        g = Graph(2, [(0, 1)])
        s = sched([tx(0, 1, {1}), tx(1, 0, {0})])
        result = execute_schedule(
            g, s, initial_holds=[0b10, 0b01], require_complete=True
        )
        assert result.complete

    def test_final_holds(self):
        g = Graph(3, [(0, 1), (1, 2)])
        s = sched([tx(1, 1, {0, 2})])
        result = execute_schedule(g, s)
        assert result.final_holds == [0b011, 0b010, 0b110]
