"""Unit tests for the lossy execution engine (`repro.simulator.lossy`)."""

import pytest

from repro.core.gossip import gossip
from repro.core.schedule import Round, Schedule, Transmission
from repro.exceptions import ModelViolationError, SimulationError
from repro.networks import topologies
from repro.networks.graph import Graph
from repro.simulator.engine import execute_schedule
from repro.simulator.lossy import FaultModel, execute_with_faults
from repro.simulator.state import labeled_holdings


def tx(sender, message, dests):
    return Transmission(sender=sender, message=message, destinations=frozenset(dests))


def sched(*rounds):
    return Schedule([Round(r) for r in rounds])


def plan_run(graph, model, algorithm="concurrent-updown"):
    plan = gossip(graph, algorithm=algorithm)
    holds = labeled_holdings(plan.labeled.labels())
    return plan, execute_with_faults(
        graph, plan.schedule, model, initial_holds=holds, n_messages=graph.n
    )


class TestFaultModel:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"drop_rate": -0.1},
            {"drop_rate": 1.5},
            {"link_outage_rate": 2.0},
            {"crash_rate": -1.0},
            {"crash_length": 0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(SimulationError):
            FaultModel(**kwargs)

    def test_is_null(self):
        assert FaultModel(seed=123).is_null
        assert not FaultModel(drop_rate=0.01).is_null
        assert not FaultModel(link_outage_rate=0.01).is_null
        assert not FaultModel(crash_rate=0.01).is_null

    def test_draws_deterministic_and_seed_sensitive(self):
        a = FaultModel(seed=1, drop_rate=0.5)
        b = FaultModel(seed=1, drop_rate=0.5)
        c = FaultModel(seed=2, drop_rate=0.5)
        draws_a = [a.drops_delivery(t, 0, 1) for t in range(64)]
        assert draws_a == [b.drops_delivery(t, 0, 1) for t in range(64)]
        assert draws_a != [c.drops_delivery(t, 0, 1) for t in range(64)]

    def test_drop_rate_extremes(self):
        never = FaultModel(seed=5, drop_rate=0.0)
        always = FaultModel(seed=5, drop_rate=1.0)
        assert not any(never.drops_delivery(t, 0, 1) for t in range(32))
        assert all(always.drops_delivery(t, 0, 1) for t in range(32))

    def test_link_outage_symmetric(self):
        m = FaultModel(seed=9, link_outage_rate=0.5)
        for t in range(32):
            assert m.link_out(t, 2, 7) == m.link_out(t, 7, 2)

    def test_crash_window_spans_length(self):
        """A window starting at round t covers t .. t + crash_length - 1."""
        m = FaultModel(seed=0, crash_rate=0.3, crash_length=3)
        starts = [
            t for t in range(50)
            if m.crashed(t, 4) and not m.crashed(t - 1, 4) and t > 0
        ]
        assert starts, "seed 0 should produce at least one crash window start"
        t = starts[0]
        assert m.crashed(t + 1, 4) and m.crashed(t + 2, 4)


class TestLossAccounting:
    def test_dropped_delivery_recorded_and_missing(self):
        g = Graph(2, [(0, 1)])
        model = FaultModel(seed=0, drop_rate=1.0)
        result = execute_with_faults(
            g, sched([tx(0, 0, {1}), tx(1, 1, {0})]), model
        )
        assert not result.complete
        assert {ld.reason for ld in result.lost} == {"drop"}
        assert len(result.lost) == 2
        assert result.missing_sets() == {0: [1], 1: [0]}
        assert result.faults_injected == 2

    def test_cascading_loss_suppresses_forward(self):
        """1 never receives message 0, so its forward is suppressed, not
        a model violation."""
        g = topologies.path_graph(3)
        model = FaultModel(seed=0, drop_rate=1.0)
        s = sched([tx(0, 0, {1})], [tx(1, 0, {2})])
        result = execute_with_faults(g, s, model)
        assert [sup.reason for sup in result.suppressed] == ["not-held"]
        assert result.suppressed[0].sender == 1

    def test_adjacency_violation_still_raises(self):
        g = topologies.path_graph(3)  # 0-1-2; 0 and 2 not adjacent
        model = FaultModel(seed=0, drop_rate=1.0)
        with pytest.raises(ModelViolationError):
            execute_with_faults(g, sched([tx(0, 0, {2})]), model)

    def test_sender_crash_suppresses_whole_multicast(self):
        g = topologies.star_graph(4)
        model = FaultModel(seed=0, crash_rate=1.0, crash_length=1)
        result = execute_with_faults(g, sched([tx(0, 0, {1, 2, 3})]), model)
        assert [sup.reason for sup in result.suppressed] == ["sender-crash"]
        assert result.lost == ()

    def test_link_outage_loses_crossing_deliveries(self):
        g = Graph(2, [(0, 1)])
        model = FaultModel(seed=0, link_outage_rate=1.0)
        result = execute_with_faults(g, sched([tx(0, 0, {1})]), model)
        assert [ld.reason for ld in result.lost] == ["link-outage"]

    def test_lossy_run_is_reproducible(self):
        g = topologies.grid_2d(3, 3)
        model = FaultModel(seed=42, drop_rate=0.3)
        _, a = plan_run(g, model)
        _, b = plan_run(g, model)
        assert a == b


class TestNullModelParity:
    def test_matches_execute_schedule_on_every_field(self):
        g = topologies.grid_2d(3, 4)
        plan = gossip(g)
        holds = labeled_holdings(plan.labeled.labels())
        faulty = execute_with_faults(
            g, plan.schedule, FaultModel(seed=99),
            initial_holds=holds, n_messages=g.n, record_arrivals=True,
        )
        reference = execute_schedule(
            g, plan.schedule, initial_holds=holds, record_arrivals=True,
            require_complete=True,
        )
        assert faulty.lost == () and faulty.suppressed == ()
        assert faulty.to_execution_result() == reference
        assert faulty.missing_sets() == {}
