"""Unit tests for the lossy execution engine (`repro.simulator.lossy`)."""

import pytest

from repro.core.gossip import gossip
from repro.core.schedule import Round, Schedule, Transmission
from repro.exceptions import ModelViolationError, SimulationError
from repro.networks import topologies
from repro.networks.graph import Graph
from repro.simulator.engine import execute_schedule
from repro.simulator.lossy import FaultModel, execute_with_faults
from repro.simulator.state import labeled_holdings


def tx(sender, message, dests):
    return Transmission(sender=sender, message=message, destinations=frozenset(dests))


def sched(*rounds):
    return Schedule([Round(r) for r in rounds])


def plan_run(graph, model, algorithm="concurrent-updown"):
    plan = gossip(graph, algorithm=algorithm)
    holds = labeled_holdings(plan.labeled.labels())
    return plan, execute_with_faults(
        graph, plan.schedule, model, initial_holds=holds, n_messages=graph.n
    )


class TestFaultModel:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"drop_rate": -0.1},
            {"drop_rate": 1.5},
            {"link_outage_rate": 2.0},
            {"crash_rate": -1.0},
            {"crash_length": 0},
            {"fail_stop_rate": -0.1},
            {"fail_stop_rate": 1.5},
            {"link_fail_rate": 2.0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(SimulationError):
            FaultModel(**kwargs)

    def test_is_null(self):
        assert FaultModel(seed=123).is_null
        assert not FaultModel(drop_rate=0.01).is_null
        assert not FaultModel(link_outage_rate=0.01).is_null
        assert not FaultModel(crash_rate=0.01).is_null
        assert not FaultModel(fail_stop_rate=0.01).is_null
        assert not FaultModel(link_fail_rate=0.01).is_null

    def test_has_permanent(self):
        assert not FaultModel(seed=1, drop_rate=0.5, crash_rate=0.5).has_permanent
        assert FaultModel(fail_stop_rate=0.01).has_permanent
        assert FaultModel(link_fail_rate=0.01).has_permanent

    def test_draws_deterministic_and_seed_sensitive(self):
        a = FaultModel(seed=1, drop_rate=0.5)
        b = FaultModel(seed=1, drop_rate=0.5)
        c = FaultModel(seed=2, drop_rate=0.5)
        draws_a = [a.drops_delivery(t, 0, 1) for t in range(64)]
        assert draws_a == [b.drops_delivery(t, 0, 1) for t in range(64)]
        assert draws_a != [c.drops_delivery(t, 0, 1) for t in range(64)]

    def test_drop_rate_extremes(self):
        never = FaultModel(seed=5, drop_rate=0.0)
        always = FaultModel(seed=5, drop_rate=1.0)
        assert not any(never.drops_delivery(t, 0, 1) for t in range(32))
        assert all(always.drops_delivery(t, 0, 1) for t in range(32))

    def test_link_outage_symmetric(self):
        m = FaultModel(seed=9, link_outage_rate=0.5)
        for t in range(32):
            assert m.link_out(t, 2, 7) == m.link_out(t, 7, 2)

    def test_crash_window_spans_length(self):
        """A window starting at round t covers t .. t + crash_length - 1."""
        m = FaultModel(seed=0, crash_rate=0.3, crash_length=3)
        starts = [
            t for t in range(50)
            if m.crashed(t, 4) and not m.crashed(t - 1, 4) and t > 0
        ]
        assert starts, "seed 0 should produce at least one crash window start"
        t = starts[0]
        assert m.crashed(t + 1, 4) and m.crashed(t + 2, 4)


class TestPermanentFailures:
    def test_fail_stop_monotone(self):
        """Once a processor fail-stops it stays dead forever."""
        m = FaultModel(seed=3, fail_stop_rate=0.1)
        for v in range(8):
            states = [m.fail_stopped(t, v) for t in range(64)]
            assert states == sorted(states)  # False... then True forever

    def test_fail_stop_query_order_irrelevant(self):
        """The memoised incremental scan answers out-of-order queries
        identically to a sequential sweep on a fresh model."""
        sequential = FaultModel(seed=13, fail_stop_rate=0.05)
        forward = [sequential.fail_stopped(t, 2) for t in range(48)]
        shuffled = FaultModel(seed=13, fail_stop_rate=0.05)
        order = [37, 5, 47, 0, 21, 12, 46, 3]
        assert all(shuffled.fail_stopped(t, 2) == forward[t] for t in order)
        assert [shuffled.fail_stopped(t, 2) for t in range(48)] == forward

    def test_fail_stop_rate_extremes(self):
        never = FaultModel(seed=5, fail_stop_rate=0.0)
        always = FaultModel(seed=5, fail_stop_rate=1.0)
        assert not any(never.fail_stopped(t, 0) for t in range(32))
        assert all(always.fail_stopped(t, 0) for t in range(32))

    def test_link_fail_symmetric_and_monotone(self):
        m = FaultModel(seed=9, link_fail_rate=0.1)
        for t in range(40):
            assert m.link_failed(t, 2, 7) == m.link_failed(t, 7, 2)
        states = [m.link_failed(t, 0, 1) for t in range(64)]
        assert states == sorted(states)

    def test_sender_fail_stop_suppresses_whole_multicast(self):
        g = topologies.star_graph(4)
        model = FaultModel(seed=0, fail_stop_rate=1.0)
        result = execute_with_faults(g, sched([tx(0, 0, {1, 2, 3})]), model)
        assert [sup.reason for sup in result.suppressed] == ["sender-fail-stop"]
        assert result.lost == ()

    def test_fail_stop_checked_before_transient_crash(self):
        """A processor that is both dead and transiently crashed reports
        the permanent reason — the one the survival layer diagnoses."""
        g = Graph(2, [(0, 1)])
        model = FaultModel(seed=0, fail_stop_rate=1.0, crash_rate=1.0)
        result = execute_with_faults(g, sched([tx(0, 0, {1})]), model)
        assert [sup.reason for sup in result.suppressed] == ["sender-fail-stop"]

    def test_link_fail_loses_crossing_deliveries(self):
        g = Graph(2, [(0, 1)])
        model = FaultModel(seed=0, link_fail_rate=1.0)
        result = execute_with_faults(g, sched([tx(0, 0, {1})]), model)
        assert [ld.reason for ld in result.lost] == ["link-fail"]

    def test_prefix_replay_is_bit_identical(self):
        """Extending a schedule never rewrites who died in the prefix."""
        g = topologies.grid_2d(3, 3)
        plan = gossip(g)
        model = FaultModel(seed=17, drop_rate=0.1, fail_stop_rate=0.02,
                           link_fail_rate=0.01)
        holds = labeled_holdings(plan.labeled.labels())
        prefix = execute_with_faults(
            g, plan.schedule, model, initial_holds=holds, n_messages=g.n
        )
        extended_schedule = Schedule(
            list(plan.schedule.rounds) + [Round([])] * 5
        )
        extended = execute_with_faults(
            g, extended_schedule, FaultModel(seed=17, drop_rate=0.1,
                                             fail_stop_rate=0.02,
                                             link_fail_rate=0.01),
            initial_holds=holds, n_messages=g.n,
        )
        assert extended.lost[: len(prefix.lost)] == prefix.lost
        assert extended.suppressed[: len(prefix.suppressed)] == prefix.suppressed


class TestDrawMemoisation:
    """Micro-regressions: memo caches must cut hash draws, not change them."""

    @staticmethod
    def _counting_uniform(monkeypatch):
        from repro.simulator import lossy

        counts = {}
        real = lossy._uniform

        def counting(seed, tag, *coords):
            counts[tag] = counts.get(tag, 0) + 1
            return real(seed, tag, *coords)

        monkeypatch.setattr(lossy, "_uniform", counting)
        return counts

    def test_crash_window_starts_drawn_once(self, monkeypatch):
        """Querying rounds 0..63 draws each window start once (~64 draws),
        not crash_length times per query (~250 for length 4)."""
        from repro.simulator.lossy import _TAG_CRASH

        counts = self._counting_uniform(monkeypatch)
        m = FaultModel(seed=1, crash_rate=0.3, crash_length=4)
        sweep = [m.crashed(t, 0) for t in range(64)]
        assert counts[_TAG_CRASH] <= 64 + 4
        # Cached answers match a fresh, uncached-at-that-point model.
        fresh = FaultModel(seed=1, crash_rate=0.3, crash_length=4)
        assert sweep == [fresh.crashed(t, 0) for t in range(64)]

    def test_fail_stop_scan_is_incremental(self, monkeypatch):
        """A sweep over rounds 0..T costs at most T + 1 draws per
        processor in total, not a fresh scan per query."""
        from repro.simulator.lossy import _TAG_FAIL_STOP

        counts = self._counting_uniform(monkeypatch)
        m = FaultModel(seed=2, fail_stop_rate=0.01)
        for t in range(64):
            m.fail_stopped(t, 0)
        m.fail_stopped(63, 0)  # repeat query: fully cached
        assert counts[_TAG_FAIL_STOP] <= 64


class TestLossAccounting:
    def test_dropped_delivery_recorded_and_missing(self):
        g = Graph(2, [(0, 1)])
        model = FaultModel(seed=0, drop_rate=1.0)
        result = execute_with_faults(
            g, sched([tx(0, 0, {1}), tx(1, 1, {0})]), model
        )
        assert not result.complete
        assert {ld.reason for ld in result.lost} == {"drop"}
        assert len(result.lost) == 2
        assert result.missing_sets() == {0: [1], 1: [0]}
        assert result.faults_injected == 2

    def test_cascading_loss_suppresses_forward(self):
        """1 never receives message 0, so its forward is suppressed, not
        a model violation."""
        g = topologies.path_graph(3)
        model = FaultModel(seed=0, drop_rate=1.0)
        s = sched([tx(0, 0, {1})], [tx(1, 0, {2})])
        result = execute_with_faults(g, s, model)
        assert [sup.reason for sup in result.suppressed] == ["not-held"]
        assert result.suppressed[0].sender == 1

    def test_adjacency_violation_still_raises(self):
        g = topologies.path_graph(3)  # 0-1-2; 0 and 2 not adjacent
        model = FaultModel(seed=0, drop_rate=1.0)
        with pytest.raises(ModelViolationError):
            execute_with_faults(g, sched([tx(0, 0, {2})]), model)

    def test_sender_crash_suppresses_whole_multicast(self):
        g = topologies.star_graph(4)
        model = FaultModel(seed=0, crash_rate=1.0, crash_length=1)
        result = execute_with_faults(g, sched([tx(0, 0, {1, 2, 3})]), model)
        assert [sup.reason for sup in result.suppressed] == ["sender-crash"]
        assert result.lost == ()

    def test_link_outage_loses_crossing_deliveries(self):
        g = Graph(2, [(0, 1)])
        model = FaultModel(seed=0, link_outage_rate=1.0)
        result = execute_with_faults(g, sched([tx(0, 0, {1})]), model)
        assert [ld.reason for ld in result.lost] == ["link-outage"]

    def test_lossy_run_is_reproducible(self):
        g = topologies.grid_2d(3, 3)
        model = FaultModel(seed=42, drop_rate=0.3)
        _, a = plan_run(g, model)
        _, b = plan_run(g, model)
        assert a == b


class TestNullModelParity:
    def test_matches_execute_schedule_on_every_field(self):
        g = topologies.grid_2d(3, 4)
        plan = gossip(g)
        holds = labeled_holdings(plan.labeled.labels())
        faulty = execute_with_faults(
            g, plan.schedule, FaultModel(seed=99),
            initial_holds=holds, n_messages=g.n, record_arrivals=True,
        )
        reference = execute_schedule(
            g, plan.schedule, initial_holds=holds, record_arrivals=True,
            require_complete=True,
        )
        assert faulty.lost == () and faulty.suppressed == ()
        assert faulty.to_execution_result() == reference
        assert faulty.missing_sets() == {}
