"""Link-load sanity on hand-computable cases."""

from repro.core.gossip import gossip
from repro.networks import topologies
from repro.simulator.metrics import compute_metrics, link_loads


class TestStarLoads:
    def test_every_spoke_carries_exactly_n_deliveries(self):
        """On a star, ConcurrentUpDown sends each leaf its n - 1 foreign
        messages plus one upward delivery of its own: n per spoke."""
        n = 8
        plan = gossip(topologies.star_graph(n))
        loads = link_loads(plan.schedule)
        assert set(loads) == {(0, leaf) for leaf in range(1, n)}
        for load in loads.values():
            assert load == n  # n - 1 down + 1 up

    def test_busiest_link_metric_matches(self):
        plan = gossip(topologies.star_graph(8))
        metrics = compute_metrics(plan.schedule)
        assert metrics.busiest_link_load == max(link_loads(plan.schedule).values())


class TestPathLoads:
    def test_every_link_carries_exactly_n(self):
        """On a path, link (q, q+1) carries each of the q+1 left-side
        messages rightward once and each of the n-q-1 right-side messages
        leftward once: exactly n deliveries per link, uniformly — and
        ConcurrentUpDown achieves that floor with no duplicates."""
        n = 9
        plan = gossip(topologies.path_graph(n))
        loads = link_loads(plan.schedule)
        assert set(loads) == {(q, q + 1) for q in range(n - 1)}
        assert all(load == n for load in loads.values())
