"""Unit tests for per-vertex timeline extraction (Tables 1-4 machinery)."""

import pytest

from repro.core.concurrent_updown import concurrent_updown
from repro.networks.paper_networks import fig5_tree
from repro.simulator.trace import all_timelines, vertex_timeline
from repro.tree.labeling import LabeledTree


@pytest.fixture(scope="module")
def fig5_schedule():
    labeled = LabeledTree(fig5_tree())
    return labeled.tree, concurrent_updown(labeled)


class TestVertexTimeline:
    def test_root_has_no_parent_rows(self, fig5_schedule):
        tree, schedule = fig5_schedule
        tl = vertex_timeline(tree, schedule, 0)
        assert tl.receive_from_parent == {}
        assert tl.send_to_parent == {}

    def test_leaf_has_no_child_rows(self, fig5_schedule):
        tree, schedule = fig5_schedule
        tl = vertex_timeline(tree, schedule, 3)
        assert tl.receive_from_child == {}
        assert tl.send_to_child == {}

    def test_receive_time_is_send_plus_one(self, fig5_schedule):
        tree, schedule = fig5_schedule
        tl_parent = vertex_timeline(tree, schedule, 4)
        tl_child = vertex_timeline(tree, schedule, 8)
        for t, m in tl_parent.send_to_child.items():
            tx = schedule.round_at(t).sent_by(4)
            if 8 in tx.destinations:
                assert tl_child.receive_from_parent[t + 1] == m

    def test_horizon(self, fig5_schedule):
        tree, schedule = fig5_schedule
        tl = vertex_timeline(tree, schedule, 8)
        assert tl.horizon == 18  # n + k = 16 + 2

    def test_row_aliases(self, fig5_schedule):
        tree, schedule = fig5_schedule
        tl = vertex_timeline(tree, schedule, 1)
        assert tl.row("Send to Child") == tl.send_to_child
        assert tl.row("send to children") == tl.send_to_child
        assert tl.row("Receive from Parent") == tl.receive_from_parent
        with pytest.raises(KeyError):
            tl.row("nonsense")

    def test_as_lists_dense(self, fig5_schedule):
        tree, schedule = fig5_schedule
        tl = vertex_timeline(tree, schedule, 1)
        rows = tl.as_lists()
        assert rows["Send to Parent"][0] == 1
        assert rows["Send to Parent"][3] is None
        assert len(rows["Send to Parent"]) == tl.horizon + 1

    def test_as_lists_fixed_horizon(self, fig5_schedule):
        tree, schedule = fig5_schedule
        rows = vertex_timeline(tree, schedule, 0).as_lists(horizon=20)
        assert len(rows["Send to Child"]) == 21

    def test_empty_timeline_horizon(self):
        from repro.core.schedule import Schedule
        from repro.tree.tree import Tree

        tl = vertex_timeline(Tree([-1, 0], root=0), Schedule([]), 1)
        assert tl.horizon == -1


class TestAllTimelines:
    def test_one_per_vertex(self, fig5_schedule):
        tree, schedule = fig5_schedule
        tls = all_timelines(tree, schedule)
        assert len(tls) == 16
        assert [tl.vertex for tl in tls] == list(range(16))

    def test_every_send_accounted(self, fig5_schedule):
        """Each vertex's sends appear in its own timeline rows."""
        tree, schedule = fig5_schedule
        tls = all_timelines(tree, schedule)
        total_rows = sum(
            len(tl.send_to_parent) + len(tl.send_to_child) for tl in tls
        )
        # every transmission hits at least one of the two send rows; fused
        # up+down multicasts hit both
        assert total_rows >= schedule.total_messages()
