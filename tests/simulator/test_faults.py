"""Failure-injection tests: every perturbation must be caught.

Proves the validator is not vacuous — a correct schedule passes, every
minimally-broken variant fails with the right exception.
"""

import pytest

from repro.core.concurrent_updown import concurrent_updown
from repro.exceptions import (
    IncompleteGossipError,
    ModelViolationError,
    ScheduleConflictError,
    ScheduleError,
)
from repro.networks import topologies
from repro.networks.builders import tree_to_graph
from repro.networks.spanning_tree import minimum_depth_spanning_tree
from repro.simulator.faults import (
    corrupt_message,
    drop_round,
    drop_transmission,
    duplicate_receiver,
    redirect_to_nonneighbor,
    swap_rounds,
)
from repro.simulator.state import labeled_holdings
from repro.simulator.validator import validate_schedule
from repro.tree.labeling import LabeledTree


@pytest.fixture(scope="module")
def setup():
    tree = minimum_depth_spanning_tree(topologies.grid_2d(3, 4))
    labeled = LabeledTree(tree)
    schedule = concurrent_updown(labeled)
    network = tree_to_graph(tree)
    holds = labeled_holdings(labeled.labels())
    return network, schedule, holds


def check(network, schedule, holds):
    return validate_schedule(network, schedule, initial_holds=holds)


class TestBaseline:
    def test_unperturbed_passes(self, setup):
        network, schedule, holds = setup
        assert check(network, schedule, holds).complete


class TestDropRound:
    def test_detected(self, setup):
        network, schedule, holds = setup
        broken = drop_round(schedule, 2)
        with pytest.raises((IncompleteGossipError, ModelViolationError)):
            check(network, broken, holds)

    def test_drop_every_round_position(self, setup):
        """No round of ConcurrentUpDown is redundant."""
        network, schedule, holds = setup
        for index in range(schedule.total_time):
            with pytest.raises(
                (IncompleteGossipError, ModelViolationError, ScheduleConflictError)
            ):
                check(network, drop_round(schedule, index), holds)

    def test_bad_index(self, setup):
        _, schedule, _ = setup
        with pytest.raises(ScheduleError):
            drop_round(schedule, 999)


class TestDropTransmission:
    def test_detected(self, setup):
        network, schedule, holds = setup
        broken = drop_transmission(schedule, 0, 0)
        with pytest.raises((IncompleteGossipError, ModelViolationError)):
            check(network, broken, holds)

    def test_bad_index(self, setup):
        _, schedule, _ = setup
        with pytest.raises(ScheduleError):
            drop_transmission(schedule, 0, 99)


class TestCorruptMessage:
    def test_detected_as_possession_violation(self, setup):
        network, schedule, holds = setup
        # round 0 carries lip-messages; swap one for a message the sender
        # cannot possibly have yet
        tx0 = schedule.round_at(0).transmissions[0]
        wrong = (tx0.message + 5) % 12
        broken = corrupt_message(schedule, 0, 0, wrong)
        with pytest.raises((ModelViolationError, IncompleteGossipError)):
            check(network, broken, holds)

    def test_bad_index(self, setup):
        _, schedule, _ = setup
        with pytest.raises(ScheduleError):
            corrupt_message(schedule, 999, 0, 0)


class TestRedirect:
    def test_detected_as_adjacency_violation(self, setup):
        network, schedule, holds = setup
        broken = redirect_to_nonneighbor(schedule, network, 1, 0)
        with pytest.raises(
            (ModelViolationError, IncompleteGossipError, ScheduleConflictError)
        ):
            check(network, broken, holds)

    def test_complete_graph_has_no_strangers(self):
        g = topologies.complete_graph(4)
        from repro.core.gossip import gossip

        plan = gossip(g)
        with pytest.raises(ScheduleError, match="adjacent to everyone"):
            redirect_to_nonneighbor(plan.schedule, g, 1, 0)


class TestSwapRounds:
    def test_adjacent_swap_detected(self, setup):
        """Swapping the first two rounds of a pipelined schedule makes a
        vertex forward a message before receiving it."""
        network, schedule, holds = setup
        broken = swap_rounds(schedule, 1, 2)
        with pytest.raises(
            (ModelViolationError, IncompleteGossipError, ScheduleConflictError)
        ):
            check(network, broken, holds)

    def test_identity_swap_harmless(self, setup):
        network, schedule, holds = setup
        same = swap_rounds(schedule, 3, 3)
        assert check(network, same, holds).complete

    def test_every_adjacent_swap_never_silently_wrong(self, setup):
        """Any adjacent swap either still completes or is detected —
        never a quiet incomplete-but-unreported outcome."""
        network, schedule, holds = setup
        for a in range(schedule.total_time - 1):
            broken = swap_rounds(schedule, a, a + 1)
            try:
                result = check(network, broken, holds)
            except (ModelViolationError, IncompleteGossipError):
                continue
            assert result.complete

    def test_bad_index(self, setup):
        _, schedule, _ = setup
        with pytest.raises(ScheduleError):
            swap_rounds(schedule, 0, 999)


class TestDuplicateReceiver:
    def test_rejected_structurally(self, setup):
        """Rule 1 violations never even construct a Round."""
        _, schedule, _ = setup
        busy_round = next(
            t for t in range(schedule.total_time) if len(schedule.round_at(t)) >= 2
        )
        with pytest.raises(ScheduleConflictError):
            duplicate_receiver(schedule, busy_round)

    def test_needs_two_transmissions(self, setup):
        _, schedule, _ = setup
        from repro.core.schedule import Round, Schedule, Transmission

        tiny = Schedule(
            [Round([Transmission(sender=0, message=0, destinations=frozenset({1}))])]
        )
        with pytest.raises(ScheduleError, match="fewer than two"):
            duplicate_receiver(tiny, 0)
