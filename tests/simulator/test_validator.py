"""Unit tests for static + dynamic schedule validation."""

import pytest

from repro.core.concurrent_updown import concurrent_updown
from repro.core.schedule import Round, Schedule, Transmission
from repro.exceptions import ModelViolationError, ScheduleError
from repro.networks import topologies
from repro.networks.builders import tree_to_graph
from repro.networks.paper_networks import fig5_tree
from repro.networks.spanning_tree import minimum_depth_spanning_tree
from repro.simulator.state import labeled_holdings
from repro.simulator.validator import (
    assert_gossip_schedule,
    check_static,
    validate_schedule,
)
from repro.tree.labeling import LabeledTree


def tx(sender, message, dests):
    return Transmission(sender=sender, message=message, destinations=frozenset(dests))


class TestStatic:
    def test_valid_passes(self):
        g = topologies.path_graph(3)
        check_static(g, Schedule([Round([tx(0, 0, {1})])]))

    def test_off_edge_rejected(self):
        g = topologies.path_graph(3)
        with pytest.raises(ModelViolationError, match="edge"):
            check_static(g, Schedule([Round([tx(0, 0, {2})])]))

    def test_sender_out_of_range(self):
        g = topologies.path_graph(2)
        with pytest.raises(ScheduleError, match="sender"):
            check_static(g, Schedule([Round([tx(5, 0, {1})])]))

    def test_destination_out_of_range(self):
        g = topologies.path_graph(2)
        with pytest.raises(ScheduleError, match="destination"):
            check_static(g, Schedule([Round([tx(0, 0, {9})])]))


class TestDynamic:
    def test_full_pipeline_passes(self):
        tree = minimum_depth_spanning_tree(topologies.grid_2d(3, 3))
        labeled = LabeledTree(tree)
        result = validate_schedule(
            tree_to_graph(tree),
            concurrent_updown(labeled),
            initial_holds=labeled_holdings(labeled.labels()),
        )
        assert result.complete

    def test_incomplete_detected(self):
        g = topologies.path_graph(2)
        with pytest.raises(Exception):
            validate_schedule(g, Schedule([Round([tx(0, 0, {1})])]))

    def test_incomplete_allowed_when_not_required(self):
        g = topologies.path_graph(2)
        result = validate_schedule(
            g, Schedule([Round([tx(0, 0, {1})])]), require_complete=False
        )
        assert not result.complete


class TestAssertGossip:
    def test_budget_respected(self):
        labeled = LabeledTree(fig5_tree())
        assert_gossip_schedule(
            tree_to_graph(labeled.tree),
            concurrent_updown(labeled),
            initial_holds=labeled_holdings(labeled.labels()),
            max_total_time=16 + 3,
        )

    def test_budget_exceeded(self):
        labeled = LabeledTree(fig5_tree())
        with pytest.raises(ScheduleError, match="exceeding"):
            assert_gossip_schedule(
                tree_to_graph(labeled.tree),
                concurrent_updown(labeled),
                initial_holds=labeled_holdings(labeled.labels()),
                max_total_time=10,
            )
