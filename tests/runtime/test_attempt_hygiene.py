"""Satellite regressions: the retransmission state must stay bounded.

Two leaks guarded here:

* the transport's attempt table (the per-record retransmission index
  feeding the deterministic loss draws) must not grow with run length —
  entries are keyed by the logical record identity, pruned on ack via
  :meth:`LossyDatagramTransport.forget`, swept by
  :meth:`~LossyDatagramTransport.expire_before`, and never created for
  heartbeats at all;
* the peer's reliable-send loop must be *capped*: a destination that
  swallows ``RuntimeConfig.max_attempts`` copies without acking one is
  reported to the suspicion path and marked dead locally, never retried
  forever.
"""

import asyncio

import pytest

from repro.core.gossip import gossip
from repro.core.online import build_processors
from repro.runtime import (
    ACK,
    DATA,
    FENCE,
    HEARTBEAT,
    PHASE_ONLINE,
    Datagram,
    GossipPeer,
    LossyDatagramTransport,
    NetChaos,
    RealClock,
    RuntimeConfig,
    encode,
)
from repro.runtime.peer import _ATTEMPT_EXPIRE_LAG


class _FakeInner:
    """Stands in for the asyncio datagram transport under the wrapper."""

    def __init__(self):
        self.sent = []

    def sendto(self, data, addr):
        self.sent.append((data, addr))

    def is_closing(self):
        return False

    def close(self):
        pass


def _transport(chaos):
    return LossyDatagramTransport(
        _FakeInner(),
        chaos=chaos,
        src=0,
        vertex_of_addr={("127.0.0.1", 9000 + v): v for v in range(8)},
        clock=RealClock(),
    )


def _send(transport, kind, rnd, *, dst=1, phase=PHASE_ONLINE, copies=1):
    data = encode(Datagram(kind=kind, phase=phase, round=rnd, sender=0,
                           payload=0))
    for _ in range(copies):
        transport.sendto(data, ("127.0.0.1", 9000 + dst))


class TestAttemptTableBounded:
    """The (dst, kind, phase, round) table never grows with run length."""

    def test_acked_records_are_forgotten(self):
        t = _transport(NetChaos(seed=3, drop_rate=0.5))
        _send(t, DATA, 0, copies=5)
        assert t.attempts_tracked == 1
        t.forget(1, DATA, PHASE_ONLINE, 0)
        assert t.attempts_tracked == 0

    def test_forget_is_idempotent_for_unknown_records(self):
        t = _transport(NetChaos(seed=3, drop_rate=0.5))
        t.forget(7, FENCE, PHASE_ONLINE, 123)  # never sent: no error
        assert t.attempts_tracked == 0

    def test_long_run_with_sweep_stays_bounded(self):
        """1000 rounds of unacked traffic, table bounded by the lag window."""
        t = _transport(NetChaos(seed=5, drop_rate=0.5))
        high_water = 0
        for rnd in range(1000):
            for dst in (1, 2, 3):
                _send(t, DATA, rnd, dst=dst, copies=2)
                _send(t, FENCE, rnd, dst=dst)
            t.expire_before(PHASE_ONLINE, rnd - _ATTEMPT_EXPIRE_LAG)
            high_water = max(high_water, t.attempts_tracked)
        # 3 dsts x 2 kinds x (lag + 1 live rounds) is the ceiling.
        assert high_water <= 3 * 2 * (_ATTEMPT_EXPIRE_LAG + 2)
        assert t.attempts_tracked <= 3 * 2 * (_ATTEMPT_EXPIRE_LAG + 2)

    def test_heartbeats_never_enter_the_table(self):
        """The old leak: one table entry per heartbeat sequence number."""
        t = _transport(NetChaos(seed=7, drop_rate=0.3))
        for seq in range(500):
            _send(t, HEARTBEAT, seq)
        assert t.attempts_tracked == 0

    def test_retransmission_attempt_index_still_advances(self):
        """Hygiene must not break the fresh-draw-per-copy contract."""
        chaos = NetChaos(seed=11, drop_rate=0.5)
        t = _transport(chaos)
        _send(t, DATA, 4, copies=6)
        dropped_live = t.stats.dropped
        # Six copies = attempts 0..5 = six independent draws.
        expected = sum(
            chaos.drops(src=0, dst=1, kind=DATA, phase=PHASE_ONLINE, rnd=4,
                        attempt=k)
            for k in range(6)
        )
        assert dropped_live == expected
        assert 0 < expected < 6  # seed chosen so both outcomes occur

    def test_expire_is_per_phase(self):
        t = _transport(NetChaos(seed=13, drop_rate=0.5))
        _send(t, DATA, 2, phase=0)
        _send(t, DATA, 2, phase=1)
        t.expire_before(0, 10)
        assert t.attempts_tracked == 1  # phase-1 record survives


class TestMaxAttemptsCap:
    """_send_reliable under 100% loss to one destination: capped, suspected."""

    @staticmethod
    def _peer(config):
        plan = gossip("path:3")
        procs = build_processors(plan.labeled)
        suspected = []
        peer = GossipPeer(
            1, procs[1], config=config, clock=RealClock(),
            suspect=lambda src, dst: suspected.append((src, dst)),
        )
        # A transport whose chaos never fires, pointed at a black hole:
        # datagrams "reach the wire" but dest 2 never acks.
        transport = _transport(NetChaos())
        peer.attach(transport, {v: ("127.0.0.1", 9000 + v) for v in range(3)})
        return peer, suspected

    def test_unacked_destination_is_capped_and_suspected(self):
        config = RuntimeConfig(
            ack_timeout=0.005, backoff_cap=0.01, max_attempts=5,
            heartbeat_interval=0.25, fail_after=1.5, round_timeout=8.0,
        )
        peer, suspected = self._peer(config)
        dgram = Datagram(kind=DATA, phase=PHASE_ONLINE, round=0, sender=1,
                         payload=1)

        delivered = asyncio.run(peer._send_reliable(dgram, 2))

        assert delivered is False
        assert 2 in peer.dead
        assert suspected == [(1, 2)]
        # Exactly max_attempts copies hit the wire, not one more.
        copies = [
            d for d, addr in peer.transport._inner.sent
            if addr == ("127.0.0.1", 9002)
        ]
        assert len(copies) == config.max_attempts
        # The abandoned record leaves no attempt state behind.
        assert peer.transport.attempts_tracked == 0

    def test_ack_before_cap_delivers(self):
        config = RuntimeConfig(
            ack_timeout=0.005, backoff_cap=0.01, max_attempts=5,
            heartbeat_interval=0.25, fail_after=1.5, round_timeout=8.0,
        )
        peer, suspected = self._peer(config)
        dgram = Datagram(kind=FENCE, phase=PHASE_ONLINE, round=0, sender=1,
                         payload=0)

        async def run():
            task = asyncio.ensure_future(peer._send_reliable(dgram, 2))
            await asyncio.sleep(0.012)  # let a couple of copies go out
            peer.ack_events[(2, PHASE_ONLINE, 0)].set()
            return await task

        assert asyncio.run(run()) is True
        assert 2 not in peer.dead and not suspected

    def test_max_attempts_validated(self):
        with pytest.raises(Exception, match="max_attempts"):
            RuntimeConfig(max_attempts=0)
