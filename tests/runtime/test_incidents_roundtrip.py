"""IncidentJournal JSONL round-trip and typed parse errors (ISSUE 10).

Forensics tooling must be able to read back a journal written by an
earlier run: ``from_jsonl(to_jsonl(j))`` reproduces equal incidents for
every kind, and any malformed line raises
:class:`~repro.exceptions.JournalFormatError` naming the line — never a
bare ``json.JSONDecodeError``.
"""

import json

import pytest

from repro.exceptions import JournalFormatError, ReproError
from repro.runtime.incidents import Incident, IncidentJournal

ALL_KINDS = [
    "crash-detected", "suspicion", "abort", "restart", "rejoin-failed",
    "fail-stop-declared", "resync", "recovered", "failover-replan",
    "deadline", "child-error",
]


def full_journal():
    journal = IncidentJournal()
    for k, kind in enumerate(ALL_KINDS):
        journal.record(
            kind,
            vertex=k - 1,  # -1 fleet-wide first, then real peers
            detected_by="sentinel" if k % 2 else f"peer:{k}",
            attempt=k % 4,
            wall_seconds=0.125 * k,
            details=f"detail #{k} with spaces and 'quotes'",
        )
    return journal


class TestRoundTrip:
    def test_all_kinds_round_trip_equal(self):
        journal = full_journal()
        back = IncidentJournal.from_jsonl(journal.to_jsonl())
        assert back.incidents == journal.incidents
        assert [i.kind for i in back] == ALL_KINDS

    def test_trailing_newline_and_blank_lines_ignored(self):
        journal = full_journal()
        text = journal.to_jsonl() + "\n\n"
        assert IncidentJournal.from_jsonl(text).incidents == journal.incidents

    def test_empty_document_is_empty_journal(self):
        assert len(IncidentJournal.from_jsonl("")) == 0

    def test_single_incident_round_trip(self):
        incident = Incident(
            seq=0, kind="resync", vertex=3, detected_by="supervisor",
            attempt=1, wall_seconds=2.5, details="from peer 4",
        )
        assert Incident.from_json(incident.to_json()) == incident


GOOD_LINE = (
    '{"attempt": 0, "details": "", "detected_by": "sentinel", '
    '"kind": "abort", "seq": 0, "vertex": -1, "wall_seconds": 0.0}'
)


class TestMalformedLines:
    @pytest.mark.parametrize("bad,needle", [
        ("{truncated", "not valid JSON"),
        ("[1, 2, 3]", "not a JSON object"),
        ('"a string"', "not a JSON object"),
        ('{"seq": 0}', "lacks"),
        (GOOD_LINE.replace('"seq": 0', '"seq": "zero"'), "expected int"),
        (GOOD_LINE.replace('"vertex": -1', '"vertex": true'), "expected int"),
        (GOOD_LINE.replace('"seq": 0,', '"seq": 0, "rogue": 1,'), "unknown"),
    ])
    def test_typed_error_not_json_decode_error(self, bad, needle):
        with pytest.raises(JournalFormatError, match=needle) as info:
            Incident.from_json(bad, line_number=7)
        assert info.value.line_number == 7
        assert isinstance(info.value, ReproError)
        assert not isinstance(info.value, json.JSONDecodeError)

    def test_from_jsonl_names_the_bad_line(self):
        journal = full_journal()
        lines = journal.to_jsonl().splitlines()
        lines[4] = "{broken"
        with pytest.raises(JournalFormatError) as info:
            IncidentJournal.from_jsonl("\n".join(lines))
        assert info.value.line_number == 5

    def test_integral_wall_seconds_accepted(self):
        # json emits 0.0 as 0; parsing must widen it back to float
        incident = Incident.from_json(
            GOOD_LINE.replace('"wall_seconds": 0.0', '"wall_seconds": 3')
        )
        assert incident.wall_seconds == 3.0
        assert isinstance(incident.wall_seconds, float)
