"""End-to-end runtime: real UDP peers vs the offline schedule.

Each test drives :func:`repro.runtime.run_gossip_network` (which owns its
own ``asyncio.run``, so the tests stay plain sync functions) on a small
topology with a :class:`~repro.runtime.ScaledClock` so whole
failure-detection scenarios finish in tens of milliseconds of real time.
"""

import pytest

from repro.core.gossip import gossip
from repro.exceptions import GossipRuntimeError, RuntimeDeadlineError
from repro.runtime import (
    NetChaos,
    ObservedDeaths,
    RuntimeConfig,
    ScaledClock,
    run_gossip_network,
)


def offline_multiset(plan):
    return sorted(
        (t, tx.sender, tx.message, tuple(sorted(tx.destinations)))
        for t, rnd in enumerate(plan.schedule.rounds)
        for tx in rnd
    )


def online_multiset(result):
    return sorted(
        (e.round, e.sender, e.message, e.destinations)
        for e in result.transcript
    )


class TestFaultFree:
    def test_offline_exact_on_path(self):
        plan = gossip("path:6")
        result = run_gossip_network(plan, config=RuntimeConfig(seed=3))
        assert result.complete
        assert result.coverage == 1.0
        assert result.dead == ()
        assert result.survival_rounds == 0
        assert result.survival_transcript == ()
        assert result.rounds_completed == result.horizon
        assert online_multiset(result) == offline_multiset(plan)

    def test_every_peer_ends_with_every_message(self):
        plan = gossip("star:5")
        result = run_gossip_network(plan, config=RuntimeConfig(seed=3))
        full = (1 << plan.graph.n) - 1
        assert all(h == full for h in result.final_holds)

    def test_makespan_mirrors_simulator_convention(self):
        result = run_gossip_network("path:4", config=RuntimeConfig(seed=1))
        assert result.makespan == result.wall_seconds
        assert result.makespan is not None

    def test_family_string_and_algorithm(self):
        result = run_gossip_network(
            "cycle:6", algorithm="simple", config=RuntimeConfig(seed=2)
        )
        assert result.complete


class TestReordering:
    def test_delay_jitter_reordering_is_offline_identical(self):
        """Satellite invariant: pure datagram reordering (delay jitter,
        no drops, no deaths) must yield a transcript identical to the
        offline schedule — the fence barrier serialises rounds no matter
        how the wire permutes datagrams inside one."""
        plan = gossip("grid:9")
        chaos = NetChaos(seed=17, delay_rate=0.5, delay_max=0.02)
        result = run_gossip_network(
            plan,
            chaos=chaos,
            config=RuntimeConfig(seed=17),
            clock=ScaledClock(0.5),
        )
        assert result.complete
        assert result.stats.delayed > 0
        assert online_multiset(result) == offline_multiset(plan)


class TestKillAndSurvival:
    CONFIG = RuntimeConfig(
        heartbeat_interval=0.25,
        fail_after=1.0,
        round_timeout=6.0,
        run_timeout=120.0,
        seed=11,
    )

    def _run(self):
        return run_gossip_network(
            gossip("grid:9"),
            chaos=NetChaos(seed=11, kill=((4, 2),)),
            config=self.CONFIG,
            clock=ScaledClock(0.2),
        )

    def test_killed_peer_is_detected_and_survivors_complete(self):
        result = self._run()
        assert not result.complete          # someone died
        assert result.makespan is None      # degraded, like the simulator
        assert result.dead == (4,)
        assert result.coverage == 1.0       # gossip among survivors
        assert result.survival_rounds > 0
        assert len(result.survival_transcript) > 0
        # No survival-phase sender is the dead peer.
        assert all(e.sender != 4 for e in result.survival_transcript)

    def test_chaos_run_is_reproducible_per_seed(self):
        first = self._run().deterministic_summary()
        second = self._run().deterministic_summary()
        assert first == second


class TestDeadlines:
    def test_run_deadline_raises_typed_error_with_partial(self):
        """A dead peer + a detector too slow to fire inside the run
        budget: the whole-run deadline degrades to a typed error that
        carries the partial result."""
        config = RuntimeConfig(
            heartbeat_interval=0.25,
            fail_after=10.0,     # never fires within the run budget
            round_timeout=20.0,
            run_timeout=0.5,
            seed=5,
        )
        with pytest.raises(RuntimeDeadlineError) as exc_info:
            run_gossip_network(
                gossip("star:8"),
                chaos=NetChaos(seed=5, kill=((1, 1),)),
                config=config,
            )
        err = exc_info.value
        assert err.phase == "run"
        assert err.partial is not None
        assert not err.partial.complete
        assert err.partial.makespan is None
        assert err.partial.coverage < 1.0


class TestConfigValidation:
    def test_fail_after_must_exceed_two_heartbeats(self):
        with pytest.raises(GossipRuntimeError):
            RuntimeConfig(heartbeat_interval=0.5, fail_after=0.9)

    def test_round_timeout_must_exceed_fail_after(self):
        with pytest.raises(GossipRuntimeError):
            RuntimeConfig(fail_after=1.5, round_timeout=1.0)

    def test_backoff_is_deterministic_and_bounded(self):
        config = RuntimeConfig(seed=9)
        key = dict(src=1, dst=2, phase=0, rnd=3)
        first = [config.backoff(k, **key) for k in range(8)]
        second = [config.backoff(k, **key) for k in range(8)]
        assert first == second
        assert all(0.0 < b <= config.backoff_cap * 1.5 for b in first)


class TestObservedDeaths:
    def test_fail_stopped_from_round_onwards(self):
        model = ObservedDeaths(dead_from=((3, 2),))
        assert not model.fail_stopped(0, 3)
        assert not model.fail_stopped(1, 3)
        assert model.fail_stopped(2, 3)
        assert model.fail_stopped(9, 3)
        assert not model.fail_stopped(9, 4)
