"""Wire codec: roundtrip exactness and strict malformed-input rejection."""

import struct

import pytest

from repro.exceptions import WireFormatError
from repro.runtime import (
    ACK,
    DATA,
    FENCE,
    HEARTBEAT,
    PHASE_ONLINE,
    PHASE_SURVIVAL,
    WIRE_SIZE,
    Datagram,
    decode,
    encode,
)


class TestRoundtrip:
    def test_every_kind_roundtrips(self):
        for kind in (DATA, FENCE, ACK, HEARTBEAT):
            for phase in (PHASE_ONLINE, PHASE_SURVIVAL):
                d = Datagram(kind=kind, phase=phase, round=12345,
                             sender=42, payload=7)
                assert decode(encode(d)) == d

    def test_fixed_size(self):
        d = Datagram(kind=DATA, phase=PHASE_ONLINE, round=0, sender=0, payload=0)
        assert len(encode(d)) == WIRE_SIZE

    def test_field_extremes(self):
        d = Datagram(kind=FENCE, phase=PHASE_SURVIVAL, round=2**32 - 1,
                     sender=2**16 - 1, payload=2**16 - 1)
        assert decode(encode(d)) == d

    def test_needs_ack_is_data_and_fence_only(self):
        def dg(kind):
            return Datagram(kind=kind, phase=0, round=0, sender=0, payload=0)

        assert dg(DATA).needs_ack
        assert dg(FENCE).needs_ack
        assert not dg(ACK).needs_ack
        assert not dg(HEARTBEAT).needs_ack


class TestRejection:
    def test_wrong_size(self):
        with pytest.raises(WireFormatError, match="bytes"):
            decode(b"\x47short")

    def test_empty(self):
        with pytest.raises(WireFormatError):
            decode(b"")

    def test_bad_magic(self):
        good = bytearray(encode(
            Datagram(kind=DATA, phase=0, round=1, sender=2, payload=3)
        ))
        good[0] = 0x00
        with pytest.raises(WireFormatError, match="magic"):
            decode(bytes(good))

    def test_unknown_kind_on_decode(self):
        raw = struct.pack("!BBBIHH", 0x47, 99, 0, 1, 2, 3)
        with pytest.raises(WireFormatError, match="kind"):
            decode(raw)

    def test_unknown_kind_on_encode(self):
        with pytest.raises(WireFormatError, match="kind"):
            encode(Datagram(kind=0, phase=0, round=0, sender=0, payload=0))
