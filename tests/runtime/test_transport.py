"""Chaos profile and clock: validation plus the determinism contract."""

import pytest

from repro.exceptions import GossipRuntimeError
from repro.runtime import (
    DATA,
    FENCE,
    PHASE_ONLINE,
    NetChaos,
    ScaledClock,
    TransportStats,
)


class TestNetChaosValidation:
    def test_bad_drop_rate(self):
        with pytest.raises(GossipRuntimeError, match="probability"):
            NetChaos(drop_rate=1.5)

    def test_negative_delay_rate(self):
        with pytest.raises(GossipRuntimeError, match="probability"):
            NetChaos(delay_rate=-0.1)

    def test_negative_delay_max(self):
        with pytest.raises(GossipRuntimeError, match="delay_max"):
            NetChaos(delay_max=-1.0)

    def test_delay_rate_needs_delay_max(self):
        with pytest.raises(GossipRuntimeError, match="delay_max"):
            NetChaos(delay_rate=0.5, delay_max=0.0)

    def test_null_profile(self):
        assert NetChaos().is_null
        assert not NetChaos(drop_rate=0.1).is_null
        assert not NetChaos(kill=((3, 2),)).is_null

    def test_kill_round_of(self):
        chaos = NetChaos(kill=((3, 2), (5, 7)))
        assert chaos.kill_round_of(3) == 2
        assert chaos.kill_round_of(5) == 7
        assert chaos.kill_round_of(0) is None


class TestNetChaosDeterminism:
    def test_draws_are_pure_functions_of_the_key(self):
        a = NetChaos(seed=11, drop_rate=0.5, delay_rate=0.5, delay_max=0.01)
        b = NetChaos(seed=11, drop_rate=0.5, delay_rate=0.5, delay_max=0.01)
        key = dict(src=1, dst=2, kind=DATA, phase=PHASE_ONLINE, rnd=4, attempt=0)
        assert a.drops(**key) == b.drops(**key)
        assert a.delay_of(**key) == b.delay_of(**key)

    def test_different_seeds_diverge_somewhere(self):
        a = NetChaos(seed=1, drop_rate=0.5)
        b = NetChaos(seed=2, drop_rate=0.5)
        draws_a = [a.drops(src=s, dst=0, kind=DATA, phase=0, rnd=r, attempt=0)
                   for s in range(8) for r in range(8)]
        draws_b = [b.drops(src=s, dst=0, kind=DATA, phase=0, rnd=r, attempt=0)
                   for s in range(8) for r in range(8)]
        assert draws_a != draws_b

    def test_attempt_index_gives_fresh_draws(self):
        """Retransmissions must not be doomed to repeat the first loss."""
        chaos = NetChaos(seed=3, drop_rate=0.5)
        draws = [chaos.drops(src=1, dst=2, kind=FENCE, phase=0, rnd=0,
                             attempt=k) for k in range(64)]
        assert True in draws and False in draws

    def test_drop_rate_roughly_respected(self):
        chaos = NetChaos(seed=5, drop_rate=0.25)
        draws = [chaos.drops(src=s, dst=d, kind=DATA, phase=0, rnd=r, attempt=0)
                 for s in range(16) for d in range(16) for r in range(8)]
        rate = sum(draws) / len(draws)
        assert 0.15 < rate < 0.35

    def test_delay_bounded_and_single_hash(self):
        chaos = NetChaos(seed=9, delay_rate=0.4, delay_max=0.02)
        delays = [chaos.delay_of(src=s, dst=0, kind=DATA, phase=0, rnd=r,
                                 attempt=0)
                  for s in range(16) for r in range(16)]
        assert all(0.0 <= d < 0.02 for d in delays)
        assert any(d > 0.0 for d in delays)

    def test_zero_rates_never_perturb(self):
        chaos = NetChaos(seed=7)
        assert not chaos.drops(src=0, dst=1, kind=DATA, phase=0, rnd=0, attempt=0)
        assert chaos.delay_of(src=0, dst=1, kind=DATA, phase=0, rnd=0,
                              attempt=0) == 0.0


class TestTransportStats:
    def test_merged_sums_elementwise(self):
        a = TransportStats(sent=1, dropped=2, delayed=3, suppressed_after_kill=4)
        b = TransportStats(sent=10, dropped=20, delayed=30,
                           suppressed_after_kill=40)
        m = a.merged(b)
        assert (m.sent, m.dropped, m.delayed, m.suppressed_after_kill) == (
            11, 22, 33, 44
        )


class TestScaledClock:
    def test_rejects_out_of_range_scale(self):
        for scale in (0.0, -1.0, 1.5):
            with pytest.raises(GossipRuntimeError, match="scale"):
                ScaledClock(scale)

    def test_reports_virtual_seconds(self):
        import time

        clock = ScaledClock(0.5)
        start = clock.time()
        time.sleep(0.05)
        elapsed = clock.time() - start
        # 50 ms real = ~100 ms virtual at scale 0.5.
        assert elapsed > 0.05
