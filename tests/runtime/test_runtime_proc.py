"""End-to-end tests of the supervised multi-process runtime.

Every test here spawns a real fleet — one OS process per vertex over
UDP — so topologies are small and deadlines generous-but-scaled: child
interpreters boot serially on a single-core CI box, and a too-tight
virtual deadline reads as a false death.  Expensive runs are shared via
module-scoped fixtures; the wide sweeps (21 families, 100 SIGKILL
trials) live in ``benchmarks/bench_runtime_proc.py``.
"""

import json

import pytest

from repro.core.gossip import gossip
from repro.exceptions import ReproError, RuntimeDeadlineError
from repro.runtime import (
    IncidentJournal,
    NetChaos,
    RestartPolicy,
    RuntimeConfig,
    run_gossip_processes,
)

#: Virtual-seconds knobs for a six-peer fleet at time_scale 0.25.
CONFIG = dict(
    heartbeat_interval=0.25,
    fail_after=1.5,
    round_timeout=60.0,
    run_timeout=600.0,
)
SCALE = 0.25
FAMILY = "cycle:6"  # any single death leaves a connected path


def _offline_multiset(plan):
    return sorted(
        (t, tx.sender, tx.message, tuple(sorted(tx.destinations)))
        for t, rnd in enumerate(plan.schedule.rounds)
        for tx in rnd
    )


@pytest.fixture(scope="module")
def fault_free():
    plan = gossip(FAMILY)
    result = run_gossip_processes(
        plan, config=RuntimeConfig(seed=3, **CONFIG), time_scale=SCALE
    )
    return plan, result


@pytest.fixture(scope="module")
def replanned():
    """One peer SIGKILLed at round 1, resolved by the replan policy."""
    plan = gossip(FAMILY)
    result = run_gossip_processes(
        plan,
        chaos=NetChaos(seed=5, sigkill=((2, 1),)),
        config=RuntimeConfig(seed=5, **CONFIG),
        policy=RestartPolicy(mode="replan"),
        time_scale=SCALE,
    )
    return plan, result


@pytest.fixture(scope="module")
def rejoined():
    """One peer SIGKILLed at round 1, resolved by restart-with-rejoin."""
    plan = gossip(FAMILY)
    result = run_gossip_processes(
        plan,
        chaos=NetChaos(seed=9, sigkill=((4, 1),)),
        config=RuntimeConfig(seed=9, **CONFIG),
        policy=RestartPolicy(mode="restart", max_restarts=3),
        time_scale=SCALE,
    )
    return plan, result


class TestFaultFree:
    def test_transcript_is_offline_exact(self, fault_free):
        plan, result = fault_free
        online = sorted(
            (e.round, e.sender, e.message, e.destinations)
            for e in result.transcript
        )
        assert online == _offline_multiset(plan)

    def test_mode_and_shape(self, fault_free):
        _, result = fault_free
        assert result.mode == "fault-free"
        assert result.complete and result.coverage == 1.0
        assert result.restarts == 0 and result.dead == ()
        assert result.incidents == ()

    def test_summary_has_supervision_fields(self, fault_free):
        _, result = fault_free
        summary = result.deterministic_summary()
        assert summary["mode"] == "fault-free"
        assert summary["restarts"] == 0
        assert "wall_seconds" not in summary


class TestSigkillReplan:
    def test_death_detected_on_both_channels(self, replanned):
        _, result = replanned
        kinds_about_victim = [
            i.kind for i in result.incidents if i.vertex == 2
        ]
        assert "crash-detected" in kinds_about_victim
        assert "suspicion" in kinds_about_victim
        sentinel = next(
            i for i in result.incidents if i.kind == "crash-detected"
        )
        assert sentinel.detected_by == "sentinel"
        assert "-9" in sentinel.details  # SIGKILL exit code

    def test_survivors_complete_degraded_gossip(self, replanned):
        _, result = replanned
        assert result.mode == "replan"
        assert result.dead == (2,)
        assert result.coverage == 1.0
        assert not result.complete  # full gossip did NOT re-complete

    def test_journal_orders_detection_before_resolution(self, replanned):
        _, result = replanned
        seqs = [i.seq for i in result.incidents]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        crash = next(i for i in result.incidents if i.kind == "crash-detected")
        abort = next(i for i in result.incidents if i.kind == "abort")
        replan = next(
            i for i in result.incidents if i.kind == "failover-replan"
        )
        assert crash.seq < abort.seq < replan.seq


class TestSigkillRestart:
    def test_victim_rejoins_and_full_gossip_recompletes(self, rejoined):
        _, result = rejoined
        assert result.mode == "rejoin"
        assert result.complete and result.coverage == 1.0
        assert result.restarts == 1
        assert result.dead == ()

    def test_rejoin_incident_chain(self, rejoined):
        _, result = rejoined
        kinds = [i.kind for i in result.incidents]
        for kind in ("crash-detected", "restart", "resync", "recovered"):
            assert kind in kinds, f"missing {kind} in {kinds}"
        restart = next(i for i in result.incidents if i.kind == "restart")
        assert restart.attempt == 1 and restart.vertex == 4

    def test_rejoin_crash_ladder_climbs_backoff(self):
        """A restart that dies on boot is retried at the next rung."""
        result = run_gossip_processes(
            gossip(FAMILY),
            chaos=NetChaos(seed=11, sigkill=((1, 1),), rejoin_crashes=1),
            config=RuntimeConfig(seed=11, **CONFIG),
            policy=RestartPolicy(mode="restart", max_restarts=3),
            time_scale=SCALE,
        )
        assert result.mode == "rejoin" and result.complete
        assert result.restarts == 2
        kinds = [i.kind for i in result.incidents]
        assert "rejoin-failed" in kinds

    def test_exhausted_restarts_fail_stop_to_replan(self):
        """Every restart dies: declare fail-stop, finish among survivors."""
        result = run_gossip_processes(
            gossip(FAMILY),
            chaos=NetChaos(seed=13, sigkill=((3, 1),), rejoin_crashes=5),
            config=RuntimeConfig(seed=13, **CONFIG),
            policy=RestartPolicy(mode="restart", max_restarts=2),
            time_scale=SCALE,
        )
        assert result.mode == "replan"
        assert result.dead == (3,) and result.coverage == 1.0
        kinds = [i.kind for i in result.incidents]
        assert "fail-stop-declared" in kinds
        assert "failover-replan" in kinds
        assert kinds.count("restart") == 2


class TestDeadline:
    def test_impossible_deadline_degrades_to_typed_partial(self):
        config = RuntimeConfig(seed=7, run_timeout=0.05)
        with pytest.raises(RuntimeDeadlineError) as err:
            run_gossip_processes(
                gossip("path:4"), config=config, time_scale=SCALE
            )
        partial = err.value.partial
        assert partial is not None and partial.mode == "partial"
        assert not partial.complete
        assert any(i.kind == "deadline" for i in partial.incidents)


class TestDeterminism:
    def test_same_seed_same_summary_under_sigkill(self):
        def once():
            return run_gossip_processes(
                gossip(FAMILY),
                chaos=NetChaos(seed=17, sigkill=((5, 2),)),
                config=RuntimeConfig(seed=17, **CONFIG),
                time_scale=SCALE,
            ).deterministic_summary()

        assert once() == once()


class TestServiceExecution:
    def test_execute_runs_the_fleet_and_counts_it(self):
        from repro.service import GossipService

        with GossipService() as service:
            outcome = service.execute(
                "path:4", runtime="processes",
                config=RuntimeConfig(seed=19, **CONFIG), time_scale=SCALE,
            )
            assert outcome.runtime == "processes"
            assert not outcome.degraded
            assert outcome.result.complete
            stats = service.stats()
            assert stats.executions == 1
            assert stats.exec_failures == 0

    def test_execute_rejects_unknown_runtime(self):
        from repro.service import GossipService

        with GossipService() as service:
            with pytest.raises(ReproError, match="runtime"):
                service.execute("path:4", runtime="carrier-pigeon")


class TestIncidentJournalUnit:
    """The journal itself, without a fleet."""

    def test_record_assigns_sequential_seq(self):
        journal = IncidentJournal()
        a = journal.record("crash-detected", vertex=3)
        b = journal.record("abort")
        assert (a.seq, b.seq) == (0, 1)
        assert len(journal) == 2

    def test_filters(self):
        journal = IncidentJournal()
        journal.record("crash-detected", vertex=3, detected_by="sentinel")
        journal.record("suspicion", vertex=3, detected_by="peer:1")
        journal.record("abort")
        assert [i.kind for i in journal.about(3)] == [
            "crash-detected", "suspicion",
        ]
        assert journal.first("abort").vertex == -1
        assert journal.of_kind("suspicion")[0].detected_by == "peer:1"
        assert journal.first("recovered") is None

    def test_jsonl_round_trips(self):
        journal = IncidentJournal()
        journal.record("restart", vertex=2, attempt=1,
                       wall_seconds=0.125, details="backoff 0.05s")
        journal.record("resync", vertex=2, details="source=1")
        lines = journal.to_jsonl().splitlines()
        docs = [json.loads(line) for line in lines]
        assert [d["kind"] for d in docs] == ["restart", "resync"]
        assert docs[0]["attempt"] == 1
        assert docs[0]["wall_seconds"] == 0.125
