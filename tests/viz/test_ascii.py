"""Unit tests for the ASCII renderers."""

from repro.core.concurrent_updown import concurrent_updown
from repro.networks.paper_networks import fig5_tree
from repro.tree.labeling import LabeledTree
from repro.viz.ascii import render_gantt, render_schedule, render_tree


class TestRenderTree:
    def test_plain(self):
        text = render_tree(fig5_tree())
        lines = text.splitlines()
        assert lines[0] == "0"
        assert len(lines) == 16
        assert any("└── " in line for line in lines)

    def test_with_labels(self):
        labeled = LabeledTree(fig5_tree())
        text = render_tree(labeled.tree, labeled)
        assert "[i=0 j=15 k=0]" in text
        assert "[i=4 j=10 k=1]" in text

    def test_single_vertex(self):
        from repro.tree.tree import Tree

        assert render_tree(Tree([-1], root=0)) == "0"


class TestRenderSchedule:
    def test_contains_rounds(self):
        schedule = concurrent_updown(LabeledTree(fig5_tree()))
        text = render_schedule(schedule)
        assert "19 rounds" in text
        assert "t=  0:" in text

    def test_truncation(self):
        schedule = concurrent_updown(LabeledTree(fig5_tree()))
        text = render_schedule(schedule, max_rounds=3)
        assert "more rounds" in text

    def test_idle_round_marked(self):
        from repro.core.schedule import Round, Schedule, Transmission

        s = Schedule(
            [Round(), Round([Transmission(sender=0, message=0, destinations=frozenset({1}))])]
        )
        assert "(idle)" in render_schedule(s)


class TestRenderGantt:
    def test_shape(self):
        schedule = concurrent_updown(LabeledTree(fig5_tree()))
        text = render_gantt(schedule, 16)
        lines = text.splitlines()
        assert len(lines) == 17  # header + one row per processor
        assert lines[1].startswith("P0")
        assert "#" in text and "." in text

    def test_width_truncation(self):
        schedule = concurrent_updown(LabeledTree(fig5_tree()))
        text = render_gantt(schedule, 16, width=5)
        assert "…" in text
