"""Large-scale integration: the pipeline at n in the hundreds.

Uses the fast tree-construction backend; full validation through the
simulator (bitset hold sets keep this fast even at n = 512).
"""

import pytest

from repro.core.concurrent_updown import concurrent_updown
from repro.core.gossip import gossip
from repro.networks.builders import graph_to_tree, tree_to_graph
from repro.networks.fast_paths import fast_radius, minimum_depth_spanning_tree_fast
from repro.networks.random_graphs import random_connected_gnp, random_tree
from repro.simulator.engine import execute_schedule
from repro.simulator.state import labeled_holdings
from repro.tree.labeling import LabeledTree


@pytest.mark.parametrize("n", [256, 512])
def test_theorem1_at_scale_random_graph(n):
    g = random_connected_gnp(n, 3.0 / n, seed=0)
    tree = minimum_depth_spanning_tree_fast(g)
    plan = gossip(g, tree=tree)
    assert plan.total_time == n + tree.height
    assert tree.height == fast_radius(g)
    result = plan.execute(on_tree_only=True)
    assert result.complete
    assert result.duplicate_deliveries == 0


def test_theorem1_at_scale_deep_tree():
    """A 512-vertex random tree: deep, so many events; still exact."""
    n = 512
    tree = graph_to_tree(random_tree(n, seed=1), root=0)
    labeled = LabeledTree(tree)
    schedule = concurrent_updown(labeled)
    assert schedule.total_time == n + tree.height
    result = execute_schedule(
        tree_to_graph(tree),
        schedule,
        initial_holds=labeled_holdings(labeled.labels()),
        require_complete=True,
    )
    assert result.complete


def test_extreme_star_and_path():
    from repro.networks import topologies

    star = gossip(topologies.star_graph(400))
    assert star.total_time == 401
    assert star.execute().complete

    path = gossip(topologies.path_graph(301))
    assert path.total_time == 301 + 150
    assert path.execute().complete


def test_updown_and_simple_at_scale():
    from repro.core.simple import simple_gossip
    from repro.core.updown import updown_gossip, updown_total_time_bound

    tree = graph_to_tree(random_tree(256, seed=2), root=0)
    labeled = LabeledTree(tree)
    network = tree_to_graph(tree)
    holds = labeled_holdings(labeled.labels())

    simple = simple_gossip(labeled)
    assert simple.total_time == 2 * 256 + tree.height - 3
    execute_schedule(network, simple, initial_holds=holds, require_complete=True)

    updown = updown_gossip(labeled)
    assert updown.total_time <= updown_total_time_bound(256, tree.height)
    execute_schedule(network, updown, initial_holds=holds, require_complete=True)
