"""Guard EXPERIMENTS.md against rot: spot-check its quoted numbers live.

Parses the key reproduction tables out of the document and recomputes
them; a library change that shifts a reported number fails here until
the document is updated.
"""

import re
from pathlib import Path

import pytest

from repro.analysis.sweep import family_instance
from repro.core.gossip import gossip
from repro.networks.properties import radius

DOC = Path(__file__).resolve().parents[2] / "EXPERIMENTS.md"


def doc_text() -> str:
    return DOC.read_text()


def table_rows(section_header: str):
    """Markdown table rows of the section starting at ``section_header``."""
    text = doc_text()
    start = text.index(section_header)
    end = text.find("\n## ", start + 1)
    block = text[start : end if end != -1 else len(text)]
    rows = []
    for line in block.splitlines():
        if line.startswith("|") and not set(line) <= {"|", "-", " "}:
            cells = [c.strip().strip("*") for c in line.strip("|").split("|")]
            rows.append(cells)
    return rows[1:]  # drop the header row


class TestDocExists:
    def test_document_present_and_complete(self):
        text = doc_text()
        for section in (
            "## FIG1", "## FIG2", "## FIG3", "## TAB1", "## LEM1", "## THM1",
            "## UPDOWN", "## LB-PATH", "## BCAST", "## RATIO", "## WEIGHTED",
            "## ONLINE", "## CMP", "## OPT-PATH", "## REPEATED", "## DYNAMIC",
        ):
            assert section in text, f"missing section {section}"


class TestTHM1Numbers:
    def test_quoted_rows_recompute(self):
        rows = table_rows("## THM1")
        name_map = {"G(n,p)": "gnp"}
        for family, n, r, measured, bound in rows:
            fam = name_map.get(family, family)
            g = family_instance(fam, int(n))
            assert g.n == int(n), (family, g.n)
            assert radius(g) == int(r), family
            plan = gossip(g)
            assert plan.total_time == int(measured) == int(bound), family


class TestLEM1Numbers:
    def test_quoted_rows_recompute(self):
        rows = table_rows("## LEM1")
        for family, n, r, measured, lemma1, _redundancy in rows:
            g = family_instance(family, int(n))
            assert g.n == int(n), (family, g.n)
            plan = gossip(g, algorithm="simple")
            assert plan.total_time == int(measured) == int(lemma1), family


class TestOPTPATHNumbers:
    def test_quoted_rows_recompute(self):
        from repro.core.optimal_path import optimal_path_gossip

        rows = table_rows("## OPT-PATH")
        for n, bound, nonuniform, concurrent in rows:
            n = int(n)
            _, schedule = optimal_path_gossip(n)
            assert schedule.total_time == int(nonuniform) == int(bound)
            from repro.networks.topologies import path_graph

            assert gossip(path_graph(n)).total_time == int(concurrent)
