"""Integration tests: every experiment id of DESIGN.md, end to end.

One test (or class) per row of the per-experiment index — FIG1..FIG5,
TAB1..TAB4, LEM1, THM1, UPDOWN, LB-PATH, BCAST, RATIO, WEIGHTED, ONLINE.
The benchmark harness regenerates the same numbers with timing; these
tests pin the *claims*.
"""

import pytest

from repro.analysis.bounds import path_lower_bound
from repro.analysis.sweep import small_suite
from repro.analysis.tables import EXPECTED_TABLES, paper_tables
from repro.core.broadcast import broadcast, broadcast_time
from repro.core.gossip import gossip
from repro.core.online import online_matches_offline
from repro.core.optimal import is_gossipable_within, minimum_gossip_time
from repro.core.ring import hamiltonian_circuit, ring_gossip
from repro.core.updown import updown_total_time_bound
from repro.core.weighted import weighted_gossip
from repro.networks import topologies
from repro.networks.bfs import bfs_levels
from repro.networks.paper_networks import (
    fig1_ring,
    fig4_network,
    fig5_tree,
    n3_multicast_schedule,
    n3_network,
    petersen,
    petersen_gossip_schedule,
)
from repro.networks.properties import radius
from repro.networks.spanning_tree import minimum_depth_spanning_tree
from repro.simulator.validator import assert_gossip_schedule
from repro.tree.labeling import LabeledTree


class TestFIG1:
    @pytest.mark.parametrize("n", [3, 6, 10, 16])
    def test_ring_gossip_optimal(self, n):
        schedule = ring_gossip(list(range(n)))
        assert schedule.total_time == n - 1
        assert_gossip_schedule(fig1_ring(n), schedule, max_total_time=n - 1)


class TestFIG2:
    def test_petersen_claims(self):
        g = petersen()
        assert hamiltonian_circuit(g) is None
        schedule = petersen_gossip_schedule()
        assert schedule.total_time == g.n - 1 == 9
        assert schedule.max_fan_out() == 1  # telephone-valid
        assert_gossip_schedule(g, schedule, max_total_time=9)


class TestFIG3:
    def test_n3_multicast_beats_telephone(self):
        g = n3_network()
        assert hamiltonian_circuit(g) is None
        assert_gossip_schedule(g, n3_multicast_schedule(), max_total_time=g.n - 1)
        # exact search certifies the separation
        assert is_gossipable_within(g, g.n - 1, telephone=False)
        assert not is_gossipable_within(g, g.n - 1, telephone=True)


class TestFIG4FIG5:
    def test_tree_construction(self):
        tree = minimum_depth_spanning_tree(fig4_network())
        assert tree == fig5_tree()
        assert tree.height == radius(fig4_network()) == 3

    def test_dfs_labels(self):
        labeled = LabeledTree(fig5_tree())
        assert list(labeled.labels()) == list(range(16))


class TestTAB1toTAB4:
    def test_all_rows(self):
        tables = paper_tables()
        for vertex, rows in EXPECTED_TABLES.items():
            for caption, expected in rows.items():
                assert tables[vertex].row(caption) == expected


class TestLEM1:
    def test_simple_exact_across_suite(self):
        for g in small_suite():
            plan = gossip(g, algorithm="simple")
            r = plan.tree.height
            assert plan.total_time == 2 * g.n + r - 3
            plan.execute(on_tree_only=True)


class TestTHM1:
    def test_concurrent_updown_exact_across_suite(self):
        for g in small_suite():
            plan = gossip(g)
            assert plan.total_time == g.n + radius(g), g.name
            result = plan.execute(on_tree_only=True)
            assert result.complete
            assert result.duplicate_deliveries == 0


class TestUPDOWN:
    def test_within_two_phase_budget_across_suite(self):
        for g in small_suite():
            plan = gossip(g, algorithm="updown")
            assert plan.total_time <= updown_total_time_bound(
                g.n, plan.tree.height
            ), g.name
            plan.execute(on_tree_only=True)


class TestLBPath:
    @pytest.mark.parametrize("m", [1, 2])
    def test_exact_optimum_matches_bound_small(self, m):
        """For P_3 and P_5 the exact search meets n + r - 1 exactly."""
        n = 2 * m + 1
        g = topologies.path_graph(n)
        assert minimum_gossip_time(g) == path_lower_bound(n) == n + m - 1

    @pytest.mark.parametrize("m", [1, 2, 4, 8, 16])
    def test_ours_is_bound_plus_one(self, m):
        """The Discussion: ConcurrentUpDown yields n + r = bound + 1."""
        n = 2 * m + 1
        plan = gossip(topologies.path_graph(n))
        assert plan.total_time == path_lower_bound(n) + 1


class TestBCAST:
    def test_broadcast_time_is_eccentricity(self):
        for g in small_suite()[:8]:
            for source in (0, g.n // 2):
                schedule = broadcast(g, source)
                ecc = int(bfs_levels(g, source).max())
                assert schedule.total_time == broadcast_time(g, source) == ecc


class TestRATIO:
    def test_ratio_bounded_across_suite(self):
        for g in small_suite():
            plan = gossip(g)
            assert plan.total_time <= 1.5 * g.n  # n + r <= 1.5 n


class TestWEIGHTED:
    def test_weighted_bound_exact(self):
        g = topologies.grid_2d(3, 4)
        weights = [(v % 4) + 1 for v in range(g.n)]
        plan = weighted_gossip(g, weights)
        assert plan.total_time == plan.total_messages + plan.expanded.height
        assert plan.execute().complete


class TestONLINE:
    def test_online_matches_offline_across_suite(self):
        for g in small_suite()[:10]:
            labeled = LabeledTree(minimum_depth_spanning_tree(g))
            assert online_matches_offline(labeled), g.name
