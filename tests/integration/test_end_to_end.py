"""End-to-end workflows a downstream user would run."""

import pytest

from repro import (
    LabeledTree,
    Tree,
    broadcast,
    concurrent_updown,
    execute_schedule,
    gossip,
    minimum_depth_spanning_tree,
    ring_gossip_on_graph,
    topologies,
)
from repro.networks.builders import from_networkx, tree_to_graph
from repro.networks.io import schedule_from_json, schedule_to_json
from repro.simulator.state import labeled_holdings


class TestPublicApiSurface:
    """Everything advertised in the README quickstart works as written."""

    def test_readme_quickstart(self):
        plan = gossip(topologies.grid_2d(4, 4))
        assert plan.total_time == 16 + 4  # n + r, radius of the 4x4 mesh is 4
        assert plan.execute().complete

    def test_star_import_surface(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version(self):
        import repro

        assert repro.__version__


class TestNetworkxInterop:
    def test_karate_club_gossip(self):
        """A real-world graph from networkx end to end."""
        import networkx as nx

        g, _ = from_networkx(nx.karate_club_graph(), name="karate")
        plan = gossip(g)
        from repro.networks.properties import radius

        assert plan.total_time == g.n + radius(g)
        assert plan.execute().complete

    def test_random_nx_graph(self):
        import networkx as nx

        nxg = nx.connected_watts_strogatz_graph(30, 4, 0.3, seed=42)
        g, _ = from_networkx(nxg)
        plan = gossip(g)
        assert plan.execute().complete


class TestScheduleArchiving:
    def test_archive_and_revalidate(self, tmp_path):
        """Serialise a schedule to disk, reload, re-validate."""
        tree = minimum_depth_spanning_tree(topologies.hypercube(3))
        labeled = LabeledTree(tree)
        schedule = concurrent_updown(labeled)
        path = tmp_path / "schedule.json"
        path.write_text(schedule_to_json(schedule))
        reloaded = schedule_from_json(path.read_text())
        result = execute_schedule(
            tree_to_graph(tree),
            reloaded,
            initial_holds=labeled_holdings(labeled.labels()),
            require_complete=True,
        )
        assert result.complete


class TestMixedWorkflow:
    def test_broadcast_then_gossip(self):
        """Broadcast a coordinator message, then full gossip."""
        g = topologies.torus_2d(4, 4)
        b = broadcast(g, 0)
        assert b.total_time <= 4
        plan = gossip(g)
        assert plan.execute().complete

    def test_hamiltonian_fallback_strategy(self):
        """Try the ring strategy, fall back to the tree algorithm."""
        from repro.exceptions import GraphError

        for g in (topologies.cycle_graph(8), topologies.star_graph(8)):
            try:
                schedule = ring_gossip_on_graph(g)
                assert schedule.total_time == g.n - 1
            except GraphError:
                plan = gossip(g)
                assert plan.execute().complete

    def test_manual_tree_pipeline(self):
        """Build every stage by hand, as the docs describe."""
        g = topologies.grid_2d(3, 5)
        tree = minimum_depth_spanning_tree(g)
        labeled = LabeledTree(tree)
        schedule = concurrent_updown(labeled)
        result = execute_schedule(
            g,
            schedule,
            initial_holds=labeled_holdings(labeled.labels()),
            require_complete=True,
        )
        assert result.complete
        assert schedule.total_time == g.n + tree.height


class TestStress:
    @pytest.mark.parametrize("n", [200, 400])
    def test_large_random_tree(self, n):
        from repro.networks.builders import graph_to_tree
        from repro.networks.random_graphs import random_tree

        tree = graph_to_tree(random_tree(n, seed=0), root=0)
        labeled = LabeledTree(tree)
        schedule = concurrent_updown(labeled)
        assert schedule.total_time == n + tree.height
        result = execute_schedule(
            tree_to_graph(tree),
            schedule,
            initial_holds=labeled_holdings(labeled.labels()),
            require_complete=True,
        )
        assert result.duplicate_deliveries == 0

    def test_wide_star(self):
        labeled = LabeledTree(Tree([-1] + [0] * 299, root=0))
        schedule = concurrent_updown(labeled)
        assert schedule.total_time == 300 + 1
        assert schedule.max_fan_out() == 299
