"""Broad Theorem 1 sweep: n + r exactly, across families and sizes."""

import pytest

from repro.analysis.sweep import FAMILIES, family_instance
from repro.core.gossip import gossip
from repro.networks.properties import radius


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("size", [8, 24, 48])
def test_theorem1(family, size):
    g = family_instance(family, size)
    plan = gossip(g)
    assert plan.total_time == g.n + radius(g)
    result = plan.execute(on_tree_only=True)
    assert result.complete
    assert result.duplicate_deliveries == 0


@pytest.mark.parametrize("family", ["path", "star", "gnp", "random-tree"])
def test_theorem1_larger(family):
    g = family_instance(family, 128)
    plan = gossip(g)
    assert plan.total_time == g.n + radius(g)
    assert plan.execute(on_tree_only=True).complete


def test_theorem1_n_256_random_tree():
    g = family_instance("random-tree", 256)
    plan = gossip(g)
    assert plan.total_time == g.n + radius(g)
    assert plan.execute(on_tree_only=True).complete
