"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import strategies as st

from repro.networks import topologies
from repro.networks.builders import graph_to_tree
from repro.networks.graph import Graph
from repro.networks.paper_networks import fig4_network, fig5_tree
from repro.networks.random_graphs import random_connected_gnp, random_tree
from repro.tree.labeling import LabeledTree
from repro.tree.tree import Tree


@pytest.fixture
def small_path() -> Graph:
    """The odd path P_7 (the paper's lower-bound family)."""
    return topologies.path_graph(7)


@pytest.fixture
def small_cycle() -> Graph:
    """C_9 — Hamiltonian, radius 4."""
    return topologies.cycle_graph(9)


@pytest.fixture
def small_grid() -> Graph:
    """The 3x4 mesh."""
    return topologies.grid_2d(3, 4)


@pytest.fixture
def fig5() -> Tree:
    """The reconstructed Fig. 5 tree."""
    return fig5_tree()


@pytest.fixture
def fig5_labeled(fig5: Tree) -> LabeledTree:
    """Fig. 5 with its DFS labelling."""
    return LabeledTree(fig5)


@pytest.fixture
def fig4() -> Graph:
    """The reconstructed Fig. 4 network."""
    return fig4_network()


@pytest.fixture
def bound_suite() -> list:
    """The compact cross-topology collection used by bound tests."""
    from repro.analysis.sweep import small_suite

    return small_suite()


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------
@st.composite
def connected_graphs(draw, max_n: int = 24):
    """A seeded random connected graph with 2..max_n vertices."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    p = draw(st.floats(min_value=0.0, max_value=0.3))
    return random_connected_gnp(n, p, seed)


@st.composite
def random_trees(draw, max_n: int = 30):
    """A uniformly random labelled tree with 1..max_n vertices."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    graph = random_tree(n, seed)
    root = draw(st.integers(min_value=0, max_value=n - 1))
    return graph_to_tree(graph, root=root)


@st.composite
def labeled_trees(draw, max_n: int = 30):
    """A DFS-labelled random tree."""
    return LabeledTree(draw(random_trees(max_n=max_n)))
