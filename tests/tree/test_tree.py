"""Unit tests for the rooted ordered Tree type."""

import pytest

from repro.exceptions import TreeError
from repro.tree.tree import Tree


@pytest.fixture
def sample():
    r"""The tree::

            0
           / \
          1   2
         / \   \
        3   4   5
                 \
                  6
    """
    return Tree([-1, 0, 0, 1, 1, 2, 5], root=0)


class TestConstruction:
    def test_basic(self, sample):
        assert sample.n == 7
        assert sample.root == 0
        assert sample.height == 3

    def test_single_vertex(self):
        t = Tree([-1], root=0)
        assert t.height == 0
        assert t.is_leaf(0)
        assert t.leaves() == [0]

    def test_empty_rejected(self):
        with pytest.raises(TreeError):
            Tree([], root=0)

    def test_root_out_of_range(self):
        with pytest.raises(TreeError):
            Tree([-1, 0], root=5)

    def test_root_must_have_minus_one(self):
        with pytest.raises(TreeError):
            Tree([0, 0], root=0)

    def test_self_parent_rejected(self):
        with pytest.raises(TreeError):
            Tree([-1, 1], root=0)

    def test_cycle_rejected(self):
        with pytest.raises(TreeError):
            Tree([-1, 2, 1], root=0)

    def test_out_of_range_parent_rejected(self):
        with pytest.raises(TreeError):
            Tree([-1, 9], root=0)

    def test_two_components_rejected(self):
        # 2 and 3 form their own cycle, unattached to root 0.
        with pytest.raises(TreeError):
            Tree([-1, 0, 3, 2], root=0)


class TestAccessors:
    def test_parent(self, sample):
        assert sample.parent(0) == -1
        assert sample.parent(4) == 1
        assert sample.parent(6) == 5

    def test_children_sorted_default(self, sample):
        assert sample.children(0) == (1, 2)
        assert sample.children(1) == (3, 4)
        assert sample.children(6) == ()

    def test_levels(self, sample):
        assert sample.level(0) == 0
        assert sample.level(4) == 2
        assert sample.level(6) == 3
        assert sample.levels() == (0, 1, 1, 2, 2, 2, 3)

    def test_is_leaf(self, sample):
        assert sample.is_leaf(3)
        assert not sample.is_leaf(2)

    def test_leaves(self, sample):
        assert sample.leaves() == [3, 4, 6]

    def test_is_root(self, sample):
        assert sample.is_root(0)
        assert not sample.is_root(1)

    def test_edges(self, sample):
        assert (0, 1) in sample.edges()
        assert len(sample.edges()) == 6

    def test_out_of_range(self, sample):
        with pytest.raises(TreeError):
            sample.parent(7)

    def test_len_repr(self, sample):
        assert len(sample) == 7
        assert "height=3" in repr(sample)


class TestTraversals:
    def test_dfs_preorder(self, sample):
        assert list(sample.dfs_preorder()) == [0, 1, 3, 4, 2, 5, 6]

    def test_bfs_order(self, sample):
        assert list(sample.bfs_order()) == [0, 1, 2, 3, 4, 5, 6]

    def test_subtree(self, sample):
        assert sample.subtree(1) == [1, 3, 4]
        assert sample.subtree(2) == [2, 5, 6]
        assert sample.subtree(6) == [6]

    def test_subtree_size(self, sample):
        assert sample.subtree_size(0) == 7
        assert sample.subtree_size(5) == 2

    def test_path_to_root(self, sample):
        assert sample.path_to_root(6) == [6, 5, 2, 0]
        assert sample.path_to_root(0) == [0]

    def test_ancestor_at_level(self, sample):
        assert sample.ancestor_at_level(6, 0) == 0
        assert sample.ancestor_at_level(6, 2) == 5
        assert sample.ancestor_at_level(6, 3) == 6

    def test_ancestor_at_level_invalid(self, sample):
        with pytest.raises(TreeError):
            sample.ancestor_at_level(3, 3)


class TestChildOrder:
    def test_custom_order(self, sample):
        reordered = sample.with_child_order(lambda v, kids: sorted(kids, reverse=True))
        assert reordered.children(0) == (2, 1)
        assert list(reordered.dfs_preorder()) == [0, 2, 5, 6, 1, 4, 3]

    def test_order_must_be_permutation(self):
        with pytest.raises(TreeError):
            Tree([-1, 0, 0], root=0, child_order=lambda v, kids: kids[:1])

    def test_order_changes_identity(self, sample):
        reordered = sample.with_child_order(lambda v, kids: sorted(kids, reverse=True))
        assert reordered != sample

    def test_height_independent_of_order(self, sample):
        reordered = sample.with_child_order(lambda v, kids: sorted(kids, reverse=True))
        assert reordered.height == sample.height


class TestEquality:
    def test_equal(self):
        assert Tree([-1, 0, 1], root=0) == Tree([-1, 0, 1], root=0)

    def test_hashable(self):
        assert len({Tree([-1, 0], root=0), Tree([-1, 0], root=0)}) == 1

    def test_different_root(self):
        assert Tree([-1, 0], root=0) != Tree([1, -1], root=1)
