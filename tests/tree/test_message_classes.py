"""Unit tests for the s/l/r/o and lip/rip message classification."""

import pytest

from repro.networks.paper_networks import fig5_tree
from repro.tree.labeling import LabeledTree
from repro.tree.message_classes import class_name_of, classify


@pytest.fixture
def fig5_labeled():
    return LabeledTree(fig5_tree())


class TestFig5Classification:
    """Classify the published example's vertices exactly as Section 3.2."""

    def test_vertex_4(self, fig5_labeled):
        c = classify(fig5_labeled.block(4), 16)
        assert c.s_message == 4
        assert c.l_message == 5
        assert list(c.r_messages) == [6, 7, 8, 9, 10]
        assert list(c.o_low) == [0, 1, 2, 3]
        assert list(c.o_high) == [11, 12, 13, 14, 15]
        # vertex 4 is the root's second child: no lip, rip = 4..10
        assert c.lip_message is None
        assert list(c.rip_messages) == [4, 5, 6, 7, 8, 9, 10]

    def test_vertex_1_is_first_child(self, fig5_labeled):
        c = classify(fig5_labeled.block(1), 16)
        assert c.lip_message == 1
        assert list(c.rip_messages) == [2, 3]

    def test_vertex_8(self, fig5_labeled):
        c = classify(fig5_labeled.block(8), 16)
        assert c.s_message == 8
        assert c.l_message == 9
        assert list(c.r_messages) == [10]
        assert c.lip_message is None          # 8 != 4 + 1
        assert list(c.rip_messages) == [8, 9, 10]

    def test_vertex_5_lip(self, fig5_labeled):
        c = classify(fig5_labeled.block(5), 16)
        assert c.lip_message == 5             # 5 == 4 + 1: first child of 4
        assert list(c.rip_messages) == [6, 7]

    def test_root(self, fig5_labeled):
        """The paper: at the root all b-messages are rip, no lip."""
        c = classify(fig5_labeled.block(0), 16)
        assert c.s_message == 0
        assert c.l_message == 1
        assert list(c.r_messages) == list(range(2, 16))
        assert c.lip_message is None
        assert list(c.rip_messages) == list(range(16))
        assert c.count_o() == 0

    def test_leaf(self, fig5_labeled):
        c = classify(fig5_labeled.block(10), 16)
        assert c.l_message is None
        assert list(c.r_messages) == []
        assert c.count_o() == 15


class TestPartitionProperties:
    def test_classes_partition_all_messages(self, fig5_labeled):
        n = 16
        for v in range(n):
            c = classify(fig5_labeled.block(v), n)
            body = [c.s_message]
            if c.l_message is not None:
                body.append(c.l_message)
            body.extend(c.r_messages)
            everything = sorted(list(c.o_low) + body + list(c.o_high))
            assert everything == list(range(n))

    def test_lip_rip_partition_body_for_first_child(self, fig5_labeled):
        c = classify(fig5_labeled.block(1), 16)
        assert sorted([c.lip_message, *c.rip_messages]) == list(c.b_messages)

    def test_rip_equals_body_for_non_first_child(self, fig5_labeled):
        c = classify(fig5_labeled.block(8), 16)
        assert list(c.rip_messages) == list(c.b_messages)

    def test_is_b_is_o_consistent(self, fig5_labeled):
        c = classify(fig5_labeled.block(4), 16)
        for m in range(16):
            assert c.is_b_message(m) != c.is_o_message(m)


class TestClassName:
    def test_names(self, fig5_labeled):
        c = classify(fig5_labeled.block(4), 16)
        assert class_name_of(c, 4) == "s"
        assert class_name_of(c, 5) == "l"
        assert class_name_of(c, 7) == "r"
        assert class_name_of(c, 0) == "o"
        assert class_name_of(c, 15) == "o"

    def test_out_of_range(self, fig5_labeled):
        c = classify(fig5_labeled.block(4), 16)
        with pytest.raises(ValueError):
            class_name_of(c, 16)
