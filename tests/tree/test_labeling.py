"""Unit tests for the DFS preorder labelling."""

import pytest

from repro.exceptions import LabelingError
from repro.networks.builders import graph_to_tree
from repro.networks.paper_networks import fig5_tree
from repro.networks.random_graphs import random_tree
from repro.tree.labeling import LabeledTree, label_tree
from repro.tree.tree import Tree


@pytest.fixture
def sample():
    return Tree([-1, 0, 0, 1, 1, 2, 5], root=0)


class TestLabels:
    def test_preorder_labels(self, sample):
        lt = LabeledTree(sample)
        # preorder: 0 1 3 4 2 5 6
        assert [lt.label_of(v) for v in range(7)] == [0, 1, 4, 2, 3, 5, 6]

    def test_vertex_of_inverts_label_of(self, sample):
        lt = LabeledTree(sample)
        for v in range(7):
            assert lt.vertex_of(lt.label_of(v)) == v

    def test_root_gets_zero(self, sample):
        assert LabeledTree(sample).label_of(0) == 0

    def test_label_tree_helper(self, sample):
        assert label_tree(sample).labels() == LabeledTree(sample).labels()


class TestBlocks:
    def test_root_block_spans_everything(self, sample):
        b = LabeledTree(sample).block(0)
        assert (b.i, b.j, b.k) == (0, 6, 0)

    def test_subtree_intervals(self, sample):
        lt = LabeledTree(sample)
        b1 = lt.block(1)  # subtree {1, 3, 4} -> labels {1, 2, 3}
        assert (b1.i, b1.j) == (1, 3)
        b2 = lt.block(2)  # subtree {2, 5, 6} -> labels {4, 5, 6}
        assert (b2.i, b2.j) == (4, 6)

    def test_leaf_block(self, sample):
        b = LabeledTree(sample).block(3)
        assert b.i == b.j
        assert b.is_leaf_block

    def test_subtree_size(self, sample):
        lt = LabeledTree(sample)
        for v in range(7):
            assert lt.block(v).subtree_size == sample.subtree_size(v)

    def test_first_child_detection(self, sample):
        lt = LabeledTree(sample)
        assert lt.block(1).is_first_child       # first child of root
        assert not lt.block(2).is_first_child   # second child of root
        assert lt.block(3).is_first_child       # first child of 1
        assert not lt.block(0).is_first_child   # the root

    def test_w_counts_lip_messages(self, sample):
        lt = LabeledTree(sample)
        assert lt.block(1).w == 1
        assert lt.block(2).w == 0

    def test_block_of_label(self, sample):
        lt = LabeledTree(sample)
        for label in range(7):
            assert lt.block_of_label(label).i == label

    def test_label_table(self, sample):
        table = LabeledTree(sample).label_table()
        assert table[0] == (0, 6, 0)
        assert table[2] == (4, 6, 1)


class TestOwnerChild:
    def test_owner_child(self, sample):
        lt = LabeledTree(sample)
        assert lt.owner_child(0, 2) == 1   # label 2 = vertex 3, below child 1
        assert lt.owner_child(0, 5) == 2
        assert lt.owner_child(2, 6) == 5

    def test_owner_child_rejects_own_label(self, sample):
        lt = LabeledTree(sample)
        with pytest.raises(LabelingError):
            lt.owner_child(0, 0)

    def test_owner_child_rejects_outside(self, sample):
        lt = LabeledTree(sample)
        with pytest.raises(LabelingError):
            lt.owner_child(1, 5)

    def test_children_by_label(self, sample):
        lt = LabeledTree(sample)
        assert lt.children_by_label(0) == (1, 4)


class TestInvariantsRandom:
    @pytest.mark.parametrize("seed", range(10))
    def test_contiguous_intervals(self, seed):
        tree = graph_to_tree(random_tree(25, seed), root=0)
        lt = LabeledTree(tree)
        for v in range(tree.n):
            b = lt.block(v)
            subtree_labels = sorted(lt.label_of(u) for u in tree.subtree(v))
            assert subtree_labels == list(range(b.i, b.j + 1))

    @pytest.mark.parametrize("seed", range(10))
    def test_label_at_least_level(self, seed):
        """DFS preorder guarantees i >= k — used in Lemma 2's base case."""
        tree = graph_to_tree(random_tree(25, seed), root=0)
        lt = LabeledTree(tree)
        for v in range(tree.n):
            b = lt.block(v)
            assert b.i >= b.k

    @pytest.mark.parametrize("seed", range(5))
    def test_exactly_one_first_child_per_internal_vertex(self, seed):
        tree = graph_to_tree(random_tree(20, seed), root=0)
        lt = LabeledTree(tree)
        for v in range(tree.n):
            kids = tree.children(v)
            if kids:
                firsts = [c for c in kids if lt.block(c).is_first_child]
                assert len(firsts) == 1
                assert lt.block(firsts[0]).i == lt.block(v).i + 1

    def test_child_order_changes_labels_not_structure(self):
        tree = fig5_tree()
        reordered = tree.with_child_order(lambda v, kids: sorted(kids, reverse=True))
        lt = LabeledTree(reordered)
        assert lt.label_of(0) == 0
        assert lt.label_of(11) == 1  # 11 now visited first
        # interval sizes still match subtree sizes
        for v in range(tree.n):
            assert lt.block(v).subtree_size == reordered.subtree_size(v)
