"""Tree substrate: rooted ordered trees, DFS labelling, message classes.

The communication tree of Section 3.2: after the minimum-depth spanning
tree reduction, every algorithm works on a :class:`~repro.tree.tree.Tree`
whose messages are labelled in DFS preorder
(:class:`~repro.tree.labeling.LabeledTree`) and classified per vertex
(:mod:`~repro.tree.message_classes`).
"""

from .labeling import LabeledTree, VertexLabel, label_tree
from .message_classes import MessageClasses, class_name_of, classify
from .tree import ChildOrder, Tree

__all__ = [
    "Tree",
    "ChildOrder",
    "LabeledTree",
    "VertexLabel",
    "label_tree",
    "MessageClasses",
    "classify",
    "class_name_of",
]
