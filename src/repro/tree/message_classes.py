"""Message classification at a vertex (paper Section 3.2).

Relative to a vertex ``v`` with block ``(i, j, k)`` on an ``n``-message
tree, every message label falls into exactly one class:

* **o-messages** ("other"): labels ``0..i-1`` and ``j+1..n-1`` — the
  messages originating *outside* the subtree of ``v``.  They reach ``v``
  from its parent (Propagate-Down).
* **b-messages** ("body"): labels ``i..j`` — originating inside the
  subtree.  They are further split with respect to ``v`` itself:

  - the **s-message** ``i`` (starting — v's own message),
  - the **l-message** ``i+1`` (lookahead), present iff ``v`` is not a leaf,
  - the **r-messages** ``i+2..j`` (remaining), received from children;

  and with respect to the parent ``v'`` (block start ``i'``):

  - the **lip-message** ``i`` iff ``i = i' + 1`` (v is the first child);
    sent to the parent at time 0 by step (U3),
  - the **rip-messages** ``max(i, i'+2)..j``; streamed to the parent by
    step (U4).

The root's b-messages are all rip-messages by the paper's convention and
it has no lip-message (its classification never drives any send).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..exceptions import MessageClassError
from ..types import Message
from .labeling import LabelArrays, VertexLabel

__all__ = [
    "MessageClasses",
    "MessageClassArrays",
    "classify",
    "classify_arrays",
    "class_name_of",
]


@dataclass(frozen=True)
class MessageClasses:
    """All message classes at one vertex, as explicit label ranges.

    Ranges are Python ``range`` objects (possibly empty), so membership
    tests and iteration are O(1) / lazy.
    """

    vertex: int
    n: int
    s_message: Message
    l_message: Optional[Message]
    r_messages: range
    o_low: range
    o_high: range
    lip_message: Optional[Message]
    rip_messages: range

    @property
    def b_messages(self) -> range:
        """The body interval ``i..j``."""
        return range(self.s_message, self.r_messages.stop if self.r_messages else
                     (self.l_message + 1 if self.l_message is not None else self.s_message + 1))

    def o_messages(self) -> Tuple[range, range]:
        """Both o-message ranges (below ``i`` and above ``j``)."""
        return (self.o_low, self.o_high)

    def is_o_message(self, m: Message) -> bool:
        """Whether ``m`` originates outside the vertex's subtree."""
        return m in self.o_low or m in self.o_high

    def is_b_message(self, m: Message) -> bool:
        """Whether ``m`` originates inside the vertex's subtree."""
        return m in self.b_messages

    def count_o(self) -> int:
        """Number of o-messages (``n - subtree_size``)."""
        return len(self.o_low) + len(self.o_high)


def classify(block: VertexLabel, n: int) -> MessageClasses:
    """Classify all ``n`` message labels relative to ``block``.

    ``block`` is the ``(i, j, k)`` record of the vertex; the parent's
    block start ``block.parent_i`` decides the lip/rip split (the root,
    with ``parent_i = -1``, gets ``lip_message = None`` and every
    b-message as a rip-message, matching the paper's remark).
    """
    i, j = block.i, block.j
    l_message: Optional[Message] = i + 1 if i + 1 <= j else None
    r_messages = range(i + 2, j + 1)
    if block.parent_i >= 0:
        lip: Optional[Message] = i if block.is_first_child else None
        rip = range(max(i, block.parent_i + 2), j + 1)
    else:
        lip = None
        rip = range(i, j + 1)
    return MessageClasses(
        vertex=block.vertex,
        n=n,
        s_message=i,
        l_message=l_message,
        r_messages=r_messages,
        o_low=range(0, i),
        o_high=range(j + 1, n),
        lip_message=lip,
        rip_messages=rip,
    )


@dataclass(frozen=True)
class MessageClassArrays:
    """All vertices' message classes at once, as flat label columns.

    The vectorised counterpart of :func:`classify`: every field is an
    ``(n,)`` int64 array indexed by vertex.  Absent singletons
    (l-message of a leaf, lip-message of a non-first child or the root)
    are ``-1``; ranges are half-open ``[lo, hi)`` column pairs, empty
    when ``lo >= hi``.  This is what the array-native Propagate-Up/Down
    constructions consume directly.
    """

    n: int
    s_message: np.ndarray
    l_message: np.ndarray
    r_lo: np.ndarray
    r_hi: np.ndarray
    o_low_hi: np.ndarray
    o_high_lo: np.ndarray
    lip_message: np.ndarray
    rip_lo: np.ndarray
    rip_hi: np.ndarray

    def count_o(self) -> np.ndarray:
        """Per-vertex o-message counts (``n - subtree_size``)."""
        return self.o_low_hi + (self.n - self.o_high_lo)


def classify_arrays(labels: LabelArrays, n: int) -> MessageClassArrays:
    """Classify every vertex's message labels in one vectorised pass.

    Column-for-column equivalent to calling :func:`classify` on each
    vertex block: ``r_messages == range(r_lo, r_hi)``, ``o_low ==
    range(0, o_low_hi)``, ``o_high == range(o_high_lo, n)`` and
    ``rip_messages == range(rip_lo, rip_hi)``.
    """
    i, j, pi = labels.i, labels.j, labels.parent_i
    nonroot = pi >= 0
    l_message = np.where(i + 1 <= j, i + 1, -1)
    lip = np.where(nonroot & (labels.w == 1), i, -1)
    rip_lo = np.where(nonroot, np.maximum(i, pi + 2), i)
    return MessageClassArrays(
        n=int(n),
        s_message=i,
        l_message=l_message,
        r_lo=i + 2,
        r_hi=j + 1,
        o_low_hi=i,
        o_high_lo=j + 1,
        lip_message=lip,
        rip_lo=rip_lo,
        rip_hi=j + 1,
    )


def class_name_of(classes: MessageClasses, m: Message) -> str:
    """Human-readable class of message ``m`` at the classified vertex.

    Returns one of ``"s"``, ``"l"``, ``"r"``, ``"o"`` — the partition with
    respect to the vertex itself.  Used by the ASCII visualiser and the
    table benchmarks.
    """
    if m == classes.s_message:
        return "s"
    if classes.l_message is not None and m == classes.l_message:
        return "l"
    if m in classes.r_messages:
        return "r"
    if classes.is_o_message(m):
        return "o"
    raise MessageClassError(f"message {m} out of range for n={classes.n}")
