"""Rooted ordered trees — the communication substrate of Section 3.2.

After the minimum-depth spanning tree is built, *all* communication takes
place on the tree, so the tree is the central data structure of the
library.  A :class:`Tree` is stored as a parent array plus an explicit
*ordered* child list per vertex; the child order determines the DFS
labelling (the paper: "for every vertex, fix the ordering of the subtrees
in any arbitrary order") and therefore the exact schedule, though never
its length.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from ..exceptions import TreeError
from ..types import Vertex

__all__ = ["Tree", "ChildOrder"]

#: Signature of a child-ordering policy: (tree-under-construction vertex,
#: its unordered children) -> ordered children.
ChildOrder = Callable[[Vertex, Sequence[Vertex]], Sequence[Vertex]]


class Tree:
    """An immutable rooted tree on vertices ``0..n-1`` with ordered children.

    Parameters
    ----------
    parents:
        ``parents[v]`` is the parent of ``v``; the root holds ``-1``.
    root:
        The root vertex (must be the unique vertex with parent ``-1``).
    child_order:
        Optional policy fixing the left-to-right order of each vertex's
        children.  Defaults to ascending vertex id, which makes every
        construction in the library deterministic.
    name:
        Optional human-readable name (propagated from the source graph).

    Raises
    ------
    TreeError
        If the parent array does not describe a single tree rooted at
        ``root`` (cycles, several roots, out-of-range parents...).

    Examples
    --------
    >>> t = Tree([-1, 0, 0, 1], root=0)
    >>> t.children(0)
    (1, 2)
    >>> t.level(3)
    2
    >>> t.height
    2
    """

    __slots__ = (
        "_n",
        "_root",
        "_parent",
        "_children",
        "_level",
        "_height",
        "_name",
    )

    def __init__(
        self,
        parents: Sequence[int],
        root: Vertex,
        child_order: Optional[ChildOrder] = None,
        name: str = "",
    ) -> None:
        n = len(parents)
        if n < 1:
            raise TreeError("tree needs at least one vertex")
        if not 0 <= root < n:
            raise TreeError(f"root {root} out of range for n={n}")
        if parents[root] != -1:
            raise TreeError(f"root {root} must have parent -1, got {parents[root]}")
        parent = [int(p) for p in parents]
        kids: List[List[int]] = [[] for _ in range(n)]
        for v in range(n):
            p = parent[v]
            if v == root:
                continue
            if not 0 <= p < n:
                raise TreeError(f"vertex {v} has out-of-range parent {p}")
            if p == v:
                raise TreeError(f"vertex {v} is its own parent")
            kids[p].append(v)
        # Level computation doubles as the acyclicity / single-root check:
        # every vertex must reach the root by following parents.
        level = [-1] * n
        level[root] = 0
        order = self._toposort(parent, kids, root, n)
        for v in order:
            if v != root:
                level[v] = level[parent[v]] + 1
        if len(order) != n:
            missing = [v for v in range(n) if level[v] == -1]
            raise TreeError(f"vertices {missing} are not attached to root {root}")
        if child_order is not None:
            ordered: List[Tuple[int, ...]] = []
            for v in range(n):
                arranged = list(child_order(v, tuple(kids[v])))
                if sorted(arranged) != sorted(kids[v]):
                    raise TreeError(
                        f"child_order must permute the children of {v}, "
                        f"got {arranged} for {kids[v]}"
                    )
                ordered.append(tuple(arranged))
            self._children: Tuple[Tuple[int, ...], ...] = tuple(ordered)
        else:
            self._children = tuple(tuple(sorted(c)) for c in kids)
        self._n = n
        self._root = int(root)
        self._parent = tuple(parent)
        self._level = tuple(level)
        self._height = max(level)
        self._name = name

    @staticmethod
    def _toposort(
        parent: Sequence[int], kids: Sequence[Sequence[int]], root: int, n: int
    ) -> List[int]:
        """Root-first ordering of all vertices reachable from the root."""
        order = [root]
        stack = [root]
        while stack:
            v = stack.pop()
            for c in kids[v]:
                if c == root:
                    raise TreeError("root appears as a child; parent array has a cycle")
                order.append(c)
                stack.append(c)
        if len(order) > n:
            raise TreeError("parent array has a cycle")
        return order

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def root(self) -> int:
        """The root vertex."""
        return self._root

    @property
    def height(self) -> int:
        """Depth of the deepest vertex (root has depth 0).

        When the tree is the minimum-depth spanning tree of a network this
        equals the network radius ``r``.
        """
        return self._height

    @property
    def name(self) -> str:
        """Human-readable name (may be empty)."""
        return self._name

    def parent(self, v: Vertex) -> int:
        """Parent of ``v`` (``-1`` for the root)."""
        return self._parent[self._check(v)]

    def children(self, v: Vertex) -> Tuple[int, ...]:
        """Ordered children of ``v`` (the DFS visiting order)."""
        return self._children[self._check(v)]

    def level(self, v: Vertex) -> int:
        """Depth of ``v``: 0 for the root, parent's level + 1 otherwise."""
        return self._level[self._check(v)]

    def is_leaf(self, v: Vertex) -> bool:
        """Whether ``v`` has no children."""
        return not self._children[self._check(v)]

    def is_root(self, v: Vertex) -> bool:
        """Whether ``v`` is the root."""
        return self._check(v) == self._root

    def leaves(self) -> List[int]:
        """All leaves in ascending vertex order."""
        return [v for v in range(self._n) if not self._children[v]]

    def vertices(self) -> range:
        """All vertex ids."""
        return range(self._n)

    def parents(self) -> Tuple[int, ...]:
        """The full parent array (root entry is ``-1``)."""
        return self._parent

    def levels(self) -> Tuple[int, ...]:
        """The full level (depth) array."""
        return self._level

    def edges(self) -> List[Tuple[int, int]]:
        """Tree edges as (parent, child), sorted by child id."""
        return [(self._parent[v], v) for v in range(self._n) if v != self._root]

    # ------------------------------------------------------------------
    # Traversals
    # ------------------------------------------------------------------
    def dfs_preorder(self) -> Iterator[int]:
        """Depth-first preorder respecting the fixed child order.

        This is exactly the order in which :mod:`repro.tree.labeling`
        assigns message labels ``0..n-1``.
        """
        stack = [self._root]
        while stack:
            v = stack.pop()
            yield v
            # Reverse so the first child is popped (and yielded) first.
            stack.extend(reversed(self._children[v]))

    def bfs_order(self) -> Iterator[int]:
        """Level order (root first), children in fixed order."""
        frontier = [self._root]
        while frontier:
            nxt: List[int] = []
            for v in frontier:
                yield v
                nxt.extend(self._children[v])
            frontier = nxt

    def subtree(self, v: Vertex) -> List[int]:
        """All vertices of the subtree rooted at ``v``, in DFS preorder."""
        out: List[int] = []
        stack = [self._check(v)]
        while stack:
            u = stack.pop()
            out.append(u)
            stack.extend(reversed(self._children[u]))
        return out

    def subtree_size(self, v: Vertex) -> int:
        """Number of vertices in the subtree rooted at ``v``."""
        return len(self.subtree(v))

    def path_to_root(self, v: Vertex) -> List[int]:
        """Vertices from ``v`` up to (and including) the root."""
        path = [self._check(v)]
        while path[-1] != self._root:
            path.append(self._parent[path[-1]])
        return path

    def ancestor_at_level(self, v: Vertex, target_level: int) -> int:
        """The ancestor of ``v`` sitting at ``target_level``.

        ``target_level`` must be between 0 and ``level(v)``.
        """
        lv = self.level(v)
        if not 0 <= target_level <= lv:
            raise TreeError(
                f"vertex {v} at level {lv} has no ancestor at level {target_level}"
            )
        u = v
        for _ in range(lv - target_level):
            u = self._parent[u]
        return u

    # ------------------------------------------------------------------
    # Derived trees
    # ------------------------------------------------------------------
    def with_child_order(self, child_order: ChildOrder) -> "Tree":
        """Same tree with a different fixed child order."""
        return Tree(self._parent, self._root, child_order=child_order, name=self._name)

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tree):
            return NotImplemented
        return (
            self._root == other._root
            and self._parent == other._parent
            and self._children == other._children
        )

    def __hash__(self) -> int:
        return hash((self._root, self._parent, self._children))

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:
        label = f" name={self._name!r}" if self._name else ""
        return f"Tree(n={self._n}, root={self._root}, height={self._height}{label})"

    def _check(self, v: Vertex) -> int:
        v = int(v)
        if not 0 <= v < self._n:
            raise TreeError(f"vertex {v} out of range for n={self._n}")
        return v
