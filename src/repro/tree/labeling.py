"""DFS preorder message labelling (paper Section 3.2).

The algorithm "proceeds by labeling the message originating at each
vertex in depth-first search order starting with the one at the root
(label 0) and ending at some leaf (label n-1)".

Because the labelling is a DFS preorder, the set of labels inside any
subtree is a *contiguous interval* ``[i, j]``:

* ``i``  — label of the subtree's root ``v`` (its *s-message*),
* ``j``  — largest label in the subtree (``i + |subtree| - 1``),
* ``k``  — the level (depth) of ``v``.

The triple ``(i, j, k)`` is the only information a processor needs to run
the online protocol of Section 4, so :class:`LabeledTree` exposes it
prominently.

The labelling itself is computed **without walking the DFS**: subtree
sizes aggregate bottom-up level by level, sibling-prefix sums over the
children CSR give each child's offset inside its parent's interval, and
the preorder label is then ``i[child] = i[parent] + 1 + prefix`` pushed
top-down level by level — all whole-level numpy operations.  The flat
columns live in :class:`LabelArrays`; the per-vertex
:class:`VertexLabel` objects are materialised lazily for the object
view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..exceptions import LabelingError
from ..types import Message, Vertex
from .tree import Tree

__all__ = ["VertexLabel", "LabelArrays", "LabeledTree", "label_tree"]


@dataclass(frozen=True)
class VertexLabel:
    """The per-vertex scheduling parameters ``(i, j, k)`` of Section 3.2.

    Attributes
    ----------
    vertex:
        The vertex this label block belongs to.
    i:
        DFS label of the vertex = label of its s-message.
    j:
        Largest DFS label inside its subtree (``j - i + 1`` = subtree size).
    k:
        Level (depth) of the vertex; the root has ``k = 0``.
    parent_i:
        ``i`` value of the parent (``-1`` for the root).  Needed to split
        the body messages into lip/rip classes.
    """

    vertex: Vertex
    i: int
    j: int
    k: int
    parent_i: int

    @property
    def subtree_size(self) -> int:
        """Number of messages originating in the subtree."""
        return self.j - self.i + 1

    @property
    def is_leaf_block(self) -> bool:
        """Whether the subtree is a single vertex (``i == j``)."""
        return self.i == self.j

    @property
    def is_first_child(self) -> bool:
        """Whether this vertex is its parent's first child in DFS order.

        Exactly then its s-message ``i`` equals ``parent_i + 1`` and is the
        parent's *lookahead* message, i.e. a lip-message sent at time 0.
        """
        return self.parent_i >= 0 and self.i == self.parent_i + 1

    @property
    def w(self) -> int:
        """Number of lip-messages at the vertex (0 or 1), used by (U4)."""
        return 1 if self.is_first_child else 0


@dataclass(frozen=True)
class LabelArrays:
    """Flat ``(i, j, k)`` columns of a labelled tree, indexed by vertex.

    All arrays have length ``n`` unless noted; this is the input of the
    array-native schedule constructions in :mod:`repro.core`.

    Attributes
    ----------
    i, j, k:
        The interval columns (int64): DFS label, largest label in the
        subtree, level.
    parent:
        Parent vertex (``-1`` for the root).
    parent_i:
        ``i`` of the parent (``-1`` for the root).
    size:
        Subtree sizes (``j - i + 1``).
    w:
        1 where the vertex is its parent's first child, else 0.
    vertex_of_label:
        Inverse permutation: ``vertex_of_label[i[v]] == v``.
    child_ptr, child_ids:
        Children CSR in the tree's fixed (DFS) child order: the children
        of ``v`` are ``child_ids[child_ptr[v]:child_ptr[v + 1]]``.
    level_ptr, by_level:
        Vertices grouped by level: level-``l`` vertices are
        ``by_level[level_ptr[l]:level_ptr[l + 1]]`` (``len(level_ptr) ==
        height + 2``).
    """

    i: np.ndarray
    j: np.ndarray
    k: np.ndarray
    parent: np.ndarray
    parent_i: np.ndarray
    size: np.ndarray
    w: np.ndarray
    vertex_of_label: np.ndarray
    child_ptr: np.ndarray
    child_ids: np.ndarray
    level_ptr: np.ndarray
    by_level: np.ndarray

    @property
    def n(self) -> int:
        """Number of vertices / messages."""
        return len(self.i)

    @property
    def height(self) -> int:
        """Tree height (number of level groups minus one)."""
        return len(self.level_ptr) - 2


def _compute_arrays(tree: Tree) -> LabelArrays:
    """Level-synchronous vectorised labelling (no DFS walk).

    Columns are int64 on purpose: every one of them is consumed as a
    fancy-indexing operand downstream, and numpy converts non-``intp``
    index arrays to ``intp`` on each use — a narrower dtype would force
    a conversion copy per gather.
    """
    n = tree.n
    parent = np.asarray(tree.parents(), dtype=np.int64)
    level = np.asarray(tree.levels(), dtype=np.int64)

    # Children CSR in the tree's fixed child order.
    counts = np.fromiter(
        (len(tree.children(v)) for v in range(n)), dtype=np.int64, count=n
    )
    child_ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=child_ptr[1:])
    child_ids = np.fromiter(
        (c for v in range(n) for c in tree.children(v)),
        dtype=np.int64,
        count=int(child_ptr[-1]),
    )

    # Vertices grouped by level (stable keeps ascending vertex id in ties).
    by_level = np.argsort(level, kind="stable")
    height = int(level.max(initial=0))
    level_ptr = np.searchsorted(
        level[by_level], np.arange(height + 2), side="left"
    ).astype(np.int64)

    # Subtree sizes: aggregate each level into its parents, deepest first.
    size = np.ones(n, dtype=np.int64)
    for lvl in range(height, 0, -1):
        sel = by_level[level_ptr[lvl] : level_ptr[lvl + 1]]
        np.add.at(size, parent[sel], size[sel])

    # Exclusive prefix sums of sibling subtree sizes, per CSR group.
    sib_size = size[child_ids]
    running = np.zeros(len(child_ids), dtype=np.int64)
    if len(child_ids):
        np.cumsum(sib_size[:-1], out=running[1:])
        # Count-0 groups contribute nothing to the repeat; clip their
        # (one-past-end) start offsets so the gather stays in bounds.
        group_starts = child_ptr[:-1].clip(max=len(child_ids) - 1)
        group_base = np.repeat(running[group_starts], counts)
        presib_flat = running - group_base
        presib = np.zeros(n, dtype=np.int64)
        presib[child_ids] = presib_flat
    else:
        presib = np.zeros(n, dtype=np.int64)

    # Preorder labels pushed root-to-leaves one level at a time.
    i = np.zeros(n, dtype=np.int64)
    for lvl in range(1, height + 1):
        sel = by_level[level_ptr[lvl] : level_ptr[lvl + 1]]
        i[sel] = i[parent[sel]] + 1 + presib[sel]

    j = i + size - 1
    parent_i = np.where(parent >= 0, i[parent.clip(min=0)], -1)
    w = ((parent >= 0) & (i == parent_i + 1)).astype(np.int64)
    vertex_of_label = np.empty(n, dtype=np.int64)
    vertex_of_label[i] = np.arange(n, dtype=np.int64)
    return LabelArrays(
        i=i,
        j=j,
        k=level,
        parent=parent,
        parent_i=parent_i,
        size=size,
        w=w,
        vertex_of_label=vertex_of_label,
        child_ptr=child_ptr,
        child_ids=child_ids,
        level_ptr=level_ptr,
        by_level=by_level,
    )


class LabeledTree:
    """A :class:`~repro.tree.tree.Tree` plus its DFS preorder labelling.

    Exposes both directions of the label map and the ``(i, j, k)`` block of
    every vertex.  All schedule-construction algorithms in
    :mod:`repro.core` consume a :class:`LabeledTree`; the array-native
    ones read the flat :attr:`arrays` columns, the object view goes
    through :meth:`block` (materialised lazily).

    Examples
    --------
    >>> t = Tree([-1, 0, 0, 1], root=0)
    >>> lt = LabeledTree(t)
    >>> [lt.label_of(v) for v in range(4)]
    [0, 1, 3, 2]
    >>> lt.block_of_label(1).j   # subtree of vertex 1 holds labels {1, 2}
    2
    """

    __slots__ = ("_tree", "_arrays", "_label", "_vertex", "_blocks")

    def __init__(self, tree: Tree) -> None:
        self._tree = tree
        self._arrays = _compute_arrays(tree)
        self._label: Tuple[int, ...] = tuple(self._arrays.i.tolist())
        self._vertex: Tuple[int, ...] = tuple(self._arrays.vertex_of_label.tolist())
        self._blocks: Optional[Tuple[VertexLabel, ...]] = None
        self._validate()

    def _validate(self) -> None:
        """Check the contiguous-interval invariants of a DFS labelling."""
        arr = self._arrays
        n = arr.n
        if not np.array_equal(np.sort(arr.i), np.arange(n)):
            raise LabelingError("DFS labels are not a permutation of 0..n-1")
        if np.any(arr.j - arr.i + 1 != arr.size) or np.any(arr.j >= n):
            raise LabelingError("subtree intervals disagree with subtree sizes")
        if len(arr.child_ids):
            # Children partition (i, j] of the parent: each child starts
            # right after its left sibling ends, the first child starts at
            # parent i + 1, and the last child ends at the parent's j.
            parents_flat = np.repeat(np.arange(n), np.diff(arr.child_ptr))
            first = np.zeros(len(arr.child_ids), dtype=bool)
            first[arr.child_ptr[:-1][np.diff(arr.child_ptr) > 0]] = True
            starts = arr.i[arr.child_ids]
            expected = np.empty_like(starts)
            expected[first] = arr.i[parents_flat[first]] + 1
            expected[~first] = arr.j[arr.child_ids[np.flatnonzero(~first) - 1]] + 1
            bad = np.flatnonzero(starts != expected)
            if len(bad):
                b = int(bad[0])
                raise LabelingError(
                    f"child {int(arr.child_ids[b])} of {int(parents_flat[b])} "
                    f"starts at label {int(starts[b])}, expected {int(expected[b])}"
                )
            has_kids = np.diff(arr.child_ptr) > 0
            last = arr.child_ids[arr.child_ptr[1:][has_kids] - 1]
            owners = np.flatnonzero(has_kids)
            mismatch = np.flatnonzero(arr.j[last] != arr.j[owners])
            if len(mismatch):
                m = int(mismatch[0])
                raise LabelingError(
                    f"children of {int(owners[m])} end at label "
                    f"{int(arr.j[last[m]])}, expected {int(arr.j[owners[m]])}"
                )

    # ------------------------------------------------------------------
    @property
    def tree(self) -> Tree:
        """The underlying rooted ordered tree."""
        return self._tree

    @property
    def arrays(self) -> LabelArrays:
        """The flat label columns (canonical input of the array planners)."""
        return self._arrays

    @property
    def n(self) -> int:
        """Number of vertices / messages."""
        return self._tree.n

    @property
    def height(self) -> int:
        """Tree height (= network radius for a minimum-depth tree)."""
        return self._tree.height

    def label_of(self, v: Vertex) -> Message:
        """DFS label (message id) of vertex ``v``."""
        return self._label[v]

    def vertex_of(self, label: Message) -> Vertex:
        """Vertex owning the message with the given DFS label."""
        return self._vertex[label]

    def _materialized_blocks(self) -> Tuple[VertexLabel, ...]:
        if self._blocks is None:
            arr = self._arrays
            i, j, k, pi = (
                arr.i.tolist(), arr.j.tolist(), arr.k.tolist(), arr.parent_i.tolist(),
            )
            self._blocks = tuple(
                VertexLabel(vertex=v, i=i[v], j=j[v], k=k[v], parent_i=pi[v])
                for v in range(self._tree.n)
            )
        return self._blocks

    def block(self, v: Vertex) -> VertexLabel:
        """The ``(i, j, k)`` block of vertex ``v``."""
        return self._materialized_blocks()[v]

    def block_of_label(self, label: Message) -> VertexLabel:
        """The ``(i, j, k)`` block of the vertex whose s-message is ``label``."""
        return self._materialized_blocks()[self._vertex[label]]

    def blocks(self) -> Tuple[VertexLabel, ...]:
        """All per-vertex blocks, indexed by vertex id."""
        return self._materialized_blocks()

    def labels(self) -> Tuple[int, ...]:
        """The full vertex -> label map."""
        return self._label

    def label_table(self) -> Dict[Vertex, Tuple[int, int, int]]:
        """Mapping ``vertex -> (i, j, k)`` — the online protocol's inputs."""
        arr = self._arrays
        i, j, k = arr.i.tolist(), arr.j.tolist(), arr.k.tolist()
        return {v: (i[v], j[v], k[v]) for v in range(self._tree.n)}

    def children_by_label(self, v: Vertex) -> Tuple[int, ...]:
        """Children of ``v`` in DFS order, as their ``i`` labels."""
        return tuple(self._label[c] for c in self._tree.children(v))

    def owner_child(self, v: Vertex, message: Message) -> Vertex:
        """The child of ``v`` whose subtree interval contains ``message``.

        Raises :class:`LabelingError` when no child's interval contains
        the label (i.e. the message does not originate strictly below
        ``v``).
        """
        arr = self._arrays
        for c in self._tree.children(v):
            if arr.i[c] <= message <= arr.j[c]:
                return int(c)
        raise LabelingError(
            f"message {message} does not originate below vertex {v}"
        )

    def __repr__(self) -> str:
        return f"LabeledTree(n={self.n}, root={self._tree.root}, height={self.height})"


def label_tree(tree: Tree) -> LabeledTree:
    """Convenience wrapper: apply DFS preorder labelling to ``tree``."""
    return LabeledTree(tree)
