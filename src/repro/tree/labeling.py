"""DFS preorder message labelling (paper Section 3.2).

The algorithm "proceeds by labeling the message originating at each
vertex in depth-first search order starting with the one at the root
(label 0) and ending at some leaf (label n-1)".

Because the labelling is a DFS preorder, the set of labels inside any
subtree is a *contiguous interval* ``[i, j]``:

* ``i``  — label of the subtree's root ``v`` (its *s-message*),
* ``j``  — largest label in the subtree (``i + |subtree| - 1``),
* ``k``  — the level (depth) of ``v``.

The triple ``(i, j, k)`` is the only information a processor needs to run
the online protocol of Section 4, so :class:`LabeledTree` exposes it
prominently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..exceptions import LabelingError
from ..types import Message, Vertex
from .tree import Tree

__all__ = ["VertexLabel", "LabeledTree", "label_tree"]


@dataclass(frozen=True)
class VertexLabel:
    """The per-vertex scheduling parameters ``(i, j, k)`` of Section 3.2.

    Attributes
    ----------
    vertex:
        The vertex this label block belongs to.
    i:
        DFS label of the vertex = label of its s-message.
    j:
        Largest DFS label inside its subtree (``j - i + 1`` = subtree size).
    k:
        Level (depth) of the vertex; the root has ``k = 0``.
    parent_i:
        ``i`` value of the parent (``-1`` for the root).  Needed to split
        the body messages into lip/rip classes.
    """

    vertex: Vertex
    i: int
    j: int
    k: int
    parent_i: int

    @property
    def subtree_size(self) -> int:
        """Number of messages originating in the subtree."""
        return self.j - self.i + 1

    @property
    def is_leaf_block(self) -> bool:
        """Whether the subtree is a single vertex (``i == j``)."""
        return self.i == self.j

    @property
    def is_first_child(self) -> bool:
        """Whether this vertex is its parent's first child in DFS order.

        Exactly then its s-message ``i`` equals ``parent_i + 1`` and is the
        parent's *lookahead* message, i.e. a lip-message sent at time 0.
        """
        return self.parent_i >= 0 and self.i == self.parent_i + 1

    @property
    def w(self) -> int:
        """Number of lip-messages at the vertex (0 or 1), used by (U4)."""
        return 1 if self.is_first_child else 0


class LabeledTree:
    """A :class:`~repro.tree.tree.Tree` plus its DFS preorder labelling.

    Exposes both directions of the label map and the ``(i, j, k)`` block of
    every vertex.  All schedule-construction algorithms in
    :mod:`repro.core` consume a :class:`LabeledTree`.

    Examples
    --------
    >>> t = Tree([-1, 0, 0, 1], root=0)
    >>> lt = LabeledTree(t)
    >>> [lt.label_of(v) for v in range(4)]
    [0, 1, 3, 2]
    >>> lt.block_of_label(1).j   # subtree of vertex 1 holds labels {1, 2}
    2
    """

    __slots__ = ("_tree", "_label", "_vertex", "_blocks", "_blocks_by_label")

    def __init__(self, tree: Tree) -> None:
        self._tree = tree
        n = tree.n
        label: List[int] = [-1] * n
        vertex: List[int] = [-1] * n
        for idx, v in enumerate(tree.dfs_preorder()):
            label[v] = idx
            vertex[idx] = v
        if -1 in label:
            raise LabelingError("DFS preorder did not reach every vertex")
        # j = max label in subtree.  Process vertices deepest-first so each
        # parent aggregates its children's finished intervals.
        j_of: List[int] = list(label)
        order = sorted(range(n), key=tree.level, reverse=True)
        for v in order:
            p = tree.parent(v)
            if p >= 0 and j_of[v] > j_of[p]:
                j_of[p] = j_of[v]
        blocks: List[VertexLabel] = []
        for v in range(n):
            p = tree.parent(v)
            blocks.append(
                VertexLabel(
                    vertex=v,
                    i=label[v],
                    j=j_of[v],
                    k=tree.level(v),
                    parent_i=label[p] if p >= 0 else -1,
                )
            )
        self._label = tuple(label)
        self._vertex = tuple(vertex)
        self._blocks = tuple(blocks)
        self._blocks_by_label = tuple(blocks[vertex[lbl]] for lbl in range(n))
        self._validate()

    def _validate(self) -> None:
        """Check the contiguous-interval invariants of a DFS labelling."""
        t = self._tree
        for v in range(t.n):
            blk = self._blocks[v]
            if blk.subtree_size != t.subtree_size(v):
                raise LabelingError(
                    f"subtree interval of vertex {v} has size {blk.subtree_size}, "
                    f"expected {t.subtree_size(v)}"
                )
            kids = t.children(v)
            cursor = blk.i + 1
            for c in kids:
                cb = self._blocks[c]
                if cb.i != cursor:
                    raise LabelingError(
                        f"child {c} of {v} starts at label {cb.i}, expected {cursor}"
                    )
                cursor = cb.j + 1
            if kids and cursor != blk.j + 1:
                raise LabelingError(
                    f"children of {v} end at label {cursor - 1}, expected {blk.j}"
                )

    # ------------------------------------------------------------------
    @property
    def tree(self) -> Tree:
        """The underlying rooted ordered tree."""
        return self._tree

    @property
    def n(self) -> int:
        """Number of vertices / messages."""
        return self._tree.n

    @property
    def height(self) -> int:
        """Tree height (= network radius for a minimum-depth tree)."""
        return self._tree.height

    def label_of(self, v: Vertex) -> Message:
        """DFS label (message id) of vertex ``v``."""
        return self._label[v]

    def vertex_of(self, label: Message) -> Vertex:
        """Vertex owning the message with the given DFS label."""
        return self._vertex[label]

    def block(self, v: Vertex) -> VertexLabel:
        """The ``(i, j, k)`` block of vertex ``v``."""
        return self._blocks[v]

    def block_of_label(self, label: Message) -> VertexLabel:
        """The ``(i, j, k)`` block of the vertex whose s-message is ``label``."""
        return self._blocks_by_label[label]

    def blocks(self) -> Tuple[VertexLabel, ...]:
        """All per-vertex blocks, indexed by vertex id."""
        return self._blocks

    def labels(self) -> Tuple[int, ...]:
        """The full vertex -> label map."""
        return self._label

    def label_table(self) -> Dict[Vertex, Tuple[int, int, int]]:
        """Mapping ``vertex -> (i, j, k)`` — the online protocol's inputs."""
        return {v: (b.i, b.j, b.k) for v, b in enumerate(self._blocks)}

    def children_by_label(self, v: Vertex) -> Tuple[int, ...]:
        """Children of ``v`` in DFS order, as their ``i`` labels."""
        return tuple(self._label[c] for c in self._tree.children(v))

    def owner_child(self, v: Vertex, message: Message) -> Vertex:
        """The child of ``v`` whose subtree interval contains ``message``.

        Raises :class:`LabelingError` when no child's interval contains
        the label (i.e. the message does not originate strictly below
        ``v``).
        """
        for c in self._tree.children(v):
            cb = self._blocks[c]
            if cb.i <= message <= cb.j:
                return c
        raise LabelingError(
            f"message {message} does not originate below vertex {v}"
        )

    def __repr__(self) -> str:
        return f"LabeledTree(n={self.n}, root={self._tree.root}, height={self.height})"


def label_tree(tree: Tree) -> LabeledTree:
    """Convenience wrapper: apply DFS preorder labelling to ``tree``."""
    return LabeledTree(tree)
