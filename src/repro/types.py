"""Shared type aliases used across the :mod:`repro` package.

The library consistently identifies processors (vertices) and messages by
small non-negative integers.  A *message* is identified by the DFS label of
the vertex it originates at (see :mod:`repro.tree.labeling`); before
labelling, message ``m`` simply means "the message originating at vertex
``m``".
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

__all__ = [
    "Vertex",
    "Message",
    "Edge",
    "EdgeList",
    "Time",
    "VertexSet",
]

#: A processor / vertex identifier: an integer in ``range(n)``.
Vertex = int

#: A message identifier.  After DFS labelling this is the label in
#: ``range(n)``; the message with label ``m`` originates at the vertex whose
#: DFS label is ``m``.
Message = int

#: An undirected edge between two vertices.
Edge = Tuple[Vertex, Vertex]

#: A sequence of undirected edges.
EdgeList = Sequence[Edge]

#: A round index (0-based).  The paper's convention: a message *sent* during
#: round ``t`` is *received* at time ``t + 1``.
Time = int

#: Any iterable of vertices (multicast destination sets and the like).
VertexSet = Iterable[Vertex]
