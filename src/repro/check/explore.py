"""Exhaustive explorer for :class:`~repro.check.model.ProtocolModel`.

Breadth-first search over canonical hashable states with a visited set,
so the first path reaching a violation is a *minimal* one (fewest
actions), which is what the rendered counterexample traces print.

Partial-order reduction
-----------------------
In the abstract model every pair of actions commutes: a delivery only
moves a token from the shared flight set into one peer's buffer, and a
step only consumes from its own buffer and appends fresh tokens.  The
explorer exploits this with an *ample set*: whenever any delivery is
enabled, it explores just the least one.  Rather than assuming the
commutation argument, it certifies it per state — for the chosen
delivery ``a`` and every other enabled action ``b`` it executes both
``a·b`` and ``b·a`` and compares the resulting states (the diamond
check).  If any diamond fails to close, or any probe reports a
violation, the state falls back to full expansion, so the reduction is
self-certifying: a mutated model that breaks commutativity (e.g. the
``fence_skew`` off-by-one, where *which* round's token a barrier
consumes depends on delivery order) automatically loses the reduction
exactly where it matters and the violating interleaving is searched.
Steps are always fully interleaved, so the committed state counts track
genuine protocol nondeterminism.

Exactly-once delivery is checked constructively: after every delivery
the explorer re-delivers a straggler copy of the same wire record and
asserts the state is unchanged — at-least-once at the datagram layer,
exactly-once at the processor.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.gossip import GossipPlan, gossip
from ..analysis.sweep import FAMILIES, family_instance
from ..exceptions import ProtocolCheckError
from .model import (
    Action,
    ModelState,
    ProtocolModel,
    Token,
    check_rejoin,
    render_token,
)

__all__ = [
    "Counterexample",
    "ExplorationReport",
    "FamilyCheck",
    "explore",
    "check_family",
    "check_matrix",
    "parse_family_spec",
    "render_trace",
]

#: Visited-set ceiling per scenario; a blowup is an infrastructure error
#: (the committed budgets in CHECK_protocol.json are far below this).
DEFAULT_BUDGET = 250_000


@dataclass(frozen=True)
class Counterexample:
    """A minimal violating run: the actions from the initial state."""

    violation: str
    trace: Tuple[Action, ...]
    scenario: Tuple[Tuple[int, int], ...]

    def render(self, model: ProtocolModel) -> str:
        """Render the trace as the wire-message sequence that exhibits it."""
        header = [
            f"counterexample ({len(self.trace)} actions, "
            f"crashes={dict(self.scenario) or 'none'}):"
        ]
        return "\n".join(header + render_trace(model, self.trace)
                         + [f"VIOLATION: {self.violation}"])


@dataclass
class ExplorationReport:
    """What one scenario's exhaustive exploration established."""

    scenario: Tuple[Tuple[int, int], ...]
    states: int = 0
    transitions: int = 0
    ample_states: int = 0
    fallback_states: int = 0
    quiescent: Dict[str, int] = field(default_factory=dict)
    counterexample: Optional[Counterexample] = None
    abort_state: Optional[ModelState] = None

    @property
    def ok(self) -> bool:
        return self.counterexample is None


def render_trace(model: ProtocolModel, trace: Sequence[Action]) -> List[str]:
    """Render actions as wire messages by re-executing them."""
    lines: List[str] = []
    state = model.initial()
    for action in trace:
        kind, arg = action
        if kind == "deliver":
            assert isinstance(arg, Token)
            lines.append(f"  deliver {render_token(arg)}")
        else:
            assert isinstance(arg, int)
            t = state.peers[arg].t
            lines.append(f"  step    peer {arg} runs round {t}:")
        state, violations = model.apply(state, action)
        if kind == "step":
            for token in sorted(state.flight):
                if token.sender == arg and token.round == t:
                    lines.append(f"            send {render_token(token)}")
        for violation in violations:
            lines.append(f"            !! {violation}")
    return lines


def _successors(
    model: ProtocolModel, state: ModelState, enabled: Sequence[Action]
) -> Tuple[List[Tuple[Action, ModelState, Tuple[str, ...]]], str]:
    """Expand one state; the mode records whether the reduction applied.

    ``"ample"``: a delivery was enabled and certified independent — only
    it is explored.  ``"fallback"``: a delivery was enabled but a diamond
    failed to close (or the probe itself surfaced a violation) — full
    expansion.  ``"steps"``: no delivery enabled; steps always branch.
    """
    delivers = [a for a in enabled if a[0] == "deliver"]
    if delivers:
        chosen = delivers[0]
        succ, violations = model.apply(state, chosen)
        if (
            not violations
            and _diamonds_close(model, state, chosen, succ, enabled)
            and _saturation_closes(model, state, chosen)
        ):
            return [(chosen, succ, violations)], "ample"
        mode = "fallback"
    else:
        mode = "steps"
    return [
        (action, *model.apply(state, action)) for action in enabled
    ], mode


def _diamonds_close(
    model: ProtocolModel,
    state: ModelState,
    chosen: Action,
    after_chosen: ModelState,
    enabled: Sequence[Action],
) -> bool:
    """Certify that ``chosen`` commutes with every other enabled action."""
    for other in enabled:
        if other == chosen:
            continue
        # a then b: b must still be enabled and still reach the same state
        # as b then a, with no violations surfacing along either order.
        try:
            if other[0] == "step":
                assert isinstance(other[1], int)
                if not model.step_enabled(after_chosen, other[1]):
                    return False
            ab, v1 = model.apply(after_chosen, other)
            ba_mid, v2 = model.apply(state, other)
            ba, v3 = model.apply(ba_mid, chosen)
        except ProtocolCheckError:
            return False
        if v1 or v2 or v3 or ab != ba:
            return False
    return True


def _saturation_closes(
    model: ProtocolModel, state: ModelState, chosen: Action
) -> bool:
    """Lookahead diamond: the receiver's step must not be buffer-sensitive.

    Pairwise diamonds at the current state cannot see a dependency that
    only materialises after *other* deliveries land: with the
    ``fence_skew`` mutation, whether a barrier consumes the right token
    depends on which of two tokens from the same sender is in the buffer
    — and the receiver's step may only become enabled once the rest of
    its barrier arrives.  So: deliver every other in-flight token bound
    for the same receiver, and if its step is then enabled *without* the
    chosen token, require the chosen delivery to still commute with that
    step.  In the clean model a barrier consumes exactly the round-(t-1)
    tokens whatever else is buffered, so this always closes and the
    reduction is kept; a buffer-sensitive mutation fails it and the state
    falls back to full expansion, which walks straight into the
    violating interleaving.
    """
    _, token = chosen
    assert isinstance(token, Token)
    v = token.dst
    saturated = state
    try:
        for other in sorted(state.flight):
            if other != token and other.dst == v:
                saturated, viol = model.apply(saturated, ("deliver", other))
                if viol:
                    return False
        if not model.step_enabled(saturated, v):
            return True
        with_token, v1 = model.apply(saturated, chosen)
        if not model.step_enabled(with_token, v):
            return False
        ab, v2 = model.apply(with_token, ("step", v))
        ba_mid, v3 = model.apply(saturated, ("step", v))
        ba, v4 = model.apply(ba_mid, chosen)
    except ProtocolCheckError:
        return False
    return not (v1 or v2 or v3 or v4) and ab == ba


def explore(
    model: ProtocolModel,
    *,
    budget: int = DEFAULT_BUDGET,
    rejoin: bool = True,
) -> ExplorationReport:
    """Exhaustively explore ``model``; first violation wins (minimal trace).

    Checks, beyond the per-transition invariants rendered by
    :meth:`ProtocolModel.apply`:

    * exactly-once delivery (duplicate-closure after every delivery);
    * quiescent-state classification — fault-free explorations must end
      in the unique all-hold-all terminal state whose transcript equals
      the offline schedule; crash scenarios must end in wavefront
      starvation states, all identical (the runner's deterministic
      abort snapshot), with the victim's holds matching the
      supervisor's truncated-schedule reconstruction;
    * with ``rejoin=True``, single-victim abort states must re-complete
      full gossip within the supervisor's repair budget from *every*
      possible RESYNC source (:func:`~repro.check.model.check_rejoin`).
    """
    report = ExplorationReport(
        scenario=tuple(sorted(model.crash_round.items()))
    )
    initial = model.initial()
    parents: Dict[ModelState, Optional[Tuple[ModelState, Action]]] = {
        initial: None
    }
    frontier: deque[ModelState] = deque([initial])

    def trace_to(state: ModelState, extra: Action) -> Tuple[Action, ...]:
        actions: List[Action] = [extra]
        cursor: Optional[Tuple[ModelState, Action]] = parents[state]
        while cursor is not None:
            prev, action = cursor
            actions.append(action)
            cursor = parents[prev]
        return tuple(reversed(actions))

    def fail(state: ModelState, action: Action, violation: str) -> None:
        report.states = len(parents)
        report.counterexample = Counterexample(
            violation=violation,
            trace=trace_to(state, action),
            scenario=report.scenario,
        )

    while frontier:
        state = frontier.popleft()
        enabled = model.enabled(state)
        if not enabled:
            kind, violations = model.classify_quiescent(state)
            report.quiescent[kind] = report.quiescent.get(kind, 0) + 1
            if violations:
                last = parents[state]
                if last is None:
                    raise ProtocolCheckError(
                        "initial state is quiescent — empty model?"
                    )
                fail(last[0], last[1], violations[0])
                return report
            problem = self_check_quiescent(model, state, kind, report,
                                           rejoin=rejoin)
            if problem is not None:
                last = parents[state]
                assert last is not None
                fail(last[0], last[1], problem)
                return report
            continue
        for action in enabled:
            if action[0] == "step":
                assert isinstance(action[1], int)
                problem = model.barrier_overadmission(state, action[1])
                if problem is not None:
                    fail(state, action, problem)
                    return report
        successors, mode = _successors(model, state, enabled)
        if mode == "ample":
            report.ample_states += 1
        elif mode == "fallback":
            report.fallback_states += 1
        for action, succ, violations in successors:
            report.transitions += 1
            if violations:
                fail(state, action, violations[0])
                return report
            if action[0] == "deliver":
                assert isinstance(action[1], Token)
                problem = _duplicate_closure(model, succ, action[1])
                if problem is not None:
                    fail(state, action, problem)
                    return report
            if succ not in parents:
                parents[succ] = (state, action)
                if len(parents) > budget:
                    raise ProtocolCheckError(
                        f"state-space budget exceeded: more than {budget} "
                        f"states for scenario {report.scenario!r}"
                    )
                frontier.append(succ)
    report.states = len(parents)
    return report


def _duplicate_closure(
    model: ProtocolModel, state: ModelState, token: Token
) -> Optional[str]:
    """Exactly-once: re-delivering a straggler copy must be a no-op."""
    redelivered, violations = model.apply_duplicate(state, token)
    if violations:
        return violations[0]
    if redelivered != state:
        return (
            f"exactly-once delivery violated: a duplicate copy of "
            f"{render_token(token)} changed peer {token.dst}'s state"
        )
    return None


def self_check_quiescent(
    model: ProtocolModel,
    state: ModelState,
    kind: str,
    report: ExplorationReport,
    *,
    rejoin: bool,
) -> Optional[str]:
    """Scenario-level checks on a violation-free quiescent state."""
    if kind == "complete":
        if state.sent != model.offline_records():
            missing = sorted(model.offline_records() - state.sent)
            extra = sorted(state.sent - model.offline_records())
            return (
                f"fault-free transcript diverges from the offline schedule "
                f"(missing {missing[:3]}, extra {extra[:3]})"
            )
        return None
    if kind == "wavefront":
        if report.abort_state is None:
            report.abort_state = state
        elif report.abort_state != state:
            return (
                "wavefront nondeterminism: two different quiescent abort "
                "states are reachable under the same crash scenario"
            )
        for victim, peer in enumerate(state.peers):
            if peer.died_at is None:
                continue
            expected = model.victim_holds_truncated(victim, peer.died_at)
            if peer.holds != expected:
                return (
                    f"victim {victim} died at round {peer.died_at} holding "
                    f"{peer.holds:#x}, but the supervisor's truncated-"
                    f"schedule reconstruction expects {expected:#x}"
                )
        if rejoin:
            problems = check_rejoin(model, state)
            if problems:
                return problems[0]
    return None


def parse_family_spec(spec: str) -> Tuple[str, int]:
    """Parse ``"path:4"`` into ``("path", 4)`` with typed errors."""
    family, _, size = spec.partition(":")
    if not size:
        raise ProtocolCheckError(
            f"family spec {spec!r} must look like 'path:4'"
        )
    try:
        n = int(size)
    except ValueError as exc:
        raise ProtocolCheckError(
            f"family spec {spec!r} has a non-integer size"
        ) from exc
    if not 2 <= n <= 8:
        raise ProtocolCheckError(
            f"family spec {spec!r}: explicit-state exploration is bounded "
            f"to n in 2..8"
        )
    if family not in FAMILIES:
        raise ProtocolCheckError(
            f"family spec {spec!r}: unknown family {family!r} "
            f"(choose from {', '.join(sorted(FAMILIES))})"
        )
    return family, n


def plan_for(family: str, n: int) -> GossipPlan:
    """The plan the runtime would execute for one family instance."""
    graph = family_instance(family, n)
    return gossip(graph, algorithm="concurrent-updown")


@dataclass
class FamilyCheck:
    """Aggregated exploration results for one ``family:n`` instance."""

    family: str
    n: int
    horizon: int
    scenarios: int = 0
    states: int = 0
    transitions: int = 0
    ample_states: int = 0
    fallback_states: int = 0
    fault_free_states: int = 0
    max_scenario_states: int = 0
    complete_terminals: int = 0
    wavefront_terminals: int = 0
    counterexample: Optional[Counterexample] = None
    reports: List[ExplorationReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.counterexample is None

    def summary(self) -> Dict[str, int]:
        return {
            "scenarios": self.scenarios,
            "states": self.states,
            "transitions": self.transitions,
            "fault_free_states": self.fault_free_states,
            "max_scenario_states": self.max_scenario_states,
            "ample_states": self.ample_states,
            "fallback_states": self.fallback_states,
        }


def crash_scenarios(
    model_horizon: int, n: int, crashes: int
) -> List[Tuple[Tuple[int, int], ...]]:
    """All crash scenarios up to ``crashes`` victims (0 = fault-free only).

    Single-victim scenarios quantify over every (victim, round) pair up
    to the horizon — a victim crashing past the horizon is the fault-free
    run.  The fault-free scenario is always first.
    """
    scenarios: List[Tuple[Tuple[int, int], ...]] = [()]
    if crashes >= 1:
        for victim in range(n):
            for rnd in range(model_horizon + 1):
                scenarios.append(((victim, rnd),))
    return scenarios


def check_family(
    family: str,
    n: int,
    *,
    crashes: int = 1,
    budget: int = DEFAULT_BUDGET,
    rejoin: bool = True,
    fence_skew: int = 0,
) -> FamilyCheck:
    """Explore every crash scenario of one family instance."""
    plan = plan_for(family, n)
    result = FamilyCheck(family=family, n=n, horizon=plan.schedule.total_time)
    for scenario in crash_scenarios(plan.schedule.total_time, plan.labeled.n,
                                    crashes):
        model = ProtocolModel(plan, crash=scenario, fence_skew=fence_skew)
        report = explore(model, budget=budget, rejoin=rejoin)
        result.reports.append(report)
        result.scenarios += 1
        result.states += report.states
        result.transitions += report.transitions
        result.ample_states += report.ample_states
        result.fallback_states += report.fallback_states
        result.max_scenario_states = max(result.max_scenario_states,
                                         report.states)
        if not scenario:
            result.fault_free_states = report.states
        result.complete_terminals += report.quiescent.get("complete", 0)
        result.wavefront_terminals += report.quiescent.get("wavefront", 0)
        if report.counterexample is not None and result.counterexample is None:
            result.counterexample = report.counterexample
            break
    return result


#: The committed small-scope matrix (ISSUE 10 acceptance criteria).
MATRIX_FAMILIES: Tuple[str, ...] = ("path", "star", "complete")
MATRIX_SIZES: Tuple[int, ...] = (3, 4, 5)


def check_matrix(
    *,
    families: Sequence[str] = MATRIX_FAMILIES,
    sizes: Sequence[int] = MATRIX_SIZES,
    crashes: int = 1,
    budget: int = DEFAULT_BUDGET,
    rejoin: bool = True,
) -> Dict[str, FamilyCheck]:
    """Run the whole small-scope matrix; keyed ``"family:n"``."""
    results: Dict[str, FamilyCheck] = {}
    for family in families:
        for n in sizes:
            results[f"{family}:{n}"] = check_family(
                family, n, crashes=crashes, budget=budget, rejoin=rejoin
            )
    return results
