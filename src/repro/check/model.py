"""Abstract model of the runtime's online protocol state machines.

The model is the :mod:`repro.runtime` peer protocol with the *transport
erased*: the ack/retransmit machinery of
:class:`~repro.runtime.peer.GossipPeer` exists to turn at-least-once
datagram delivery into exactly-once token delivery, so the abstract
network holds a set of undelivered wire records ("tokens") and an
adversary chooses the delivery order.  Reordering, duplication and
bounded dropping at the wire all collapse onto that choice: a dropped
reliable record is retransmitted (same token, later delivery), and a
duplicated record is suppressed by the receiver's dedup — an equality
the explorer re-verifies at every delivery via
:meth:`ProtocolModel.apply_duplicate`.

What is *not* abstracted is the protocol logic itself.  A model peer is
the same fence-barrier loop as :meth:`GossipPeer.run_online`, and its
round-``t`` transmission is computed by replaying its delivered-token
history through a real :class:`~repro.core.online.OnlineProcessor` — the
model cannot drift from the (U3)/(U4)/(D2)/(D3) rules because it *runs*
them.  The conformance driver (:mod:`repro.check.replay`) closes the
remaining gap by comparing model executions against recorded
:class:`~repro.runtime.transport.NetChaos` runtime runs.

States are canonical hashable tuples (:class:`ModelState`), so the
explorer's visited set is a plain ``set``.  Safety invariants are
checked *inside* :meth:`ProtocolModel.apply` and returned as rendered
violation strings naming the offending wire record — the explorer turns
the first one into a :class:`~repro.check.explore.Counterexample`.

The ``fence_skew`` knob exists only so the checker can be proven able to
fail: ``fence_skew=1`` re-creates the classic off-by-one fence bug (a
barrier for round ``t`` also admits round-``t`` tokens), which the
fence-isolation invariant must catch with a minimal trace.  Production
code paths never set it.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, NamedTuple, Optional, Set, Tuple

from ..core.gossip import GossipPlan
from ..core.online import OnlineProcessor, _ChildInfo
from ..core.recovery import _tree_adjacency, plan_repair_rounds
from ..exceptions import ProtocolCheckError, SimulationError
from ..runtime.wire import DATA, FENCE, PHASE_ONLINE

__all__ = [
    "Token",
    "SentRecord",
    "PeerView",
    "ModelState",
    "Action",
    "ProtocolModel",
    "check_rejoin",
    "render_token",
]

#: Abstract wire record: the header fields of one reliable datagram.
#: ``payload`` is the DFS message label for DATA and ``None`` for FENCE
#: (mirroring the peer's token store, where a FENCE stores ``None``).
class Token(NamedTuple):
    kind: int
    phase: int
    round: int
    sender: int
    dst: int
    payload: Optional[int]


class SentRecord(NamedTuple):
    """One emitted multicast, in offline-schedule coordinates."""

    round: int
    sender: int
    message: int
    destinations: Tuple[int, ...]


class PeerView(NamedTuple):
    """Canonical state of one model peer (hashable, immutable).

    ``t`` is the next round-loop iteration to execute, exactly the loop
    variable of :meth:`~repro.runtime.peer.GossipPeer.run_online`;
    ``done`` marks a normal return, ``died_at`` a fail-stop.  ``tokens``
    is the post-dedup token store keyed ``(round, sender)``; ``delivered``
    the exact ``(time, sender, message)`` triples fed to the online
    processor — the same key :class:`OnlineProcessor` uses for its own
    duplicate detection, and sufficient to rebuild the processor.
    """

    t: int
    done: bool
    died_at: Optional[int]
    holds: int
    tokens: FrozenSet[Tuple[int, int, Optional[int]]]
    delivered: FrozenSet[Tuple[int, int, int]]


class ModelState(NamedTuple):
    """One global state: all peers, the in-flight tokens, the transcript."""

    peers: Tuple[PeerView, ...]
    flight: FrozenSet[Token]
    sent: FrozenSet[SentRecord]


#: ("deliver", token) or ("step", vertex) — the adversary's alphabet.
Action = Tuple[str, object]


class _ProcSpec(NamedTuple):
    """Constructor arguments of one vertex's :class:`OnlineProcessor`."""

    vertex: int
    n: int
    i: int
    j: int
    k: int
    parent: Optional[int]
    is_first_child: bool
    children: Tuple[_ChildInfo, ...]


class ProtocolModel:
    """The explorable model of one plan under one crash scenario.

    Parameters
    ----------
    plan:
        The offline :class:`~repro.core.gossip.GossipPlan` the runtime
        would execute; supplies the labelled tree, the horizon and the
        reference schedule.
    crash:
        ``(victim, round)`` pairs: each victim fail-stops upon reaching
        the given round, mirroring
        :meth:`~repro.runtime.transport.NetChaos.kill_round_of`
        semantics (deliveries already in flight still land; the victim
        neither sends nor receives afterwards).
    fence_skew:
        Test-only fault injection; see the module docstring.  Must stay
        0 everywhere outside the checker's own mutation tests.
    """

    def __init__(
        self,
        plan: GossipPlan,
        *,
        crash: Tuple[Tuple[int, int], ...] = (),
        fence_skew: int = 0,
    ) -> None:
        self.plan = plan
        self.n = plan.labeled.n
        self.horizon = plan.schedule.total_time
        self.fence_skew = fence_skew
        self.crash_round: Dict[int, int] = {}
        for victim, rnd in crash:
            if not 0 <= victim < self.n:
                raise ProtocolCheckError(
                    f"crash victim {victim} outside vertex range 0..{self.n - 1}"
                )
            self.crash_round[victim] = min(
                rnd, self.crash_round.get(victim, rnd)
            )

        labeled = plan.labeled
        tree = labeled.tree
        self._specs: List[_ProcSpec] = []
        self.neighbours: List[Tuple[int, ...]] = []
        self.labels: List[int] = []
        for v in range(self.n):
            block = labeled.block(v)
            children = tuple(
                _ChildInfo(
                    vertex=c,
                    i=labeled.block(c).i,
                    j=labeled.block(c).j,
                )
                for c in tree.children(v)
            )
            parent = None if tree.is_root(v) else tree.parent(v)
            self._specs.append(
                _ProcSpec(
                    vertex=v,
                    n=self.n,
                    i=block.i,
                    j=block.j,
                    k=block.k,
                    parent=parent,
                    is_first_child=block.is_first_child,
                    children=children,
                )
            )
            nbrs = [c.vertex for c in children]
            if parent is not None:
                nbrs.append(parent)
            self.neighbours.append(tuple(sorted(nbrs)))
            self.labels.append(block.i)

    # -- construction ---------------------------------------------------
    def initial(self) -> ModelState:
        """Every peer at round 0 holding its own message, nothing in flight."""
        peers = tuple(
            PeerView(
                t=0,
                done=False,
                died_at=None,
                holds=1 << self.labels[v],
                tokens=frozenset(),
                delivered=frozenset(),
            )
            for v in range(self.n)
        )
        return ModelState(peers=peers, flight=frozenset(), sent=frozenset())

    def _processor(self, v: int) -> OnlineProcessor:
        s = self._specs[v]
        return OnlineProcessor(
            vertex=s.vertex,
            n=s.n,
            i=s.i,
            j=s.j,
            k=s.k,
            parent=s.parent,
            is_first_child=s.is_first_child,
            children=list(s.children),
        )

    def _rebuild(self, v: int, delivered: FrozenSet[Tuple[int, int, int]],
                 upto: int) -> OnlineProcessor:
        """Replay ``v``'s delivery history through a fresh real processor.

        Interleaves receives and per-round transmission computation in
        the exact order :meth:`GossipPeer.run_online` produced them, so
        the stateful (D2) delay bookkeeping is bit-identical.  After the
        call, ``transmissions(upto)`` is the next thing the peer would
        compute.
        """
        proc = self._processor(v)
        by_time: Dict[int, List[Tuple[int, int]]] = {}
        for time, sender, message in delivered:
            by_time.setdefault(time, []).append((sender, message))
        for tau in range(upto + 1):
            for sender, message in sorted(by_time.get(tau, ())):
                proc.receive(tau, sender, message)
            if tau < upto:
                proc.transmissions(tau)
        return proc

    # -- enabledness ----------------------------------------------------
    def _barrier_tokens(
        self, peer: PeerView, v: int, t: int
    ) -> Optional[List[Token]]:
        """The tokens barrier ``t`` would consume, or None if unsatisfied.

        The real barrier (:meth:`GossipPeer._await_tokens`) admits only
        round ``t - 1`` tokens.  With the test-only ``fence_skew``
        mutation a round ``t - 1 + skew`` token also satisfies the
        barrier — the off-by-one the fence-isolation invariant exists to
        catch.
        """
        have = {(rnd, sender): payload for rnd, sender, payload in peer.tokens}
        chosen: List[Token] = []
        for u in self.neighbours[v]:
            rounds = [t - 1]
            if self.fence_skew:
                rounds.append(t - 1 + self.fence_skew)
            for rnd in rounds:
                if (rnd, u) in have:
                    payload = have[(rnd, u)]
                    kind = FENCE if payload is None else DATA
                    chosen.append(
                        Token(kind=kind, phase=PHASE_ONLINE, round=rnd,
                              sender=u, dst=v, payload=payload)
                    )
                    break
            else:
                return None
        return chosen

    def barrier_overadmission(self, state: ModelState, v: int) -> Optional[str]:
        """Check the fence-isolation hypothesis at a step-enabled state.

        The partial-order reduction (and the protocol's round fencing)
        rests on barriers being *exact*: barrier ``t`` is satisfied by
        the round-``t - 1`` token from each neighbour and by nothing
        else.  This probe removes each neighbour's round-``t - 1`` token
        in turn and asserts the barrier goes unsatisfied — if it stays
        satisfied, some other buffered record (necessarily of a
        different round) is being admitted, which is exactly the
        off-by-one fence bug: were that round-``t - 1`` delivery merely
        reordered to arrive later, the barrier would consume the wrong
        round's message.  Returns the rendered violation, or ``None``.
        """
        peer = state.peers[v]
        t = peer.t
        if t == 0 or peer.done or peer.died_at is not None:
            return None
        for u in self.neighbours[v]:
            reduced = peer._replace(
                tokens=frozenset(
                    tok for tok in peer.tokens
                    if not (tok[0] == t - 1 and tok[1] == u)
                )
            )
            chosen = self._barrier_tokens(reduced, v, t)
            if chosen is None:
                continue
            culprit = next(tok for tok in chosen if tok.sender == u)
            return (
                f"fence isolation broken at peer {v}: with the round-{t - 1} "
                f"record from peer {u} still in flight, the barrier for round "
                f"{t} is satisfied by {render_token(culprit)} — a "
                f"round-{culprit.round} message admitted into round {t}"
            )
        return None

    def step_enabled(self, state: ModelState, v: int) -> bool:
        """Whether peer ``v`` can execute its next round-loop iteration."""
        peer = state.peers[v]
        if peer.done or peer.died_at is not None:
            return False
        if peer.t == 0:
            return True
        return self._barrier_tokens(peer, v, peer.t) is not None

    def enabled(self, state: ModelState) -> List[Action]:
        """All enabled actions, in canonical (deterministic) order."""
        actions: List[Action] = [
            ("deliver", token) for token in sorted(state.flight)
        ]
        actions.extend(
            ("step", v) for v in range(self.n) if self.step_enabled(state, v)
        )
        return actions

    # -- transitions ----------------------------------------------------
    def apply(self, state: ModelState,
              action: Action) -> Tuple[ModelState, Tuple[str, ...]]:
        """Execute one action; returns the successor and any violations.

        Violations are rendered strings naming the offending wire record
        — protocol bugs are counterexample *data*, never exceptions
        (:class:`~repro.exceptions.ProtocolCheckError` is reserved for
        checker misuse, e.g. applying a disabled action).
        """
        kind, arg = action
        if kind == "deliver":
            assert isinstance(arg, Token)
            return self._apply_deliver(state, arg)
        if kind == "step":
            assert isinstance(arg, int)
            return self._apply_step(state, arg)
        raise ProtocolCheckError(f"unknown model action kind {kind!r}")

    def _apply_deliver(
        self, state: ModelState, token: Token
    ) -> Tuple[ModelState, Tuple[str, ...]]:
        if token not in state.flight:
            raise ProtocolCheckError(f"delivering a token not in flight: {token}")
        flight = state.flight - {token}
        peer = state.peers[token.dst]
        if peer.died_at is not None:
            # A fail-stopped transport hears nothing (PeerProtocol drops
            # receives after kill); the copy is consumed by the void.
            return ModelState(state.peers, flight, state.sent), ()
        key = (token.round, token.sender)
        if any((rnd, sender) == key for rnd, sender, _ in peer.tokens):
            # Duplicate of an already-buffered record: dedup suppresses.
            return ModelState(state.peers, flight, state.sent), ()
        tokens = peer.tokens | {(token.round, token.sender, token.payload)}
        peers = _replace_peer(state.peers, token.dst,
                              peer._replace(tokens=tokens))
        return ModelState(peers, flight, state.sent), ()

    def apply_duplicate(self, state: ModelState,
                        token: Token) -> Tuple[ModelState, Tuple[str, ...]]:
        """Deliver a straggler *copy* of an already-delivered record.

        The exactly-once invariant in constructive form: the explorer
        calls this after every real delivery and asserts the state is
        unchanged — at-least-once at the wire, exactly-once at the
        processor.
        """
        shadow = ModelState(state.peers, state.flight | {token}, state.sent)
        return self._apply_deliver(shadow, token)

    def _apply_step(
        self, state: ModelState, v: int
    ) -> Tuple[ModelState, Tuple[str, ...]]:
        peer = state.peers[v]
        violations: List[str] = []
        if peer.done or peer.died_at is not None:
            raise ProtocolCheckError(f"stepping finished/dead peer {v}")
        t = peer.t
        holds = peer.holds
        delivered = peer.delivered

        # 1. Fence barrier: consume one round-(t-1) token per neighbour
        #    and feed the DATA payloads into the processor at time t
        #    (GossipPeer._await_tokens + _deliver_online).
        if t > 0:
            chosen = self._barrier_tokens(peer, v, t)
            if chosen is None:
                raise ProtocolCheckError(f"stepping peer {v} with open barrier")
            new_triples: List[Tuple[int, int, int]] = []
            for token in chosen:
                if token.round != t - 1:
                    violations.append(
                        f"fence violation at peer {v}: barrier for round {t - 1} "
                        f"admitted {render_token(token)} into round {t} — a "
                        f"round-{token.round} message may only be delivered at "
                        f"round {token.round + 1}"
                    )
                if token.payload is not None:
                    triple = (t, token.sender, token.payload)
                    if triple not in delivered:
                        new_triples.append(triple)
                        holds |= 1 << token.payload
            delivered = delivered | frozenset(new_triples)
        if holds & peer.holds != peer.holds:
            violations.append(
                f"possession monotonicity violated at peer {v}: holds "
                f"{peer.holds:#x} shrank to {holds:#x} at round {t}"
            )

        # 2. Fail-stop check (before sending, mirroring run_online: the
        #    victim consumes in-flight deliveries, then goes dark).
        crash = self.crash_round.get(v)
        if crash is not None and t >= crash:
            # transport.kill() discards the socket and everything buffered;
            # clearing the token store canonicalises the abort state (what a
            # dead peer had buffered is unobservable).
            peers = _replace_peer(
                state.peers, v,
                peer._replace(holds=holds, delivered=delivered, died_at=t,
                              tokens=frozenset()),
            )
            return ModelState(peers, state.flight, state.sent), tuple(violations)

        # 3. Horizon: the final barrier has been consumed; nothing to send.
        if t == self.horizon:
            peers = _replace_peer(
                state.peers, v,
                peer._replace(holds=holds, delivered=delivered, done=True),
            )
            return ModelState(peers, state.flight, state.sent), tuple(violations)

        # 4. Compute the round-t multicast with the real processor.
        message: Optional[int] = None
        dests: Tuple[int, ...] = ()
        try:
            proc = self._rebuild(v, delivered, t)
            txs = proc.transmissions(t)
        except SimulationError as exc:
            violations.append(
                f"online-protocol violation at peer {v}, round {t}: {exc}"
            )
            txs = []
        if txs:
            message = txs[0].message
            dests = tuple(sorted(txs[0].destinations))

        sent = state.sent
        flight = state.flight
        if message is not None:
            if not holds >> message & 1:
                violations.append(
                    f"possession violation at peer {v}: sends message "
                    f"{message} at round {t} without holding it "
                    f"(receive-before-send)"
                )
            for record in state.sent:
                if record.round == t and set(record.destinations) & set(dests):
                    clash = sorted(set(record.destinations) & set(dests))
                    violations.append(
                        f"receiver clash at round {t}: peers {clash} receive "
                        f"both message {record.message} from {record.sender} "
                        f"and message {message} from {v} (one receive per "
                        f"round)"
                    )
                if record.round == t and record.sender == v:
                    violations.append(
                        f"sender clash at round {t}: peer {v} multicasts "
                        f"twice ({record.message} and {message})"
                    )
            sent = sent | {SentRecord(round=t, sender=v, message=message,
                                      destinations=dests)}
        new_tokens: List[Token] = []
        for u in self.neighbours[v]:
            if message is not None and u in dests:
                new_tokens.append(
                    Token(kind=DATA, phase=PHASE_ONLINE, round=t, sender=v,
                          dst=u, payload=message)
                )
            else:
                new_tokens.append(
                    Token(kind=FENCE, phase=PHASE_ONLINE, round=t, sender=v,
                          dst=u, payload=None)
                )
        flight = flight | frozenset(new_tokens)
        peers = _replace_peer(
            state.peers, v,
            peer._replace(t=t + 1, holds=holds, delivered=delivered),
        )
        return ModelState(peers, flight, sent), tuple(violations)

    # -- quiescence -----------------------------------------------------
    def classify_quiescent(self, state: ModelState) -> Tuple[str, Tuple[str, ...]]:
        """Classify a state with no enabled actions.

        Returns ``("complete", ())`` for the fault-free all-done terminal
        state, ``("wavefront", ())`` for the deterministic starvation
        front behind a fail-stop (every blocked peer waits, transitively,
        on a dead one — the state the runner's abort snapshots), and
        ``("deadlock", violations)`` for anything else.
        """
        violations: List[str] = []
        full = (1 << self.n) - 1
        blocked = [
            v for v, p in enumerate(state.peers)
            if not p.done and p.died_at is None
        ]
        if state.flight:
            violations.append(
                f"quiescent state with undelivered tokens: "
                f"{sorted(state.flight)}"
            )
        if not blocked:
            if any(p.died_at is not None for p in state.peers):
                return "wavefront", tuple(violations)
            incomplete = [
                v for v, p in enumerate(state.peers) if p.holds != full
            ]
            if incomplete:
                violations.append(
                    f"fault-free terminal state without all-hold-all: peers "
                    f"{incomplete} are incomplete"
                )
                return "deadlock", tuple(violations)
            return "complete", tuple(violations)
        # Blocked peers must each be starved by a dead or blocked
        # neighbour whose progress lags the barrier — the wavefront.
        blocked_set = set(blocked)
        for v in blocked:
            peer = state.peers[v]
            t = peer.t
            have = {(rnd, sender) for rnd, sender, _ in peer.tokens}
            missing = [
                u for u in self.neighbours[v] if (t - 1, u) not in have
            ]
            if not missing:
                violations.append(
                    f"deadlock: peer {v} has a satisfied barrier for round "
                    f"{t - 1} but cannot step"
                )
                continue
            for u in missing:
                up = state.peers[u]
                starved = (
                    (up.died_at is not None and up.died_at <= t - 1)
                    or (u in blocked_set and up.t <= t - 1)
                )
                if not starved:
                    violations.append(
                        f"deadlock: peer {v} waits at round {t - 1} for a "
                        f"token from peer {u}, which is neither dead before "
                        f"round {t - 1} nor blocked behind it"
                    )
        if violations:
            return "deadlock", tuple(violations)
        if not self.crash_round:
            violations.append(
                "fault-free exploration reached a blocked state: peers "
                f"{blocked} cannot step and nothing is in flight"
            )
            return "deadlock", tuple(violations)
        return "wavefront", tuple(violations)

    # -- reference predictions (real-code cross-checks) -----------------
    def victim_holds_truncated(self, vertex: int, death_round: int) -> int:
        """Holds of a peer dead at ``death_round``, from the offline schedule.

        The same truncation :meth:`Supervisor._victim_holds` uses to
        reconstruct a SIGKILLed child's state — the wavefront-determinism
        check pins the model's abort states to it.
        """
        holds = 1 << self.labels[vertex]
        for t, rnd in enumerate(self.plan.schedule.rounds):
            if t + 1 > death_round:
                break
            for tx in rnd:
                if vertex in tx.destinations:
                    holds |= 1 << tx.message
        return holds

    def offline_records(self) -> FrozenSet[SentRecord]:
        """The offline schedule as :class:`SentRecord` rows (fault-free ref)."""
        records: List[SentRecord] = []
        for t, rnd in enumerate(self.plan.schedule.rounds):
            for tx in rnd:
                records.append(
                    SentRecord(round=t, sender=tx.sender, message=tx.message,
                               destinations=tuple(sorted(tx.destinations)))
                )
        return frozenset(records)


def _replace_peer(peers: Tuple[PeerView, ...], v: int,
                  new: PeerView) -> Tuple[PeerView, ...]:
    return peers[:v] + (new,) + peers[v + 1:]


def render_token(token: Token) -> str:
    """Render a token the way it would appear on the wire (for traces)."""
    kind = {DATA: "DATA", FENCE: "FENCE"}.get(token.kind, f"kind={token.kind}")
    payload = "" if token.payload is None else f", message={token.payload}"
    return (
        f"{kind}(round={token.round}, {token.sender}->{token.dst}{payload})"
    )


def check_rejoin(
    model: ProtocolModel, state: ModelState, *, max_rounds: Optional[int] = None
) -> Tuple[str, ...]:
    """Verify the rejoin path from one crash-scenario abort state.

    Mirrors the supervisor's restart resolution: the (single) victim is
    reborn owning nothing but its own message, pulls a live tree
    neighbour's hold bitset in 16-bit ``RESYNC`` chunks, and the whole
    fleet runs a :func:`~repro.core.recovery.plan_repair_rounds`
    completion schedule inside the supervisor's ``4n + 16`` budget.

    Checks, for *every* possible resync source (the supervisor picks
    one; the model quantifies over the choice):

    * each RESYNC chunk is a subset of the serving peer's true holds at
      serve time (the state transfer can never fabricate possession);
    * every repair-round send satisfies receive-before-send and the
      one-send/one-receive communication rules;
    * full gossip re-completes within the budget.

    Returns rendered violations (empty = the rejoin contract holds).
    """
    violations: List[str] = []
    dead = [v for v, p in enumerate(state.peers) if p.died_at is not None]
    if len(dead) != 1:
        return ()
    victim = dead[0]
    n = model.n
    full = (1 << n) - 1
    budget = max_rounds if max_rounds is not None else 4 * n + 16
    adjacency = _tree_adjacency(model.plan.tree)
    live_neighbours = [
        u for u in model.neighbours[victim]
        if state.peers[u].died_at is None
    ]
    if not live_neighbours:
        violations.append(
            f"rejoin: victim {victim} has no live tree neighbour to resync from"
        )
    for source in live_neighbours:
        source_holds = state.peers[source].holds
        merged = 1 << model.labels[victim]
        for c in range((n + 15) // 16):
            chunk = source_holds >> (16 * c) & 0xFFFF
            if chunk & ~(source_holds >> (16 * c)) & 0xFFFF:
                violations.append(
                    f"RESYNC chunk {c} from peer {source} carries bits "
                    f"{chunk:#x} outside its true holds "
                    f"{source_holds:#x}"
                )
            merged |= chunk << (16 * c)
        if merged & ~(source_holds | 1 << model.labels[victim]):
            violations.append(
                f"rejoin: victim {victim} resynced to {merged:#x}, more than "
                f"source {source}'s holds plus its own message"
            )
        holds = [p.holds for p in state.peers]
        holds[victim] = merged
        rounds = plan_repair_rounds(
            adjacency, holds, n, max_rounds=budget
        )
        for t, rnd in enumerate(rounds):
            receiving: Set[int] = set()
            senders: Set[int] = set()
            for tx in rnd:
                if tx.sender in senders:
                    violations.append(
                        f"rejoin repair round {t}: peer {tx.sender} sends twice"
                    )
                senders.add(tx.sender)
                if not holds[tx.sender] >> tx.message & 1:
                    violations.append(
                        f"rejoin repair round {t}: peer {tx.sender} sends "
                        f"message {tx.message} without holding it"
                    )
                for d in tx.destinations:
                    if d in receiving:
                        violations.append(
                            f"rejoin repair round {t}: peer {d} receives twice"
                        )
                    receiving.add(d)
            for tx in rnd:
                for d in tx.destinations:
                    holds[d] |= 1 << tx.message
        if len(rounds) > budget or any(h != full for h in holds):
            short = [v for v, h in enumerate(holds) if h != full]
            violations.append(
                f"rejoin from source {source} did not re-complete full gossip "
                f"within {budget} repair rounds (incomplete peers: {short})"
            )
    return tuple(violations)
