"""Conformance replay: pin the abstract model to the real runtime.

The model checker's guarantees are only as good as the model's fidelity,
so this module closes the loop the other way: it *runs the real thing*
— :func:`repro.runtime.runner.run_gossip_network` over localhost UDP
under a seeded :class:`~repro.runtime.transport.NetChaos` profile (and
:func:`repro.runtime.supervisor.run_gossip_processes` for the rejoin
path) — then replays the same scenario through
:class:`~repro.check.model.ProtocolModel` and demands *exact* state
agreement:

* the recorded phase-1 transcript must equal the model's emitted
  multicast set, record for record;
* the recorded hold bitsets, death set, completion flag, and round
  count must equal the model's quiescent state;
* for kill runs, the recorded survival transcript must be a
  possession-respecting completion of the model's abort state, landing
  exactly on the recorded final holds;
* for supervised rejoin runs, the model's rejoin contract
  (:func:`~repro.check.model.check_rejoin`) must certify the recovery
  the supervisor actually performed.

Drops, delays and duplicates vanish into the model's delivery-order
abstraction — a lossy seeded run must still conform exactly, which is
precisely the claim that the reliability layer implements exactly-once
ordered-per-round delivery.  Any divergence is rendered as a mismatch
string; an empty report means the recording and the model agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.gossip import GossipPlan, gossip
from ..core.recovery import _tree_adjacency
from ..exceptions import ProtocolCheckError
from ..runtime.clock import ScaledClock
from ..runtime.peer import RuntimeConfig, TranscriptEntry
from ..runtime.runner import RuntimeResult, run_gossip_network
from ..runtime.transport import NetChaos
from .model import ModelState, ProtocolModel, check_rejoin

__all__ = [
    "ConformanceCase",
    "ConformanceReport",
    "canonical_quiescent",
    "default_cases",
    "replay_case",
    "replay_rejoin",
    "replay_result",
    "run_conformance",
]

#: Runtime knobs for conformance runs: aggressive retransmit, a failure
#: detector slow enough that lossy links are never falsely accused, and
#: deadlines far above anything a small fleet needs.
CONFORMANCE_CONFIG = dict(
    ack_timeout=0.02,
    heartbeat_interval=0.25,
    fail_after=1.5,
    round_timeout=30.0,
    run_timeout=240.0,
)

#: Virtual-clock scale: every wait above shrinks 10x in wall time.
CONFORMANCE_SCALE = 0.1


@dataclass(frozen=True)
class ConformanceCase:
    """One seeded scenario: a family spec plus a chaos profile."""

    name: str
    spec: str
    seed: int
    drop_rate: float = 0.0
    delay_rate: float = 0.0
    delay_max: float = 0.02
    kill: Tuple[Tuple[int, int], ...] = ()

    def chaos(self) -> NetChaos:
        return NetChaos(
            seed=self.seed,
            drop_rate=self.drop_rate,
            delay_rate=self.delay_rate,
            delay_max=self.delay_max,
            kill=self.kill,
        )


@dataclass
class ConformanceReport:
    """Outcome of replaying one recorded run through the model."""

    case: ConformanceCase
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches


def canonical_quiescent(model: ProtocolModel) -> ModelState:
    """One deterministic maximal run of the model (deliver-first order).

    The model is confluent (the explorer certifies as much), so any
    schedule reaches the same quiescent state; the canonical one
    delivers the least in-flight token when possible, else steps the
    least enabled peer.  A violation along this run means the *model*
    found a protocol bug while replaying — that is an exploration
    matter, so it surfaces as :class:`ProtocolCheckError` here.
    """
    state = model.initial()
    while True:
        enabled = model.enabled(state)
        if not enabled:
            kind, violations = model.classify_quiescent(state)
            if violations:
                raise ProtocolCheckError(
                    f"canonical replay reached an invalid {kind} state: "
                    f"{violations[0]}"
                )
            return state
        state, violations = model.apply(state, enabled[0])
        if violations:
            raise ProtocolCheckError(
                f"canonical replay hit a model violation: {violations[0]}"
            )


def _records(entries: Sequence[TranscriptEntry]) -> List[Tuple[int, int, int, Tuple[int, ...]]]:
    return sorted(
        (e.round, e.sender, e.message, tuple(sorted(e.destinations)))
        for e in entries
    )


def _apply_survival(
    holds: List[int],
    entries: Sequence[TranscriptEntry],
    dead: Sequence[int],
) -> List[str]:
    """Execute a recorded survival transcript over model holds, strictly.

    Receives land at the end of each round, so a message may only be
    relayed a round after it arrived — the same possession discipline
    the online phase enforces.
    """
    problems: List[str] = []
    by_round: Dict[int, List[TranscriptEntry]] = {}
    for entry in entries:
        by_round.setdefault(entry.round, []).append(entry)
    buried = set(dead)
    for rnd in sorted(by_round):
        landed: List[Tuple[int, int]] = []
        for entry in by_round[rnd]:
            if entry.sender in buried or buried & set(entry.destinations):
                problems.append(
                    f"survival round {rnd}: recorded transmission touches a "
                    f"dead peer ({entry.sender} -> "
                    f"{sorted(entry.destinations)})"
                )
            if not holds[entry.sender] >> entry.message & 1:
                problems.append(
                    f"survival round {rnd}: peer {entry.sender} relays "
                    f"message {entry.message} without holding it at the "
                    f"model's abort state"
                )
            for d in entry.destinations:
                landed.append((d, entry.message))
        for d, message in landed:
            holds[d] |= 1 << message
    return problems


def replay_result(
    plan: GossipPlan,
    result: RuntimeResult,
    *,
    kill: Tuple[Tuple[int, int], ...] = (),
) -> List[str]:
    """Replay one recorded runtime result through the model; return diffs."""
    model = ProtocolModel(plan, crash=kill)
    final = canonical_quiescent(model)
    mismatches: List[str] = []

    model_transcript = sorted(
        (r.round, r.sender, r.message, r.destinations) for r in final.sent
    )
    real_transcript = _records(result.transcript)
    if model_transcript != real_transcript:
        missing = [r for r in model_transcript if r not in real_transcript]
        extra = [r for r in real_transcript if r not in model_transcript]
        mismatches.append(
            f"phase-1 transcript diverges: runtime is missing "
            f"{missing[:3]}, runtime adds {extra[:3]}"
        )

    model_dead = tuple(
        v for v, p in enumerate(final.peers) if p.died_at is not None
    )
    if tuple(sorted(result.dead)) != model_dead:
        mismatches.append(
            f"death sets diverge: runtime buried {sorted(result.dead)}, "
            f"model {list(model_dead)}"
        )

    model_complete = not model_dead
    if bool(result.complete) != model_complete:
        mismatches.append(
            f"completion diverges: runtime complete={result.complete}, "
            f"model complete={model_complete}"
        )

    horizon = model.horizon
    model_rounds = max(
        (
            horizon if p.done else p.t
            for v, p in enumerate(final.peers)
            if p.died_at is None
        ),
        default=0,
    )
    if result.rounds_completed != model_rounds:
        mismatches.append(
            f"round counts diverge: runtime completed "
            f"{result.rounds_completed} rounds, model {model_rounds}"
        )

    holds = [p.holds for p in final.peers]
    if kill:
        mismatches.extend(
            _apply_survival(holds, result.survival_transcript, model_dead)
        )
    if list(result.final_holds) != holds:
        diverging = [
            v for v, (a, b) in enumerate(zip(result.final_holds, holds))
            if a != b
        ]
        mismatches.append(
            f"hold bitsets diverge at peers {diverging}: runtime "
            f"{[hex(h) for h in result.final_holds]}, model "
            f"{[hex(h) for h in holds]}"
        )
    return mismatches


def replay_case(
    case: ConformanceCase, *, time_scale: float = CONFORMANCE_SCALE
) -> ConformanceReport:
    """Record one seeded runtime run and replay it through the model."""
    plan = gossip(case.spec)
    result = run_gossip_network(
        plan,
        chaos=case.chaos(),
        config=RuntimeConfig(seed=case.seed, **CONFORMANCE_CONFIG),
        clock=ScaledClock(time_scale),
    )
    return ConformanceReport(
        case=case, mismatches=replay_result(plan, result, kill=case.kill)
    )


def replay_rejoin(
    spec: str,
    seed: int,
    victim: int,
    round_: int,
    *,
    time_scale: float = 0.25,
) -> ConformanceReport:
    """Record a supervised SIGKILL + restart-with-rejoin run; replay it.

    The supervised path loses the victim's own phase-1 snapshot (the
    process is SIGKILLed), reconstructs its holds from the truncated
    offline schedule, resyncs from its first live tree neighbour, and
    scripts a repair-round completion.  The replay mirrors each step
    from the model's abort state: the surviving transcript, the
    supervisor's deterministic resync-source choice, the possession
    discipline of the recorded repair rounds, and re-completion inside
    the ``4n + 16`` budget — while :func:`check_rejoin` certifies that
    the contract would have held for *any* source choice.
    """
    from ..runtime.supervisor import RestartPolicy, run_gossip_processes

    case = ConformanceCase(
        f"{spec}/rejoin@{round_}", spec, seed,
        kill=((victim, round_),),
    )
    plan = gossip(spec)
    result = run_gossip_processes(
        plan,
        chaos=NetChaos(seed=seed, sigkill=((victim, round_),)),
        config=RuntimeConfig(
            seed=seed,
            heartbeat_interval=0.25,
            fail_after=1.5,
            round_timeout=60.0,
            run_timeout=600.0,
        ),
        policy=RestartPolicy(mode="restart", max_restarts=3),
        time_scale=time_scale,
    )
    model = ProtocolModel(plan, crash=case.kill)
    final = canonical_quiescent(model)
    mismatches: List[str] = []

    if result.mode != "rejoin" or not result.complete:
        mismatches.append(
            f"supervised run resolved as mode={result.mode!r} "
            f"complete={result.complete}, expected a completed rejoin"
        )
        return ConformanceReport(case=case, mismatches=mismatches)

    # Phase 1: the runtime's transcript is the model's minus the
    # victim's sends (SIGKILL destroys the victim's snapshot).
    model_transcript = sorted(
        (r.round, r.sender, r.message, r.destinations)
        for r in final.sent if r.sender != victim
    )
    if model_transcript != _records(result.transcript):
        mismatches.append(
            "surviving phase-1 transcript diverges from the model's "
            "abort-state transcript"
        )

    # Rejoin: mirror the supervisor's resolution from the model state.
    holds = [p.holds for p in final.peers]
    adjacency = _tree_adjacency(plan.tree)
    source = next(u for u in adjacency[victim] if u != victim)
    holds[victim] = (1 << model.labels[victim]) | holds[source]
    mismatches.extend(
        _apply_survival(holds, result.survival_transcript, dead=())
    )
    if list(result.final_holds) != holds:
        mismatches.append(
            f"post-rejoin holds diverge: runtime "
            f"{[hex(h) for h in result.final_holds]}, model "
            f"{[hex(h) for h in holds]}"
        )
    full = (1 << model.n) - 1
    if any(h != full for h in holds):
        mismatches.append("model replay of the rejoin did not re-complete")
    budget = 4 * model.n + 16
    if result.survival_rounds > budget:
        mismatches.append(
            f"recorded repair took {result.survival_rounds} rounds, over "
            f"the {budget} budget"
        )
    mismatches.extend(check_rejoin(model, final))
    return ConformanceReport(case=case, mismatches=mismatches)


def default_cases() -> List[ConformanceCase]:
    """The committed conformance corpus: ≥50 seeded scenarios.

    Per family instance: one clean run, one lossy run (drops force the
    retransmit path), one reordering run (delays force out-of-order
    delivery), and one kill run (crash-at-round; the victim is chosen
    so the survivors stay connected).  Seeds are all distinct so every
    recording exercises a different chaos draw sequence.
    """
    instances: List[Tuple[str, int]] = [
        ("path:3", 2), ("path:4", 3), ("path:5", 4), ("path:6", 5),
        ("star:4", 3), ("star:5", 4), ("star:6", 5),
        ("complete:4", 3), ("complete:5", 4),
        ("cycle:5", 2), ("cycle:6", 3),
        ("grid:9", 8),
    ]
    cases: List[ConformanceCase] = []
    seed = 100
    for spec, victim in instances:
        seed += 1
        cases.append(ConformanceCase(f"{spec}/clean", spec, seed))
        seed += 1
        cases.append(
            ConformanceCase(f"{spec}/drop", spec, seed, drop_rate=0.12)
        )
        seed += 1
        cases.append(
            ConformanceCase(
                f"{spec}/delay", spec, seed, delay_rate=0.3, delay_max=0.05
            )
        )
        seed += 1
        cases.append(
            ConformanceCase(
                f"{spec}/kill", spec, seed, kill=((victim, 1),)
            )
        )
    for spec, victim, rnd in [("grid:9", 0, 0), ("cycle:6", 2, 2),
                              ("complete:5", 1, 3)]:
        seed += 1
        cases.append(
            ConformanceCase(
                f"{spec}/kill@{rnd}", spec, seed, kill=((victim, rnd),)
            )
        )
    return cases


def run_conformance(
    cases: Optional[Sequence[ConformanceCase]] = None,
    *,
    time_scale: float = CONFORMANCE_SCALE,
) -> List[ConformanceReport]:
    """Replay every case; reports in corpus order."""
    chosen = default_cases() if cases is None else list(cases)
    return [replay_case(case, time_scale=time_scale) for case in chosen]
