"""AST conventions + concurrency lint for ``src/repro`` (stdlib only).

The repository's conventions gate, promoted from
``scripts/check_conventions.py`` (which remains as a thin shim).  The
original seven rules are unchanged:

1. **Typed exceptions** — every ``raise SomeException(...)`` must use an
   exception defined by the library (all of which derive from
   ``ReproError``), never a bare builtin.  ``TypeError`` is allowlisted:
   the deprecated-positional-call shims in ``repro.core.gossip``
   deliberately mirror Python's own signature errors.  Bare ``raise``
   re-raises are always fine.
2. **No ``bin(x).count("1")``** — popcounts use ``int.bit_count()``.
3. **Keyword-only public API calls** — calls to ``gossip`` /
   ``gossip_on_tree`` pass at most one positional argument and
   ``.execute()`` method calls pass none.
4. **No Python loops in core hot paths** — the schedule-construction
   modules build schedules as flat numpy arrays; loops are only allowed
   in ``*_builder`` reference functions or under a justified
   ``hot-loop-ok`` docstring marker.
5. **Clock discipline in the runtime** — every time-dependent call goes
   through the injectable :class:`repro.runtime.clock.Clock`.
6. **Seeded randomness in the randomized baselines** — all draws flow
   through the splitmix64 streams of ``repro.core.rng``.
7. **Process discipline in the runtime** — only ``supervisor.py`` and
   ``proc.py`` may touch process machinery.

New concurrency dataflow rules (this module):

8. **Lock-guarded attributes stay under the lock** (``service/``) — an
   attribute of a class that is ever *written or mutated* inside a
   ``with self._lock`` block (outside ``__init__``) is lock-guarded;
   any access to it outside a with-lock block in a non-``__init__``
   method is a race.  Reads of immutable references assigned only in
   ``__init__`` are deliberately not guarded — the rule keys on writes,
   which is what the lock exists to serialise.
9. **No ``await`` while holding a lock** (``runtime/``) — suspending
   inside ``with``/``async with`` on a lock-ish attribute lets another
   task interleave on the protected state (or deadlock on the same
   lock).
10. **Supervisor pipe protocol ordering** (``supervisor.py`` /
    ``proc.py``) — within one function, control-pipe sends of the
    rendezvous tags must follow HELLO → ADDRS → START; a child hears
    its address book before the start gun, never after.
11. **No blocking calls in async functions** (``runtime/``) — a
    ``connection.recv()`` / socket ``accept``/``sendall`` /
    ``time.sleep`` / ``select.select`` inside an ``async def`` stalls
    the whole event loop.

Plus one repository-hygiene rule, checked when run from the repo root:

12. **No tracked compiled artifacts** — ``git ls-files`` must list no
    ``*.pyc`` / ``__pycache__`` entries.

Exit status: 0 when clean, 1 with one ``file:line: message`` per
violation on stdout.  Run from the repository root::

    python -m repro.check.codelint
    python -m repro.check.codelint src/repro/service  # narrower scope
"""

from __future__ import annotations

import ast
import builtins
import pathlib
import subprocess
import sys
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

__all__ = [
    "Violation",
    "check_file",
    "collect_violations",
    "main",
    "tracked_artifact_violations",
]

#: Builtin exception raises that stay legal in library code.
ALLOWED_BUILTIN_RAISES = {"TypeError"}

#: Public API callables whose calls must be keyword-only past the first
#: positional argument (functions) or past zero (methods).
KEYWORD_ONLY_FUNCTIONS = {"gossip": 1, "gossip_on_tree": 1}
KEYWORD_ONLY_METHODS = {"execute": 0}

#: ``core/`` modules where Python-level loops are banned (vectorised
#: schedule construction) unless explicitly exempted.
HOT_PATH_MODULES = {
    "propagate_up.py",
    "propagate_down.py",
    "concurrent_updown.py",
}

#: Docstring marker exempting one function from the hot-path loop rule.
HOT_LOOP_MARKER = "hot-loop-ok"

#: ``module.attr`` calls forbidden in ``src/repro/runtime`` outside
#: ``clock.py`` (the injectable-clock discipline, rule 5).
BARE_CLOCK_CALLS = {
    ("asyncio", "sleep"),
    ("asyncio", "wait_for"),
    ("time", "time"),
    ("time", "monotonic"),
}

#: ``core/`` modules whose randomness must come from ``repro.core.rng``
#: (rule 6): any mention of the stdlib ``random`` / ``numpy.random``
#: modules is forbidden.
SEEDED_RNG_MODULES = {
    "epidemic.py",
    "coded.py",
    "rng.py",
}

#: Runtime modules allowed to touch process machinery (rule 7): the
#: supervision tree's own two halves.
PROCESS_MODULES = {"supervisor.py", "proc.py"}

#: Module imports forbidden in the rest of ``src/repro/runtime``.
PROCESS_IMPORTS = ("multiprocessing", "signal")

#: ``os.<attr>`` calls forbidden there for the same reason.
PROCESS_OS_CALLS = {"fork", "forkpty", "kill", "killpg"}

#: Method calls that mutate a container in place (rule 8: a call like
#: ``self._inflight.pop(key)`` under the lock marks ``_inflight`` as
#: lock-guarded just as an assignment would).
MUTATING_METHODS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend",
    "insert", "pop", "popitem", "popleft", "remove", "setdefault",
    "update",
})

#: Control-pipe rendezvous tags in protocol order (rule 10).
PIPE_PROTOCOL_ORDER = {"HELLO": 0, "ADDRS": 1, "START": 2}

#: Callable names that put a tuple on a control pipe (rule 10).
PIPE_SEND_NAMES = {"send", "_send", "_broadcast", "_safe_send"}

#: Method names that block the calling thread (rule 11).
BLOCKING_METHODS = frozenset({
    "accept", "connect", "listen", "recv", "recv_bytes", "sendall",
})

#: ``module.attr`` calls that block the calling thread (rule 11).
BLOCKING_MODULE_CALLS = {("time", "sleep"), ("select", "select")}

Violation = Tuple[pathlib.Path, int, str]


def _builtin_exception_names() -> FrozenSet[str]:
    return frozenset(
        name
        for name in dir(builtins)
        if isinstance(getattr(builtins, name), type)
        and issubclass(getattr(builtins, name), BaseException)
    )


BUILTIN_EXCEPTIONS = _builtin_exception_names()


def _raised_name(node: ast.Raise) -> str:
    """The name being raised, or '' for bare/complex raises."""
    exc = node.exc
    if exc is None:
        return ""  # bare re-raise
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    return ""  # attribute raises (module.Error) are library-defined


def _is_hot_path(path: pathlib.Path) -> bool:
    return path.name in HOT_PATH_MODULES and path.parent.name == "core"


def _needs_clock_discipline(path: pathlib.Path) -> bool:
    return path.parent.name == "runtime" and path.name != "clock.py"


def _needs_seeded_rng(path: pathlib.Path) -> bool:
    return path.name in SEEDED_RNG_MODULES and path.parent.name == "core"


def _needs_process_discipline(path: pathlib.Path) -> bool:
    return path.parent.name == "runtime" and path.name not in PROCESS_MODULES


def _needs_lock_discipline(path: pathlib.Path) -> bool:
    return path.parent.name == "service"


def _needs_async_discipline(path: pathlib.Path) -> bool:
    return path.parent.name == "runtime"


def _needs_pipe_discipline(path: pathlib.Path) -> bool:
    return path.name in PROCESS_MODULES and path.parent.name == "runtime"


def _process_violations(
    path: pathlib.Path, node: ast.AST
) -> Iterator[Violation]:
    """Rule 7: process machinery only in supervisor.py / proc.py."""
    message = (
        "process machinery outside the supervision tree; spawning or "
        "signalling belongs in repro.runtime.supervisor / proc so every "
        "death is detected, journaled, and resolved"
    )
    if isinstance(node, ast.Import):
        for alias in node.names:
            if alias.name.split(".")[0] in PROCESS_IMPORTS:
                yield (path, node.lineno, message)
    elif isinstance(node, ast.ImportFrom):
        module = node.module or ""
        if module.split(".")[0] in PROCESS_IMPORTS:
            yield (path, node.lineno, message)
    elif isinstance(node, ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in PROCESS_OS_CALLS
            and isinstance(func.value, ast.Name)
            and func.value.id == "os"
        ):
            yield (path, node.lineno, message)


def _seeded_rng_violations(
    path: pathlib.Path, node: ast.AST
) -> Iterator[Violation]:
    """Rule 6: no stdlib/numpy randomness in the randomized baselines."""
    message = (
        "unseeded randomness source in a randomized-baseline module; "
        "use the splitmix64 streams in repro.core.rng"
    )
    if isinstance(node, ast.Import):
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("numpy.random"):
                yield (path, node.lineno, message)
    elif isinstance(node, ast.ImportFrom):
        module = node.module or ""
        if module == "random" or module.startswith("numpy.random"):
            yield (path, node.lineno, message)
        elif module == "numpy" and any(a.name == "random" for a in node.names):
            yield (path, node.lineno, message)
    elif (
        isinstance(node, ast.Attribute)
        and node.attr == "random"
        and isinstance(node.value, ast.Name)
        and node.value.id in {"np", "numpy"}
    ):
        yield (path, node.lineno, message)


def _hot_loop_violations(
    path: pathlib.Path, scope: ast.AST, exempt: bool
) -> Iterator[Violation]:
    """Flag ``for``/``while`` under ``scope`` unless exempted.

    Exemption is per *function* — a ``*_builder`` name or a
    ``hot-loop-ok`` docstring marker — and extends to functions nested
    inside an exempt one (helpers of a reference implementation).
    """
    for node in ast.iter_child_nodes(scope):
        child_exempt = exempt
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            doc = ast.get_docstring(node) or ""
            child_exempt = (
                exempt
                or node.name.endswith("_builder")
                or HOT_LOOP_MARKER in doc
            )
        elif isinstance(node, (ast.For, ast.AsyncFor, ast.While)) and not exempt:
            yield (
                path,
                node.lineno,
                "Python loop in a core hot path; vectorise it, or exempt "
                "the function (name it *_builder for a reference "
                f"implementation, or justify a '{HOT_LOOP_MARKER}' marker "
                "in its docstring)",
            )
        yield from _hot_loop_violations(path, node, child_exempt)


def _check_clock_call(path: pathlib.Path, node: ast.Call) -> Iterator[Violation]:
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and (func.value.id, func.attr) in BARE_CLOCK_CALLS
    ):
        yield (
            path,
            node.lineno,
            f"bare {func.value.id}.{func.attr}() in the runtime; route it "
            "through the injectable Clock (repro.runtime.clock) so the "
            "ScaledClock test double still governs every wait",
        )


def _check_call(path: pathlib.Path, node: ast.Call) -> Iterator[Violation]:
    func = node.func
    # bin(x).count(...) — the pre-bit_count popcount idiom
    if (
        isinstance(func, ast.Attribute)
        and func.attr == "count"
        and isinstance(func.value, ast.Call)
        and isinstance(func.value.func, ast.Name)
        and func.value.func.id == "bin"
    ):
        yield (
            path,
            node.lineno,
            'popcount via bin(x).count("1"); use int.bit_count()',
        )
    # keyword-only public API calls
    if isinstance(func, ast.Name) and func.id in KEYWORD_ONLY_FUNCTIONS:
        limit = KEYWORD_ONLY_FUNCTIONS[func.id]
        if len(node.args) > limit:
            yield (
                path,
                node.lineno,
                f"{func.id}() called with {len(node.args)} positional "
                f"arguments; everything after the first is keyword-only",
            )
    elif isinstance(func, ast.Attribute) and func.attr in KEYWORD_ONLY_METHODS:
        limit = KEYWORD_ONLY_METHODS[func.attr]
        if len(node.args) > limit:
            yield (
                path,
                node.lineno,
                f".{func.attr}() called with positional arguments; "
                f"its options are keyword-only",
            )


# ---------------------------------------------------------------------------
# Rule 8: lock-guarded attributes (service/)
# ---------------------------------------------------------------------------

def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.X`` -> ``"X"``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _is_lock_expr(node: ast.expr) -> bool:
    """Whether a with-item context expression is a lock-ish self attribute."""
    attr = _self_attr(node)
    if attr is None and isinstance(node, ast.Call):
        # with self._lock.acquire_timeout(...) style wrappers
        attr = _self_attr(node.func)
    return attr is not None and "lock" in attr.lower()


class _Access:
    """One touch of ``self.X``: where, whether under a lock, write or read."""

    __slots__ = ("attr", "lineno", "locked", "write")

    def __init__(self, attr: str, lineno: int, locked: bool, write: bool) -> None:
        self.attr = attr
        self.lineno = lineno
        self.locked = locked
        self.write = write


def _scan_accesses(node: ast.AST, locked: bool, out: List[_Access]) -> None:
    """Record every self-attribute access under ``node``, lock-aware."""
    if isinstance(node, (ast.With, ast.AsyncWith)):
        inner = locked or any(
            _is_lock_expr(item.context_expr) for item in node.items
        )
        for child in ast.iter_child_nodes(node):
            _scan_accesses(child, inner, out)
        return
    attr = _self_attr(node)
    if attr is not None:
        assert isinstance(node, ast.Attribute)
        write = isinstance(node.ctx, (ast.Store, ast.Del))
        out.append(_Access(attr, node.lineno, locked, write))
    if isinstance(node, ast.Subscript) and isinstance(
        node.ctx, (ast.Store, ast.Del)
    ):
        target = _self_attr(node.value)
        if target is not None:
            out.append(_Access(target, node.lineno, locked, True))
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in MUTATING_METHODS:
            target = _self_attr(node.func.value)
            if target is not None:
                out.append(_Access(target, node.lineno, locked, True))
    for child in ast.iter_child_nodes(node):
        _scan_accesses(child, locked, out)


def _lock_guard_violations(
    path: pathlib.Path, tree: ast.Module
) -> Iterator[Violation]:
    """Rule 8: attributes written under ``self._lock`` never escape it."""
    for cls in ast.walk(tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        accesses: Dict[str, List[_Access]] = {}
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            out: List[_Access] = []
            for stmt in method.body:
                _scan_accesses(stmt, False, out)
            accesses[method.name] = out
        guarded: Set[str] = set()
        for name, touches in accesses.items():
            if name == "__init__":
                continue
            for access in touches:
                if access.write and access.locked and "lock" not in access.attr.lower():
                    guarded.add(access.attr)
        for name, touches in sorted(accesses.items()):
            if name == "__init__":
                continue
            for access in touches:
                if access.attr in guarded and not access.locked:
                    yield (
                        path,
                        access.lineno,
                        f"self.{access.attr} is lock-guarded (written under "
                        f"the lock elsewhere in {cls.name}) but touched "
                        f"outside a with-lock block in {name}(); hold the "
                        f"lock for every access",
                    )


# ---------------------------------------------------------------------------
# Rule 9: no await while holding a lock (runtime/)
# ---------------------------------------------------------------------------

def _await_under_lock(node: ast.AST, locked: bool) -> Iterator[int]:
    if isinstance(node, (ast.With, ast.AsyncWith)):
        locked = locked or any(
            _is_lock_expr(item.context_expr) for item in node.items
        )
    elif isinstance(node, ast.Await) and locked:
        yield node.lineno
    elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        # A nested function body runs later, under its own locks.
        return
    for child in ast.iter_child_nodes(node):
        yield from _await_under_lock(child, locked)


def _await_lock_violations(
    path: pathlib.Path, tree: ast.Module
) -> Iterator[Violation]:
    """Rule 9: suspending inside a with-lock block invites interleaving."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.AsyncFunctionDef):
            continue
        for stmt in node.body:
            for lineno in _await_under_lock(stmt, False):
                yield (
                    path,
                    lineno,
                    "await while holding a lock; another task can interleave "
                    "on the lock-protected state (or deadlock on the same "
                    "lock) — release the lock before suspending",
                )


# ---------------------------------------------------------------------------
# Rule 10: supervisor pipe protocol ordering (supervisor.py / proc.py)
# ---------------------------------------------------------------------------

def _pipe_sends(func: ast.AST) -> Iterator[Tuple[int, str]]:
    """Yield (lineno, TAG) for control-pipe tuple sends under ``func``."""
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        name = ""
        if isinstance(node.func, ast.Name):
            name = node.func.id
        elif isinstance(node.func, ast.Attribute):
            name = node.func.attr
        if name not in PIPE_SEND_NAMES or not node.args:
            continue
        for arg in node.args:
            if isinstance(arg, ast.Tuple) and arg.elts:
                head = arg.elts[0]
                if isinstance(head, ast.Name) and head.id in PIPE_PROTOCOL_ORDER:
                    yield (node.lineno, head.id)
                break


def _pipe_order_violations(
    path: pathlib.Path, tree: ast.Module
) -> Iterator[Violation]:
    """Rule 10: within one function, HELLO → ADDRS → START, never back."""
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        sends = sorted(_pipe_sends(node))
        high = ""
        for lineno, tag in sends:
            if high and PIPE_PROTOCOL_ORDER[tag] < PIPE_PROTOCOL_ORDER[high]:
                yield (
                    path,
                    lineno,
                    f"control-pipe send of {tag} after {high} in "
                    f"{node.name}(); the rendezvous protocol is "
                    f"HELLO → ADDRS → START — a child must hear its "
                    f"address book before the start gun",
                )
            if not high or PIPE_PROTOCOL_ORDER[tag] > PIPE_PROTOCOL_ORDER[high]:
                high = tag


# ---------------------------------------------------------------------------
# Rule 11: no blocking calls in async functions (runtime/)
# ---------------------------------------------------------------------------

def _blocking_calls(node: ast.AST) -> Iterator[Tuple[int, str]]:
    if isinstance(node, (ast.FunctionDef, ast.Lambda)):
        return  # sync helper bodies run elsewhere (threads/executors)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        func = node.func
        if (
            isinstance(func.value, ast.Name)
            and (func.value.id, func.attr) in BLOCKING_MODULE_CALLS
        ):
            yield (node.lineno, f"{func.value.id}.{func.attr}")
        elif func.attr in BLOCKING_METHODS:
            yield (node.lineno, f".{func.attr}")
    for child in ast.iter_child_nodes(node):
        yield from _blocking_calls(child)


def _blocking_async_violations(
    path: pathlib.Path, tree: ast.Module
) -> Iterator[Violation]:
    """Rule 11: blocking I/O inside ``async def`` stalls the event loop."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.AsyncFunctionDef):
            continue
        for stmt in node.body:
            for lineno, name in _blocking_calls(stmt):
                yield (
                    path,
                    lineno,
                    f"blocking call {name}() inside an async function stalls "
                    f"the event loop; use the asyncio transport APIs or hand "
                    f"it to an executor",
                )


# ---------------------------------------------------------------------------
# Rule 12: no tracked compiled artifacts
# ---------------------------------------------------------------------------

def tracked_artifact_violations(
    root: Optional[pathlib.Path] = None,
) -> List[Violation]:
    """Rule 12: ``git ls-files`` lists no ``*.pyc`` / ``__pycache__``."""
    where = root if root is not None else pathlib.Path(".")
    if not (where / ".git").exists():
        return []
    try:
        listing = subprocess.run(
            ["git", "ls-files"],
            cwd=where,
            capture_output=True,
            text=True,
            timeout=30,
            check=True,
        ).stdout
    except (OSError, subprocess.SubprocessError):
        return []  # no git — nothing to audit
    violations: List[Violation] = []
    for name in listing.splitlines():
        if name.endswith(".pyc") or "__pycache__" in name.split("/"):
            violations.append((
                where / name,
                0,
                "compiled artifact tracked by git; `git rm --cached` it "
                "and keep __pycache__/ in .gitignore",
            ))
    return violations


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def check_file(path: pathlib.Path) -> Iterator[Violation]:
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    if _is_hot_path(path):
        yield from _hot_loop_violations(path, tree, exempt=False)
    if _needs_lock_discipline(path):
        yield from _lock_guard_violations(path, tree)
    if _needs_async_discipline(path):
        yield from _await_lock_violations(path, tree)
        yield from _blocking_async_violations(path, tree)
    if _needs_pipe_discipline(path):
        yield from _pipe_order_violations(path, tree)
    for node in ast.walk(tree):
        if _needs_seeded_rng(path):
            yield from _seeded_rng_violations(path, node)
        if _needs_process_discipline(path):
            yield from _process_violations(path, node)
        if isinstance(node, ast.Raise):
            name = _raised_name(node)
            if name in BUILTIN_EXCEPTIONS and name not in ALLOWED_BUILTIN_RAISES:
                yield (
                    path,
                    node.lineno,
                    f"raises builtin {name}; raise a ReproError subclass "
                    f"from repro.exceptions instead",
                )
        elif isinstance(node, ast.Call):
            yield from _check_call(path, node)
            if _needs_clock_discipline(path):
                yield from _check_clock_call(path, node)


def collect_violations(roots: List[pathlib.Path]) -> List[Violation]:
    """Every violation under ``roots`` (files or directories)."""
    violations: List[Violation] = []
    for root in roots:
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for path in files:
            violations.extend(check_file(path))
    return violations


def main(argv: List[str]) -> int:
    roots = [pathlib.Path(a) for a in argv] or [pathlib.Path("src/repro")]
    violations = collect_violations(roots)
    violations.extend(tracked_artifact_violations())
    for path, line, message in violations:
        print(f"{path}:{line}: {message}")
    if violations:
        print(f"\n{len(violations)} convention violation(s)")
        return 1
    print("conventions: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
