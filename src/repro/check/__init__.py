"""Execution-free verification of the runtime: model checking + code lint.

Two prongs, one discipline (see ``docs/ALGORITHM.md`` §21):

* :mod:`repro.check.model` / :mod:`repro.check.explore` — an
  explicit-state model checker that exhaustively explores adversarial
  interleavings of an abstract model of the runtime peer state machines
  for small ``n``, checking the protocol's safety invariants and
  reachability properties; :mod:`repro.check.replay` pins the model to
  the real code by replaying recorded runtime transcripts through it.
* :mod:`repro.check.codelint` — the repository's AST conventions lint
  (promoted from ``scripts/check_conventions.py``) plus concurrency
  dataflow rules for the service/runtime layers.
"""

from __future__ import annotations

from .explore import (
    Counterexample,
    ExplorationReport,
    FamilyCheck,
    check_family,
    check_matrix,
    explore,
    parse_family_spec,
    render_trace,
)
from .model import (
    Action,
    ModelState,
    PeerView,
    ProtocolModel,
    SentRecord,
    Token,
    check_rejoin,
    render_token,
)

__all__ = [
    "Action",
    "Counterexample",
    "ExplorationReport",
    "FamilyCheck",
    "ModelState",
    "PeerView",
    "ProtocolModel",
    "SentRecord",
    "Token",
    "check_family",
    "check_matrix",
    "check_rejoin",
    "explore",
    "parse_family_spec",
    "render_token",
    "render_trace",
]
