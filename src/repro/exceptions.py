"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch the whole family with a single ``except`` clause while still being
able to distinguish graph-construction problems from schedule violations.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence, Tuple

__all__ = [
    "ReproError",
    "GraphError",
    "DisconnectedGraphError",
    "TreeError",
    "LabelingError",
    "MessageClassError",
    "ScheduleError",
    "ScheduleConflictError",
    "ModelViolationError",
    "IncompleteGossipError",
    "ScheduleLintError",
    "SimulationError",
    "UnknownTimelineRowError",
    "RecoveryExhaustedError",
    "PartitionedNetworkError",
    "SurvivorSetError",
    "PlanTimeoutError",
    "CircuitOpenError",
    "SweepTimeoutError",
    "GossipRuntimeError",
    "WireFormatError",
    "PeerDeadError",
    "RuntimeDeadlineError",
    "SupervisorError",
    "JournalFormatError",
    "ProtocolCheckError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Malformed graph input (bad vertex ids, self-loops, duplicate edges, ...)."""


class DisconnectedGraphError(GraphError):
    """The operation requires a connected graph but the input is not connected.

    Gossiping is impossible on a disconnected network: a message can never
    cross between components, so every algorithm in :mod:`repro.core`
    rejects disconnected inputs with this error.
    """


class TreeError(ReproError):
    """Malformed tree structure (cycle, multiple roots, orphan vertices, ...)."""


class LabelingError(TreeError):
    """DFS labelling invariants are violated (non-contiguous subtree interval...)."""


class MessageClassError(TreeError, ValueError):
    """A message id does not belong to any s/l/r/o class at a vertex.

    Also a :class:`ValueError` for backwards compatibility: the message
    classification helpers historically raised ``ValueError`` for
    out-of-range ids.
    """


class ScheduleError(ReproError):
    """A communication schedule is structurally invalid."""


class ScheduleConflictError(ScheduleError):
    """Two transmissions in one round violate the communication rules.

    Raised when a round contains two tuples whose destination sets
    intersect (a processor would receive two messages at once) or two
    tuples with the same sender (a processor would send two messages at
    once).
    """


class ModelViolationError(ScheduleError):
    """A transmission breaks the multicasting communication model.

    Examples: sending a message the sender does not hold yet, multicasting
    to a non-neighbour, or sending to the sender itself.
    """


class IncompleteGossipError(ScheduleError):
    """After executing the whole schedule some processor misses a message."""


class ScheduleLintError(ScheduleError):
    """Static analysis found error-severity diagnostics in a schedule.

    Raised by :class:`repro.service.GossipService` (with ``lint="error"``)
    when :func:`repro.lint.lint_schedule` refuses to certify a plan before
    cache admission.  Carries the offending diagnostics so callers can
    render them without re-running the analyzer.

    Attributes
    ----------
    diagnostics:
        The error-severity :class:`repro.lint.Diagnostic` objects, in
        emission (round) order.
    """

    def __init__(self, message: str, *, diagnostics: Iterable[object] = ()) -> None:
        super().__init__(message)
        self.diagnostics = tuple(diagnostics)


class SimulationError(ReproError):
    """The round-based simulator was driven into an inconsistent state."""


class UnknownTimelineRowError(SimulationError, KeyError):
    """A paper-table timeline row was requested under an unknown caption.

    Also a :class:`KeyError` for backwards compatibility: the trace
    helpers historically raised ``KeyError`` for unknown row names.
    """

    def __str__(self) -> str:
        # KeyError.__str__ would repr() the message; keep it readable.
        return str(self.args[0]) if self.args else ""


class RecoveryExhaustedError(ReproError):
    """Recovery scheduling ran out of repair-round budget before completion.

    Raised by :func:`repro.core.recovery.recover` when the fault model
    keeps destroying repair deliveries faster than the round budget
    allows retransmitting them.  Carries the diagnosis of the last
    attempt so callers can report how close recovery got:

    Attributes
    ----------
    attempts:
        Number of execute -> diagnose -> repair iterations performed.
    repair_rounds:
        Total repair rounds appended across all attempts.
    missing:
        Per-processor missing message ids after the final attempt.
    """

    def __init__(self, message: str, *, attempts: int = 0,
                 repair_rounds: int = 0,
                 missing: Optional[Mapping[int, Sequence[int]]] = None) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.repair_rounds = repair_rounds
        self.missing = dict(missing or {})


class PartitionedNetworkError(ReproError):
    """Permanent failures severed the network; full gossip is impossible.

    Raised *before* any repair budget is spent, by
    :func:`repro.core.recovery.recover` when some missing
    ``(processor, message)`` pair has no live holder reachable over the
    surviving repair substrate, and by
    :func:`repro.core.survival.survive` (with ``allow_partition=False``)
    when the residual network splits into several surviving components.

    Attributes
    ----------
    pairs:
        The offending ``(processor, message)`` pairs — each names a live
        processor and a message no live, reachable holder can supply.
    components:
        The surviving connected components (tuples of vertex ids) of the
        residual network, ordered by smallest member.
    dead:
        The permanently fail-stopped processors at diagnosis time.
    """

    def __init__(self, message: str, *,
                 pairs: Iterable[Sequence[int]] = (),
                 components: Iterable[Sequence[int]] = (),
                 dead: Iterable[int] = ()) -> None:
        super().__init__(message)
        self.pairs: Tuple[Tuple[int, ...], ...] = tuple(tuple(p) for p in pairs)
        self.components: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(c) for c in components
        )
        self.dead = tuple(dead)


class SurvivorSetError(ReproError):
    """The survivor set cannot satisfy the degraded completion semantics.

    Raised by :mod:`repro.core.survival` when no processor survived at
    all, or when the strict :func:`~repro.core.survival.validate_survival`
    check finds a live processor missing a message whose origin is live
    and reachable in its own component (which the survival schedule
    guarantees to deliver).

    Attributes
    ----------
    pairs:
        Offending ``(processor, message)`` pairs (empty when the error
        is about an empty survivor set).
    """

    def __init__(self, message: str, *, pairs: Iterable[Sequence[int]] = ()) -> None:
        super().__init__(message)
        self.pairs: Tuple[Tuple[int, ...], ...] = tuple(tuple(p) for p in pairs)


class PlanTimeoutError(ReproError):
    """A service plan request exceeded its planner timeout.

    Raised by :class:`repro.service.GossipService` when the primary
    planner times out (and, if configured, the degraded fallback could
    not produce a plan either).
    """


class CircuitOpenError(ReproError):
    """A plan request was fast-failed by an open circuit breaker.

    Raised by :class:`repro.service.GossipService` when the per-key
    breaker is open (too many consecutive planner failures/timeouts) and
    no degraded fallback is configured — the typed signal that the
    planner for this key is considered down until the cooldown elapses.

    Attributes
    ----------
    algorithm:
        The algorithm whose planner the breaker is protecting.
    retry_after:
        Seconds until the breaker will allow a half-open probe (0.0 when
        a probe is already in flight).
    """

    def __init__(self, message: str, *, algorithm: str = "",
                 retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.algorithm = algorithm
        self.retry_after = retry_after


class SweepTimeoutError(ReproError):
    """A fault-injection sweep exceeded its wall-clock budget.

    Raised by :func:`repro.analysis.chaos.run_chaos_sweep` and
    :func:`repro.analysis.survival.run_survival_sweep` when a
    ``deadline`` (seconds) was given and the sweep could not finish every
    trial inside it — the typed fail-fast signal a pathological
    configuration produces instead of stalling CI.

    Attributes
    ----------
    elapsed:
        Seconds spent before giving up.
    completed_cells:
        Fully finished (family, rate) cells at the time of the timeout.
    """

    def __init__(self, message: str, *, elapsed: float = 0.0,
                 completed_cells: int = 0) -> None:
        super().__init__(message)
        self.elapsed = elapsed
        self.completed_cells = completed_cells


class GossipRuntimeError(ReproError):
    """Base class for errors raised by the real-network asyncio runtime."""


class WireFormatError(GossipRuntimeError):
    """A datagram could not be decoded as a runtime protocol message."""


class PeerDeadError(GossipRuntimeError):
    """An operation targeted a peer the failure detector declared dead.

    Attributes
    ----------
    peer:
        The dead peer's vertex id.
    """

    def __init__(self, message: str, *, peer: int = -1) -> None:
        super().__init__(message)
        self.peer = peer


class RuntimeDeadlineError(GossipRuntimeError):
    """A real-network gossip run missed a round or whole-run deadline.

    Mirrors the simulator's partial-completion convention
    (:attr:`repro.simulator.engine.ExecutionResult.makespan` being
    ``None``): the run degrades to a typed error carrying the partial
    :class:`repro.runtime.runner.RuntimeResult` instead of hanging.

    Attributes
    ----------
    partial:
        The partial-completion result collected at the deadline (or
        ``None`` when not even peer state could be gathered).
    phase:
        ``"round"`` or ``"run"`` — which deadline fired.
    """

    def __init__(self, message: str, *, partial: Optional[object] = None,
                 phase: str = "run") -> None:
        super().__init__(message)
        self.partial = partial
        self.phase = phase


class SupervisorError(GossipRuntimeError):
    """The multi-process supervisor could not run or resolve the fleet.

    Raised by :class:`repro.runtime.supervisor.Supervisor` for
    control-plane failures that are *not* ordinary peer deaths: a child
    that errors (rather than crashes) mid-protocol, a rendezvous that a
    child abandons before reporting its socket, or a resolution step
    whose preconditions the fleet state violates.  Carries the incident
    journal gathered so far so operators see the whole story.

    Attributes
    ----------
    incidents:
        The :class:`repro.runtime.incidents.Incident` records gathered
        up to the failure, in detection order.
    """

    def __init__(self, message: str, *, incidents: Iterable[object] = ()) -> None:
        super().__init__(message)
        self.incidents = tuple(incidents)


class JournalFormatError(GossipRuntimeError):
    """An incident-journal JSONL document could not be parsed back.

    Raised by :meth:`repro.runtime.incidents.Incident.from_json` /
    :meth:`repro.runtime.incidents.IncidentJournal.from_jsonl` for a line
    that is not valid JSON, is not an object, or lacks (or mistypes) one
    of the incident fields.  Forensics tooling reading a journal written
    by an earlier run must get a typed, catchable error naming the bad
    line — never a bare ``json.JSONDecodeError`` escaping the library.

    Attributes
    ----------
    line_number:
        1-based position of the offending line (0 for a single-object
        parse outside a JSONL document).
    """

    def __init__(self, message: str, *, line_number: int = 0) -> None:
        super().__init__(message)
        self.line_number = line_number


class ProtocolCheckError(ReproError):
    """The protocol model checker could not run as requested.

    Raised by :mod:`repro.check` for *infrastructure* failures — an
    unparseable family spec, a state-space budget exceeded mid-search, a
    conformance recording that cannot be replayed.  Protocol *bugs* are
    never exceptions: the explorer reports those as
    :class:`repro.check.explore.Counterexample` records so the trace
    survives for rendering.
    """
