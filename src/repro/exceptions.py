"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch the whole family with a single ``except`` clause while still being
able to distinguish graph-construction problems from schedule violations.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "DisconnectedGraphError",
    "TreeError",
    "LabelingError",
    "ScheduleError",
    "ScheduleConflictError",
    "ModelViolationError",
    "IncompleteGossipError",
    "SimulationError",
    "RecoveryExhaustedError",
    "PlanTimeoutError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Malformed graph input (bad vertex ids, self-loops, duplicate edges, ...)."""


class DisconnectedGraphError(GraphError):
    """The operation requires a connected graph but the input is not connected.

    Gossiping is impossible on a disconnected network: a message can never
    cross between components, so every algorithm in :mod:`repro.core`
    rejects disconnected inputs with this error.
    """


class TreeError(ReproError):
    """Malformed tree structure (cycle, multiple roots, orphan vertices, ...)."""


class LabelingError(TreeError):
    """DFS labelling invariants are violated (non-contiguous subtree interval...)."""


class ScheduleError(ReproError):
    """A communication schedule is structurally invalid."""


class ScheduleConflictError(ScheduleError):
    """Two transmissions in one round violate the communication rules.

    Raised when a round contains two tuples whose destination sets
    intersect (a processor would receive two messages at once) or two
    tuples with the same sender (a processor would send two messages at
    once).
    """


class ModelViolationError(ScheduleError):
    """A transmission breaks the multicasting communication model.

    Examples: sending a message the sender does not hold yet, multicasting
    to a non-neighbour, or sending to the sender itself.
    """


class IncompleteGossipError(ScheduleError):
    """After executing the whole schedule some processor misses a message."""


class SimulationError(ReproError):
    """The round-based simulator was driven into an inconsistent state."""


class RecoveryExhaustedError(ReproError):
    """Recovery scheduling ran out of repair-round budget before completion.

    Raised by :func:`repro.core.recovery.recover` when the fault model
    keeps destroying repair deliveries faster than the round budget
    allows retransmitting them.  Carries the diagnosis of the last
    attempt so callers can report how close recovery got:

    Attributes
    ----------
    attempts:
        Number of execute -> diagnose -> repair iterations performed.
    repair_rounds:
        Total repair rounds appended across all attempts.
    missing:
        Per-processor missing message ids after the final attempt.
    """

    def __init__(self, message: str, *, attempts: int = 0,
                 repair_rounds: int = 0, missing=None) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.repair_rounds = repair_rounds
        self.missing = dict(missing or {})


class PlanTimeoutError(ReproError):
    """A service plan request exceeded its planner timeout.

    Raised by :class:`repro.service.GossipService` when the primary
    planner times out (and, if configured, the degraded fallback could
    not produce a plan either).
    """
