"""Planner benchmark: pruned + batched sweep vs the paper's O(mn) sweep.

The preprocessing stage — n BFS traversals to find a minimum-height
spanning tree (Section 3.1) — dominates end-to-end planning cost.  This
module measures the fast path that replaced it:

* **correctness gate** — the pruned + batched sweep must return a tree
  *bit-identical* (same root, same parent array, same child order) to
  the exhaustive reference on every benchmarked network;
* **speedup gate** — on ``grid:400``-class graphs the pruned sweep must
  be at least :data:`MIN_SPEEDUP`× faster than the exhaustive sweep;
* **cold-plan gate** — on the same gate networks the *whole* cold plan
  (sweep + labeling + array-native ConcurrentUpDown) must stay within
  :data:`COLD_MAX_RATIO`× of the pruned sweep alone, i.e. the post-tree
  planning path may not regress back towards the seed's per-transmission
  object construction (1.9–3.4 s on ``grid:400``; now ~30 ms);
* **schedule-identity gate** — the array pipeline must emit
  round-for-round bit-identical schedules to the seed builder on all
  21 topology families;
* **trajectory** — results serialise to ``BENCH_planner.json`` at the
  repo root so successive PRs can compare cold-plan latency.

Entry points: :func:`run_planner_bench` (library),
``benchmarks/bench_planner.py`` (standalone + pytest) and
``python -m repro.cli plan-bench`` (by hand), all sharing this code the
same way the chaos sweep shares :mod:`repro.analysis.chaos`.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.gossip import gossip, resolve_network
from ..exceptions import ReproError
from ..networks.spanning_tree import minimum_depth_spanning_tree

__all__ = [
    "PlannerCell",
    "PlannerBenchReport",
    "run_planner_bench",
    "DEFAULT_SPECS",
    "QUICK_SPECS",
    "GATE_FAMILY",
    "MIN_SPEEDUP",
    "COLD_MAX_RATIO",
    "IDENTITY_SWEEP_N",
]

#: The acceptance-criteria network class: the speedup gate is enforced on
#: every benchmarked spec of this family with at least this many vertices.
GATE_FAMILY = "grid"
GATE_MIN_N = 400

#: Required cold-sweep speedup (pruned vs exhaustive) on gate networks.
MIN_SPEEDUP = 3.0

#: Maximum allowed ``plan_cold_s / pruned_s``, enforced on the
#: acceptance-criteria cell only (``grid`` at exactly ``GATE_MIN_N``
#: vertices) — larger gate-family cells report but don't gate the ratio,
#: since the bit-parallel sweep scales better with n than schedule
#: construction can.  The seed object pipeline sat at 200–300x (1.9–3.4 s
#: against a ~10 ms sweep on ``grid:400``); the array-native pipeline
#: lands at ~2.6–3.0x on this hardware.  The enforced bar carries
#: head-room for shared-container timer noise (single runs have been
#: observed 30–40% apart); the true measured ratio is recorded per cell
#: in ``BENCH_planner.json`` so the trajectory — and any future
#: tightening towards 2x — stays visible.
COLD_MAX_RATIO = 4.0

#: Size class for the all-families schedule-identity sweep (families with
#: structural size constraints round up, e.g. hypercube -> 32).
IDENTITY_SWEEP_N = 24

#: The default sweep: one shallow/deep/structured mix per size class.
DEFAULT_SPECS: Tuple[str, ...] = (
    "path:256",
    "cycle:256",
    "star:256",
    "grid:400",
    "grid:1024",
    "torus:400",
    "hypercube:256",
    "random:512",
    "gnp:512",
    "geometric:256",
)

#: The tier-1 subset (``--quick``): small enough for CI, still crossing
#: the gate spec.
QUICK_SPECS: Tuple[str, ...] = (
    "path:256",
    "cycle:128",
    "grid:400",
    "torus:256",
    "random:256",
)


@dataclass(frozen=True)
class PlannerCell:
    """One benchmarked network: timings and the identical-tree verdict."""

    spec: str
    family: str
    n: int
    m: int
    radius: int
    exhaustive_s: float
    pruned_s: float
    speedup: float
    plan_cold_s: float
    cold_ratio: float
    identical: bool
    gated: bool
    cold_gated: bool


class PlannerBenchReport:
    """Cells plus the gates and serialisation the trajectory needs."""

    def __init__(
        self,
        cells: Sequence[PlannerCell],
        *,
        min_speedup: float,
        cold_max_ratio: float = COLD_MAX_RATIO,
        schedule_identity: Optional[Dict[str, bool]] = None,
    ) -> None:
        self.cells = list(cells)
        self.min_speedup = min_speedup
        self.cold_max_ratio = cold_max_ratio
        self.schedule_identity = dict(schedule_identity or {})

    # ------------------------------------------------------------------
    def check(self) -> None:
        """Raise ``AssertionError`` unless every gate holds.

        * every cell's pruned tree is bit-identical to the exhaustive one;
        * every gate cell (``grid`` with n >= 400) meets the speedup bar;
        * the acceptance-criteria cell (``grid`` at exactly n = 400) meets
          the cold-plan ratio bar — larger grids are reported but not
          gated, because the bit-parallel sweep scales better with n than
          schedule construction can (the ratio drifts up even as absolute
          cold-plan time stays tens of milliseconds);
        * the array pipeline's schedules are round-for-round identical to
          the seed builder on every swept family.
        """
        for cell in self.cells:
            assert cell.identical, (
                f"{cell.spec}: pruned sweep tree differs from the exhaustive sweep"
            )
        gated = [c for c in self.cells if c.gated]
        assert gated, (
            f"no gate network ({GATE_FAMILY} with n >= {GATE_MIN_N}) was benchmarked"
        )
        for cell in gated:
            assert cell.speedup >= self.min_speedup, (
                f"{cell.spec}: pruned sweep speedup {cell.speedup:.1f}x is below "
                f"the {self.min_speedup:.1f}x gate "
                f"(exhaustive {cell.exhaustive_s * 1e3:.1f}ms, "
                f"pruned {cell.pruned_s * 1e3:.1f}ms)"
            )
        for cell in (c for c in self.cells if c.cold_gated):
            assert cell.cold_ratio <= self.cold_max_ratio, (
                f"{cell.spec}: cold plan at {cell.cold_ratio:.2f}x the pruned "
                f"sweep exceeds the {self.cold_max_ratio:.1f}x gate "
                f"(plan {cell.plan_cold_s * 1e3:.1f}ms, "
                f"sweep {cell.pruned_s * 1e3:.1f}ms)"
            )
        mismatched = sorted(
            fam for fam, same in self.schedule_identity.items() if not same
        )
        assert not mismatched, (
            "array pipeline schedule differs from the seed builder on: "
            + ", ".join(mismatched)
        )

    # ------------------------------------------------------------------
    def format(self) -> str:
        """Fixed-width table of every cell (timings in milliseconds)."""
        header = (
            f"{'network':<16} {'n':>5} {'m':>6} {'r':>4} "
            f"{'exhaustive':>11} {'pruned':>8} {'speedup':>8} "
            f"{'cold plan':>10} {'ratio':>7} {'identical':>9}"
        )
        lines = [header, "-" * len(header)]
        for c in self.cells:
            gate_mark = "*" if c.gated else " "
            cold_mark = "*" if c.cold_gated else " "
            lines.append(
                f"{c.spec:<16} {c.n:>5} {c.m:>6} {c.radius:>4} "
                f"{c.exhaustive_s * 1e3:>9.1f}ms {c.pruned_s * 1e3:>6.1f}ms "
                f"{c.speedup:>6.1f}x{gate_mark} "
                f"{c.plan_cold_s * 1e3:>8.1f}ms {c.cold_ratio:>5.2f}x{cold_mark} "
                f"{'yes' if c.identical else 'NO':>9}"
            )
        lines.append(
            f"(* = {self.min_speedup:.0f}x speedup / "
            f"{self.cold_max_ratio:.0f}x cold-plan gates apply)"
        )
        if self.schedule_identity:
            bad = sorted(f for f, ok in self.schedule_identity.items() if not ok)
            lines.append(
                f"schedule identity (array vs seed builder, "
                f"{len(self.schedule_identity)} families): "
                + ("all identical" if not bad else "MISMATCH: " + ", ".join(bad))
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def to_json_dict(self) -> dict:
        """Machine-readable form written to ``BENCH_planner.json``."""
        return {
            "benchmark": "planner",
            "gate": {
                "family": GATE_FAMILY,
                "min_n": GATE_MIN_N,
                "min_speedup": self.min_speedup,
            },
            "cold_gate": {
                "max_ratio": self.cold_max_ratio,
                "enforced": [c.spec for c in self.cells if c.cold_gated],
                "measured": {
                    c.spec: round(c.cold_ratio, 3) for c in self.cells if c.gated
                },
                "schedule_identity": {
                    "families": len(self.schedule_identity),
                    "identical": all(self.schedule_identity.values()),
                },
            },
            "cells": [asdict(c) for c in self.cells],
        }

    def write_json(self, path) -> None:
        """Persist the trajectory artefact (indented, trailing newline)."""
        with open(path, "w") as fh:
            json.dump(self.to_json_dict(), fh, indent=2)
            fh.write("\n")


def _best_of(fn, repeats: int) -> Tuple[float, object]:
    """Minimum wall-clock over ``repeats`` runs, with the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _schedule_identity_sweep(n: int = IDENTITY_SWEEP_N) -> Dict[str, bool]:
    """Array pipeline vs seed builder, round for round, on every family.

    Returns ``{family: identical}`` for all registered topology families
    at the :data:`IDENTITY_SWEEP_N` size class.  "Identical" means equal
    flat arrays *and* equal materialised round/transmission objects.
    """
    from ..core.concurrent_updown import (
        concurrent_updown,
        concurrent_updown_reference,
    )
    from ..tree.labeling import LabeledTree
    from .sweep import FAMILIES, family_instance

    verdicts: Dict[str, bool] = {}
    for family in sorted(FAMILIES):
        graph = family_instance(family, n)
        labeled = LabeledTree(minimum_depth_spanning_tree(graph, method="pruned"))
        fast = concurrent_updown(labeled)
        seed = concurrent_updown_reference(labeled)
        verdicts[family] = (
            fast.arrays() == seed.arrays() and fast.rounds == seed.rounds
        )
    return verdicts


def run_planner_bench(
    specs: Optional[Sequence[str]] = None,
    *,
    repeats: int = 3,
    min_speedup: float = MIN_SPEEDUP,
    cold_max_ratio: float = COLD_MAX_RATIO,
    algorithm: str = "concurrent-updown",
    schedule_identity: bool = True,
) -> PlannerBenchReport:
    """Time the pruned vs exhaustive sweep on each network spec.

    ``specs`` are :func:`~repro.core.gossip.resolve_network` strings
    (``"family:n"``).  For each network the exhaustive and pruned
    minimum-depth constructions are timed (best of ``repeats``), the
    resulting trees compared field-for-field, and the cold end-to-end
    plan (:func:`~repro.core.gossip.gossip` with the fast path) timed
    best-of-``max(2, repeats)`` — a single run is too noisy to gate on.
    Unless ``schedule_identity=False``, the all-families array-vs-seed
    schedule sweep (:func:`_schedule_identity_sweep`) runs too.
    """
    if repeats < 1:
        raise ReproError(f"repeats must be >= 1, got {repeats}")
    chosen = tuple(specs) if specs is not None else DEFAULT_SPECS
    if not chosen:
        raise ReproError("no network specs to benchmark")
    cells: List[PlannerCell] = []
    for spec in chosen:
        graph, _ = resolve_network(spec)
        exhaustive_s, ref_tree = _best_of(
            lambda: minimum_depth_spanning_tree(graph, method="exhaustive"), repeats
        )
        pruned_s, fast_tree = _best_of(
            lambda: minimum_depth_spanning_tree(graph, method="pruned"), repeats
        )
        identical = (
            fast_tree == ref_tree
            and fast_tree.root == ref_tree.root
            and fast_tree.parents() == ref_tree.parents()
            and all(
                fast_tree.children(v) == ref_tree.children(v)
                for v in range(fast_tree.n)
            )
        )
        plan_cold_s, _ = _best_of(
            lambda: gossip(graph, algorithm=algorithm), max(2, repeats)
        )
        family = spec.partition(":")[0]
        cells.append(
            PlannerCell(
                spec=spec,
                family=family,
                n=graph.n,
                m=graph.m,
                radius=fast_tree.height,
                exhaustive_s=exhaustive_s,
                pruned_s=pruned_s,
                speedup=exhaustive_s / pruned_s if pruned_s > 0 else float("inf"),
                plan_cold_s=plan_cold_s,
                cold_ratio=plan_cold_s / pruned_s if pruned_s > 0 else float("inf"),
                identical=identical,
                gated=family == GATE_FAMILY and graph.n >= GATE_MIN_N,
                cold_gated=family == GATE_FAMILY and graph.n == GATE_MIN_N,
            )
        )
    verdicts = _schedule_identity_sweep() if schedule_identity else {}
    return PlannerBenchReport(
        cells,
        min_speedup=min_speedup,
        cold_max_ratio=cold_max_ratio,
        schedule_identity=verdicts,
    )
