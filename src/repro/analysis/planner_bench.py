"""Planner benchmark: pruned + batched sweep vs the paper's O(mn) sweep.

The preprocessing stage — n BFS traversals to find a minimum-height
spanning tree (Section 3.1) — dominates end-to-end planning cost.  This
module measures the fast path that replaced it:

* **correctness gate** — the pruned + batched sweep must return a tree
  *bit-identical* (same root, same parent array, same child order) to
  the exhaustive reference on every benchmarked network;
* **speedup gate** — on ``grid:400``-class graphs the pruned sweep must
  be at least :data:`MIN_SPEEDUP`× faster than the exhaustive sweep;
* **trajectory** — results serialise to ``BENCH_planner.json`` at the
  repo root so successive PRs can compare cold-plan latency.

Entry points: :func:`run_planner_bench` (library),
``benchmarks/bench_planner.py`` (standalone + pytest) and
``python -m repro.cli plan-bench`` (by hand), all sharing this code the
same way the chaos sweep shares :mod:`repro.analysis.chaos`.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.gossip import gossip, resolve_network
from ..exceptions import ReproError
from ..networks.spanning_tree import minimum_depth_spanning_tree

__all__ = [
    "PlannerCell",
    "PlannerBenchReport",
    "run_planner_bench",
    "DEFAULT_SPECS",
    "QUICK_SPECS",
    "GATE_FAMILY",
    "MIN_SPEEDUP",
]

#: The acceptance-criteria network class: the speedup gate is enforced on
#: every benchmarked spec of this family with at least this many vertices.
GATE_FAMILY = "grid"
GATE_MIN_N = 400

#: Required cold-sweep speedup (pruned vs exhaustive) on gate networks.
MIN_SPEEDUP = 3.0

#: The default sweep: one shallow/deep/structured mix per size class.
DEFAULT_SPECS: Tuple[str, ...] = (
    "path:256",
    "cycle:256",
    "star:256",
    "grid:400",
    "grid:1024",
    "torus:400",
    "hypercube:256",
    "random:512",
    "gnp:512",
    "geometric:256",
)

#: The tier-1 subset (``--quick``): small enough for CI, still crossing
#: the gate spec.
QUICK_SPECS: Tuple[str, ...] = (
    "path:256",
    "cycle:128",
    "grid:400",
    "torus:256",
    "random:256",
)


@dataclass(frozen=True)
class PlannerCell:
    """One benchmarked network: timings and the identical-tree verdict."""

    spec: str
    family: str
    n: int
    m: int
    radius: int
    exhaustive_s: float
    pruned_s: float
    speedup: float
    plan_cold_s: float
    identical: bool
    gated: bool


class PlannerBenchReport:
    """Cells plus the gates and serialisation the trajectory needs."""

    def __init__(self, cells: Sequence[PlannerCell], *, min_speedup: float) -> None:
        self.cells = list(cells)
        self.min_speedup = min_speedup

    # ------------------------------------------------------------------
    def check(self) -> None:
        """Raise ``AssertionError`` unless every gate holds.

        * every cell's pruned tree is bit-identical to the exhaustive one;
        * every gate cell (``grid`` with n >= 400) meets the speedup bar.
        """
        for cell in self.cells:
            assert cell.identical, (
                f"{cell.spec}: pruned sweep tree differs from the exhaustive sweep"
            )
        gated = [c for c in self.cells if c.gated]
        assert gated, (
            f"no gate network ({GATE_FAMILY} with n >= {GATE_MIN_N}) was benchmarked"
        )
        for cell in gated:
            assert cell.speedup >= self.min_speedup, (
                f"{cell.spec}: pruned sweep speedup {cell.speedup:.1f}x is below "
                f"the {self.min_speedup:.1f}x gate "
                f"(exhaustive {cell.exhaustive_s * 1e3:.1f}ms, "
                f"pruned {cell.pruned_s * 1e3:.1f}ms)"
            )

    # ------------------------------------------------------------------
    def format(self) -> str:
        """Fixed-width table of every cell (timings in milliseconds)."""
        header = (
            f"{'network':<16} {'n':>5} {'m':>6} {'r':>4} "
            f"{'exhaustive':>11} {'pruned':>8} {'speedup':>8} "
            f"{'cold plan':>10} {'identical':>9}"
        )
        lines = [header, "-" * len(header)]
        for c in self.cells:
            gate_mark = "*" if c.gated else " "
            lines.append(
                f"{c.spec:<16} {c.n:>5} {c.m:>6} {c.radius:>4} "
                f"{c.exhaustive_s * 1e3:>9.1f}ms {c.pruned_s * 1e3:>6.1f}ms "
                f"{c.speedup:>6.1f}x{gate_mark} "
                f"{c.plan_cold_s * 1e3:>8.1f}ms {'yes' if c.identical else 'NO':>9}"
            )
        lines.append(f"(* = {self.min_speedup:.0f}x speedup gate applies)")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def to_json_dict(self) -> dict:
        """Machine-readable form written to ``BENCH_planner.json``."""
        return {
            "benchmark": "planner",
            "gate": {
                "family": GATE_FAMILY,
                "min_n": GATE_MIN_N,
                "min_speedup": self.min_speedup,
            },
            "cells": [asdict(c) for c in self.cells],
        }

    def write_json(self, path) -> None:
        """Persist the trajectory artefact (indented, trailing newline)."""
        with open(path, "w") as fh:
            json.dump(self.to_json_dict(), fh, indent=2)
            fh.write("\n")


def _best_of(fn, repeats: int) -> Tuple[float, object]:
    """Minimum wall-clock over ``repeats`` runs, with the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run_planner_bench(
    specs: Optional[Sequence[str]] = None,
    *,
    repeats: int = 3,
    min_speedup: float = MIN_SPEEDUP,
    algorithm: str = "concurrent-updown",
) -> PlannerBenchReport:
    """Time the pruned vs exhaustive sweep on each network spec.

    ``specs`` are :func:`~repro.core.gossip.resolve_network` strings
    (``"family:n"``).  For each network the exhaustive and pruned
    minimum-depth constructions are timed (best of ``repeats``), the
    resulting trees compared field-for-field, and the cold end-to-end
    plan (:func:`~repro.core.gossip.gossip` with the fast path) timed
    once.
    """
    if repeats < 1:
        raise ReproError(f"repeats must be >= 1, got {repeats}")
    chosen = tuple(specs) if specs is not None else DEFAULT_SPECS
    if not chosen:
        raise ReproError("no network specs to benchmark")
    cells: List[PlannerCell] = []
    for spec in chosen:
        graph, _ = resolve_network(spec)
        exhaustive_s, ref_tree = _best_of(
            lambda: minimum_depth_spanning_tree(graph, method="exhaustive"), repeats
        )
        pruned_s, fast_tree = _best_of(
            lambda: minimum_depth_spanning_tree(graph, method="pruned"), repeats
        )
        identical = (
            fast_tree == ref_tree
            and fast_tree.root == ref_tree.root
            and fast_tree.parents() == ref_tree.parents()
            and all(
                fast_tree.children(v) == ref_tree.children(v)
                for v in range(fast_tree.n)
            )
        )
        plan_cold_s, _ = _best_of(lambda: gossip(graph, algorithm=algorithm), 1)
        family = spec.partition(":")[0]
        cells.append(
            PlannerCell(
                spec=spec,
                family=family,
                n=graph.n,
                m=graph.m,
                radius=fast_tree.height,
                exhaustive_s=exhaustive_s,
                pruned_s=pruned_s,
                speedup=exhaustive_s / pruned_s if pruned_s > 0 else float("inf"),
                plan_cold_s=plan_cold_s,
                identical=identical,
                gated=family == GATE_FAMILY and graph.n >= GATE_MIN_N,
            )
        )
    return PlannerBenchReport(cells, min_speedup=min_speedup)
