"""Parameter sweeps: the standard topology families the benchmarks iterate.

Benchmarks and bound-verification tests need the same "representative
collection of networks at size ``n``"; defining it once here keeps
EXPERIMENTS.md rows and test assertions in sync.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from ..networks import topologies
from ..networks.graph import Graph
from ..networks.random_graphs import (
    random_connected_gnp,
    random_geometric,
    random_tree,
)

__all__ = ["FAMILIES", "family_instance", "sweep", "SweepPoint"]


def _grid_near(n: int) -> Graph:
    rows = max(2, int(round(n**0.5)))
    cols = max(2, (n + rows - 1) // rows)
    return topologies.grid_2d(rows, cols)


def _hypercube_near(n: int) -> Graph:
    dim = max(1, (n - 1).bit_length())
    return topologies.hypercube(dim)


#: name -> generator taking a target size (actual size may differ slightly
#: for structured families such as grids and hypercubes).
FAMILIES: Dict[str, Callable[[int], Graph]] = {
    "path": topologies.path_graph,
    "cycle": lambda n: topologies.cycle_graph(max(n, 3)),
    "star": lambda n: topologies.star_graph(max(n, 2)),
    "complete": topologies.complete_graph,
    "grid": _grid_near,
    "hypercube": _hypercube_near,
    "binary-tree": lambda n: topologies.kary_tree(2, max(1, n.bit_length() - 1)),
    "caterpillar": lambda n: topologies.caterpillar(max(1, n // 3), 2),
    "spider": lambda n: topologies.spider(3, max(1, (n - 1) // 3)),
    "wheel": lambda n: topologies.wheel(max(n, 4)),
    "random-tree": lambda n: random_tree(n, seed=7),
    "gnp": lambda n: random_connected_gnp(n, p=min(1.0, 2.0 / max(n, 2)), seed=7),
    # The chaos-sweep default: a denser connected G(n, p) whose extra
    # chords leave the spanning tree shallow (radius stays small as the
    # drop rate climbs).
    "random": lambda n: random_connected_gnp(n, p=min(1.0, 3.0 / max(n, 2)), seed=11),
    "geometric": lambda n: random_geometric(n, radius=0.35, seed=7),
    "debruijn": lambda n: topologies.de_bruijn(2, max(2, (n - 1).bit_length())),
    "torus": lambda n: topologies.torus_2d(
        max(3, int(round(n**0.5))), max(3, int(round(n**0.5)))
    ),
    "ccc": lambda n: topologies.cube_connected_cycles(
        max(3, (max(n, 24) // 3 - 1).bit_length())
    ),
    "butterfly": lambda n: topologies.butterfly(
        max(1, (max(n, 4) // 4).bit_length())
    ),
    "barbell": lambda n: topologies.barbell(max(2, n // 3), max(0, n // 3)),
    "lollipop": lambda n: topologies.lollipop(max(2, n // 2), max(0, n // 2)),
    "broom": lambda n: topologies.broom(max(1, n // 2), max(0, n - n // 2)),
}


def family_instance(family: str, n: int) -> Graph:
    """One instance of ``family`` at (approximately) size ``n``."""
    return FAMILIES[family](n)


@dataclass(frozen=True)
class SweepPoint:
    """One (family, size) point of a sweep, with the realised graph."""

    family: str
    requested_n: int
    graph: Graph


def sweep(
    sizes: Sequence[int],
    families: Optional[Sequence[str]] = None,
) -> Iterator[SweepPoint]:
    """Yield every (family, size) instance of the sweep."""
    chosen = list(FAMILIES) if families is None else list(families)
    for family in chosen:
        for n in sizes:
            yield SweepPoint(family=family, requested_n=n, graph=FAMILIES[family](n))


def small_suite() -> List[Graph]:
    """The compact default collection used by bound tests (n <= ~40)."""
    return [
        topologies.path_graph(9),
        topologies.path_graph(10),
        topologies.cycle_graph(11),
        topologies.star_graph(12),
        topologies.complete_graph(8),
        topologies.grid_2d(4, 5),
        topologies.hypercube(4),
        topologies.kary_tree(3, 2),
        topologies.caterpillar(6, 2),
        topologies.spider(4, 3),
        topologies.wheel(9),
        topologies.de_bruijn(2, 4),
        random_tree(25, seed=3),
        random_connected_gnp(20, 0.12, seed=3),
        random_geometric(18, 0.35, seed=3),
    ]
