"""Per-round activity profiles of communication schedules.

The paper's tables show *per-vertex* timelines; this module provides the
orthogonal view — *per-round* network activity: how many processors
send, how many deliveries land, and cumulative completion over time.
These series are the line-chart data behind the benchmark reports and
make the phase structure of the algorithms visible (Simple's idle gap
between phases, ConcurrentUpDown's saturated middle, UpDown's phase-2
tail).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.schedule import Schedule
from ..networks.graph import Graph
from ..simulator.engine import ExecutionResult

__all__ = ["ActivityProfile", "activity_profile", "completion_curve"]


@dataclass(frozen=True)
class ActivityProfile:
    """Round-indexed series describing one schedule.

    All lists have length ``total_time``; index = send time of the round.
    """

    senders_per_round: Sequence[int]
    deliveries_per_round: Sequence[int]
    max_fan_out_per_round: Sequence[int]

    @property
    def total_time(self) -> int:
        """Number of rounds profiled."""
        return len(self.senders_per_round)

    @property
    def peak_senders(self) -> int:
        """Largest number of simultaneously sending processors."""
        return max(self.senders_per_round, default=0)

    @property
    def idle_rounds(self) -> int:
        """Rounds in which nothing is sent (phase gaps)."""
        return sum(1 for s in self.senders_per_round if s == 0)

    def utilisation(self, n: int) -> float:
        """Mean fraction of processors sending per round."""
        if not self.senders_per_round or n == 0:
            return 0.0
        return sum(self.senders_per_round) / (len(self.senders_per_round) * n)


def activity_profile(schedule: Schedule) -> ActivityProfile:
    """Compute the per-round activity series of ``schedule``."""
    senders: List[int] = []
    deliveries: List[int] = []
    fan_out: List[int] = []
    for rnd in schedule:
        senders.append(len(rnd))
        deliveries.append(rnd.delivery_count())
        fan_out.append(max((tx.fan_out() for tx in rnd), default=0))
    return ActivityProfile(
        senders_per_round=tuple(senders),
        deliveries_per_round=tuple(deliveries),
        max_fan_out_per_round=tuple(fan_out),
    )


def completion_curve(
    graph: Graph, execution: ExecutionResult, horizon: Optional[int] = None
) -> List[int]:
    """Cumulative count of complete processors at each time step.

    ``curve[t]`` = processors holding all messages at time ``t``; the
    last entry equals ``n`` for a complete execution.
    """
    h = execution.total_time if horizon is None else horizon
    curve: List[int] = []
    for t in range(h + 1):
        curve.append(
            sum(
                1
                for ct in execution.completion_times
                if ct is not None and ct <= t
            )
        )
    return curve
