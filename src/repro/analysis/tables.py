"""Rendering of the paper's Tables 1–4 (and any vertex's timeline).

:func:`render_timeline` prints a :class:`~repro.simulator.trace.VertexTimeline`
in the paper's layout — one column per time step, rows *Receive from
Parent / Receive from Child / Send to Parent / Send to Child*, ``-`` for
idle cells.  :func:`paper_tables` regenerates all four published tables
from the reconstructed Fig. 5 tree, and :data:`EXPECTED_TABLES` records
the ground-truth rows (derived from the algorithm; the scan of the
original tables is partly illegible — see DESIGN.md) that the test suite
asserts against.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.concurrent_updown import concurrent_updown
from ..simulator.trace import VertexTimeline, vertex_timeline
from ..tree.labeling import LabeledTree

__all__ = ["render_timeline", "paper_tables", "EXPECTED_TABLES"]


def render_timeline(
    timeline: VertexTimeline, horizon: Optional[int] = None, title: str = ""
) -> str:
    """Format one vertex timeline as the paper's table layout."""
    rows = timeline.as_lists(horizon)
    h = len(next(iter(rows.values()))) - 1
    captions = list(rows)
    width = max(len(str(h)), 2)
    name_w = max(len("Time"), *(len(c) for c in captions))
    header = (
        f"{'Time':<{name_w}} | "
        + " | ".join(f"{t:>{width}}" for t in range(h + 1))
    )
    lines = []
    if title:
        lines.append(title)
    lines.append(header)
    lines.append("-" * len(header))
    for caption in captions:
        cells = " | ".join(
            f"{('-' if m is None else str(m)):>{width}}" for m in rows[caption]
        )
        lines.append(f"{caption:<{name_w}} | {cells}")
    return "\n".join(lines)


def paper_tables(vertices: Optional[List[int]] = None) -> Dict[int, VertexTimeline]:
    """Regenerate the paper's Tables 1–4 from the Fig. 5 tree.

    Returns timelines keyed by vertex (default: the published vertices
    0, 1, 4 and 8).
    """
    from ..networks.paper_networks import fig5_tree

    labeled = LabeledTree(fig5_tree())
    schedule = concurrent_updown(labeled)
    chosen = [0, 1, 4, 8] if vertices is None else vertices
    return {
        v: vertex_timeline(labeled.tree, schedule, v) for v in chosen
    }


def _row(entries: Dict[int, int]) -> Dict[int, int]:
    return dict(entries)


#: Ground-truth rows of Tables 1–4, keyed by vertex then row caption.
#: Derived by hand from steps (U1)–(U4)/(D1)–(D3) applied to the Fig. 5
#: blocks (vertex 0: i=0, j=15, k=0;  vertex 1: i=1, j=3, k=1;
#: vertex 4: i=4, j=10, k=1;  vertex 8: i=8, j=10, k=2), matching every
#: legible cell of the published scan.
EXPECTED_TABLES: Dict[int, Dict[str, Dict[int, int]]] = {
    # Table 1 — the root (message 0).  Receives message m at time m from a
    # child; sends m at time m to the children lacking it; its own
    # message 0 goes out at time n = 16 (the i == k rule).
    0: {
        "receive_from_child": _row({m: m for m in range(1, 16)}),
        "receive_from_parent": {},
        "send_to_parent": {},
        "send_to_child": _row({**{m: m for m in range(1, 16)}, 16: 0}),
    },
    # Table 2 — vertex 1 (i=1, j=3, k=1): lip 1 at time 0, rip 2, 3 at
    # times 1, 2; receives o-messages 4..15 at 5..16 and 0 at 17; being on
    # the leftmost spine (i == k) its s-message goes down at j - k + 1 = 3.
    1: {
        "receive_from_parent": _row({**{m + 1: m for m in range(4, 16)}, 17: 0}),
        "receive_from_child": _row({1: 2, 2: 3}),
        "send_to_parent": _row({0: 1, 1: 2, 2: 3}),
        "send_to_child": _row(
            {1: 2, 2: 3, 3: 1, **{m + 1: m for m in range(4, 16)}, 17: 0}
        ),
    },
    # Table 3 — vertex 4 (i=4, j=10, k=1): o-messages 2, 3 arrive at times
    # i - k = 3 and i - k + 1 = 4 and are delayed to j - k + 1 = 10 and
    # j - k + 2 = 11.
    4: {
        "receive_from_parent": _row(
            {2: 1, 3: 2, 4: 3, **{m + 1: m for m in range(11, 16)}, 17: 0}
        ),
        "receive_from_child": _row({1: 5, **{m - 1: m for m in range(6, 11)}}),
        "send_to_parent": _row({m - 1: m for m in range(4, 11)}),
        "send_to_child": _row(
            {
                2: 1,
                **{m - 1: m for m in range(4, 11)},
                10: 2,
                11: 3,
                **{m + 1: m for m in range(11, 16)},
                17: 0,
            }
        ),
    },
    # Table 4 — vertex 8 (i=8, j=10, k=2): o-messages 6, 7 arrive at times
    # i - k = 6 and i - k + 1 = 7 and are delayed to j - k + 1 = 9 and
    # j - k + 2 = 10; messages 2, 3 (delayed upstream at vertex 4) arrive
    # at times 11, 12.
    8: {
        "receive_from_parent": _row(
            {
                3: 1,
                4: 4,
                5: 5,
                6: 6,
                7: 7,
                11: 2,
                12: 3,
                **{m + 2: m for m in range(11, 16)},
                18: 0,
            }
        ),
        "receive_from_child": _row({1: 9, 8: 10}),
        "send_to_parent": _row({6: 8, 7: 9, 8: 10}),
        "send_to_child": _row(
            {
                3: 1,
                4: 4,
                5: 5,
                6: 8,
                7: 9,
                8: 10,
                9: 6,
                10: 7,
                11: 2,
                12: 3,
                **{m + 2: m for m in range(11, 16)},
                18: 0,
            }
        ),
    },
}
