"""Survival sweeps — seeded permanent-failure campaigns over :mod:`repro.core.survival`.

``repro.cli survive`` and ``benchmarks/bench_survival.py`` both drive
this module: plan gossip on each topology, execute the plan under a
seeded :class:`~repro.simulator.lossy.FaultModel` with permanent
fail-stop crashes (and optionally permanent link failures) for every
requested rate, then hand the residue to
:func:`~repro.core.survival.survive` and measure **survivor coverage**
— the fraction of (live processor, live-origin-in-component message)
pairs the degraded semantics guarantee.

The acceptance gates (:meth:`SurvivalReport.check`):

* every trial with at least one survivor reaches survivor coverage
  **1.0** in a single diagnose pass (:func:`survive` raises otherwise,
  so this is also exercised structurally);
* every partitioned trial raises the typed
  :class:`~repro.exceptions.PartitionedNetworkError` (with witness
  pairs) when re-run with ``allow_partition=False``;
* every survival schedule respects the degraded Theorem 1 bound
  ``max_i (n_i + r_i)`` over its component plans.

Everything is deterministic: trial seeds derive from the sweep seed and
the cell coordinates (same formula as the chaos sweep), appended rounds
are integer counts, and the formatted report contains no wall-clock
measurements — a survival run is byte-for-byte reproducible for a fixed
seed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.gossip import gossip, resolve_network
from ..core.recovery import execute_plan_with_faults
from ..core.survival import survive
from ..exceptions import (
    PartitionedNetworkError,
    ReproError,
    SurvivorSetError,
    SweepTimeoutError,
)
from ..simulator.lossy import FaultModel

__all__ = ["SurvivalCell", "SurvivalReport", "run_survival_sweep"]


def _rank(sorted_values: Sequence[int], q: float) -> int:
    """Nearest-rank percentile of a sorted non-empty integer sequence."""
    rank = max(0, min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1))))
    return sorted_values[int(rank)]


@dataclass(frozen=True)
class SurvivalCell:
    """One (topology, fail-stop-rate) cell of a survival sweep.

    Attributes
    ----------
    trials / intact / partitioned / no_survivors:
        Trial counts: total, trials with no permanent failure at all,
        trials whose residual network split, trials where every
        processor died.
    covered:
        Trials that reached survivor coverage 1.0 (the gate expects
        ``covered == trials - no_survivors``).
    typed_partitions:
        Partitioned trials that raised the typed
        :class:`~repro.exceptions.PartitionedNetworkError` under
        ``allow_partition=False`` (the gate expects this to equal
        ``partitioned``).
    within_bound:
        Covered trials whose appended survival rounds respect the
        degraded bound ``max_i (n_i + r_i)``.
    dead_max / components_max:
        Worst-case dead-processor and component counts across trials.
    rounds_p50 / rounds_p90 / rounds_max:
        Percentiles of appended survival rounds over covered trials
        (``None`` when no trial appended rounds).
    """

    family: str
    n: int
    fail_stop_rate: float
    link_fail_rate: float
    trials: int
    intact: int
    partitioned: int
    no_survivors: int
    covered: int
    typed_partitions: int
    within_bound: int
    dead_max: int
    components_max: int
    rounds_p50: Optional[int]
    rounds_p90: Optional[int]
    rounds_max: Optional[int]

    @property
    def survivable(self) -> int:
        """Trials that left at least one processor alive."""
        return self.trials - self.no_survivors

    @property
    def coverage_rate(self) -> float:
        """Fraction of survivable trials that reached full coverage."""
        return self.covered / self.survivable if self.survivable else 1.0


@dataclass(frozen=True)
class SurvivalReport:
    """A full survival sweep: one :class:`SurvivalCell` per (family, rate)."""

    cells: Tuple[SurvivalCell, ...]
    seed: int
    algorithm: str

    def format(self) -> str:
        """Deterministic human-readable table (no wall-clock numbers)."""
        header = (
            f"{'network':<16} {'n':>4} {'fail':>5} {'trials':>6} "
            f"{'cov':>5} {'rate':>7} {'part':>5} {'dead':>5} "
            f"{'comp':>5} {'rnd p50':>8} {'p90':>5} {'max':>5}"
        )
        lines = [
            f"survival sweep  seed={self.seed}  algorithm={self.algorithm}",
            header,
            "-" * len(header),
        ]
        for c in self.cells:
            rnd = (
                (f"{c.rounds_p50:>8} {c.rounds_p90:>5} {c.rounds_max:>5}")
                if c.rounds_p50 is not None
                else f"{'n/a':>8} {'n/a':>5} {'n/a':>5}"
            )
            lines.append(
                f"{c.family:<16} {c.n:>4} {c.fail_stop_rate:>5.2f} "
                f"{c.trials:>6} {c.covered:>5} {c.coverage_rate:>6.1%} "
                f"{c.partitioned:>5} {c.dead_max:>5} {c.components_max:>5} {rnd}"
            )
        return "\n".join(lines)

    def check(self) -> None:
        """Assert the acceptance gates (raises ``AssertionError``)."""
        for c in self.cells:
            assert c.covered == c.survivable, (
                f"{c.family} at fail-stop {c.fail_stop_rate:.2f}: only "
                f"{c.covered}/{c.survivable} survivable trials reached "
                f"full survivor coverage"
            )
            assert c.typed_partitions == c.partitioned, (
                f"{c.family} at fail-stop {c.fail_stop_rate:.2f}: "
                f"{c.partitioned - c.typed_partitions} partitioned trials "
                f"did not raise the typed PartitionedNetworkError"
            )
            assert c.within_bound == c.covered, (
                f"{c.family} at fail-stop {c.fail_stop_rate:.2f}: "
                f"{c.covered - c.within_bound} survival schedules exceeded "
                f"the degraded bound max_i(n_i + r_i)"
            )


def run_survival_sweep(
    families: Sequence[str] = ("random:48",),
    fail_stop_rates: Sequence[float] = (0.0, 0.01, 0.05),
    *,
    trials: int = 20,
    seed: int = 7,
    algorithm: str = "concurrent-updown",
    link_fail_rate: float = 0.0,
    drop_rate: float = 0.0,
    deadline: Optional[float] = None,
) -> SurvivalReport:
    """Run a seeded fail-stop-rate × topology survival sweep.

    ``families`` entries are :func:`~repro.core.gossip.resolve_network`
    specs (``"random:48"``, ``"grid:64"``, ...).  Trial ``k`` of cell
    ``(i, j)`` uses the fault seed
    ``seed * 1_000_003 + i * 10_007 + j * 101 + k`` — deterministic,
    distinct per trial, reproducible across runs, and shared with the
    chaos sweep's formula so the two campaigns can be correlated.
    ``drop_rate`` layers transient losses on top of the permanent
    failures (the survival schedule itself always runs fault-free).

    ``deadline`` (seconds of wall clock) bounds the whole sweep: checked
    between trials, and on expiry the sweep fails fast with the typed
    :class:`~repro.exceptions.SweepTimeoutError` — the wall clock never
    influences any reported number, only whether the sweep finishes.
    """
    if trials < 1:
        raise ReproError("trials must be >= 1")
    if deadline is not None and deadline <= 0:
        raise ReproError("deadline must be positive (seconds)")
    started = time.monotonic()
    cells: List[SurvivalCell] = []
    for i, spec in enumerate(families):
        graph, tree = resolve_network(spec)
        plan = gossip(graph, algorithm=algorithm, tree=tree)
        for j, rate in enumerate(fail_stop_rates):
            intact = partitioned = no_survivors = covered = 0
            typed_partitions = within_bound = dead_max = components_max = 0
            rounds: List[int] = []
            for k in range(trials):
                if deadline is not None:
                    elapsed = time.monotonic() - started
                    if elapsed > deadline:
                        raise SweepTimeoutError(
                            f"survival sweep exceeded its {deadline:.1f}s "
                            f"deadline after {elapsed:.1f}s ({len(cells)} of "
                            f"{len(families) * len(fail_stop_rates)} cells "
                            "done)",
                            elapsed=elapsed,
                            completed_cells=len(cells),
                        )
                model = FaultModel(
                    seed=seed * 1_000_003 + i * 10_007 + j * 101 + k,
                    drop_rate=drop_rate,
                    fail_stop_rate=rate,
                    link_fail_rate=link_fail_rate,
                )
                faulty = execute_plan_with_faults(plan, model)
                try:
                    outcome = survive(graph, plan, faulty)
                except SurvivorSetError:
                    no_survivors += 1
                    continue
                diagnosis = outcome.diagnosis
                intact += diagnosis.intact
                dead_max = max(dead_max, len(diagnosis.dead))
                components_max = max(components_max, len(diagnosis.components))
                if outcome.survivor_coverage == 1.0:
                    covered += 1
                    bound = max(
                        (cp.degraded_bound for cp in outcome.component_plans),
                        default=0,
                    )
                    if outcome.appended_rounds <= bound or not outcome.schedule:
                        within_bound += 1
                    rounds.append(outcome.appended_rounds)
                if diagnosis.partitioned:
                    partitioned += 1
                    try:
                        survive(graph, plan, faulty, allow_partition=False)
                    except PartitionedNetworkError as exc:
                        if exc.pairs and exc.components == diagnosis.components:
                            typed_partitions += 1
            rounds.sort()
            cells.append(
                SurvivalCell(
                    family=graph.name or str(spec),
                    n=graph.n,
                    fail_stop_rate=rate,
                    link_fail_rate=link_fail_rate,
                    trials=trials,
                    intact=intact,
                    partitioned=partitioned,
                    no_survivors=no_survivors,
                    covered=covered,
                    typed_partitions=typed_partitions,
                    within_bound=within_bound,
                    dead_max=dead_max,
                    components_max=components_max,
                    rounds_p50=_rank(rounds, 0.50) if rounds else None,
                    rounds_p90=_rank(rounds, 0.90) if rounds else None,
                    rounds_max=rounds[-1] if rounds else None,
                )
            )
    return SurvivalReport(cells=tuple(cells), seed=seed, algorithm=algorithm)
