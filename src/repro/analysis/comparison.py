"""Algorithm comparison harness — deterministic and adversarial.

Runs several gossiping algorithms over one network (or a family of
networks) and tabulates total communication times next to the paper's
closed-form bounds — the engine behind
``benchmarks/bench_algorithm_comparison.py`` and the comparison example.

The *adversarial* half (:func:`run_epidemic_comparison`, ``cli compare
--epidemic``, ``benchmarks/bench_epidemic.py``) pits the paper's
deterministic ConcurrentUpDown schedules against the randomized
baselines of :mod:`repro.core.epidemic` and :mod:`repro.core.coded`
across topologies *and* fault regimes, measuring seeded
rounds-to-completion percentiles, message complexity and
redundant-delivery ratios.  The designed outcome, enforced by
:meth:`EpidemicReport.check`:

* at 0% drop the deterministic ``n + r`` schedule beats every epidemic
  variant's median completion on every topology family (randomization
  pays a collision/coupon tax the paper's schedules avoid);
* at drop rates that kill essentially every unrepaired deterministic
  transcript, the *online* push-pull protocol — re-deciding each round
  from actual possession state — still completes ≥ 95% of trials
  (redundancy buys survival, the other side of the trade).

Everything is seeded and wall-clock-free, so reports are byte-for-byte
reproducible (trial seeds follow the chaos-sweep derivation
``seed * 1_000_003 + i * 10_007 + j * 101 + k``; the same base seed
drives the protocol and the fault draws — their splitmix64 streams are
domain-separated by tag).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.coded import run_coded_gossip
from ..core.epidemic import EPIDEMIC_VARIANTS, run_epidemic
from ..core.gossip import gossip, resolve_network
from ..core.recovery import execute_plan_with_faults
from ..networks.graph import Graph
from ..networks.properties import radius as graph_radius
from ..simulator.lossy import FaultModel
from .bounds import (
    concurrent_updown_upper_bound,
    simple_exact_time,
    trivial_lower_bound,
    updown_upper_bound,
)
from .sweep import FAMILIES

__all__ = [
    "ComparisonRow",
    "compare_algorithms",
    "comparison_table",
    "DEFAULT_ALGORITHMS",
    "AlgoStats",
    "EpidemicCell",
    "EpidemicReport",
    "run_epidemic_comparison",
]

#: The algorithms every comparison includes by default.
DEFAULT_ALGORITHMS: Sequence[str] = (
    "concurrent-updown",
    "updown",
    "simple",
    "greedy",
    "telephone",
)


@dataclass(frozen=True)
class ComparisonRow:
    """One network's measured schedule lengths and reference bounds."""

    name: str
    n: int
    radius: int
    times: Dict[str, int]
    lower_bound: int
    concurrent_bound: int
    simple_bound: int
    updown_bound: int

    def winner(self) -> str:
        """Algorithm with the shortest measured schedule (ties: registry order).

        ``min`` scans the dict in insertion order and a strict ``<``
        keeps the first of equals, so comparing the time alone already
        breaks ties by registry order — O(k), no index scan.
        """
        return min(self.times, key=lambda a: self.times[a])

    def ratio(self, algorithm: str) -> float:
        """Measured time over the trivial lower bound ``n - 1``."""
        lb = max(self.lower_bound, 1)
        return self.times[algorithm] / lb


def compare_algorithms(
    graph: Graph,
    algorithms: Optional[Sequence[str]] = None,
    verify: bool = True,
) -> ComparisonRow:
    """Run each algorithm on ``graph`` and collect total times.

    ``verify=True`` executes every schedule on the simulator (complete
    gossip or an exception); switch it off in timing-sensitive loops.
    """
    algos = DEFAULT_ALGORITHMS if algorithms is None else algorithms
    times: Dict[str, int] = {}
    for algo in algos:
        plan = gossip(graph, algorithm=algo)
        if verify:
            plan.execute(on_tree_only=True)
        times[algo] = plan.total_time
    return ComparisonRow(
        name=graph.name or f"graph-n{graph.n}",
        n=graph.n,
        radius=graph_radius(graph),
        times=times,
        lower_bound=trivial_lower_bound(graph.n),
        concurrent_bound=concurrent_updown_upper_bound(graph),
        simple_bound=simple_exact_time(graph),
        updown_bound=updown_upper_bound(graph),
    )


def comparison_table(
    graphs: Iterable[Graph],
    algorithms: Optional[Sequence[str]] = None,
    verify: bool = True,
) -> List[ComparisonRow]:
    """Compare algorithms across a family of networks."""
    return [compare_algorithms(g, algorithms, verify) for g in graphs]


def format_comparison(rows: Sequence[ComparisonRow]) -> str:
    """Plain-text table of a comparison (benchmark report output).

    Columns are the first-seen union of every row's algorithms, so rows
    produced with different ``algorithms`` sequences render side by side
    — a missing measurement shows as ``—`` rather than raising.
    """
    if not rows:
        return "(no rows)"
    algos: List[str] = []
    for row in rows:
        for a in row.times:
            if a not in algos:
                algos.append(a)
    header = (
        f"{'network':<22} {'n':>5} {'r':>3} {'n-1':>5} {'n+r':>5} "
        + " ".join(f"{a:>18}" for a in algos)
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        cells = " ".join(
            f"{row.times[a]:>18}" if a in row.times else f"{'—':>18}" for a in algos
        )
        lines.append(
            f"{row.name:<22} {row.n:>5} {row.radius:>3} "
            f"{row.lower_bound:>5} {row.concurrent_bound:>5} {cells}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Adversarial suite: deterministic schedules vs randomized baselines.
# ---------------------------------------------------------------------------


def _rank(sorted_values: Sequence[int], q: float) -> int:
    """Nearest-rank percentile of a sorted non-empty integer sequence."""
    rank = max(0, min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1))))
    return sorted_values[int(rank)]


@dataclass(frozen=True)
class AlgoStats:
    """One algorithm's seeded trial statistics inside one cell.

    ``rounds_p50`` / ``rounds_p95`` are nearest-rank percentiles of the
    completion round over the *completed* trials (``None`` if none
    completed); ``mean_messages`` counts attempted sends per trial and
    ``mean_redundancy`` averages each trial's redundant-delivery ratio
    (duplicates / successful deliveries).
    """

    algorithm: str
    trials: int
    completed: int
    rounds_p50: Optional[int]
    rounds_p95: Optional[int]
    mean_messages: float
    mean_redundancy: float

    @property
    def survival(self) -> float:
        """Fraction of trials that reached complete gossip."""
        return self.completed / self.trials if self.trials else 0.0


@dataclass(frozen=True)
class EpidemicCell:
    """One (family, fault-regime) cell of the adversarial comparison.

    ``deterministic_makespan`` is the fault-free ConcurrentUpDown
    schedule length for this family — the ``n + r`` yardstick every
    randomized percentile is gated against.
    """

    family: str
    n: int
    drop_rate: float
    fail_stop_rate: float
    deterministic_makespan: int
    stats: Tuple[AlgoStats, ...]

    @property
    def is_null(self) -> bool:
        """True for the fault-free regime (the makespan-gate cells)."""
        return self.drop_rate == 0.0 and self.fail_stop_rate == 0.0

    def algo(self, name: str) -> Optional[AlgoStats]:
        """This cell's stats for ``name`` (``None`` if not measured)."""
        for s in self.stats:
            if s.algorithm == name:
                return s
        return None


@dataclass(frozen=True)
class EpidemicReport:
    """A full adversarial comparison (see module docstring)."""

    cells: Tuple[EpidemicCell, ...]
    seed: int
    trials: int
    push_trials: int

    def format(self) -> str:
        """Deterministic table — no wall-clock numbers, byte-reproducible."""
        header = (
            f"{'network':<16} {'n':>4} {'drop':>5} {'fstop':>6} {'n+r':>5} "
            f"{'algorithm':<20} {'trials':>6} {'done':>5} {'rate':>7} "
            f"{'p50':>6} {'p95':>6} {'msgs':>8} {'redund':>7}"
        )
        lines = [
            f"epidemic comparison  seed={self.seed}  trials={self.trials}  "
            f"push-trials={self.push_trials}",
            header,
            "-" * len(header),
        ]
        for c in self.cells:
            for s in c.stats:
                p50 = f"{s.rounds_p50:>6}" if s.rounds_p50 is not None else f"{'n/a':>6}"
                p95 = f"{s.rounds_p95:>6}" if s.rounds_p95 is not None else f"{'n/a':>6}"
                lines.append(
                    f"{c.family:<16} {c.n:>4} {c.drop_rate:>5.2f} "
                    f"{c.fail_stop_rate:>6.4f} {c.deterministic_makespan:>5} "
                    f"{s.algorithm:<20} {s.trials:>6} {s.completed:>5} "
                    f"{s.survival:>6.1%} {p50} {p95} "
                    f"{s.mean_messages:>8.1f} {s.mean_redundancy:>7.3f}"
                )
        return "\n".join(lines)

    def check(
        self,
        *,
        min_pushpull_survival: float = 0.95,
        max_deterministic_survival: float = 0.5,
    ) -> None:
        """Assert the two statistical gates (raises ``AssertionError``).

        **Makespan gate** — in every fault-free cell, every randomized
        algorithm completes all its trials and its *median* completion
        round is strictly worse than the deterministic ``n + r``
        schedule.

        **Resilience gate** — in every pure-drop fault cell, the
        unrepaired deterministic schedule survives at most
        ``max_deterministic_survival`` of its trials while online
        push-pull survives at least ``min_pushpull_survival``.

        Both gates must be exercised: a report with no fault-free cells
        or no pure-drop fault cells fails rather than passing vacuously.
        """
        makespan_cells = resilience_cells = 0
        for c in self.cells:
            if c.is_null:
                makespan_cells += 1
                for s in c.stats:
                    if s.algorithm == "concurrent-updown":
                        continue
                    assert s.completed == s.trials, (
                        f"{c.family}: {s.algorithm} completed only "
                        f"{s.completed}/{s.trials} fault-free trials"
                    )
                    assert s.rounds_p50 is not None
                    assert c.deterministic_makespan < s.rounds_p50, (
                        f"{c.family}: deterministic makespan "
                        f"{c.deterministic_makespan} does not beat {s.algorithm} "
                        f"median {s.rounds_p50}"
                    )
            elif c.drop_rate > 0.0 and c.fail_stop_rate == 0.0:
                det = c.algo("concurrent-updown")
                pp = c.algo("epidemic-push-pull")
                if det is None or pp is None:
                    continue
                resilience_cells += 1
                assert det.survival <= max_deterministic_survival, (
                    f"{c.family} at drop {c.drop_rate:.2f}: unrepaired "
                    f"deterministic schedule survived {det.survival:.1%} "
                    f"(> {max_deterministic_survival:.0%}) — regime not adversarial"
                )
                assert pp.survival >= min_pushpull_survival, (
                    f"{c.family} at drop {c.drop_rate:.2f}: push-pull survived "
                    f"only {pp.survival:.1%} (< {min_pushpull_survival:.0%})"
                )
        assert makespan_cells > 0, "no fault-free cells: makespan gate not exercised"
        assert resilience_cells > 0, (
            "no pure-drop fault cells with both contestants: "
            "resilience gate not exercised"
        )


def _epidemic_stats(
    algorithm: str,
    outcomes: Sequence[Tuple[bool, Optional[int], int, float]],
) -> AlgoStats:
    """Fold per-trial ``(complete, rounds, messages, redundancy)`` tuples."""
    rounds = sorted(r for done, r, _, _ in outcomes if done and r is not None)
    n_trials = len(outcomes)
    return AlgoStats(
        algorithm=algorithm,
        trials=n_trials,
        completed=sum(1 for done, _, _, _ in outcomes if done),
        rounds_p50=_rank(rounds, 0.50) if rounds else None,
        rounds_p95=_rank(rounds, 0.95) if rounds else None,
        mean_messages=sum(m for _, _, m, _ in outcomes) / n_trials,
        mean_redundancy=sum(d for _, _, _, d in outcomes) / n_trials,
    )


def run_epidemic_comparison(
    families: Optional[Sequence[str]] = None,
    *,
    n: int = 16,
    trials: int = 100,
    push_trials: Optional[int] = None,
    seed: int = 0,
    drop_rates: Sequence[float] = (0.0, 0.15),
    fail_stop_rates: Sequence[float] = (0.0,),
    fanout: int = 1,
) -> EpidemicReport:
    """Run the adversarial deterministic-vs-randomized comparison.

    ``families`` are family names resolved as ``"family:n"`` (default:
    all of :data:`repro.analysis.sweep.FAMILIES`).  Cells are the
    product ``families × drop_rates × fail_stop_rates``:

    * the fault-free cell measures every epidemic variant plus coded
      gossip over ``trials`` seeded runs each (push over ``push_trials``
      — its uniform-selection random walk is ~50× slower on path-like
      families and its gate margin is enormous, so fewer trials lose no
      power) against the deterministic run, which is executed **once**
      and counted per trial (it is the same transcript every time);
    * fault cells measure the *online* push-pull protocol and coded
      gossip against per-trial unrepaired replays of the deterministic
      schedule under the same seeded :class:`FaultModel` family.

    hot-loop-ok: a measurement sweep, not a planner hot path.
    """
    from ..exceptions import ReproError

    if trials < 1:
        raise ReproError("trials must be >= 1")
    fams = list(FAMILIES) if families is None else list(families)
    n_push = max(1, trials // 5) if push_trials is None else push_trials
    cells: List[EpidemicCell] = []
    for i, family in enumerate(fams):
        graph, tree = resolve_network(f"{family}:{n}")
        plan = gossip(graph, algorithm="concurrent-updown", tree=tree)
        makespan = plan.schedule.total_time
        det_msgs = sum(len(rnd) for rnd in plan.schedule.rounds)
        det_deliveries = sum(rnd.delivery_count() for rnd in plan.schedule.rounds)
        regimes = [(d, f) for f in fail_stop_rates for d in drop_rates]
        for j, (drop, fstop) in enumerate(regimes):
            null_regime = drop == 0.0 and fstop == 0.0
            stats: List[AlgoStats] = []

            # Deterministic contestant: one fault-free execution counted
            # per trial in the null regime, per-trial lossy replays else.
            det_outcomes: List[Tuple[bool, Optional[int], int, float]] = []
            for k in range(trials):
                base = seed * 1_000_003 + i * 10_007 + j * 101 + k
                model = FaultModel(
                    seed=base, drop_rate=drop, fail_stop_rate=fstop
                )
                res = execute_plan_with_faults(plan, model)
                # Suppressed multicasts' deliveries are not itemised in
                # ``lost``, so this undercounts only in crash regimes —
                # exact in the null and pure-drop cells the gates read.
                landed = det_deliveries - len(res.lost)
                dup_ratio = (
                    res.duplicate_deliveries / landed if landed > 0 else 0.0
                )
                det_outcomes.append(
                    (
                        res.complete,
                        res.total_time if res.complete else None,
                        det_msgs,
                        dup_ratio,
                    )
                )
                if null_regime:
                    det_outcomes = det_outcomes * trials
                    break
            stats.append(_epidemic_stats("concurrent-updown", det_outcomes))

            variants = EPIDEMIC_VARIANTS if null_regime else ("push-pull",)
            for variant in variants:
                n_var = n_push if variant == "push" else trials
                outcomes = []
                for k in range(n_var):
                    base = seed * 1_000_003 + i * 10_007 + j * 101 + k
                    model = (
                        None
                        if null_regime
                        else FaultModel(
                            seed=base, drop_rate=drop, fail_stop_rate=fstop
                        )
                    )
                    r = run_epidemic(
                        graph, variant=variant, seed=base, fanout=fanout, model=model
                    )
                    outcomes.append(
                        (
                            r.complete,
                            r.completion_round,
                            r.messages_sent,
                            r.redundancy,
                        )
                    )
                stats.append(_epidemic_stats(f"epidemic-{variant}", outcomes))

            coded_outcomes = []
            for k in range(trials):
                base = seed * 1_000_003 + i * 10_007 + j * 101 + k
                model = (
                    None
                    if null_regime
                    else FaultModel(seed=base, drop_rate=drop, fail_stop_rate=fstop)
                )
                r = run_coded_gossip(graph, seed=base, fanout=fanout, model=model)
                coded_outcomes.append(
                    (r.complete, r.completion_round, r.packets_sent, r.redundancy)
                )
            stats.append(_epidemic_stats("coded", coded_outcomes))

            cells.append(
                EpidemicCell(
                    family=family,
                    n=graph.n,
                    drop_rate=drop,
                    fail_stop_rate=fstop,
                    deterministic_makespan=makespan,
                    stats=tuple(stats),
                )
            )
    return EpidemicReport(
        cells=tuple(cells), seed=seed, trials=trials, push_trials=n_push
    )
