"""Algorithm comparison harness.

Runs several gossiping algorithms over one network (or a family of
networks) and tabulates total communication times next to the paper's
closed-form bounds — the engine behind
``benchmarks/bench_algorithm_comparison.py`` and the comparison example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..core.gossip import gossip
from ..networks.graph import Graph
from ..networks.properties import radius as graph_radius
from .bounds import (
    concurrent_updown_upper_bound,
    simple_exact_time,
    trivial_lower_bound,
    updown_upper_bound,
)

__all__ = ["ComparisonRow", "compare_algorithms", "comparison_table", "DEFAULT_ALGORITHMS"]

#: The algorithms every comparison includes by default.
DEFAULT_ALGORITHMS: Sequence[str] = (
    "concurrent-updown",
    "updown",
    "simple",
    "greedy",
    "telephone",
)


@dataclass(frozen=True)
class ComparisonRow:
    """One network's measured schedule lengths and reference bounds."""

    name: str
    n: int
    radius: int
    times: Dict[str, int]
    lower_bound: int
    concurrent_bound: int
    simple_bound: int
    updown_bound: int

    def winner(self) -> str:
        """Algorithm with the shortest measured schedule (ties: registry order)."""
        return min(self.times, key=lambda a: (self.times[a], list(self.times).index(a)))

    def ratio(self, algorithm: str) -> float:
        """Measured time over the trivial lower bound ``n - 1``."""
        lb = max(self.lower_bound, 1)
        return self.times[algorithm] / lb


def compare_algorithms(
    graph: Graph,
    algorithms: Optional[Sequence[str]] = None,
    verify: bool = True,
) -> ComparisonRow:
    """Run each algorithm on ``graph`` and collect total times.

    ``verify=True`` executes every schedule on the simulator (complete
    gossip or an exception); switch it off in timing-sensitive loops.
    """
    algos = DEFAULT_ALGORITHMS if algorithms is None else algorithms
    times: Dict[str, int] = {}
    for algo in algos:
        plan = gossip(graph, algorithm=algo)
        if verify:
            plan.execute(on_tree_only=True)
        times[algo] = plan.total_time
    return ComparisonRow(
        name=graph.name or f"graph-n{graph.n}",
        n=graph.n,
        radius=graph_radius(graph),
        times=times,
        lower_bound=trivial_lower_bound(graph.n),
        concurrent_bound=concurrent_updown_upper_bound(graph),
        simple_bound=simple_exact_time(graph),
        updown_bound=updown_upper_bound(graph),
    )


def comparison_table(
    graphs: Iterable[Graph],
    algorithms: Optional[Sequence[str]] = None,
    verify: bool = True,
) -> List[ComparisonRow]:
    """Compare algorithms across a family of networks."""
    return [compare_algorithms(g, algorithms, verify) for g in graphs]


def format_comparison(rows: Sequence[ComparisonRow]) -> str:
    """Plain-text table of a comparison (benchmark report output)."""
    if not rows:
        return "(no rows)"
    algos = list(rows[0].times)
    header = (
        f"{'network':<22} {'n':>5} {'r':>3} {'n-1':>5} {'n+r':>5} "
        + " ".join(f"{a:>18}" for a in algos)
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        cells = " ".join(f"{row.times[a]:>18}" for a in algos)
        lines.append(
            f"{row.name:<22} {row.n:>5} {row.radius:>3} "
            f"{row.lower_bound:>5} {row.concurrent_bound:>5} {cells}"
        )
    return "\n".join(lines)
