"""Analysis layer: bounds, comparisons, sweeps, chaos/survival runs, paper tables."""

from .chaos import ChaosCell, ChaosReport, run_chaos_sweep
from .planner_bench import PlannerBenchReport, PlannerCell, run_planner_bench
from .survival import SurvivalCell, SurvivalReport, run_survival_sweep
from .bounds import (
    approximation_ratio_bound,
    concurrent_updown_upper_bound,
    gossip_lower_bound,
    path_lower_bound,
    simple_exact_time,
    trivial_lower_bound,
    updown_upper_bound,
)
from .profile import ActivityProfile, activity_profile, completion_curve
from .comparison import (
    DEFAULT_ALGORITHMS,
    ComparisonRow,
    compare_algorithms,
    comparison_table,
    format_comparison,
)
from .sweep import FAMILIES, SweepPoint, family_instance, small_suite, sweep
from .tables import EXPECTED_TABLES, paper_tables, render_timeline

__all__ = [
    "trivial_lower_bound",
    "path_lower_bound",
    "gossip_lower_bound",
    "concurrent_updown_upper_bound",
    "simple_exact_time",
    "updown_upper_bound",
    "approximation_ratio_bound",
    "ComparisonRow",
    "compare_algorithms",
    "comparison_table",
    "format_comparison",
    "DEFAULT_ALGORITHMS",
    "FAMILIES",
    "SweepPoint",
    "family_instance",
    "sweep",
    "small_suite",
    "paper_tables",
    "render_timeline",
    "EXPECTED_TABLES",
    "ActivityProfile",
    "activity_profile",
    "completion_curve",
    "ChaosCell",
    "ChaosReport",
    "run_chaos_sweep",
    "SurvivalCell",
    "SurvivalReport",
    "run_survival_sweep",
    "PlannerCell",
    "PlannerBenchReport",
    "run_planner_bench",
]
