"""Chaos sweeps — seeded fault-injection campaigns over the recovery stack.

``repro.cli chaos`` and ``benchmarks/bench_recovery.py`` both drive this
module: plan gossip on each topology, execute the plan under a seeded
:class:`~repro.simulator.lossy.FaultModel` for every requested drop
rate, repair incomplete runs with :func:`~repro.core.recovery.recover`,
and report per-cell completion rates plus round-overhead percentiles.

Everything is deterministic: trial seeds derive from the sweep seed and
the cell coordinates, overheads are integer round counts, and the
formatted report contains no wall-clock measurements — so a chaos run is
byte-for-byte reproducible for a fixed seed (an acceptance criterion).

Each successful trial's repaired schedule is (optionally, on by
default) re-validated on the **fault-free** engine with
``require_complete=True`` — repairs must be model-legal schedules in
their own right, not just lucky under the faults that shaped them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.gossip import gossip, resolve_network
from ..core.recovery import execute_plan_with_faults, recover
from ..exceptions import RecoveryExhaustedError, ReproError, SweepTimeoutError
from ..simulator.engine import execute_schedule
from ..simulator.lossy import FaultModel
from ..simulator.state import labeled_holdings

__all__ = ["ChaosCell", "ChaosReport", "run_chaos_sweep"]


def _rank(sorted_values: Sequence[int], q: float) -> int:
    """Nearest-rank percentile of a sorted non-empty integer sequence."""
    rank = max(0, min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1))))
    return sorted_values[int(rank)]


@dataclass(frozen=True)
class ChaosCell:
    """One (topology, drop-rate) cell of a chaos sweep.

    ``overhead_*`` percentiles are extra rounds beyond the fault-free
    schedule over the *completed* trials (``None`` if none completed);
    ``verified`` counts repaired schedules that passed the fault-free
    engine with ``require_complete=True``.
    """

    family: str
    n: int
    drop_rate: float
    trials: int
    completed: int
    verified: int
    baseline_total: int
    deliveries_lost: int
    repair_attempts_max: int
    overhead_p50: Optional[int]
    overhead_p90: Optional[int]
    overhead_max: Optional[int]

    @property
    def completion_rate(self) -> float:
        return self.completed / self.trials if self.trials else 0.0


@dataclass(frozen=True)
class ChaosReport:
    """A full chaos sweep: one :class:`ChaosCell` per (family, drop) pair."""

    cells: Tuple[ChaosCell, ...]
    seed: int
    algorithm: str
    max_repair_rounds: int

    def format(self) -> str:
        """Deterministic human-readable table (no wall-clock numbers)."""
        header = (
            f"{'network':<16} {'n':>4} {'drop':>5} {'trials':>6} "
            f"{'done':>5} {'rate':>7} {'lost':>6} "
            f"{'base':>5} {'ovh p50':>8} {'p90':>5} {'max':>5}"
        )
        lines = [
            f"chaos sweep  seed={self.seed}  algorithm={self.algorithm}  "
            f"max-repair-rounds={self.max_repair_rounds}",
            header,
            "-" * len(header),
        ]
        for c in self.cells:
            ovh = (
                (f"{c.overhead_p50:>8} {c.overhead_p90:>5} {c.overhead_max:>5}")
                if c.overhead_p50 is not None
                else f"{'n/a':>8} {'n/a':>5} {'n/a':>5}"
            )
            lines.append(
                f"{c.family:<16} {c.n:>4} {c.drop_rate:>5.2f} {c.trials:>6} "
                f"{c.completed:>5} {c.completion_rate:>6.1%} "
                f"{c.deliveries_lost:>6} {c.baseline_total:>5} {ovh}"
            )
        return "\n".join(lines)

    def check(self, *, min_completion_rate: float = 0.95) -> None:
        """Assert the acceptance gates (raises ``AssertionError``).

        Every cell must complete at least ``min_completion_rate`` of its
        trials, and every completed trial's repaired schedule must have
        passed the fault-free engine.
        """
        for c in self.cells:
            assert c.completion_rate >= min_completion_rate, (
                f"{c.family} at drop {c.drop_rate:.2f}: only "
                f"{c.completed}/{c.trials} trials completed "
                f"({c.completion_rate:.1%} < {min_completion_rate:.0%})"
            )
            assert c.verified == c.completed, (
                f"{c.family} at drop {c.drop_rate:.2f}: "
                f"{c.completed - c.verified} repaired schedules failed "
                "fault-free re-validation"
            )


def run_chaos_sweep(
    families: Sequence[str] = ("random:48",),
    drop_rates: Sequence[float] = (0.0, 0.1, 0.2),
    *,
    trials: int = 20,
    seed: int = 7,
    algorithm: str = "concurrent-updown",
    max_repair_rounds: Optional[int] = None,
    link_outage_rate: float = 0.0,
    crash_rate: float = 0.0,
    crash_length: int = 1,
    policy: str = "nearest-holder",
    verify_fault_free: bool = True,
    deadline: Optional[float] = None,
) -> ChaosReport:
    """Run a seeded drop-rate × topology fault sweep.

    ``families`` entries are :func:`~repro.core.gossip.resolve_network`
    specs (``"random:48"``, ``"grid:64"``, ...).  ``max_repair_rounds``
    defaults to ``max(256, 10 * baseline)`` per topology so deep
    topologies and high drop rates get a budget proportional to their
    fault-free schedule length.  Trial ``k`` of cell ``(i, j)`` uses the
    fault seed ``seed * 1_000_003 + i * 10_007 + j * 101 + k`` —
    deterministic, distinct per trial, reproducible across runs.

    ``deadline`` (seconds of wall clock) bounds the whole sweep: checked
    between trials, and on expiry the sweep fails fast with the typed
    :class:`~repro.exceptions.SweepTimeoutError` instead of grinding on —
    the wall clock gates only *whether* the sweep finishes, never any
    reported number, so determinism of the output is unaffected.
    """
    if trials < 1:
        raise ReproError("trials must be >= 1")
    if deadline is not None and deadline <= 0:
        raise ReproError("deadline must be positive (seconds)")
    started = time.monotonic()
    cells: List[ChaosCell] = []
    report_budget = 0
    for i, spec in enumerate(families):
        graph, tree = resolve_network(spec)
        plan = gossip(graph, algorithm=algorithm, tree=tree)
        baseline = plan.schedule.total_time
        budget = (
            max(256, 10 * baseline) if max_repair_rounds is None else max_repair_rounds
        )
        report_budget = max(report_budget, budget)
        holds0 = labeled_holdings(plan.labeled.labels())
        for j, drop in enumerate(drop_rates):
            completed = verified = lost_total = attempts_max = 0
            overheads: List[int] = []
            for k in range(trials):
                if deadline is not None:
                    elapsed = time.monotonic() - started
                    if elapsed > deadline:
                        raise SweepTimeoutError(
                            f"chaos sweep exceeded its {deadline:.1f}s deadline "
                            f"after {elapsed:.1f}s ({len(cells)} of "
                            f"{len(families) * len(drop_rates)} cells done)",
                            elapsed=elapsed,
                            completed_cells=len(cells),
                        )
                model = FaultModel(
                    seed=seed * 1_000_003 + i * 10_007 + j * 101 + k,
                    drop_rate=drop,
                    link_outage_rate=link_outage_rate,
                    crash_rate=crash_rate,
                    crash_length=crash_length,
                )
                faulty = execute_plan_with_faults(plan, model)
                lost_total += len(faulty.lost)
                try:
                    outcome = recover(
                        graph,
                        plan,
                        faulty,
                        max_repair_rounds=budget,
                        policy=policy,
                    )
                except RecoveryExhaustedError:
                    continue
                completed += 1
                attempts_max = max(attempts_max, outcome.attempts)
                overheads.append(outcome.overhead_rounds)
                if verify_fault_free:
                    replay = execute_schedule(
                        graph,
                        outcome.schedule,
                        initial_holds=holds0,
                        require_complete=True,
                    )
                    if replay.complete:
                        verified += 1
                else:
                    verified += 1
            overheads.sort()
            cells.append(
                ChaosCell(
                    family=graph.name or str(spec),
                    n=graph.n,
                    drop_rate=drop,
                    trials=trials,
                    completed=completed,
                    verified=verified,
                    baseline_total=baseline,
                    deliveries_lost=lost_total,
                    repair_attempts_max=attempts_max,
                    overhead_p50=_rank(overheads, 0.50) if overheads else None,
                    overhead_p90=_rank(overheads, 0.90) if overheads else None,
                    overhead_max=overheads[-1] if overheads else None,
                )
            )
    return ChaosReport(
        cells=tuple(cells),
        seed=seed,
        algorithm=algorithm,
        max_repair_rounds=report_budget,
    )
