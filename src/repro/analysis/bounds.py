"""Closed-form bounds from the paper, as checkable functions.

Collects every quantitative claim so that tests and benchmarks compare
measured schedule lengths against named formulas rather than magic
numbers:

* ``n - 1``                      — trivial lower bound (every processor
  must receive ``n - 1`` messages, one per round)      [Section 1]
* ``n + r - 1``                  — lower bound on the odd path
  ``P_{2m+1}`` (and its generalisation below)          [Section 1]
* ``n + r``                      — ConcurrentUpDown upper bound
  (Theorem 1)
* ``2n + r - 3``                 — Simple's exact time (Lemma 1)
* ``(n - 1 + r) + (2(r-1) + 1)`` — UpDown's two-phase budget
* ``ecc(source)``                — optimal broadcast time  [Section 2]
* ratio ``(n + r) / (n - 1) <= 1.5`` since ``r <= n/2``  [Section 4]
"""

from __future__ import annotations

from ..networks.bfs import all_eccentricities
from ..networks.graph import Graph
from ..networks.properties import radius as graph_radius

__all__ = [
    "trivial_lower_bound",
    "path_lower_bound",
    "gossip_lower_bound",
    "concurrent_updown_upper_bound",
    "simple_exact_time",
    "updown_upper_bound",
    "approximation_ratio_bound",
]


def trivial_lower_bound(n: int) -> int:
    """``n - 1``: each processor must receive ``n - 1`` messages."""
    return max(n - 1, 0)


def path_lower_bound(n: int) -> int:
    """The odd-path argument of Section 1 for ``P_n`` with ``n = 2m + 1``.

    All messages reach the center no earlier than ``n - 1``; the last one
    then needs ``m`` more hops to the ends: ``n + m - 1 = n + r - 1``.
    For even ``n`` the same argument (center pair) gives ``n + r - 2``
    conservatively; we return the odd-case formula only for odd ``n``
    and fall back to ``n - 1`` otherwise.
    """
    if n < 3:
        return trivial_lower_bound(n)
    if n % 2 == 1:
        m = (n - 1) // 2
        return n + m - 1
    return n - 1


def gossip_lower_bound(graph: Graph) -> int:
    """The strongest generic lower bound the paper's arguments give.

    ``max(n - 1, max_v (n - deg(v) - 1 + ecc(v))... )`` is tempting but
    unsound in general, so we only combine the two the paper proves:

    * the trivial ``n - 1``;
    * the bottleneck argument specialised to *cut vertices of degree 2
      paths* is exactly the path bound, which we do not generalise.

    Hence: ``n - 1``, except for path graphs where the Section 1 bound
    applies (detected structurally: two degree-1 vertices, rest degree 2,
    connected).
    """
    n = graph.n
    degrees = sorted(int(graph.degree(v)) for v in range(n))
    looks_like_path = (
        n >= 3
        and degrees[0] == 1
        and degrees[1] == 1
        and all(d == 2 for d in degrees[2:])
    )
    if looks_like_path:
        # a connected graph with this degree sequence is a path
        return path_lower_bound(n)
    return trivial_lower_bound(n)


def concurrent_updown_upper_bound(graph: Graph) -> int:
    """Theorem 1: ``n + r``."""
    return graph.n + graph_radius(graph)


def simple_exact_time(graph: Graph) -> int:
    """Lemma 1 applied to the network: ``2n + r - 3`` (0 for n = 1)."""
    if graph.n <= 1:
        return 0
    return 2 * graph.n + graph_radius(graph) - 3


def updown_upper_bound(graph: Graph) -> int:
    """UpDown's two-phase budget ``(n - 1 + r) + (2(r - 1) + 1)``."""
    if graph.n <= 1:
        return 0
    r = graph_radius(graph)
    return (graph.n - 1 + r) + (2 * (r - 1) + 1)


def approximation_ratio_bound(graph: Graph) -> float:
    """Upper bound on ConcurrentUpDown's approximation ratio.

    ``(n + r) / (n - 1)``.  Since the radius of a connected graph is at
    most ``n / 2`` (Section 4), this is at most
    ``1.5 n / (n - 1) = 1.5 + 1.5 / (n - 1)`` — the paper's "at most 1.5
    times optimal", exact in the limit and off by ``O(1/n)`` for small
    networks.
    """
    n = graph.n
    if n <= 1:
        return 1.0
    return (n + graph_radius(graph)) / trivial_lower_bound(n)


def max_broadcast_time(graph: Graph) -> int:
    """Worst-case optimal broadcast time over all sources: the diameter."""
    return int(all_eccentricities(graph).max())
