"""repro — Gossiping in the Multicasting Communication Environment.

A full reproduction of T. F. Gonzalez's gossiping algorithm (IPPS 2001;
journal version IEEE TPDS): communication schedules of total time
``n + r`` for all-to-all broadcast on arbitrary networks under the
multicasting communication model.

Quickstart
----------
>>> from repro import topologies, gossip
>>> plan = gossip(topologies.grid_2d(4, 4))
>>> plan.total_time                          # n + r = 16 + 4
20
>>> plan.execute().complete
True

Packages
--------
* :mod:`repro.networks`  — graphs, topologies, radius / spanning trees;
* :mod:`repro.tree`      — rooted trees and DFS message labelling;
* :mod:`repro.core`      — the scheduling algorithms and data model;
* :mod:`repro.simulator` — round-based execution and validation;
* :mod:`repro.lint`      — execution-free static schedule analysis;
* :mod:`repro.service`   — cached, concurrent plan serving;
* :mod:`repro.analysis`  — bounds, comparisons, paper tables;
* :mod:`repro.viz`       — ASCII rendering helpers.
"""

from . import networks
from .core.broadcast import broadcast, broadcast_time, telephone_broadcast
from .core.concurrent_updown import concurrent_updown, concurrent_updown_on_tree
from .core.gossip import (
    ALGORITHMS,
    GossipPlan,
    gossip,
    gossip_on_tree,
    register_algorithm,
    resolve_network,
)
from .core.online import run_online_gossip
from .core.optimal import minimum_gossip_time
from .core.optimal_path import optimal_path_gossip
from .core.recovery import RecoveryResult, execute_plan_with_faults, recover
from .core.repeated import repeated_gossip
from .core.ring import hamiltonian_circuit, ring_gossip, ring_gossip_on_graph
from .core.schedule import Round, Schedule, ScheduleBuilder, Transmission
from .core.simple import simple_gossip, simple_total_time
from .core.survival import (
    SurvivalDiagnosis,
    SurvivalResult,
    diagnose_survival,
    survive,
    validate_survival,
)
from .core.updown import updown_gossip, updown_total_time_bound
from .core.weighted import weighted_gossip
from .exceptions import (
    CircuitOpenError,
    DisconnectedGraphError,
    GraphError,
    IncompleteGossipError,
    LabelingError,
    MessageClassError,
    ModelViolationError,
    PartitionedNetworkError,
    PlanTimeoutError,
    RecoveryExhaustedError,
    ReproError,
    ScheduleConflictError,
    ScheduleError,
    ScheduleLintError,
    SimulationError,
    SurvivorSetError,
    TreeError,
    UnknownTimelineRowError,
)
from .lint import Diagnostic, LintReport, Severity, lint_schedule
from .networks import topologies
from .networks.graph import Graph, GraphBuilder
from .networks.properties import center, diameter, radius, summarize
from .networks.spanning_tree import bfs_spanning_tree, minimum_depth_spanning_tree
from .service import GossipService, MaintainedNetwork, ServiceStats
from .simulator.engine import execute_schedule
from .simulator.lossy import FaultModel, FaultyExecutionResult, execute_with_faults
from .tree.labeling import LabeledTree, label_tree
from .tree.tree import Tree

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # network substrate
    "Graph",
    "GraphBuilder",
    "topologies",
    "networks",
    "radius",
    "diameter",
    "center",
    "summarize",
    "bfs_spanning_tree",
    "minimum_depth_spanning_tree",
    # tree substrate
    "Tree",
    "LabeledTree",
    "label_tree",
    # schedules and algorithms
    "Transmission",
    "Round",
    "Schedule",
    "ScheduleBuilder",
    "concurrent_updown",
    "concurrent_updown_on_tree",
    "simple_gossip",
    "simple_total_time",
    "updown_gossip",
    "updown_total_time_bound",
    "ring_gossip",
    "ring_gossip_on_graph",
    "hamiltonian_circuit",
    "broadcast",
    "broadcast_time",
    "telephone_broadcast",
    "weighted_gossip",
    "run_online_gossip",
    "repeated_gossip",
    "minimum_gossip_time",
    "optimal_path_gossip",
    "gossip",
    "gossip_on_tree",
    "GossipPlan",
    "ALGORITHMS",
    "register_algorithm",
    "resolve_network",
    # serving
    "GossipService",
    "MaintainedNetwork",
    "ServiceStats",
    # execution
    "execute_schedule",
    # static analysis
    "lint_schedule",
    "LintReport",
    "Diagnostic",
    "Severity",
    # fault tolerance
    "FaultModel",
    "FaultyExecutionResult",
    "execute_with_faults",
    "recover",
    "RecoveryResult",
    "execute_plan_with_faults",
    # survivability
    "survive",
    "diagnose_survival",
    "validate_survival",
    "SurvivalResult",
    "SurvivalDiagnosis",
    # exceptions
    "ReproError",
    "GraphError",
    "DisconnectedGraphError",
    "TreeError",
    "LabelingError",
    "ScheduleError",
    "ScheduleConflictError",
    "ModelViolationError",
    "IncompleteGossipError",
    "ScheduleLintError",
    "MessageClassError",
    "SimulationError",
    "UnknownTimelineRowError",
    "RecoveryExhaustedError",
    "PlanTimeoutError",
    "PartitionedNetworkError",
    "SurvivorSetError",
    "CircuitOpenError",
]
