"""Global graph properties: radius, diameter, center, periphery.

The paper's schedule-length guarantee is stated in terms of the network
*radius* ``r``: the least integer such that some vertex is within ``r``
edges of every vertex.  The vertex realising it is a *center* and becomes
the root of the minimum-depth spanning tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .bfs import all_eccentricities
from .graph import Graph

__all__ = [
    "radius",
    "diameter",
    "center",
    "periphery",
    "GraphSummary",
    "summarize",
]


def radius(graph: Graph) -> int:
    """Network radius: the minimum eccentricity over all vertices.

    Computed by the pruned center sweep
    (:func:`repro.networks.spanning_tree.center_sweep`), which finds the
    minimum without visiting every vertex — the remaining properties
    below genuinely need all eccentricities and use the batched
    bit-parallel sweep instead.
    """
    from .spanning_tree import center_sweep

    return center_sweep(graph).eccentricity


def diameter(graph: Graph) -> int:
    """Network diameter: the maximum eccentricity over all vertices."""
    return int(all_eccentricities(graph).max())


def center(graph: Graph) -> List[int]:
    """All vertices whose eccentricity equals the radius, sorted."""
    ecc = all_eccentricities(graph)
    r = ecc.min()
    return [int(v) for v in np.flatnonzero(ecc == r)]


def periphery(graph: Graph) -> List[int]:
    """All vertices whose eccentricity equals the diameter, sorted."""
    ecc = all_eccentricities(graph)
    d = ecc.max()
    return [int(v) for v in np.flatnonzero(ecc == d)]


@dataclass(frozen=True)
class GraphSummary:
    """Bundle of the global properties a benchmark report needs.

    Attributes
    ----------
    n, m:
        Vertex and edge counts.
    radius, diameter:
        Min / max eccentricity.
    center, periphery:
        Vertices attaining the radius / diameter.
    min_degree, max_degree:
        Degree extremes.
    """

    n: int
    m: int
    radius: int
    diameter: int
    center: Tuple[int, ...]
    periphery: Tuple[int, ...]
    min_degree: int
    max_degree: int

    @property
    def trivial_lower_bound(self) -> int:
        """The universal gossiping lower bound ``n - 1`` (Section 1)."""
        return self.n - 1

    @property
    def concurrent_updown_bound(self) -> int:
        """Theorem 1's guarantee ``n + r`` for ConcurrentUpDown."""
        return self.n + self.radius

    @property
    def simple_bound(self) -> int:
        """Lemma 1's exact total time ``2n + r - 3`` for algorithm Simple."""
        return 2 * self.n + self.radius - 3

    @property
    def updown_bound(self) -> int:
        """UpDown's two-phase total ``(n - 1 + r) + (2(r - 1) + 1)``."""
        return (self.n - 1 + self.radius) + (2 * (self.radius - 1) + 1)


def summarize(graph: Graph) -> GraphSummary:
    """Compute a :class:`GraphSummary` (one BFS per vertex)."""
    ecc = all_eccentricities(graph)
    r, d = int(ecc.min()), int(ecc.max())
    degs = graph.degrees()
    return GraphSummary(
        n=graph.n,
        m=graph.m,
        radius=r,
        diameter=d,
        center=tuple(int(v) for v in np.flatnonzero(ecc == r)),
        periphery=tuple(int(v) for v in np.flatnonzero(ecc == d)),
        min_degree=int(degs.min()),
        max_degree=int(degs.max()),
    )
