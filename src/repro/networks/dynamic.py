"""Tree maintenance for slowly-changing networks.

Section 4: *"The construction of the tree is performed only when there
is a change in the network, which we assume remains constant for long
periods of time."*  :class:`TreeMaintainer` turns that sentence into an
object with an explicit policy:

* ``"eager"`` — rebuild the minimum-depth tree on *every* topology
  change (the paper's literal reading): the schedule-length guarantee
  stays ``n + radius`` at all times.
* ``"lazy"`` — keep the current tree as long as it is still *valid*
  (all its edges exist); rebuild only when a tree edge disappears.  Far
  fewer O(mn) rebuilds, at the cost of a quantified staleness: the
  guarantee degrades to ``n + height(current tree)``, and
  :attr:`TreeMaintainer.height_gap` reports how far above the true
  radius that is.

Maintainers are immutable: mutation methods return a new maintainer and
carry a cumulative ``rebuilds`` counter, so amortisation is measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Literal

if TYPE_CHECKING:  # avoid a networks -> core import cycle at load time
    from ..core.gossip import GossipPlan

from ..exceptions import GraphError, ReproError
from ..tree.tree import Tree
from .fast_paths import fast_radius, minimum_depth_spanning_tree_fast
from .graph import Graph

__all__ = ["TreeMaintainer"]

Policy = Literal["eager", "lazy"]


@dataclass(frozen=True)
class TreeMaintainer:
    """A network plus a maintained communication tree.

    Build with :meth:`create`; evolve with :meth:`add_edge` /
    :meth:`remove_edge`; hand :attr:`tree` to
    :func:`repro.core.gossip.gossip` (via its ``tree=`` parameter) to
    schedule on the maintained tree.
    """

    graph: Graph
    tree: Tree
    policy: Policy
    rebuilds: int

    @classmethod
    def create(cls, graph: Graph, policy: Policy = "eager") -> "TreeMaintainer":
        """Start maintaining ``graph`` (one initial tree construction)."""
        if policy not in ("eager", "lazy"):
            raise ReproError(f"unknown maintenance policy {policy!r}")
        return cls(
            graph=graph,
            tree=minimum_depth_spanning_tree_fast(graph),
            policy=policy,
            rebuilds=1,
        )

    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int) -> "TreeMaintainer":
        """Insert a link.  The old tree stays valid; ``lazy`` keeps it
        (new shortcuts may reduce the radius — see :attr:`height_gap`),
        ``eager`` rebuilds."""
        return self._evolve(self.graph.add_edges([(u, v)]))

    def remove_edge(self, u: int, v: int) -> "TreeMaintainer":
        """Remove a link.  Rebuilds when the edge was a tree edge (the
        tree is broken) or the policy is eager; raises
        :class:`~repro.exceptions.GraphError` when removal disconnects
        the network or the edge is absent."""
        new_graph = self.graph.remove_edges([(u, v)])
        from .bfs import is_connected

        if not is_connected(new_graph):
            raise GraphError(
                f"removing ({u}, {v}) would disconnect the network"
            )
        tree_edge = self.tree.parent(u) == v or self.tree.parent(v) == u
        if self.policy == "eager" or tree_edge:
            return TreeMaintainer(
                graph=new_graph,
                tree=minimum_depth_spanning_tree_fast(new_graph),
                policy=self.policy,
                rebuilds=self.rebuilds + 1,
            )
        return TreeMaintainer(
            graph=new_graph, tree=self.tree, policy=self.policy, rebuilds=self.rebuilds
        )

    def _evolve(self, new_graph: Graph) -> "TreeMaintainer":
        if self.policy == "eager":
            return TreeMaintainer(
                graph=new_graph,
                tree=minimum_depth_spanning_tree_fast(new_graph),
                policy=self.policy,
                rebuilds=self.rebuilds + 1,
            )
        return TreeMaintainer(
            graph=new_graph, tree=self.tree, policy=self.policy, rebuilds=self.rebuilds
        )

    # ------------------------------------------------------------------
    @property
    def schedule_bound(self) -> int:
        """The current guarantee: ``n + height(maintained tree)``."""
        return self.graph.n + self.tree.height

    @property
    def height_gap(self) -> int:
        """Staleness of a lazy tree: ``height - radius`` (0 when fresh).

        Costs one O(mn) sweep to evaluate — call it to *decide* whether a
        lazy rebuild is worth it, not on every operation.
        """
        return self.tree.height - fast_radius(self.graph)

    def refreshed(self) -> "TreeMaintainer":
        """Force a rebuild now (e.g. after :attr:`height_gap` grew)."""
        return TreeMaintainer(
            graph=self.graph,
            tree=minimum_depth_spanning_tree_fast(self.graph),
            policy=self.policy,
            rebuilds=self.rebuilds + 1,
        )

    def plan(self, algorithm: str = "concurrent-updown") -> "GossipPlan":
        """Schedule gossiping on the maintained tree."""
        from ..core.gossip import gossip

        return gossip(self.graph, algorithm=algorithm, tree=self.tree)
