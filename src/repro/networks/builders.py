"""Graph construction helpers and interop with networkx / trees.

The library keeps its own lean :class:`~repro.networks.graph.Graph`, but
real projects live in a networkx world, so lossless conversion both ways
is provided (vertex ids are normalised to ``0..n-1``).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Tuple

import networkx as nx

from ..exceptions import GraphError
from ..tree.tree import Tree
from ..types import EdgeList
from .graph import Graph

__all__ = [
    "from_edges",
    "from_adjacency",
    "from_networkx",
    "to_networkx",
    "tree_to_graph",
    "graph_to_tree",
]


def from_edges(edges: EdgeList, n: int | None = None, name: str = "") -> Graph:
    """Build a graph from an edge list, inferring ``n`` when omitted.

    When ``n`` is omitted it becomes ``max vertex id + 1``; isolated
    trailing vertices therefore need an explicit ``n``.
    """
    edges = [tuple(e) for e in edges]
    if n is None:
        if not edges:
            raise GraphError("cannot infer n from an empty edge list")
        n = max(max(u, v) for u, v in edges) + 1
    return Graph(n, edges, name=name)


def from_adjacency(adjacency: Dict[int, Sequence[int]], name: str = "") -> Graph:
    """Build a graph from a ``vertex -> neighbours`` mapping.

    The mapping's keys must cover ``0..n-1``; each edge may appear in one
    or both directions.
    """
    if not adjacency:
        raise GraphError("empty adjacency mapping")
    n = max(adjacency) + 1
    edges = set()
    for u, neigh in adjacency.items():
        for v in neigh:
            edges.add((u, v) if u < v else (v, u))
    return Graph(n, sorted(edges), name=name)


def from_networkx(g: "nx.Graph", name: str = "") -> Tuple[Graph, Dict[Hashable, int]]:
    """Convert a networkx graph; returns ``(graph, original_id -> new_id)``.

    Vertex ids are relabelled to ``0..n-1`` in sorted order when sortable,
    insertion order otherwise.
    """
    nodes = list(g.nodes())
    try:
        nodes.sort()
    except TypeError:
        pass
    mapping: Dict[Hashable, int] = {node: idx for idx, node in enumerate(nodes)}
    edges = [(mapping[u], mapping[v]) for u, v in g.edges()]
    return Graph(len(nodes), edges, name=name or str(g.name or "")), mapping


def to_networkx(graph: Graph) -> "nx.Graph":
    """Convert to a networkx graph with integer node labels."""
    g = nx.Graph(name=graph.name)
    g.add_nodes_from(range(graph.n))
    g.add_edges_from(graph.edge_list())
    return g


def tree_to_graph(tree: Tree) -> Graph:
    """The tree *as a network*: its parent-child edges and nothing else.

    This is the network on which all communications happen after the
    Section 3.1 reduction.
    """
    edges = [(tree.parent(v), v) for v in range(tree.n) if v != tree.root]
    return Graph(tree.n, edges, name=tree.name or "tree")


def graph_to_tree(graph: Graph, root: int) -> Tree:
    """Interpret an ``n``-vertex, ``n-1``-edge connected graph as a tree.

    Raises :class:`GraphError` when the graph is not a tree or ``root``
    cannot reach every vertex.
    """
    if graph.m != graph.n - 1:
        raise GraphError(
            f"a tree on {graph.n} vertices has {graph.n - 1} edges, got {graph.m}"
        )
    parents: List[int] = [-2] * graph.n
    parents[root] = -1
    stack = [root]
    seen = 1
    while stack:
        u = stack.pop()
        for v in graph.neighbors(u):
            if parents[v] == -2:
                parents[v] = u
                seen += 1
                stack.append(v)
    if seen != graph.n:
        raise GraphError("graph is disconnected; not a tree")
    return Tree(parents, root=root, name=graph.name)
