"""Network (graph) substrate: topology model, generators, and analysis.

Public surface:

* :class:`~repro.networks.graph.Graph` / :class:`~repro.networks.graph.GraphBuilder`
  — the immutable network representation;
* :mod:`~repro.networks.topologies` — deterministic generators;
* :mod:`~repro.networks.paper_networks` — the figures of the paper;
* :mod:`~repro.networks.random_graphs` — seeded random families;
* BFS / radius / center / spanning-tree machinery implementing the
  paper's Section 3.1 preprocessing.
"""

from .bfs import (
    UNREACHED,
    all_eccentricities,
    bfs_levels,
    bfs_tree,
    connected_components,
    distance_matrix,
    eccentricity,
    is_connected,
    require_connected,
    shortest_path,
)
from .dynamic import TreeMaintainer
from .fast_paths import (
    all_pairs_distances,
    fast_eccentricities,
    fast_radius,
    minimum_depth_spanning_tree_fast,
)
from .builders import (
    from_adjacency,
    from_edges,
    from_networkx,
    graph_to_tree,
    to_networkx,
    tree_to_graph,
)
from .graph import Graph, GraphBuilder
from .paper_networks import (
    fig1_ring,
    fig4_network,
    fig5_tree,
    n3_multicast_schedule,
    n3_network,
    petersen,
    petersen_gossip_schedule,
)
from .properties import GraphSummary, center, diameter, periphery, radius, summarize
from .spanning_tree import (
    approximate_min_depth_tree,
    best_root,
    bfs_spanning_tree,
    minimum_depth_spanning_tree,
)

__all__ = [
    "Graph",
    "GraphBuilder",
    "UNREACHED",
    "bfs_levels",
    "bfs_tree",
    "eccentricity",
    "all_eccentricities",
    "distance_matrix",
    "is_connected",
    "require_connected",
    "connected_components",
    "shortest_path",
    "radius",
    "diameter",
    "center",
    "periphery",
    "summarize",
    "GraphSummary",
    "from_edges",
    "from_adjacency",
    "from_networkx",
    "to_networkx",
    "tree_to_graph",
    "graph_to_tree",
    "bfs_spanning_tree",
    "minimum_depth_spanning_tree",
    "minimum_depth_spanning_tree_fast",
    "all_pairs_distances",
    "fast_eccentricities",
    "fast_radius",
    "TreeMaintainer",
    "approximate_min_depth_tree",
    "best_root",
    "fig1_ring",
    "petersen",
    "n3_network",
    "fig4_network",
    "fig5_tree",
    "petersen_gossip_schedule",
    "n3_multicast_schedule",
]
