"""Minimum-depth spanning tree construction (paper Section 3.1).

The first stage of the gossiping algorithm: *"construct a minimum-depth
spanning tree ... by performing n breadth-first search traversals of the
graph starting at each vertex and then selecting the tree with least
height.  This procedure takes O(mn) time."*

The resulting tree height equals the network radius ``r``, which is the
quantity appearing in the ``n + r`` schedule-length guarantee.

Besides the paper's exhaustive procedure this module offers:

* :func:`bfs_spanning_tree` — the BFS tree from a chosen root (height =
  eccentricity of the root);
* :func:`minimum_depth_spanning_tree` — the paper's O(mn) sweep with a
  deterministic tie-break (smallest center vertex id);
* :func:`approximate_min_depth_tree` — a 2-approximate single/double-BFS
  heuristic useful on large graphs (height ≤ 2r because any BFS tree has
  height ≤ diameter ≤ 2r);
* root-choice ablation hooks used by ``benchmarks/bench_ablation_*``.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from ..exceptions import DisconnectedGraphError
from ..tree.tree import Tree
from ..types import Vertex
from .bfs import UNREACHED, bfs_levels, bfs_tree
from .graph import Graph

__all__ = [
    "bfs_spanning_tree",
    "minimum_depth_spanning_tree",
    "approximate_min_depth_tree",
    "best_root",
    "RootSelector",
]

#: Signature of a root-selection policy: graph -> chosen root vertex.
RootSelector = Callable[[Graph], Vertex]


def bfs_spanning_tree(graph: Graph, root: Vertex) -> Tree:
    """Spanning tree of shortest paths from ``root``.

    The parent of each vertex is its smallest-id neighbour one level
    closer to the root, so the construction is deterministic.  Raises
    :class:`~repro.exceptions.DisconnectedGraphError` when some vertex is
    unreachable.
    """
    dist, parent = bfs_tree(graph, root)
    if (dist == UNREACHED).any():
        raise DisconnectedGraphError(
            "cannot span a disconnected graph from vertex %d" % root
        )
    return Tree(parent.tolist(), root=int(root), name=graph.name)


def best_root(graph: Graph) -> Vertex:
    """Smallest vertex id attaining the minimum eccentricity (a center).

    This is the deterministic tie-break used by
    :func:`minimum_depth_spanning_tree`; alternative policies are ablated
    in ``benchmarks/bench_ablation_root_choice.py``.
    """
    best_v, best_ecc = 0, None
    for v in range(graph.n):
        dist = bfs_levels(graph, v)
        if (dist == UNREACHED).any():
            raise DisconnectedGraphError("graph is disconnected; no spanning tree")
        ecc = int(dist.max())
        if best_ecc is None or ecc < best_ecc:
            best_v, best_ecc = v, ecc
    return best_v


def minimum_depth_spanning_tree(
    graph: Graph, root_selector: Optional[RootSelector] = None
) -> Tree:
    """The paper's O(mn) minimum-depth (minimum-height) spanning tree.

    Runs BFS from every vertex, keeps the tree of least height.  The
    returned tree's height equals the network radius.  ``root_selector``
    overrides the default smallest-center-id policy (used for ablations);
    a custom selector may return a non-center root, in which case the tree
    height is that root's eccentricity instead of the radius.
    """
    root = best_root(graph) if root_selector is None else root_selector(graph)
    return bfs_spanning_tree(graph, root)


def approximate_min_depth_tree(graph: Graph, start: Vertex = 0) -> Tree:
    """Cheap 2-approximation: BFS tree from the midpoint of a far pair.

    Two BFS passes: find the farthest vertex ``a`` from ``start``, then
    root the tree at the midpoint of a shortest ``start``–``a`` path...
    in practice simply rooting at ``a``'s BFS-farthest-midpoint is
    overkill, so we root at the vertex minimising eccentricity *among the
    vertices of one shortest path* between two mutually far vertices.
    Height is at most ``diameter <= 2 * radius``, at the cost of O(m·L)
    instead of O(mn) where ``L`` is the path length.
    """
    dist_a = bfs_levels(graph, start)
    if (dist_a == UNREACHED).any():
        raise DisconnectedGraphError("graph is disconnected; no spanning tree")
    a = int(dist_a.argmax())
    dist_b, parent_b = bfs_tree(graph, a)
    b = int(dist_b.argmax())
    # Walk the a--b shortest path and try each vertex on it as a root.
    path: List[int] = [b]
    while path[-1] != a:
        path.append(int(parent_b[path[-1]]))
    best_v, best_ecc = a, int(bfs_levels(graph, a).max())
    for v in path:
        ecc = int(bfs_levels(graph, v).max())
        if ecc < best_ecc or (ecc == best_ecc and v < best_v):
            best_v, best_ecc = v, ecc
    return bfs_spanning_tree(graph, best_v)


def tree_height_profile(graph: Graph) -> np.ndarray:
    """Height of the BFS spanning tree rooted at each vertex.

    ``profile[v]`` equals the eccentricity of ``v``; the minimum entry is
    the radius.  Used by benchmarks to show how much the root choice
    matters for the ``n + height`` schedule bound.
    """
    n = graph.n
    profile = np.empty(n, dtype=np.int64)
    for v in range(n):
        dist = bfs_levels(graph, v)
        if (dist == UNREACHED).any():
            raise DisconnectedGraphError("graph is disconnected")
        profile[v] = dist.max()
    return profile


def spanning_tree_edges(tree: Tree) -> Sequence[tuple[int, int]]:
    """The (parent, child) edge list of a tree, sorted by child id."""
    return [(tree.parent(v), v) for v in range(tree.n) if v != tree.root]
