"""Minimum-depth spanning tree construction (paper Section 3.1).

The first stage of the gossiping algorithm: *"construct a minimum-depth
spanning tree ... by performing n breadth-first search traversals of the
graph starting at each vertex and then selecting the tree with least
height.  This procedure takes O(mn) time."*

The resulting tree height equals the network radius ``r``, which is the
quantity appearing in the ``n + r`` schedule-length guarantee.

Besides the paper's exhaustive procedure this module offers:

* :func:`bfs_spanning_tree` — the BFS tree from a chosen root (height =
  eccentricity of the root);
* :func:`center_sweep` — the eccentricity sweep itself, returning the
  winning root *and* its BFS parent array so callers never pay a
  redundant extra traversal.  ``method="pruned"`` (the default) seeds
  the sweep with a double-sweep (farthest-pair midpoint) ordering and
  abandons candidates via BFS cutoffs and distance lower bounds;
  ``method="exhaustive"`` is the paper's O(mn) reference.  Both produce
  bit-identical results (property-tested);
* :func:`minimum_depth_spanning_tree` — the paper's minimum-depth tree
  with a deterministic tie-break (smallest center vertex id), built
  directly from the sweep's parent array;
* :func:`approximate_min_depth_tree` — a 2-approximate single/double-BFS
  heuristic useful on large graphs (height ≤ 2r because any BFS tree has
  height ≤ diameter ≤ 2r);
* root-choice ablation hooks used by ``benchmarks/bench_ablation_*``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import DisconnectedGraphError, ReproError
from ..tree.tree import Tree
from ..types import Vertex
from .bfs import (
    UNREACHED,
    bfs_levels,
    bfs_levels_multi,
    bfs_parents_from_levels,
    bfs_tree,
)
from .graph import Graph

__all__ = [
    "bfs_spanning_tree",
    "minimum_depth_spanning_tree",
    "approximate_min_depth_tree",
    "best_root",
    "center_sweep",
    "CenterSweep",
    "RootSelector",
    "SWEEP_METHODS",
]

#: Signature of a root-selection policy: graph -> chosen root vertex.
RootSelector = Callable[[Graph], Vertex]

#: Valid ``method=`` values of :func:`center_sweep`.
SWEEP_METHODS = ("pruned", "exhaustive")

#: How many surviving candidates the pruned sweep traverses one at a
#: time (cutoff BFS) before switching to bit-parallel batches.
_SEQ_CANDIDATES = 12


def bfs_spanning_tree(graph: Graph, root: Vertex) -> Tree:
    """Spanning tree of shortest paths from ``root``.

    The parent of each vertex is its smallest-id neighbour one level
    closer to the root, so the construction is deterministic.  Raises
    :class:`~repro.exceptions.DisconnectedGraphError` when some vertex is
    unreachable.
    """
    dist, parent = bfs_tree(graph, root)
    if (dist == UNREACHED).any():
        raise DisconnectedGraphError(
            "cannot span a disconnected graph from vertex %d" % root
        )
    return Tree(parent.tolist(), root=int(root), name=graph.name)


@dataclass(frozen=True)
class CenterSweep:
    """Result of an eccentricity sweep: the winning root and its BFS tree.

    Attributes
    ----------
    root:
        Smallest vertex id attaining the minimum eccentricity (a center).
    eccentricity:
        The root's eccentricity — the network radius.
    parents:
        The smallest-id BFS parent array rooted at :attr:`root`, exactly
        what :func:`repro.networks.bfs.bfs_tree` would return; reusing it
        is what saves :func:`minimum_depth_spanning_tree` the redundant
        (n+1)-th traversal.
    """

    root: int
    eccentricity: int
    parents: np.ndarray


def _exhaustive_sweep(graph: Graph) -> Tuple[int, int, np.ndarray]:
    """The paper's O(mn) sweep: a full BFS from every vertex.

    Returns ``(root, eccentricity, dist)`` keeping the *winner's*
    distance array so the caller can derive the parent array without
    another traversal.
    """
    best_v, best_ecc, best_dist = -1, -1, None
    for v in range(graph.n):
        dist = bfs_levels(graph, v)
        if (dist == UNREACHED).any():
            raise DisconnectedGraphError("graph is disconnected; no spanning tree")
        ecc = int(dist.max())
        if best_dist is None or ecc < best_ecc:
            best_v, best_ecc, best_dist = v, ecc, dist
    return best_v, best_ecc, best_dist


def _pruned_sweep(graph: Graph) -> Tuple[int, int, np.ndarray]:
    """Double-sweep seeded, cutoff-pruned eccentricity sweep.

    Bit-identical to :func:`_exhaustive_sweep` (property-tested) but
    visits far fewer vertices in anger:

    1. a BFS from vertex 0 checks connectivity and finds a far vertex
       ``a``; BFS from ``a`` finds the farthest pair ``(a, b)``;
    2. ``lb[v] = max(d(a, v), d(b, v))`` lower-bounds every
       eccentricity, candidates are visited in ascending ``lb`` order
       (ties by id) — the midpoint of the ``a``–``b`` path, a
       near-center, is seeded explicitly so the best-so-far bound is
       tight from the start;
    3. each candidate's BFS runs with ``cutoff=best_ecc`` and is
       abandoned the moment it proves the candidate cannot win;
       candidates whose lower bound already disqualifies them are never
       traversed at all.

    Candidates surviving the sequential phase are evaluated in 64-wide
    bit-parallel :func:`~repro.networks.bfs.bfs_levels_multi` batches —
    on vertex-transitive graphs (torus, hypercube, cycle), where every
    vertex is a center and no lower bound can disqualify anyone, the
    batched phase is what keeps the sweep fast.

    The tie-break bookkeeping tracks the lexicographic minimum of
    ``(eccentricity, vertex id)``, so the returned root is exactly the
    smallest-id center regardless of visit order.
    """
    n = graph.n
    dist0 = bfs_levels(graph, 0)
    if (dist0 == UNREACHED).any():
        raise DisconnectedGraphError("graph is disconnected; no spanning tree")
    best_v, best_ecc, best_dist = 0, int(dist0.max()), dist0
    if n == 1:
        return best_v, best_ecc, best_dist

    a = int(dist0.argmax())
    dist_a, parent_a = bfs_tree(graph, a)
    b = int(dist_a.argmax())
    dist_b = bfs_levels(graph, b)
    seen = {0, a, b}
    for v, dist in ((a, dist_a), (b, dist_b)):
        ecc = int(dist.max())
        if (ecc, v) < (best_ecc, best_v):
            best_v, best_ecc, best_dist = v, ecc, dist

    # Midpoint of a shortest a--b path: a near-center whose eccentricity
    # seeds a tight pruning bound before the ordered scan begins.
    path: List[int] = [b]
    while path[-1] != a:
        path.append(int(parent_a[path[-1]]))
    mid = path[len(path) // 2]
    if mid not in seen:
        seen.add(mid)
        dist_m = bfs_levels(graph, mid)
        ecc = int(dist_m.max())
        if (ecc, mid) < (best_ecc, best_v):
            best_v, best_ecc, best_dist = mid, ecc, dist_m

    lb = np.maximum(dist_a, dist_b)
    order = np.lexsort((np.arange(n), lb))

    def disqualified(v: int) -> bool:
        """Whether ``v`` provably cannot beat the current best.

        ``lb[v] > best_ecc`` means its eccentricity is worse outright;
        ``lb[v] == best_ecc`` with a larger id means it can at best tie
        and would then lose the smallest-id tie-break (``best_v`` only
        ever decreases at a fixed eccentricity, so the skip stays sound
        as the sweep refines its bound).
        """
        bound = int(lb[v])
        return bound > best_ecc or (bound == best_ecc and v > best_v)

    # Phase 1 — sequential cutoff sweep over the most central-looking
    # candidates: each BFS is abandoned the moment a frontier passes the
    # best eccentricity so far, and every winner tightens the cutoff.
    sequential_budget = _SEQ_CANDIDATES
    pending: List[int] = []
    for v in order:
        v = int(v)
        if v in seen:
            continue
        if disqualified(v):
            continue
        if sequential_budget <= 0:
            pending.append(v)
            continue
        sequential_budget -= 1
        dist = bfs_levels(graph, v, cutoff=best_ecc)
        if (dist == UNREACHED).any():
            continue  # proved ecc(v) > best_ecc without finishing the BFS
        ecc = int(dist.max())
        if (ecc, v) < (best_ecc, best_v):
            best_v, best_ecc, best_dist = v, ecc, dist

    # Phase 2 — whatever pruning could not eliminate is evaluated in
    # bit-parallel batches, re-filtering between batches as the best
    # eccentricity drops.
    while pending:
        pending = [v for v in pending if not disqualified(v)]
        batch, pending = pending[:64], pending[64:]
        if not batch:
            break
        dists = bfs_levels_multi(graph, batch)
        eccs = dists.max(axis=1)
        for i, v in enumerate(batch):
            ecc = int(eccs[i])
            if (ecc, v) < (best_ecc, best_v):
                best_v, best_ecc, best_dist = v, ecc, dists[i]
    return best_v, best_ecc, best_dist


def center_sweep(graph: Graph, *, method: str = "pruned") -> CenterSweep:
    """Find the smallest-id center and its BFS parent array in one sweep.

    ``method="pruned"`` (default) runs the double-sweep seeded, pruned
    search; ``method="exhaustive"`` runs the paper's full O(mn) sweep.
    Both return bit-identical results — the pruned sweep is the fast
    path :class:`repro.service.GossipService` plans through, the
    exhaustive sweep is the reference ``benchmarks/bench_planner.py``
    gates against.
    """
    if method == "pruned":
        root, ecc, dist = _pruned_sweep(graph)
    elif method == "exhaustive":
        root, ecc, dist = _exhaustive_sweep(graph)
    else:
        raise ReproError(
            f"unknown sweep method {method!r}; choose from {SWEEP_METHODS}"
        )
    return CenterSweep(
        root=root, eccentricity=ecc, parents=bfs_parents_from_levels(graph, dist)
    )


def best_root(graph: Graph, *, method: str = "pruned") -> Vertex:
    """Smallest vertex id attaining the minimum eccentricity (a center).

    This is the deterministic tie-break used by
    :func:`minimum_depth_spanning_tree`; alternative policies are ablated
    in ``benchmarks/bench_ablation_root_choice.py``.  Prefer
    :func:`center_sweep` when the spanning tree is needed too — it
    returns the parent array of the winning BFS for free.
    """
    return center_sweep(graph, method=method).root


def minimum_depth_spanning_tree(
    graph: Graph,
    root_selector: Optional[RootSelector] = None,
    *,
    method: str = "pruned",
) -> Tree:
    """The paper's minimum-depth (minimum-height) spanning tree.

    Sweeps eccentricities (pruned by default, exhaustively with
    ``method="exhaustive"``), keeps the tree of least height, and builds
    it from the parent array the winning traversal already produced —
    no redundant extra BFS.  The returned tree's height equals the
    network radius.  ``root_selector`` overrides the default
    smallest-center-id policy (used for ablations); a custom selector
    may return a non-center root, in which case the tree height is that
    root's eccentricity instead of the radius.
    """
    if root_selector is not None:
        return bfs_spanning_tree(graph, root_selector(graph))
    sweep = center_sweep(graph, method=method)
    return Tree(sweep.parents.tolist(), root=sweep.root, name=graph.name)


def approximate_min_depth_tree(graph: Graph, start: Vertex = 0) -> Tree:
    """Cheap 2-approximation: BFS tree from the midpoint of a far pair.

    Two BFS passes: find the farthest vertex ``a`` from ``start``, then
    root the tree at the midpoint of a shortest ``start``–``a`` path...
    in practice simply rooting at ``a``'s BFS-farthest-midpoint is
    overkill, so we root at the vertex minimising eccentricity *among the
    vertices of one shortest path* between two mutually far vertices.
    Height is at most ``diameter <= 2 * radius``, at the cost of O(m·L)
    instead of O(mn) where ``L`` is the path length.
    """
    dist_a = bfs_levels(graph, start)
    if (dist_a == UNREACHED).any():
        raise DisconnectedGraphError("graph is disconnected; no spanning tree")
    a = int(dist_a.argmax())
    dist_b, parent_b = bfs_tree(graph, a)
    b = int(dist_b.argmax())
    # Walk the a--b shortest path and try each vertex on it as a root.
    path: List[int] = [b]
    while path[-1] != a:
        path.append(int(parent_b[path[-1]]))
    best_v, best_ecc = a, int(bfs_levels(graph, a).max())
    for v in path:
        ecc = int(bfs_levels(graph, v).max())
        if ecc < best_ecc or (ecc == best_ecc and v < best_v):
            best_v, best_ecc = v, ecc
    return bfs_spanning_tree(graph, best_v)


def tree_height_profile(graph: Graph) -> np.ndarray:
    """Height of the BFS spanning tree rooted at each vertex.

    ``profile[v]`` equals the eccentricity of ``v``; the minimum entry is
    the radius.  Used by benchmarks to show how much the root choice
    matters for the ``n + height`` schedule bound.
    """
    from .bfs import all_eccentricities

    try:
        return all_eccentricities(graph)
    except DisconnectedGraphError:
        raise DisconnectedGraphError("graph is disconnected") from None


def spanning_tree_edges(tree: Tree) -> Sequence[tuple[int, int]]:
    """The (parent, child) edge list of a tree, sorted by child id."""
    return [(tree.parent(v), v) for v in range(tree.n) if v != tree.root]
