"""The concrete networks appearing in the paper's figures.

* **Fig. 1** (``N1``) — a network with a Hamiltonian circuit; gossiping
  completes in the optimal ``n - 1`` rounds by rotating messages.
* **Fig. 2** (``N2``) — the Petersen graph: no Hamiltonian circuit, yet
  gossiping finishes in ``n - 1 = 9`` rounds even under the telephone
  model.  :func:`petersen_gossip_schedule` constructs such a certificate
  schedule explicitly (rotate the outer 5-cycle and the inner pentagram
  for four rounds, swap across the spokes, then rotate four more rounds).
* **Fig. 3** (``N3``) — a network without a Hamiltonian circuit where
  gossiping needs ``n - 1`` rounds under multicast but provably more
  under telephone.  The paper's drawing is not machine-readable; we use
  ``K_{2,3}`` which has exactly the claimed properties, both certified in
  code: :func:`n3_multicast_schedule` is a 4-round (= ``n - 1``)
  multicast schedule, while a counting argument (each of the three
  degree-2 vertices must receive 4 messages, all from the two centers,
  who can deliver at most 2 unicasts per round: ``12 / 2 = 6 > 4``)
  shows telephone needs at least 6 rounds — asserted against the exact
  search in :mod:`repro.core.optimal` for small horizons.
* **Fig. 4 / Fig. 5** — the worked 16-vertex example.  The tree of
  Fig. 5 is pinned by Tables 1–4 (see DESIGN.md); :func:`fig4_network`
  returns a radius-4 graph whose minimum-depth spanning tree under the
  library's deterministic tie-breaking is exactly :func:`fig5_tree`.
"""

from __future__ import annotations

from typing import List

from ..core.schedule import Round, Schedule, Transmission
from ..exceptions import GraphError
from ..tree.tree import Tree
from .graph import Graph, GraphBuilder

__all__ = [
    "fig1_ring",
    "petersen",
    "n3_network",
    "fig4_network",
    "fig5_tree",
    "petersen_gossip_schedule",
    "n3_multicast_schedule",
    "FIG5_PARENTS",
]


def fig1_ring(n: int = 8) -> Graph:
    """Fig. 1's network ``N1``: a Hamiltonian circuit on ``n`` processors."""
    if n < 3:
        raise GraphError("the ring needs at least 3 processors")
    return GraphBuilder(n, name="N1").add_cycle(range(n)).build()


def petersen() -> Graph:
    """Fig. 2's network ``N2``: the Petersen graph.

    Vertices 0–4 form the outer 5-cycle, 5–9 the inner pentagram
    (vertex ``5 + i`` adjacent to ``5 + (i ± 2) mod 5``), spokes
    ``i — 5 + i``.
    """
    b = GraphBuilder(10, name="N2")
    for i in range(5):
        b.add_edge(i, (i + 1) % 5)            # outer cycle
        b.add_edge(5 + i, 5 + (i + 2) % 5)    # inner pentagram
        b.add_edge(i, 5 + i)                  # spokes
    return b.build()


def n3_network() -> Graph:
    """Fig. 3's network ``N3`` (reconstructed as ``K_{2,3}``).

    Centers are vertices 0 and 1; the three degree-2 vertices are 2, 3, 4.
    No Hamiltonian circuit exists (the bipartition is unbalanced), yet
    multicast gossiping completes in ``n - 1 = 4`` rounds
    (:func:`n3_multicast_schedule`) while the telephone model needs at
    least 6.
    """
    b = GraphBuilder(5, name="N3")
    for center in (0, 1):
        for leaf in (2, 3, 4):
            b.add_edge(center, leaf)
    return b.build()


#: Parent array of the reconstructed Fig. 5 tree.  Vertex ids equal the
#: DFS labels of the figure (root = 0); with ascending-id child order the
#: DFS preorder is 0, 1, 2, ..., 15, so ``label_of(v) == v``.
FIG5_PARENTS: List[int] = [
    -1,  # 0: root
    0,   # 1
    1,   # 2
    1,   # 3
    0,   # 4
    4,   # 5
    5,   # 6
    5,   # 7
    4,   # 8
    8,   # 9
    8,   # 10
    0,   # 11
    11,  # 12
    11,  # 13
    13,  # 14
    13,  # 15
]


def fig5_tree() -> Tree:
    """The reconstructed Fig. 5 tree (16 vertices, height 3).

    The structure is pinned by Tables 1–4 for the subtrees rooted at
    vertices 0, 1, 4 and 8; the shapes of the remaining subtrees are the
    paper-consistent choice documented in DESIGN.md.  DFS labels equal
    vertex ids.
    """
    return Tree(FIG5_PARENTS, root=0, name="fig5")


def fig4_network() -> Graph:
    """A reconstruction of Fig. 4: a 16-vertex network of radius 3.

    Contains all Fig. 5 tree edges plus cross edges chosen so that

    * every BFS distance from vertex 0 equals the Fig. 5 level,
    * the smallest-id parent rule reproduces the Fig. 5 parent array, and
    * vertex 0 is the smallest-id center (eccentricity 4 = radius).

    Hence ``minimum_depth_spanning_tree(fig4_network())`` is exactly
    :func:`fig5_tree` — verified in the test suite.
    """
    b = GraphBuilder(16, name="fig4")
    for v, p in enumerate(FIG5_PARENTS):
        if p >= 0:
            b.add_edge(p, v)
    # Cross edges: within a level or between adjacent levels, never
    # providing a smaller-id alternative parent.
    for u, v in [(2, 3), (3, 4), (5, 8), (6, 7), (9, 15), (12, 13), (14, 15)]:
        b.add_edge(u, v)
    return b.build()


def _rotation_round(order: List[int], carried: List[int]) -> List[Transmission]:
    """One rotation step: position ``p`` of ``order`` sends ``carried[p]``
    to position ``p + 1`` (cyclically).  Returns the transmissions; the
    caller updates ``carried``."""
    k = len(order)
    return [
        Transmission(
            sender=order[p],
            message=carried[p],
            destinations=frozenset({order[(p + 1) % k]}),
        )
        for p in range(k)
    ]


def petersen_gossip_schedule() -> Schedule:
    """A 9-round (= ``n - 1``) telephone gossip schedule for the Petersen graph.

    Construction (all unicasts, so it is valid under both models):

    * rounds 0–3: rotate the outer cycle clockwise and the inner
      pentagram along its own 5-cycle; every vertex forwards the message
      it just received.  After 4 rounds each ring knows its own 5
      messages.
    * round 4: swap across the spokes — vertex ``i`` sends its own
      message ``i`` to ``5 + i`` and vice versa.
    * rounds 5–8: rotate both rings again, forwarding the freshly
      injected cross-ring messages; the five injected messages are
      distinct, so each vertex receives four more new ones.

    Validity and completeness are machine-checked in the test suite.
    """
    outer = [0, 1, 2, 3, 4]
    inner = [5, 7, 9, 6, 8]  # the pentagram traversed as a 5-cycle
    rounds: List[Round] = []

    out_carried = list(outer)  # message at each outer position
    in_carried = list(inner)
    for _ in range(4):
        txs = _rotation_round(outer, out_carried) + _rotation_round(inner, in_carried)
        rounds.append(Round(txs))
        out_carried = [out_carried[-1]] + out_carried[:-1]
        in_carried = [in_carried[-1]] + in_carried[:-1]

    # Round 4: spoke swap of the vertices' own messages.
    rounds.append(
        Round(
            [
                Transmission(sender=i, message=i, destinations=frozenset({5 + i}))
                for i in range(5)
            ]
            + [
                Transmission(sender=5 + i, message=5 + i, destinations=frozenset({i}))
                for i in range(5)
            ]
        )
    )

    # Rounds 5-8: rotate the injected cross-ring messages.
    out_carried = [5 + v for v in outer]          # outer vertex i now carries 5+i
    in_carried = [v - 5 for v in inner]           # inner vertex 5+i carries i
    for _ in range(4):
        txs = _rotation_round(outer, out_carried) + _rotation_round(inner, in_carried)
        rounds.append(Round(txs))
        out_carried = [out_carried[-1]] + out_carried[:-1]
        in_carried = [in_carried[-1]] + in_carried[:-1]

    return Schedule(rounds, name="petersen-telephone-9")


def n3_multicast_schedule() -> Schedule:
    """A 4-round (= ``n - 1``) multicast gossip schedule for ``N3``.

    Impossible under telephone (≥ 6 rounds by the counting argument in
    the module docstring), demonstrating the power of multicasting.
    Vertices: centers 0, 1; leaves 2, 3, 4; message ``m`` starts at
    vertex ``m``.
    """
    t = Transmission
    rounds = [
        Round([
            t(sender=0, message=0, destinations=frozenset({3, 4})),
            t(sender=1, message=1, destinations=frozenset({2})),
            t(sender=2, message=2, destinations=frozenset({0, 1})),
        ]),
        Round([
            t(sender=0, message=0, destinations=frozenset({2})),
            t(sender=1, message=1, destinations=frozenset({3, 4})),
            t(sender=3, message=3, destinations=frozenset({0, 1})),
        ]),
        Round([
            t(sender=0, message=2, destinations=frozenset({3, 4})),
            t(sender=1, message=3, destinations=frozenset({2})),
            t(sender=4, message=4, destinations=frozenset({0, 1})),
        ]),
        Round([
            t(sender=0, message=4, destinations=frozenset({2, 3})),
            t(sender=1, message=3, destinations=frozenset({4})),
            t(sender=2, message=0, destinations=frozenset({1})),
            t(sender=3, message=1, destinations=frozenset({0})),
        ]),
    ]
    return Schedule(rounds, name="n3-multicast-4")
