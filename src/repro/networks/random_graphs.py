"""Seeded random graph families for sweeps and property tests.

All generators take an explicit ``seed`` and route randomness through
``numpy.random.default_rng``, so every benchmark row is reproducible.
Families:

* :func:`random_tree` — uniform labelled trees via Prüfer sequences;
* :func:`random_connected_gnp` — Erdős–Rényi ``G(n, p)`` conditioned on
  connectivity (a random spanning tree is overlaid, preserving sparse
  regimes without rejection loops);
* :func:`random_geometric` — the wireless-motivation model of Section 2:
  processors scattered in the unit square, linked within transmission
  radius (connectivity enforced by linking consecutive nearest
  components);
* :func:`random_regular` — configuration-model ``d``-regular graphs
  (retry until simple and connected);
* :func:`random_caterpillar`, :func:`random_power_law_tree` — skewed
  tree shapes exercising extreme radii.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..exceptions import GraphError
from .bfs import is_connected
from .graph import Graph, GraphBuilder

__all__ = [
    "random_tree",
    "random_connected_gnp",
    "random_geometric",
    "random_regular",
    "random_caterpillar",
    "random_power_law_tree",
]


def random_tree(n: int, seed: int = 0) -> Graph:
    """A uniformly random labelled tree on ``n`` vertices (Prüfer decode)."""
    if n < 1:
        raise GraphError("need n >= 1")
    if n == 1:
        return Graph(1, [], name=f"random-tree-{n}-s{seed}")
    if n == 2:
        return Graph(2, [(0, 1)], name=f"random-tree-{n}-s{seed}")
    rng = np.random.default_rng(seed)
    pruefer = [int(v) for v in rng.integers(0, n, size=n - 2)]
    degree = [1] * n
    for v in pruefer:
        degree[v] += 1
    # Standard Prüfer decoding: repeatedly join the smallest current leaf
    # to the next sequence entry.
    import heapq

    leaves = [v for v in range(n) if degree[v] == 1]
    heapq.heapify(leaves)
    edges: List[Tuple[int, int]] = []
    for v in pruefer:
        leaf = heapq.heappop(leaves)
        edges.append((leaf, v))
        degree[v] -= 1
        if degree[v] == 1:
            heapq.heappush(leaves, v)
    u, w = heapq.heappop(leaves), heapq.heappop(leaves)
    edges.append((u, w))
    return Graph(n, edges, name=f"random-tree-{n}-s{seed}")


def random_connected_gnp(n: int, p: float, seed: int = 0) -> Graph:
    """``G(n, p)`` conditioned on connectivity.

    A uniformly random spanning tree (random-parent attachment over a
    random permutation) is unioned with independent Bernoulli(p) edges;
    for small ``p`` the result stays near-tree-like.
    """
    if n < 1:
        raise GraphError("need n >= 1")
    if not 0.0 <= p <= 1.0:
        raise GraphError("p must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    b = GraphBuilder(n, name=f"gnp-{n}-p{p}-s{seed}")
    order = rng.permutation(n)
    for idx in range(1, n):
        parent_pos = int(rng.integers(0, idx))
        b.add_edge(int(order[idx]), int(order[parent_pos]))
    if p > 0:
        upper = rng.random((n, n)) < p
        for u in range(n):
            for v in range(u + 1, n):
                if upper[u, v]:
                    b.add_edge(u, v)
    return b.build()


def random_geometric(n: int, radius: float, seed: int = 0) -> Graph:
    """Random geometric graph in the unit square (wireless model, §2).

    Processors at uniform positions; a link wherever the Euclidean
    distance is at most ``radius`` (a broadcast with power ``r^alpha``
    reaches all receivers within ``r``).  Components are stitched
    together by their closest cross pair so the result is connected.
    """
    if n < 1:
        raise GraphError("need n >= 1")
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 2))
    d2 = ((pts[:, None, :] - pts[None, :, :]) ** 2).sum(axis=2)
    b = GraphBuilder(n, name=f"geometric-{n}-r{radius}-s{seed}")
    limit = radius * radius
    for u in range(n):
        for v in range(u + 1, n):
            if d2[u, v] <= limit:
                b.add_edge(u, v)
    # Stitch components with their globally closest cross pairs.
    while True:
        g = b.build()
        from .bfs import connected_components

        comps = connected_components(g)
        if len(comps) == 1:
            return g
        comp_id = np.empty(n, dtype=np.int64)
        for cid, members in enumerate(comps):
            for v in members:
                comp_id[v] = cid
        best = None
        for u in range(n):
            for v in range(u + 1, n):
                if comp_id[u] != comp_id[v] and (
                    best is None or d2[u, v] < best[0]
                ):
                    best = (d2[u, v], u, v)
        assert best is not None
        b.add_edge(best[1], best[2])


def random_regular(n: int, degree: int, seed: int = 0, max_tries: int = 200) -> Graph:
    """A random connected ``degree``-regular simple graph.

    Configuration model with rejection: re-draw the stub pairing until it
    is simple and connected.  ``n * degree`` must be even and
    ``degree < n``.
    """
    if degree < 2 or degree >= n or (n * degree) % 2:
        raise GraphError(f"no {degree}-regular simple graph on {n} vertices")
    rng = np.random.default_rng(seed)
    for _ in range(max_tries):
        stubs = np.repeat(np.arange(n), degree)
        rng.shuffle(stubs)
        pairs = stubs.reshape(-1, 2)
        edge_set = set()
        simple = True
        for u, v in pairs:
            u, v = int(u), int(v)
            if u == v:
                simple = False
                break
            key = (u, v) if u < v else (v, u)
            if key in edge_set:
                simple = False
                break
            edge_set.add(key)
        if not simple:
            continue
        g = Graph(n, sorted(edge_set), name=f"regular-{n}-d{degree}-s{seed}")
        if is_connected(g):
            return g
    raise GraphError(
        f"failed to sample a connected {degree}-regular graph on {n} "
        f"vertices within {max_tries} tries"
    )


def random_caterpillar(spine: int, max_legs: int, seed: int = 0) -> Graph:
    """A caterpillar whose per-spine-vertex leg counts are random."""
    if spine < 1 or max_legs < 0:
        raise GraphError("spine >= 1 and max_legs >= 0 required")
    rng = np.random.default_rng(seed)
    legs = rng.integers(0, max_legs + 1, size=spine)
    n = spine + int(legs.sum())
    b = GraphBuilder(n, name=f"random-caterpillar-{spine}-s{seed}")
    b.add_path(range(spine))
    nxt = spine
    for s in range(spine):
        for _ in range(int(legs[s])):
            b.add_edge(s, nxt)
            nxt += 1
    return b.build()


def random_power_law_tree(n: int, gamma: float = 2.5, seed: int = 0) -> Graph:
    """A preferential-attachment tree (hub-dominated, tiny radius).

    Vertex ``v >= 1`` attaches to an earlier vertex drawn proportionally
    to ``(degree + 1) ** (1 / (gamma - 1))`` — skewed towards hubs.
    """
    if n < 1:
        raise GraphError("need n >= 1")
    if gamma <= 1.0:
        raise GraphError("gamma must exceed 1")
    rng = np.random.default_rng(seed)
    degree = np.zeros(n)
    edges: List[Tuple[int, int]] = []
    for v in range(1, n):
        weights = (degree[:v] + 1.0) ** (1.0 / (gamma - 1.0))
        target = int(rng.choice(v, p=weights / weights.sum()))
        edges.append((target, v))
        degree[target] += 1
        degree[v] += 1
    return Graph(n, edges, name=f"plaw-tree-{n}-g{gamma}-s{seed}")
