"""Serialisation of graphs, trees and schedules.

Plain-text edge lists for interop with classic graph tooling, and a JSON
envelope that round-trips a whole gossip artefact (network + tree +
schedule) so benchmark outputs can be archived and re-validated later
without re-running the construction.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from ..core.schedule import Round, Schedule, Transmission
from ..exceptions import GraphError
from ..tree.tree import Tree
from .graph import Graph

__all__ = [
    "graph_to_edgelist",
    "graph_from_edgelist",
    "graph_to_json",
    "graph_from_json",
    "tree_to_json",
    "tree_from_json",
    "schedule_to_json",
    "schedule_from_json",
]


def graph_to_edgelist(graph: Graph) -> str:
    """Classic whitespace edge list; first line is ``n m``."""
    lines = [f"{graph.n} {graph.m}"]
    lines.extend(f"{u} {v}" for u, v in graph.edges())
    return "\n".join(lines) + "\n"


def graph_from_edgelist(text: str, name: str = "") -> Graph:
    """Parse the :func:`graph_to_edgelist` format."""
    rows = [line.split() for line in text.strip().splitlines() if line.strip()]
    if not rows or len(rows[0]) != 2:
        raise GraphError("edge list must start with a 'n m' header line")
    n, m = int(rows[0][0]), int(rows[0][1])
    edges = [(int(u), int(v)) for u, v in rows[1:]]
    if len(edges) != m:
        raise GraphError(f"header declares {m} edges but {len(edges)} found")
    return Graph(n, edges, name=name)


def graph_to_json(graph: Graph) -> str:
    """JSON envelope: ``{"n", "name", "edges"}``."""
    return json.dumps(
        {"n": graph.n, "name": graph.name, "edges": graph.edge_list()}
    )


def graph_from_json(text: str) -> Graph:
    """Parse the :func:`graph_to_json` envelope."""
    data = json.loads(text)
    return Graph(data["n"], [tuple(e) for e in data["edges"]], name=data.get("name", ""))


def tree_to_json(tree: Tree) -> str:
    """JSON envelope: parent array + root + explicit child order."""
    return json.dumps(
        {
            "parents": list(tree.parents()),
            "root": tree.root,
            "children": [list(tree.children(v)) for v in range(tree.n)],
            "name": tree.name,
        }
    )


def tree_from_json(text: str) -> Tree:
    """Parse the :func:`tree_to_json` envelope, restoring child order."""
    data = json.loads(text)
    order = {v: list(kids) for v, kids in enumerate(data["children"])}
    return Tree(
        data["parents"],
        root=data["root"],
        child_order=lambda v, kids: order[v],
        name=data.get("name", ""),
    )


def schedule_to_json(schedule: Schedule) -> str:
    """JSON envelope: rounds as ``[[message, sender, [dests]], ...]``."""
    payload: Dict[str, Any] = {
        "name": schedule.name,
        "rounds": [
            [[tx.message, tx.sender, sorted(tx.destinations)] for tx in rnd]
            for rnd in schedule
        ],
    }
    return json.dumps(payload)


def schedule_from_json(text: str) -> Schedule:
    """Parse the :func:`schedule_to_json` envelope."""
    data = json.loads(text)
    rounds = [
        Round(
            Transmission(sender=s, message=m, destinations=frozenset(d))
            for m, s, d in rnd
        )
        for rnd in data["rounds"]
    ]
    return Schedule(rounds, name=data.get("name", ""))
