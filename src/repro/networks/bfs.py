"""Breadth-first traversal primitives.

Everything in the paper's preprocessing stage reduces to BFS: shortest
path distances, eccentricities, the radius/center, and the minimum-depth
spanning tree (one BFS per vertex, keep the shallowest — Section 3.1).

The level-synchronous frontier expansion below is written against the
graph's CSR arrays with numpy so the per-round work is a handful of
vectorised operations instead of a Python loop over edges.  A pure-Python
reference implementation is kept alongside for cross-checking in tests.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Tuple

import numpy as np

from ..exceptions import DisconnectedGraphError, GraphError
from ..types import Vertex
from .graph import Graph

__all__ = [
    "bfs_levels",
    "bfs_levels_multi",
    "bfs_tree",
    "bfs_levels_reference",
    "bfs_parents_from_levels",
    "eccentricity",
    "all_eccentricities",
    "all_eccentricities_reference",
    "distance_matrix",
    "is_connected",
    "connected_components",
    "require_connected",
    "shortest_path",
    "UNREACHED",
]

#: Sentinel distance for vertices not reached by a traversal.
UNREACHED: int = -1

#: Sources per bit-parallel pass of :func:`bfs_levels_multi` (one uint64
#: lane per source).
_BATCH = 64


def bfs_levels(graph: Graph, source: Vertex, *, cutoff: Optional[int] = None) -> np.ndarray:
    """Distances (in edges) from ``source`` to every vertex.

    Returns an ``int64`` array ``dist`` with ``dist[v]`` the length of the
    shortest path from ``source`` to ``v``, or :data:`UNREACHED` when no
    path exists.

    With ``cutoff`` set, the traversal abandons frontiers beyond that
    depth: every vertex within ``cutoff`` edges gets its exact distance
    and everything farther stays :data:`UNREACHED`.  The pruned
    eccentricity sweep (:func:`repro.networks.spanning_tree.center_sweep`)
    uses this to discard a root candidate the moment its BFS proves it
    cannot beat the best eccentricity found so far.

    Implementation: level-synchronous frontier expansion on the CSR
    arrays.  Each round gathers all neighbours of the current frontier in
    one vectorised pass, filters out already-visited vertices, and
    deduplicates with ``np.unique``.
    """
    n = graph.n
    if not 0 <= source < n:
        raise GraphError(f"source {source} out of range for n={n}")
    if cutoff is not None and cutoff < 0:
        raise GraphError(f"cutoff must be non-negative, got {cutoff}")
    indptr, indices = graph.indptr, graph.indices
    dist = np.full(n, UNREACHED, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while frontier.size:
        if cutoff is not None and level >= cutoff:
            break
        level += 1
        # Gather all CSR slices of the frontier in one shot.
        starts = indptr[frontier]
        stops = indptr[frontier + 1]
        counts = stops - starts
        total = int(counts.sum())
        if total == 0:
            break
        # Build the concatenated neighbour array without a Python loop:
        # offsets[i] enumerates positions, shifted into each CSR slice.
        offsets = np.repeat(starts - np.concatenate(([0], np.cumsum(counts)[:-1])), counts)
        neighbours = indices[np.arange(total, dtype=np.int64) + offsets]
        fresh = neighbours[dist[neighbours] == UNREACHED]
        if fresh.size == 0:
            break
        frontier = np.unique(fresh)
        dist[frontier] = level
    return dist


def bfs_levels_multi(graph: Graph, sources) -> np.ndarray:
    """Distances from several sources at once, bit-parallel.

    Returns an ``int64`` array of shape ``(len(sources), n)`` where row
    ``i`` equals ``bfs_levels(graph, sources[i])`` (property-tested —
    the per-source :func:`bfs_levels` is the reference implementation).

    Implementation: multi-source BFS in batches of 64 sources.  Each
    vertex carries one ``uint64`` whose bit ``i`` records whether source
    ``i`` of the batch has reached it; a round propagates every lane at
    once with a single gather + segmented bitwise-OR over the CSR
    arrays.  One pass therefore costs O(m) per *level* for the whole
    batch instead of O(m) per *source*, which is what makes
    :func:`all_eccentricities` and :func:`distance_matrix` fast on the
    wide, shallow graphs the service plans for.
    """
    src = np.asarray(list(sources), dtype=np.int64)
    n = graph.n
    if src.size and (src.min() < 0 or src.max() >= n):
        bad = src[(src < 0) | (src >= n)][0]
        raise GraphError(f"source {int(bad)} out of range for n={n}")
    out = np.full((src.size, n), UNREACHED, dtype=np.int64)
    if src.size == 0:
        return out
    indptr, indices = graph.indptr, graph.indices
    if indices.size == 0:
        # Edgeless graph: every source reaches exactly itself.
        out[np.arange(src.size), src] = 0
        return out
    degrees = np.diff(indptr)
    starts = np.minimum(indptr[:-1], indices.size - 1)
    isolated = degrees == 0
    for lo in range(0, src.size, _BATCH):
        batch = src[lo : lo + _BATCH]
        rows = out[lo : lo + batch.size]
        front = np.zeros(n, dtype=np.uint64)
        np.bitwise_or.at(front, batch, np.uint64(1) << np.arange(batch.size, dtype=np.uint64))
        reached = front.copy()
        rows[np.arange(batch.size), batch] = 0
        level = 0
        while True:
            level += 1
            # For every vertex, OR the frontier lanes of its neighbours.
            gathered = front[indices]
            nxt = np.bitwise_or.reduceat(gathered, starts)
            if isolated.any():
                nxt[isolated] = 0
            nxt &= ~reached
            if not nxt.any():
                break
            reached |= nxt
            # Unpack the 64 lanes into per-source rows and stamp the level.
            lanes = np.unpackbits(
                nxt.view(np.uint8).reshape(n, 8), axis=1, bitorder="little"
            )[:, : batch.size]
            rows[lanes.T.astype(bool)] = level
            front = nxt
    return out


def bfs_parents_from_levels(graph: Graph, dist: np.ndarray) -> np.ndarray:
    """Smallest-id parent array recovered from a BFS distance array.

    Given the ``dist`` array of a completed :func:`bfs_levels` run,
    returns the same parent array :func:`bfs_tree` would produce for
    that source — ``parent[v]`` is the smallest-id neighbour of ``v``
    one level closer to the source (``-1`` for the source and for
    unreached vertices) — without re-running the traversal.  This is the
    "reuse, don't recompute" half of the fast planner: the winning sweep
    already holds the distances, so the spanning tree costs one
    vectorised pass instead of an (n+1)-th BFS.
    """
    n = graph.n
    parent = np.full(n, -1, dtype=np.int64)
    indptr, indices = graph.indptr, graph.indices
    if n == 1 or indices.size == 0:
        return parent
    dist = np.asarray(dist, dtype=np.int64)
    degrees = np.diff(indptr)
    # A directed CSR entry (v -> u) is a parent candidate when u sits one
    # level closer to the source than v.  Unreached vertices (dist -1)
    # target level -2, which no vertex has, so they keep parent -1; the
    # source targets level -1, which no *neighbour of a reached vertex*
    # has, so it keeps -1 too.
    targets = np.repeat(dist - 1, degrees)
    candidates = np.where(dist[indices] == targets, indices, n)
    starts = np.minimum(indptr[:-1], indices.size - 1)
    mins = np.minimum.reduceat(candidates, starts)
    mins[degrees == 0] = n
    chosen = mins < n
    parent[chosen] = mins[chosen]
    return parent


def bfs_tree(graph: Graph, source: Vertex) -> Tuple[np.ndarray, np.ndarray]:
    """BFS distances and a deterministic parent array rooted at ``source``.

    Returns ``(dist, parent)`` where ``parent[v]`` is the *smallest-id*
    neighbour of ``v`` on a shortest path back to the source
    (``parent[source] == -1``; unreachable vertices also get ``-1``).

    The smallest-id tie-break makes tree construction reproducible, which
    the paper leaves unspecified ("fix the ordering of the subtrees in any
    arbitrary order") — see the child-order ablation benchmark.
    """
    dist = bfs_levels(graph, source)
    n = graph.n
    parent = np.full(n, -1, dtype=np.int64)
    for v in range(n):
        if v == source or dist[v] == UNREACHED:
            continue
        target = dist[v] - 1
        # neighbors(v) is sorted ascending, so the first hit is smallest-id.
        for u in graph.neighbors(v):
            if dist[u] == target:
                parent[v] = u
                break
    return dist, parent


def bfs_levels_reference(graph: Graph, source: Vertex) -> List[int]:
    """Textbook deque-based BFS used to cross-check :func:`bfs_levels`."""
    n = graph.n
    if not 0 <= source < n:
        raise GraphError(f"source {source} out of range for n={n}")
    dist = [UNREACHED] * n
    dist[source] = 0
    queue: deque[int] = deque([source])
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if dist[v] == UNREACHED:
                dist[v] = dist[u] + 1
                queue.append(v)
    return dist


def eccentricity(graph: Graph, v: Vertex) -> int:
    """Largest shortest-path distance from ``v`` to any vertex.

    Raises :class:`~repro.exceptions.DisconnectedGraphError` when some
    vertex is unreachable from ``v``.
    """
    dist = bfs_levels(graph, v)
    if (dist == UNREACHED).any():
        raise DisconnectedGraphError(
            f"vertex {v} cannot reach the whole graph; eccentricity undefined"
        )
    return int(dist.max())


def all_eccentricities(graph: Graph) -> np.ndarray:
    """Eccentricity of every vertex (the paper's O(mn) sweep, batched).

    Runs :func:`bfs_levels_multi` in 64-source bit-parallel passes, so
    the whole sweep costs O(m · diameter) per batch instead of one full
    BFS per vertex.  Output is identical to
    :func:`all_eccentricities_reference` (property-tested).  Raises
    :class:`~repro.exceptions.DisconnectedGraphError` on disconnected
    input.
    """
    n = graph.n
    ecc = np.empty(n, dtype=np.int64)
    for lo in range(0, n, _BATCH):
        hi = min(n, lo + _BATCH)
        dist = bfs_levels_multi(graph, range(lo, hi))
        if (dist == UNREACHED).any():
            raise DisconnectedGraphError("graph is disconnected; eccentricities undefined")
        ecc[lo:hi] = dist.max(axis=1)
    return ecc


def all_eccentricities_reference(graph: Graph) -> np.ndarray:
    """One-BFS-per-vertex eccentricity sweep (the reference implementation).

    Kept alongside the batched :func:`all_eccentricities` for
    cross-checking in the property tests and the planner benchmark.
    """
    n = graph.n
    ecc = np.empty(n, dtype=np.int64)
    for v in range(n):
        dist = bfs_levels(graph, v)
        if (dist == UNREACHED).any():
            raise DisconnectedGraphError("graph is disconnected; eccentricities undefined")
        ecc[v] = dist.max()
    return ecc


def distance_matrix(graph: Graph) -> np.ndarray:
    """All-pairs shortest path distances as an ``(n, n)`` int64 matrix.

    Unreachable pairs hold :data:`UNREACHED`.  Computed with the
    bit-parallel :func:`bfs_levels_multi` (64 sources per pass)."""
    return bfs_levels_multi(graph, range(graph.n))


def is_connected(graph: Graph) -> bool:
    """Whether every vertex is reachable from vertex 0."""
    return not (bfs_levels(graph, 0) == UNREACHED).any()


def connected_components(graph: Graph) -> List[List[int]]:
    """Connected components as sorted vertex lists, ordered by min vertex."""
    n = graph.n
    seen = np.zeros(n, dtype=bool)
    components: List[List[int]] = []
    for start in range(n):
        if seen[start]:
            continue
        dist = bfs_levels(graph, start)
        members = [v for v in range(n) if dist[v] != UNREACHED]
        for v in members:
            seen[v] = True
        components.append(members)
    return components


def require_connected(graph: Graph, context: str = "operation") -> None:
    """Raise :class:`DisconnectedGraphError` unless ``graph`` is connected."""
    if not is_connected(graph):
        raise DisconnectedGraphError(f"{context} requires a connected graph")


def shortest_path(graph: Graph, source: Vertex, target: Vertex) -> Optional[List[int]]:
    """One shortest path from ``source`` to ``target`` (or ``None``).

    Uses the deterministic smallest-id parent tree, so repeated calls
    return the same path.
    """
    dist, parent = bfs_tree(graph, source)
    if target != source and parent[target] == -1:
        return None
    path = [int(target)]
    while path[-1] != source:
        path.append(int(parent[path[-1]]))
    path.reverse()
    return path
