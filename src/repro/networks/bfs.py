"""Breadth-first traversal primitives.

Everything in the paper's preprocessing stage reduces to BFS: shortest
path distances, eccentricities, the radius/center, and the minimum-depth
spanning tree (one BFS per vertex, keep the shallowest — Section 3.1).

The level-synchronous frontier expansion below is written against the
graph's CSR arrays with numpy so the per-round work is a handful of
vectorised operations instead of a Python loop over edges.  A pure-Python
reference implementation is kept alongside for cross-checking in tests.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Tuple

import numpy as np

from ..exceptions import DisconnectedGraphError, GraphError
from ..types import Vertex
from .graph import Graph

__all__ = [
    "bfs_levels",
    "bfs_tree",
    "bfs_levels_reference",
    "eccentricity",
    "all_eccentricities",
    "distance_matrix",
    "is_connected",
    "connected_components",
    "require_connected",
    "shortest_path",
    "UNREACHED",
]

#: Sentinel distance for vertices not reached by a traversal.
UNREACHED: int = -1


def bfs_levels(graph: Graph, source: Vertex) -> np.ndarray:
    """Distances (in edges) from ``source`` to every vertex.

    Returns an ``int64`` array ``dist`` with ``dist[v]`` the length of the
    shortest path from ``source`` to ``v``, or :data:`UNREACHED` when no
    path exists.

    Implementation: level-synchronous frontier expansion on the CSR
    arrays.  Each round gathers all neighbours of the current frontier in
    one vectorised pass, filters out already-visited vertices, and
    deduplicates with ``np.unique``.
    """
    n = graph.n
    if not 0 <= source < n:
        raise GraphError(f"source {source} out of range for n={n}")
    indptr, indices = graph.indptr, graph.indices
    dist = np.full(n, UNREACHED, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        # Gather all CSR slices of the frontier in one shot.
        starts = indptr[frontier]
        stops = indptr[frontier + 1]
        counts = stops - starts
        total = int(counts.sum())
        if total == 0:
            break
        # Build the concatenated neighbour array without a Python loop:
        # offsets[i] enumerates positions, shifted into each CSR slice.
        offsets = np.repeat(starts - np.concatenate(([0], np.cumsum(counts)[:-1])), counts)
        neighbours = indices[np.arange(total, dtype=np.int64) + offsets]
        fresh = neighbours[dist[neighbours] == UNREACHED]
        if fresh.size == 0:
            break
        frontier = np.unique(fresh)
        dist[frontier] = level
    return dist


def bfs_tree(graph: Graph, source: Vertex) -> Tuple[np.ndarray, np.ndarray]:
    """BFS distances and a deterministic parent array rooted at ``source``.

    Returns ``(dist, parent)`` where ``parent[v]`` is the *smallest-id*
    neighbour of ``v`` on a shortest path back to the source
    (``parent[source] == -1``; unreachable vertices also get ``-1``).

    The smallest-id tie-break makes tree construction reproducible, which
    the paper leaves unspecified ("fix the ordering of the subtrees in any
    arbitrary order") — see the child-order ablation benchmark.
    """
    dist = bfs_levels(graph, source)
    n = graph.n
    parent = np.full(n, -1, dtype=np.int64)
    for v in range(n):
        if v == source or dist[v] == UNREACHED:
            continue
        target = dist[v] - 1
        # neighbors(v) is sorted ascending, so the first hit is smallest-id.
        for u in graph.neighbors(v):
            if dist[u] == target:
                parent[v] = u
                break
    return dist, parent


def bfs_levels_reference(graph: Graph, source: Vertex) -> List[int]:
    """Textbook deque-based BFS used to cross-check :func:`bfs_levels`."""
    n = graph.n
    if not 0 <= source < n:
        raise GraphError(f"source {source} out of range for n={n}")
    dist = [UNREACHED] * n
    dist[source] = 0
    queue: deque[int] = deque([source])
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if dist[v] == UNREACHED:
                dist[v] = dist[u] + 1
                queue.append(v)
    return dist


def eccentricity(graph: Graph, v: Vertex) -> int:
    """Largest shortest-path distance from ``v`` to any vertex.

    Raises :class:`~repro.exceptions.DisconnectedGraphError` when some
    vertex is unreachable from ``v``.
    """
    dist = bfs_levels(graph, v)
    if (dist == UNREACHED).any():
        raise DisconnectedGraphError(
            f"vertex {v} cannot reach the whole graph; eccentricity undefined"
        )
    return int(dist.max())


def all_eccentricities(graph: Graph) -> np.ndarray:
    """Eccentricity of every vertex (the paper's O(mn) sweep).

    One BFS per vertex.  Raises
    :class:`~repro.exceptions.DisconnectedGraphError` on disconnected
    input.
    """
    n = graph.n
    ecc = np.empty(n, dtype=np.int64)
    for v in range(n):
        dist = bfs_levels(graph, v)
        if (dist == UNREACHED).any():
            raise DisconnectedGraphError("graph is disconnected; eccentricities undefined")
        ecc[v] = dist.max()
    return ecc


def distance_matrix(graph: Graph) -> np.ndarray:
    """All-pairs shortest path distances as an ``(n, n)`` int64 matrix.

    Unreachable pairs hold :data:`UNREACHED`.  Intended for analysis and
    tests on small graphs; costs one BFS per vertex.
    """
    return np.stack([bfs_levels(graph, v) for v in range(graph.n)])


def is_connected(graph: Graph) -> bool:
    """Whether every vertex is reachable from vertex 0."""
    return not (bfs_levels(graph, 0) == UNREACHED).any()


def connected_components(graph: Graph) -> List[List[int]]:
    """Connected components as sorted vertex lists, ordered by min vertex."""
    n = graph.n
    seen = np.zeros(n, dtype=bool)
    components: List[List[int]] = []
    for start in range(n):
        if seen[start]:
            continue
        dist = bfs_levels(graph, start)
        members = [v for v in range(n) if dist[v] != UNREACHED]
        for v in members:
            seen[v] = True
        components.append(members)
    return components


def require_connected(graph: Graph, context: str = "operation") -> None:
    """Raise :class:`DisconnectedGraphError` unless ``graph`` is connected."""
    if not is_connected(graph):
        raise DisconnectedGraphError(f"{context} requires a connected graph")


def shortest_path(graph: Graph, source: Vertex, target: Vertex) -> Optional[List[int]]:
    """One shortest path from ``source`` to ``target`` (or ``None``).

    Uses the deterministic smallest-id parent tree, so repeated calls
    return the same path.
    """
    dist, parent = bfs_tree(graph, source)
    if target != source and parent[target] == -1:
        return None
    path = [int(target)]
    while path[-1] != source:
        path.append(int(parent[path[-1]]))
    path.reverse()
    return path
