"""Accelerated all-pairs shortest paths and tree construction.

The paper's preprocessing needs eccentricities of *every* vertex (the
O(mn) sweep of Section 3.1).  The pure-Python/numpy BFS in
:mod:`repro.networks.bfs` is the readable reference; this module offers
a drop-in fast backend built on ``scipy.sparse.csgraph`` (C-compiled
BFS over the same CSR arrays), used by the scaling benchmarks and by
:func:`minimum_depth_spanning_tree_fast`.

Guarantees:

* :func:`all_pairs_distances` returns exactly
  :func:`repro.networks.bfs.distance_matrix` (property-tested);
* :func:`minimum_depth_spanning_tree_fast` returns a tree **equal** to
  :func:`repro.networks.spanning_tree.minimum_depth_spanning_tree` — it
  now simply delegates to it, since the pruned + batched center sweep
  in :mod:`repro.networks.spanning_tree` outruns a full scipy all-pairs
  pass by skipping most candidate roots entirely.

The distance helpers fall back to the reference implementation when
scipy is unavailable.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DisconnectedGraphError
from ..tree.tree import Tree
from .bfs import distance_matrix
from .graph import Graph
from .spanning_tree import minimum_depth_spanning_tree

__all__ = [
    "all_pairs_distances",
    "fast_eccentricities",
    "fast_radius",
    "minimum_depth_spanning_tree_fast",
]

try:  # pragma: no cover - exercised implicitly by which branch runs
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import shortest_path as _scipy_shortest_path

    _HAVE_SCIPY = True
except ImportError:  # pragma: no cover
    _HAVE_SCIPY = False


def all_pairs_distances(graph: Graph) -> np.ndarray:
    """All-pairs shortest path distances, ``-1`` for unreachable pairs.

    Uses scipy's C BFS when available; otherwise the reference
    implementation.  Output matches
    :func:`repro.networks.bfs.distance_matrix` exactly.
    """
    if not _HAVE_SCIPY:
        return distance_matrix(graph)
    n = graph.n
    data = np.ones(graph.indices.shape[0], dtype=np.int8)
    adjacency = csr_matrix(
        (data, graph.indices, graph.indptr), shape=(n, n)
    )
    dist = _scipy_shortest_path(adjacency, method="D", unweighted=True)
    out = np.where(np.isinf(dist), -1, dist).astype(np.int64)
    return out


def fast_eccentricities(graph: Graph) -> np.ndarray:
    """Eccentricity of every vertex (fast backend).

    Raises :class:`DisconnectedGraphError` on disconnected input, like
    the reference :func:`repro.networks.bfs.all_eccentricities`.
    """
    dist = all_pairs_distances(graph)
    if (dist < 0).any():
        raise DisconnectedGraphError("graph is disconnected; eccentricities undefined")
    return dist.max(axis=1)


def fast_radius(graph: Graph) -> int:
    """Network radius via the fast backend."""
    return int(fast_eccentricities(graph).min())


def minimum_depth_spanning_tree_fast(graph: Graph) -> Tree:
    """Fast minimum-depth spanning tree; equal to the reference result.

    Since the pruned + batched center sweep landed,
    :func:`repro.networks.spanning_tree.minimum_depth_spanning_tree` is
    itself the fastest construction (it beats the full scipy
    all-pairs sweep because it avoids visiting most candidate roots and
    reuses the winner's parent array), so this delegates to it.  Kept as
    a distinct entry point for callers pinned to the old name; the
    scipy-backed eccentricity helpers above remain for analysis code
    that needs full distance matrices.
    """
    return minimum_depth_spanning_tree(graph)
