"""Immutable undirected graph used as the network substrate.

The paper's communication network ``N`` is an undirected, unweighted,
connected graph on ``n >= 1`` processors.  :class:`Graph` stores the
adjacency structure twice:

* as per-vertex sorted tuples (``graph.neighbors(v)``) for readable
  algorithmic code, and
* as a CSR-style pair of numpy arrays (``indptr`` / ``indices``) so the
  hot traversals in :mod:`repro.networks.bfs` can run over contiguous
  memory (see the HPC guide: group memory accesses, avoid per-edge Python
  objects in inner loops).

Instances are immutable and hashable; all mutating construction goes
through :class:`GraphBuilder` or the helpers in
:mod:`repro.networks.builders`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Sequence, Set, Tuple

import numpy as np

from ..exceptions import GraphError
from ..types import Edge, EdgeList, Vertex

__all__ = ["Graph", "GraphBuilder"]


class Graph:
    """An immutable, simple, undirected graph on vertices ``0..n-1``.

    Parameters
    ----------
    n:
        Number of vertices.  Must be at least 1.
    edges:
        Iterable of ``(u, v)`` pairs.  Self-loops are rejected; duplicate
        edges (in either orientation) are rejected so accidental
        multi-edges surface immediately instead of silently skewing
        degree-based heuristics.
    name:
        Optional human-readable topology name (used in benchmark reports).

    Examples
    --------
    >>> g = Graph(3, [(0, 1), (1, 2)])
    >>> g.n, g.m
    (3, 2)
    >>> g.neighbors(1)
    (0, 2)
    """

    __slots__ = (
        "_n",
        "_m",
        "_adj",
        "_edge_set",
        "_indptr",
        "_indices",
        "_name",
        "_hash",
        "_canonical",
    )

    def __init__(self, n: int, edges: EdgeList, name: str = "") -> None:
        if n < 1:
            raise GraphError(f"graph needs at least one vertex, got n={n}")
        adj: List[Set[int]] = [set() for _ in range(n)]
        edge_set: Set[Tuple[int, int]] = set()
        for e in edges:
            try:
                u, v = e
            except (TypeError, ValueError) as exc:
                raise GraphError(f"edge {e!r} is not a pair") from exc
            u, v = int(u), int(v)
            if not (0 <= u < n and 0 <= v < n):
                raise GraphError(f"edge ({u}, {v}) out of range for n={n}")
            if u == v:
                raise GraphError(f"self-loop at vertex {u} is not allowed")
            key = (u, v) if u < v else (v, u)
            if key in edge_set:
                raise GraphError(f"duplicate edge ({u}, {v})")
            edge_set.add(key)
            adj[u].add(v)
            adj[v].add(u)
        self._n = n
        self._m = len(edge_set)
        self._adj: Tuple[Tuple[int, ...], ...] = tuple(tuple(sorted(s)) for s in adj)
        self._edge_set: FrozenSet[Tuple[int, int]] = frozenset(edge_set)
        # CSR arrays for vectorised traversal.
        degrees = np.fromiter((len(a) for a in self._adj), dtype=np.int64, count=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        indices = np.empty(self._m * 2, dtype=np.int64)
        for v, neigh in enumerate(self._adj):
            indices[indptr[v] : indptr[v + 1]] = neigh
        self._indptr = indptr
        self._indices = indices
        self._name = name
        self._hash: int | None = None
        self._canonical: str | None = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices (processors)."""
        return self._n

    @property
    def m(self) -> int:
        """Number of undirected edges (communication links)."""
        return self._m

    @property
    def name(self) -> str:
        """Human-readable topology name (may be empty)."""
        return self._name

    @property
    def indptr(self) -> np.ndarray:
        """CSR row-pointer array of shape ``(n + 1,)`` (read-only view)."""
        view = self._indptr.view()
        view.flags.writeable = False
        return view

    @property
    def indices(self) -> np.ndarray:
        """CSR column-index array of shape ``(2 m,)`` (read-only view)."""
        view = self._indices.view()
        view.flags.writeable = False
        return view

    def vertices(self) -> range:
        """All vertex ids as a ``range`` object."""
        return range(self._n)

    def neighbors(self, v: Vertex) -> Tuple[int, ...]:
        """Sorted tuple of the neighbours of ``v``."""
        return self._adj[self._check_vertex(v)]

    def degree(self, v: Vertex) -> int:
        """Number of neighbours of ``v``."""
        return len(self._adj[self._check_vertex(v)])

    def degrees(self) -> np.ndarray:
        """Degree of every vertex as an ``int64`` array of shape ``(n,)``."""
        return np.diff(self._indptr)

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Whether the undirected edge ``{u, v}`` is present."""
        u, v = int(u), int(v)
        key = (u, v) if u < v else (v, u)
        return key in self._edge_set

    def edges(self) -> Iterator[Edge]:
        """Iterate over edges as ``(u, v)`` with ``u < v``, sorted."""
        return iter(sorted(self._edge_set))

    def edge_list(self) -> List[Edge]:
        """Sorted list of edges as ``(u, v)`` with ``u < v``."""
        return sorted(self._edge_set)

    def adjacency(self) -> Dict[int, Tuple[int, ...]]:
        """Adjacency mapping ``vertex -> sorted neighbour tuple``."""
        return {v: self._adj[v] for v in range(self._n)}

    def canonical_hash(self) -> str:
        """Content-addressed fingerprint of this network.

        A hex SHA-256 digest of ``(n, sorted edge set)``: two graphs get
        the same fingerprint iff they are equal as *labeled* graphs, no
        matter in which order (or orientation) their edges were supplied
        to the constructor, and regardless of :attr:`name`.

        The fingerprint deliberately identifies the labeled graph rather
        than its isomorphism class — a :class:`~repro.core.gossip.GossipPlan`
        schedules concrete vertex ids, so serving a plan computed for an
        isomorphic-but-relabeled network would be wrong.  This is the
        cache key used by :class:`repro.service.GossipService`.

        Computed once and cached on the (immutable) instance; stable
        across processes and Python versions, unlike :func:`hash`.
        """
        if self._canonical is None:
            import hashlib

            h = hashlib.sha256()
            h.update(self._n.to_bytes(8, "little"))
            for u, v in sorted(self._edge_set):
                h.update(u.to_bytes(8, "little"))
                h.update(v.to_bytes(8, "little"))
            self._canonical = h.hexdigest()
        return self._canonical

    # ------------------------------------------------------------------
    # Derived constructions
    # ------------------------------------------------------------------
    def with_name(self, name: str) -> "Graph":
        """Return a copy of this graph carrying a different name."""
        return Graph(self._n, self.edge_list(), name=name)

    def add_edges(self, extra: EdgeList, name: str | None = None) -> "Graph":
        """Return a new graph with ``extra`` edges added."""
        return Graph(
            self._n,
            self.edge_list() + [tuple(e) for e in extra],
            name=self._name if name is None else name,
        )

    def remove_edges(self, gone: EdgeList, name: str | None = None) -> "Graph":
        """Return a new graph with the given edges removed.

        Raises :class:`~repro.exceptions.GraphError` if an edge to remove
        is absent, so typos in experiment scripts fail loudly.
        """
        gone_keys = set()
        for u, v in gone:
            key = (u, v) if u < v else (v, u)
            if key not in self._edge_set:
                raise GraphError(f"cannot remove absent edge ({u}, {v})")
            gone_keys.add(key)
        kept = [e for e in self.edge_list() if e not in gone_keys]
        return Graph(self._n, kept, name=self._name if name is None else name)

    def relabeled(self, permutation: Sequence[int], name: str | None = None) -> "Graph":
        """Return the graph with vertex ``v`` renamed ``permutation[v]``.

        ``permutation`` must be a permutation of ``range(n)``.
        """
        if sorted(permutation) != list(range(self._n)):
            raise GraphError("relabeled() needs a permutation of range(n)")
        new_edges = [(permutation[u], permutation[v]) for u, v in self.edge_list()]
        return Graph(self._n, new_edges, name=self._name if name is None else name)

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._n == other._n and self._edge_set == other._edge_set

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._n, self._edge_set))
        return self._hash

    def __contains__(self, v: object) -> bool:
        return isinstance(v, int) and 0 <= v < self._n

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:
        label = f" name={self._name!r}" if self._name else ""
        return f"Graph(n={self._n}, m={self._m}{label})"

    # ------------------------------------------------------------------
    def _check_vertex(self, v: Vertex) -> int:
        v = int(v)
        if not 0 <= v < self._n:
            raise GraphError(f"vertex {v} out of range for n={self._n}")
        return v


class GraphBuilder:
    """Mutable helper for incrementally assembling a :class:`Graph`.

    Useful inside topology generators where edges are discovered one at a
    time; duplicate inserts are tolerated (idempotent) unlike the strict
    :class:`Graph` constructor.

    Examples
    --------
    >>> b = GraphBuilder(4)
    >>> b.add_edge(0, 1).add_edge(1, 2).add_edge(1, 2)
    GraphBuilder(n=4, m=2)
    >>> b.build().m
    2
    """

    __slots__ = ("_n", "_edges", "_name")

    def __init__(self, n: int, name: str = "") -> None:
        if n < 1:
            raise GraphError(f"graph needs at least one vertex, got n={n}")
        self._n = n
        self._edges: Set[Tuple[int, int]] = set()
        self._name = name

    def add_edge(self, u: Vertex, v: Vertex) -> "GraphBuilder":
        """Insert the undirected edge ``{u, v}`` (idempotent)."""
        u, v = int(u), int(v)
        if not (0 <= u < self._n and 0 <= v < self._n):
            raise GraphError(f"edge ({u}, {v}) out of range for n={self._n}")
        if u == v:
            raise GraphError(f"self-loop at vertex {u} is not allowed")
        self._edges.add((u, v) if u < v else (v, u))
        return self

    def add_path(self, vertices: Sequence[Vertex]) -> "GraphBuilder":
        """Insert edges of the path visiting ``vertices`` in order."""
        for u, v in zip(vertices, vertices[1:]):
            self.add_edge(u, v)
        return self

    def add_cycle(self, vertices: Sequence[Vertex]) -> "GraphBuilder":
        """Insert edges of the cycle visiting ``vertices`` in order."""
        self.add_path(vertices)
        if len(vertices) >= 3:
            self.add_edge(vertices[-1], vertices[0])
        return self

    def add_clique(self, vertices: Sequence[Vertex]) -> "GraphBuilder":
        """Insert every edge between distinct members of ``vertices``."""
        verts = list(vertices)
        for a in range(len(verts)):
            for b in range(a + 1, len(verts)):
                self.add_edge(verts[a], verts[b])
        return self

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Whether the edge has been inserted already."""
        key = (u, v) if u < v else (v, u)
        return key in self._edges

    @property
    def n(self) -> int:
        """Number of vertices the built graph will have."""
        return self._n

    @property
    def m(self) -> int:
        """Number of edges inserted so far."""
        return len(self._edges)

    def build(self, name: str | None = None) -> Graph:
        """Freeze into an immutable :class:`Graph`."""
        return Graph(
            self._n, sorted(self._edges), name=self._name if name is None else name
        )

    def __repr__(self) -> str:
        return f"GraphBuilder(n={self._n}, m={len(self._edges)})"
