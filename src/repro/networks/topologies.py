"""Deterministic topology generators.

A broad family of interconnection networks to sweep the benchmarks over:
classic HPC topologies (rings, meshes, tori, hypercubes, butterflies,
cube-connected cycles, de Bruijn graphs), tree-like extremes (paths,
stars, caterpillars, spiders, k-ary trees), and the pathological shapes
used in the paper's arguments (the odd path realising the ``n + r - 1``
lower bound; the Hamiltonian ring of Fig. 1).

Every generator returns an immutable named :class:`~repro.networks.graph.Graph`
with vertices ``0..n-1``.
"""

from __future__ import annotations

from ..exceptions import GraphError
from .graph import Graph, GraphBuilder

__all__ = [
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "complete_bipartite",
    "grid_2d",
    "torus_2d",
    "hypercube",
    "kary_tree",
    "binary_tree",
    "caterpillar",
    "spider",
    "broom",
    "wheel",
    "barbell",
    "lollipop",
    "de_bruijn",
    "cube_connected_cycles",
    "butterfly",
    "double_star",
    "friendship",
]


def path_graph(n: int) -> Graph:
    """The path ``P_n`` (straight line network of Section 1).

    With ``n = 2m + 1`` odd this is the paper's lower-bound instance:
    every gossip schedule needs at least ``n + r - 1 = n + m - 1`` rounds.
    """
    return GraphBuilder(n, name=f"path-{n}").add_path(range(n)).build()


def cycle_graph(n: int) -> Graph:
    """The cycle ``C_n`` — Fig. 1's network with a Hamiltonian circuit.

    Gossiping completes in the optimal ``n - 1`` rounds by rotating every
    message one step clockwise per round.
    """
    if n < 3:
        raise GraphError("a cycle needs at least 3 vertices")
    return GraphBuilder(n, name=f"cycle-{n}").add_cycle(range(n)).build()


def star_graph(n: int) -> Graph:
    """The star ``K_{1,n-1}`` with center 0 — radius 1, the multicast best case."""
    if n < 2:
        raise GraphError("a star needs at least 2 vertices")
    b = GraphBuilder(n, name=f"star-{n}")
    for v in range(1, n):
        b.add_edge(0, v)
    return b.build()


def complete_graph(n: int) -> Graph:
    """The complete graph ``K_n`` (fully connected processors)."""
    return GraphBuilder(n, name=f"complete-{n}").add_clique(range(n)).build()


def complete_bipartite(a: int, b: int) -> Graph:
    """``K_{a,b}``: parts ``0..a-1`` and ``a..a+b-1``."""
    if a < 1 or b < 1:
        raise GraphError("both parts need at least one vertex")
    builder = GraphBuilder(a + b, name=f"bipartite-{a}x{b}")
    for u in range(a):
        for v in range(a, a + b):
            builder.add_edge(u, v)
    return builder.build()


def grid_2d(rows: int, cols: int) -> Graph:
    """The ``rows x cols`` mesh; vertex ``(r, c)`` is ``r * cols + c``."""
    if rows < 1 or cols < 1:
        raise GraphError("grid dimensions must be positive")
    b = GraphBuilder(rows * cols, name=f"grid-{rows}x{cols}")
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                b.add_edge(v, v + 1)
            if r + 1 < rows:
                b.add_edge(v, v + cols)
    return b.build()


def torus_2d(rows: int, cols: int) -> Graph:
    """The ``rows x cols`` torus (mesh with wraparound links)."""
    if rows < 3 or cols < 3:
        raise GraphError("torus dimensions must be at least 3 to stay simple")
    b = GraphBuilder(rows * cols, name=f"torus-{rows}x{cols}")
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            b.add_edge(v, r * cols + (c + 1) % cols)
            b.add_edge(v, ((r + 1) % rows) * cols + c)
    return b.build()


def hypercube(dim: int) -> Graph:
    """The ``dim``-dimensional hypercube ``Q_dim`` on ``2^dim`` vertices."""
    if dim < 1:
        raise GraphError("hypercube dimension must be at least 1")
    n = 1 << dim
    b = GraphBuilder(n, name=f"hypercube-{dim}")
    for v in range(n):
        for bit in range(dim):
            u = v ^ (1 << bit)
            if u > v:
                b.add_edge(v, u)
    return b.build()


def kary_tree(arity: int, height: int) -> Graph:
    """The complete ``arity``-ary tree of the given height, as a graph.

    Vertex 0 is the root; children of ``v`` are ``arity*v + 1 ..
    arity*v + arity`` (heap layout).
    """
    if arity < 1 or height < 0:
        raise GraphError("arity must be >= 1 and height >= 0")
    n = sum(arity**lvl for lvl in range(height + 1))
    b = GraphBuilder(n, name=f"{arity}ary-tree-h{height}")
    for v in range(1, n):
        b.add_edge(v, (v - 1) // arity)
    return b.build()


def binary_tree(height: int) -> Graph:
    """The complete binary tree of the given height."""
    return kary_tree(2, height).with_name(f"binary-tree-h{height}")


def caterpillar(spine: int, legs_per_vertex: int) -> Graph:
    """A caterpillar: a path of ``spine`` vertices, each with pendant legs.

    Spine vertices are ``0..spine-1``; legs follow.
    """
    if spine < 1 or legs_per_vertex < 0:
        raise GraphError("spine must be >= 1, legs >= 0")
    n = spine * (1 + legs_per_vertex)
    b = GraphBuilder(n, name=f"caterpillar-{spine}x{legs_per_vertex}")
    b.add_path(range(spine))
    leg = spine
    for s in range(spine):
        for _ in range(legs_per_vertex):
            b.add_edge(s, leg)
            leg += 1
    return b.build()


def spider(legs: int, leg_length: int) -> Graph:
    """A spider: ``legs`` disjoint paths of ``leg_length`` joined at vertex 0."""
    if legs < 1 or leg_length < 1:
        raise GraphError("legs and leg_length must be >= 1")
    n = 1 + legs * leg_length
    b = GraphBuilder(n, name=f"spider-{legs}x{leg_length}")
    nxt = 1
    for _ in range(legs):
        prev = 0
        for _ in range(leg_length):
            b.add_edge(prev, nxt)
            prev = nxt
            nxt += 1
    return b.build()


def broom(handle: int, bristles: int) -> Graph:
    """A broom: a path of ``handle`` vertices with ``bristles`` leaves at the end."""
    if handle < 1 or bristles < 0:
        raise GraphError("handle must be >= 1, bristles >= 0")
    n = handle + bristles
    b = GraphBuilder(n, name=f"broom-{handle}+{bristles}")
    b.add_path(range(handle))
    for leaf in range(handle, n):
        b.add_edge(handle - 1, leaf)
    return b.build()


def wheel(n: int) -> Graph:
    """The wheel ``W_n``: a hub (vertex 0) joined to a cycle of ``n - 1``."""
    if n < 4:
        raise GraphError("a wheel needs at least 4 vertices")
    b = GraphBuilder(n, name=f"wheel-{n}")
    b.add_cycle(range(1, n))
    for v in range(1, n):
        b.add_edge(0, v)
    return b.build()


def barbell(clique: int, bridge: int) -> Graph:
    """Two ``clique``-cliques joined by a path of ``bridge`` extra vertices."""
    if clique < 2:
        raise GraphError("cliques need at least 2 vertices")
    n = 2 * clique + bridge
    b = GraphBuilder(n, name=f"barbell-{clique}+{bridge}")
    b.add_clique(range(clique))
    b.add_clique(range(clique + bridge, n))
    b.add_path(range(clique - 1, clique + bridge + 1))
    return b.build()


def lollipop(clique: int, tail: int) -> Graph:
    """A ``clique``-clique with a path of ``tail`` vertices hanging off it."""
    if clique < 2 or tail < 0:
        raise GraphError("clique >= 2 and tail >= 0 required")
    n = clique + tail
    b = GraphBuilder(n, name=f"lollipop-{clique}+{tail}")
    b.add_clique(range(clique))
    b.add_path(range(clique - 1, n))
    return b.build()


def de_bruijn(symbols: int, length: int) -> Graph:
    """Undirected de Bruijn graph ``B(symbols, length)``.

    Vertices are length-``length`` words over ``symbols`` letters; edges
    join words overlapping in ``length - 1`` letters.  Self-loops and
    parallel edges of the directed version are discarded.
    """
    if symbols < 2 or length < 1:
        raise GraphError("need symbols >= 2 and length >= 1")
    n = symbols**length
    b = GraphBuilder(n, name=f"debruijn-{symbols}-{length}")
    for v in range(n):
        shifted = (v * symbols) % n
        for s in range(symbols):
            u = shifted + s
            if u != v:
                b.add_edge(v, u)
    return b.build()


def cube_connected_cycles(dim: int) -> Graph:
    """CCC(dim): each hypercube corner replaced by a ``dim``-cycle.

    Vertex ``(corner, position)`` is ``corner * dim + position``.
    """
    if dim < 3:
        raise GraphError("CCC needs dimension >= 3")
    b = GraphBuilder(dim * (1 << dim), name=f"ccc-{dim}")
    for corner in range(1 << dim):
        for pos in range(dim):
            v = corner * dim + pos
            b.add_edge(v, corner * dim + (pos + 1) % dim)
            b.add_edge(v, (corner ^ (1 << pos)) * dim + pos)
    return b.build()


def butterfly(dim: int) -> Graph:
    """The (wrapped-around-free) butterfly network BF(dim).

    ``dim + 1`` levels of ``2^dim`` columns; vertex ``(level, column)`` is
    ``level * 2^dim + column``; level ``l`` connects to level ``l + 1``
    straight and with bit ``l`` flipped.
    """
    if dim < 1:
        raise GraphError("butterfly needs dimension >= 1")
    cols = 1 << dim
    b = GraphBuilder((dim + 1) * cols, name=f"butterfly-{dim}")
    for level in range(dim):
        for col in range(cols):
            v = level * cols + col
            b.add_edge(v, (level + 1) * cols + col)
            b.add_edge(v, (level + 1) * cols + (col ^ (1 << level)))
    return b.build()


def double_star(a: int, b: int) -> Graph:
    """Two adjacent centers with ``a`` and ``b`` leaves respectively."""
    if a < 0 or b < 0:
        raise GraphError("leaf counts must be non-negative")
    n = 2 + a + b
    builder = GraphBuilder(n, name=f"double-star-{a}+{b}")
    builder.add_edge(0, 1)
    for leaf in range(2, 2 + a):
        builder.add_edge(0, leaf)
    for leaf in range(2 + a, n):
        builder.add_edge(1, leaf)
    return builder.build()


def friendship(triangles: int) -> Graph:
    """The friendship graph: ``triangles`` triangles sharing vertex 0."""
    if triangles < 1:
        raise GraphError("need at least one triangle")
    n = 1 + 2 * triangles
    b = GraphBuilder(n, name=f"friendship-{triangles}")
    for t in range(triangles):
        u, v = 1 + 2 * t, 2 + 2 * t
        b.add_edge(0, u)
        b.add_edge(0, v)
        b.add_edge(u, v)
    return b.build()
