"""The rule catalogue of the static schedule analyzer.

Rules come in three tiers:

* ``model`` — violations of the multicasting communication model of
  paper Section 1 (one send and one receive per processor per round,
  receive-before-send possession, adjacency, id ranges).  All errors;
  a schedule with a model finding would be rejected by the dynamic
  engine too (the differential tests prove the two layers agree).
* ``efficiency`` — wasteful-but-legal constructs the engine happily
  executes: redundant deliveries to holders, idle capacity, unicasts
  that could have fused into an earlier multicast, rounds beyond the
  paper's ``n + r`` certificate.  All warnings.
* ``paper`` — the structural invariants of a ConcurrentUpDown plan
  (Theorem 1): DFS-preorder label contiguity, tree-edge-only traffic,
  monotone up-phase, no downward backflow into the originating subtree,
  root completion by round ``n``, exact ``n + r`` length.  All errors;
  these rules only run when the driver is given a plan produced by the
  ``concurrent-updown`` algorithm (or when explicitly selected).

Every rule is registered here with its id, tier, severity and a
one-line summary; the driver consults :data:`RULES` to resolve
selections and the doc generator renders the catalogue from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from ..exceptions import ReproError
from .diagnostics import Severity

__all__ = [
    "Rule",
    "RULES",
    "TIERS",
    "MODEL",
    "EFFICIENCY",
    "PAPER",
    "STATIC_MODEL_RULES",
    "expand_selection",
]

#: Tier names, in severity order.
MODEL = "model"
EFFICIENCY = "efficiency"
PAPER = "paper"
TIERS: Tuple[str, ...] = (MODEL, EFFICIENCY, PAPER)


@dataclass(frozen=True)
class Rule:
    """Metadata of one lint rule.

    Attributes
    ----------
    id:
        Stable identifier ``tier/name`` used in diagnostics, selections
        and docs.
    tier:
        One of :data:`TIERS`.
    severity:
        Severity of every diagnostic the rule emits.
    summary:
        One-line description for the rule catalogue.
    """

    id: str
    tier: str
    severity: Severity
    summary: str


RULES: Dict[str, Rule] = {}


def _register(rule_id: str, tier: str, severity: Severity, summary: str) -> Rule:
    rule = Rule(id=rule_id, tier=tier, severity=severity, summary=summary)
    RULES[rule_id] = rule
    return rule


# ----------------------------------------------------------------------
# Tier 1 — model rules (abstract possession-flow; all errors)
# ----------------------------------------------------------------------
SENDER_COLLISION = _register(
    "model/sender-collision", MODEL, Severity.ERROR,
    "a processor sends two messages in one round (model rule 2)",
)
RECEIVER_COLLISION = _register(
    "model/receiver-collision", MODEL, Severity.ERROR,
    "a processor is targeted by two deliveries in one round (model rule 1)",
)
VERTEX_RANGE = _register(
    "model/vertex-range", MODEL, Severity.ERROR,
    "a sender or destination id is outside the network's vertex range",
)
MESSAGE_RANGE = _register(
    "model/message-range", MODEL, Severity.ERROR,
    "a message id is outside [0, n_messages)",
)
NON_EDGE = _register(
    "model/non-edge", MODEL, Severity.ERROR,
    "a transmission does not follow an edge of the network",
)
SEND_WITHOUT_HOLD = _register(
    "model/send-without-hold", MODEL, Severity.ERROR,
    "a processor sends a message it cannot hold yet (possession flow)",
)
INCOMPLETE_GOSSIP = _register(
    "model/incomplete-gossip", MODEL, Severity.ERROR,
    "after the final round some processor still misses a message",
)

#: The execution-history-free subset backing
#: :func:`repro.simulator.validator.check_static` — no possession or
#: completeness reasoning, exactly the checks a schedule admits without
#: knowing the initial holdings.
STATIC_MODEL_RULES: Tuple[str, ...] = (
    VERTEX_RANGE.id,
    MESSAGE_RANGE.id,
    NON_EDGE.id,
    SENDER_COLLISION.id,
    RECEIVER_COLLISION.id,
)

# ----------------------------------------------------------------------
# Tier 2 — efficiency lints (legal but wasteful; all warnings)
# ----------------------------------------------------------------------
REDUNDANT_DELIVERY = _register(
    "efficiency/redundant-delivery", EFFICIENCY, Severity.WARNING,
    "a message is delivered to a processor that already holds it",
)
IDLE_ROUND = _register(
    "efficiency/idle-round", EFFICIENCY, Severity.WARNING,
    "an interior round performs no communication at all",
)
IDLE_SENDER = _register(
    "efficiency/idle-sender", EFFICIENCY, Severity.WARNING,
    "an idle processor holds a message a free neighbour still misses",
)
UNICAST_MERGEABLE = _register(
    "efficiency/unicast-mergeable", EFFICIENCY, Severity.WARNING,
    "a repeat send could have joined an earlier multicast of the same message",
)
OVER_BUDGET = _register(
    "efficiency/over-budget", EFFICIENCY, Severity.WARNING,
    "the schedule runs past the paper's n + r certificate",
)

# ----------------------------------------------------------------------
# Tier 3 — paper invariants of ConcurrentUpDown plans (all errors)
# ----------------------------------------------------------------------
LABEL_CONTIGUITY = _register(
    "paper/label-contiguity", PAPER, Severity.ERROR,
    "subtree labels must form contiguous DFS-preorder intervals [i, j]",
)
TREE_EDGE = _register(
    "paper/tree-edge", PAPER, Severity.ERROR,
    "every transmission must travel between a tree parent and child",
)
UP_MONOTONE = _register(
    "paper/up-monotone", PAPER, Severity.ERROR,
    "up-phase sends must carry the sender's subtree messages in "
    "increasing label order",
)
DOWN_NO_BACKFLOW = _register(
    "paper/down-no-backflow", PAPER, Severity.ERROR,
    "a message must never be sent down into the subtree it originated in",
)
ROOT_COMPLETE = _register(
    "paper/root-complete", PAPER, Severity.ERROR,
    "the root must hold all n messages by round n",
)
LENGTH_CERTIFICATE = _register(
    "paper/length-certificate", PAPER, Severity.ERROR,
    "a ConcurrentUpDown schedule must take exactly n + r rounds (n >= 2)",
)


def expand_selection(
    selection: Optional[Iterable[str]],
    *,
    default_tiers: Iterable[str],
) -> FrozenSet[str]:
    """Resolve a user selection into a set of rule ids.

    ``selection`` entries may be rule ids (``"model/non-edge"``) or tier
    names (``"model"``).  ``None`` selects every rule of
    ``default_tiers``.  Unknown entries raise
    :class:`~repro.exceptions.ReproError` so typos never silently
    disable a rule.
    """
    if selection is None:
        wanted = set(default_tiers)
        return frozenset(r.id for r in RULES.values() if r.tier in wanted)
    out = set()
    for entry in selection:
        if entry in RULES:
            out.add(entry)
        elif entry in TIERS:
            out.update(r.id for r in RULES.values() if r.tier == entry)
        else:
            raise ReproError(
                f"unknown lint rule or tier {entry!r}; "
                f"tiers: {list(TIERS)}, rules: {sorted(RULES)}"
            )
    return frozenset(out)
