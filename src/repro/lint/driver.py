"""The static analysis driver: :func:`lint_schedule`.

The driver never executes a schedule.  Instead it propagates *abstract
possession sets* — one integer bitmask per processor — through the
rounds in a single chronological pass.  This is sound **and exact** for
the multicasting model because possession is monotone (processors never
forget a message) and delivery timing is deterministic: a message sent
in round ``t`` is held by its destinations from time ``t + 1`` on, and
the model's receive-before-send rule means round ``t``'s sends see
exactly the deliveries of rounds ``< t``.  Landing round ``t - 1``'s
deliveries before checking round ``t``'s sends therefore reproduces the
engine's possession judgement bit for bit — without importing the
engine (the differential tests in ``tests/lint`` prove both claims).

The driver accepts a :class:`~repro.core.schedule.Schedule`, a bare
:class:`~repro.core.schedule.ArraySchedule` (the canonical array form —
normalised through the lazy object-view facade), or a raw sequence of
rounds (each an iterable of
:class:`~repro.core.schedule.Transmission`).  Raw input matters: the
``Round`` constructor already rejects same-round sender/receiver
collisions, so only raw rounds can reach the
``model/sender-collision`` / ``model/receiver-collision`` rules — which
is exactly how the test suite proves the lint layer agrees with the
constructors' conflict checks.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..core.gossip import GossipPlan
from ..core.schedule import ArraySchedule, Round, Schedule, Transmission
from ..exceptions import (
    IncompleteGossipError,
    ModelViolationError,
    ReproError,
    ScheduleConflictError,
    ScheduleError,
)
from ..networks.graph import Graph
from .diagnostics import Diagnostic, LintReport
from . import rules as R

__all__ = ["lint_schedule", "diagnostic_exception", "ScheduleLike"]

#: Anything the driver understands as a schedule: the object view, the
#: canonical array form, or a raw sequence of rounds (each a ``Round``
#: or iterable of transmissions).
ScheduleLike = Union[
    Schedule, ArraySchedule, Sequence[Union[Round, Iterable[Transmission]]]
]

#: Exception class the dynamic layer raises for each model rule —
#: :func:`repro.simulator.validator.check_static` uses this table so the
#: static and dynamic layers cannot drift.
_EXCEPTION_OF_RULE: Dict[str, type] = {
    R.SENDER_COLLISION.id: ScheduleConflictError,
    R.RECEIVER_COLLISION.id: ScheduleConflictError,
    R.VERTEX_RANGE.id: ScheduleError,
    R.MESSAGE_RANGE.id: ScheduleError,
    R.NON_EDGE.id: ModelViolationError,
    R.SEND_WITHOUT_HOLD.id: ModelViolationError,
    R.INCOMPLETE_GOSSIP.id: IncompleteGossipError,
}


def diagnostic_exception(diag: Diagnostic) -> ScheduleError:
    """The typed exception equivalent to one model diagnostic.

    Lets exception-based callers (:mod:`repro.simulator.validator`)
    re-raise lint findings with the historical exception types.
    """
    exc_type = _EXCEPTION_OF_RULE.get(diag.rule, ScheduleError)
    return exc_type(diag.message)


def _normalize(schedule: ScheduleLike) -> Tuple[Tuple[Transmission, ...], ...]:
    """Flatten a schedule-like object into tuples of transmissions."""
    if isinstance(schedule, ArraySchedule):
        return tuple(rnd.transmissions for rnd in schedule.build_rounds())
    if isinstance(schedule, Schedule):
        return tuple(rnd.transmissions for rnd in schedule)
    out: List[Tuple[Transmission, ...]] = []
    for rnd in schedule:
        if isinstance(rnd, Round):
            out.append(rnd.transmissions)
        else:
            txs = tuple(rnd)
            for tx in txs:
                if not isinstance(tx, Transmission):
                    raise ReproError(
                        f"cannot lint {tx!r}: rounds must contain Transmission objects"
                    )
            out.append(txs)
    return tuple(out)


def _initial_holds(
    n: int,
    plan: Optional[GossipPlan],
    initial_holds: Optional[Sequence[int]],
) -> List[int]:
    """Initial possession bitmasks (mirrors the engine's defaults)."""
    if initial_holds is not None:
        holds = [int(h) for h in initial_holds]
        if len(holds) != n:
            raise ReproError(
                f"initial_holds has {len(holds)} entries for a {n}-vertex network"
            )
        return holds
    if plan is not None:
        # Message ids are DFS labels: processor v starts holding label(v).
        return [1 << plan.labeled.label_of(v) for v in range(n)]
    return [1 << v for v in range(n)]


def lint_schedule(
    graph: Graph,
    schedule: ScheduleLike,
    *,
    plan: Optional[GossipPlan] = None,
    initial_holds: Optional[Sequence[int]] = None,
    n_messages: Optional[int] = None,
    select: Optional[Iterable[str]] = None,
    ignore: Iterable[str] = (),
    require_complete: bool = True,
) -> LintReport:
    """Statically analyze ``schedule`` on ``graph`` without executing it.

    Parameters
    ----------
    graph:
        The communication network the schedule claims to run on.
    schedule:
        A :class:`~repro.core.schedule.Schedule`, a bare
        :class:`~repro.core.schedule.ArraySchedule`, or a raw sequence
        of rounds (each a ``Round`` or an iterable of ``Transmission``)
        for material the constructors would reject outright.
    plan:
        The :class:`~repro.core.gossip.GossipPlan` that produced the
        schedule, when available.  Supplies the DFS labelling (initial
        holdings and message-id semantics), the tree (the ``n + r``
        certificate), and — for ``concurrent-updown`` plans — enables
        the ``paper`` rule tier.
    initial_holds:
        Explicit initial possession bitmasks (overrides the plan's
        labelling; defaults to "processor ``v`` holds message ``v``").
    n_messages:
        Total distinct messages (defaults to ``graph.n``, like the
        engine).
    select / ignore:
        Rule ids or tier names to run / to skip.  ``select=None`` runs
        the ``model`` and ``efficiency`` tiers, plus ``paper`` when
        ``plan`` is a ConcurrentUpDown plan.  Selecting a ``paper`` rule
        explicitly without a ``plan`` raises
        :class:`~repro.exceptions.ReproError`.
    require_complete:
        Whether ``model/incomplete-gossip`` may fire (mirrors the
        dynamic validator's flag).

    Returns
    -------
    LintReport
        Every finding of every active rule, in round order.
    """
    rounds = _normalize(schedule)
    n = graph.n
    n_msgs = int(n_messages) if n_messages is not None else n

    default_tiers = [R.MODEL, R.EFFICIENCY]
    if plan is not None and plan.algorithm == "concurrent-updown":
        default_tiers.append(R.PAPER)
    active = R.expand_selection(select, default_tiers=default_tiers)
    active -= R.expand_selection(ignore, default_tiers=())
    if plan is None and any(R.RULES[r].tier == R.PAPER for r in active):
        # Paper rules can only be active here via an explicit selection
        # (the default only adds them when a ConcurrentUpDown plan is
        # given), and they are meaningless without the producing plan.
        raise ReproError(
            "paper-invariant rules need the producing plan; "
            "pass plan= to lint_schedule"
        )
    if not require_complete:
        active -= {R.INCOMPLETE_GOSSIP.id}

    ctx = _Pass(graph, rounds, n_msgs, _initial_holds(n, plan, initial_holds), active)
    ctx.run()
    if plan is not None and any(R.RULES[r].tier == R.PAPER for r in active):
        ctx.check_paper(plan)
    ctx.check_budget(plan)

    name = (
        schedule.name
        if isinstance(schedule, (Schedule, ArraySchedule))
        else ""
    )
    return LintReport(
        diagnostics=tuple(ctx.diagnostics),
        rules_run=tuple(sorted(active)),
        name=name,
    )


class _Pass:
    """One abstract-possession propagation pass over the rounds."""

    def __init__(
        self,
        graph: Graph,
        rounds: Tuple[Tuple[Transmission, ...], ...],
        n_messages: int,
        holds: List[int],
        active: FrozenSet[str],
    ) -> None:
        self.graph = graph
        self.rounds = rounds
        self.n = graph.n
        self.n_messages = n_messages
        self.holds = holds
        self.active = active
        self.diagnostics: List[Diagnostic] = []
        #: per-round receiver sets (who is targeted in round t).
        self.receivers: List[Set[int]] = []
        #: per-round sender sets.
        self.senders: List[Set[int]] = []
        #: (sender, message) -> [(round, destinations)], for merge lints.
        self.sends_of: Dict[Tuple[int, int], List[Tuple[int, FrozenSet[int]]]] = {}
        #: first time each processor held every message (None = never).
        self.complete_at: List[Optional[int]] = [None] * self.n
        self._full = (1 << n_messages) - 1
        self._neighbour_sets: Dict[int, FrozenSet[int]] = {}
        for v in range(self.n):
            if holds[v] == self._full:
                self.complete_at[v] = 0

    # ------------------------------------------------------------------
    def emit(
        self,
        rule: R.Rule,
        message: str,
        *,
        round: Optional[int] = None,
        sender: Optional[int] = None,
        message_id: Optional[int] = None,
        destination: Optional[int] = None,
    ) -> None:
        """Record a finding if the rule is active."""
        if rule.id not in self.active:
            return
        self.diagnostics.append(
            Diagnostic(
                rule=rule.id,
                severity=rule.severity,
                message=message,
                round=round,
                sender=sender,
                message_id=message_id,
                destination=destination,
            )
        )

    def _neighbours(self, v: int) -> FrozenSet[int]:
        cached = self._neighbour_sets.get(v)
        if cached is None:
            cached = self._neighbour_sets[v] = frozenset(self.graph.neighbors(v))
        return cached

    # ------------------------------------------------------------------
    def run(self) -> None:
        """The single chronological pass (model + per-round efficiency)."""
        pending: List[Tuple[int, int, int, int]] = []  # (dest, msg, sender, round)
        for t, txs in enumerate(self.rounds):
            self._land(pending, t)
            pending = self._check_round(t, txs)
        self._land(pending, len(self.rounds))
        self._check_completeness()
        self._check_mergeable()

    def _land(self, pending: List[Tuple[int, int, int, int]], now: int) -> None:
        """Apply the previous round's deliveries (receive-before-send)."""
        for dest, msg, sender, sent_round in pending:
            if (self.holds[dest] >> msg) & 1:
                self.emit(
                    R.REDUNDANT_DELIVERY,
                    f"round {sent_round}: processor {sender} delivers message "
                    f"{msg} to {dest}, which already holds it",
                    round=sent_round,
                    sender=sender,
                    message_id=msg,
                    destination=dest,
                )
            else:
                self.holds[dest] |= 1 << msg
                if self.holds[dest] == self._full and self.complete_at[dest] is None:
                    self.complete_at[dest] = now

    def _check_round(
        self, t: int, txs: Tuple[Transmission, ...]
    ) -> List[Tuple[int, int, int, int]]:
        """Model-check one round's sends; return its pending deliveries."""
        seen_senders: Dict[int, int] = {}
        seen_receivers: Dict[int, int] = {}
        receivers: Set[int] = set()
        senders: Set[int] = set()
        pending: List[Tuple[int, int, int, int]] = []

        if not txs and t + 1 < len(self.rounds):
            self.emit(
                R.IDLE_ROUND,
                f"round {t} performs no communication but later rounds do",
                round=t,
            )

        for tx in txs:
            s, m = tx.sender, tx.message
            sender_ok = 0 <= s < self.n
            message_ok = 0 <= m < self.n_messages
            if not sender_ok:
                self.emit(
                    R.VERTEX_RANGE,
                    f"round {t}: sender {s} out of range for n={self.n}",
                    round=t, sender=s, message_id=m,
                )
            elif s in seen_senders:
                self.emit(
                    R.SENDER_COLLISION,
                    f"round {t}: processor {s} sends two messages in one round: "
                    f"{seen_senders[s]} and {m}",
                    round=t, sender=s, message_id=m,
                )
            if sender_ok:
                seen_senders.setdefault(s, m)
                senders.add(s)
            if not message_ok:
                self.emit(
                    R.MESSAGE_RANGE,
                    f"round {t}: message {m} out of range for "
                    f"n_messages={self.n_messages}",
                    round=t, sender=s, message_id=m,
                )
            if sender_ok and message_ok and not (self.holds[s] >> m) & 1:
                self.emit(
                    R.SEND_WITHOUT_HOLD,
                    f"round {t}: processor {s} sends message {m} it cannot "
                    f"hold yet",
                    round=t, sender=s, message_id=m,
                )
            neighbours = self._neighbours(s) if sender_ok else frozenset()
            for d in sorted(tx.destinations):
                if not 0 <= d < self.n:
                    self.emit(
                        R.VERTEX_RANGE,
                        f"round {t}: destination {d} out of range for n={self.n}",
                        round=t, sender=s, message_id=m, destination=d,
                    )
                    continue
                if d in seen_receivers:
                    self.emit(
                        R.RECEIVER_COLLISION,
                        f"round {t}: processor {d} receives two messages in "
                        f"one round: {seen_receivers[d]} and {m}",
                        round=t, sender=s, message_id=m, destination=d,
                    )
                seen_receivers.setdefault(d, m)
                receivers.add(d)
                if sender_ok and d not in neighbours:
                    self.emit(
                        R.NON_EDGE,
                        f"round {t}: transmission {s} -> {d} does not follow "
                        f"an edge of the network",
                        round=t, sender=s, message_id=m, destination=d,
                    )
                if message_ok:
                    pending.append((d, m, s, t))
            if sender_ok and message_ok:
                self.sends_of.setdefault((s, m), []).append(
                    (t, frozenset(tx.destinations))
                )

        self.receivers.append(receivers)
        self.senders.append(senders)
        if R.IDLE_SENDER.id in self.active:
            self._check_idle_senders(t, senders, receivers)
        return pending

    def _check_idle_senders(
        self, t: int, senders: Set[int], receivers: Set[int]
    ) -> None:
        """Flag processors that could legally deliver this round but don't."""
        if not self.rounds[t]:
            return  # the idle-round lint already covers fully-silent rounds
        for v in range(self.n):
            if v in senders:
                continue
            have = self.holds[v]
            for u in self._neighbours(v):
                if u in receivers:
                    continue
                missing = have & ~self.holds[u]
                if missing:
                    self.emit(
                        R.IDLE_SENDER,
                        f"round {t}: processor {v} is idle but holds message "
                        f"{_lowest_bit(missing)} its free neighbour {u} misses",
                        round=t, sender=v,
                    )
                    break  # one finding per idle processor per round

    def _check_completeness(self) -> None:
        if R.INCOMPLETE_GOSSIP.id not in self.active:
            return
        missing = {
            v: _bits_missing(self.holds[v], self._full)
            for v in range(self.n)
            if self.holds[v] != self._full
        }
        if missing:
            self.emit(
                R.INCOMPLETE_GOSSIP,
                f"gossip incomplete after {len(self.rounds)} rounds; "
                f"missing: {missing}",
            )

    def _check_mergeable(self) -> None:
        """Repeat sends of one (sender, message) that an earlier multicast
        could have absorbed — fan-out waste, not a model violation."""
        if R.UNICAST_MERGEABLE.id not in self.active:
            return
        for (s, m), sends in self.sends_of.items():
            if len(sends) < 2:
                continue
            t0, dests0 = sends[0]
            free_at_t0 = self.receivers[t0]
            for t1, dests1 in sends[1:]:
                extra = dests1 - dests0
                if extra and all(d not in free_at_t0 for d in extra):
                    self.emit(
                        R.UNICAST_MERGEABLE,
                        f"round {t1}: processor {s} re-sends message {m}; the "
                        f"destinations {sorted(extra)} were free in round {t0} "
                        f"and could have joined that multicast",
                        round=t1, sender=s, message_id=m,
                    )

    # ------------------------------------------------------------------
    def check_budget(self, plan: Optional[GossipPlan]) -> None:
        """The ``n + r`` certificate lint (efficiency tier)."""
        if R.OVER_BUDGET.id not in self.active or not self.rounds:
            return
        if plan is not None:
            r = plan.tree.height
        else:
            from ..networks.properties import radius

            r = radius(self.graph)
        budget = self.n + r
        total = len(self.rounds)
        if total > budget:
            self.emit(
                R.OVER_BUDGET,
                f"schedule takes {total} rounds, beyond the n + r = "
                f"{self.n} + {r} = {budget} certificate",
                round=budget,
            )

    # ------------------------------------------------------------------
    # Paper-invariant tier (ConcurrentUpDown structural rules)
    # ------------------------------------------------------------------
    def check_paper(self, plan: GossipPlan) -> None:
        tree, labeled = plan.tree, plan.labeled
        self._check_label_contiguity(plan)

        parent = [tree.parent(v) for v in range(tree.n)]
        children = {v: frozenset(tree.children(v)) for v in range(tree.n)}
        blocks = labeled.blocks()
        up_events: Dict[int, List[Tuple[int, int]]] = {}

        for t, txs in enumerate(self.rounds):
            for tx in txs:
                s, m = tx.sender, tx.message
                if not (0 <= s < tree.n and 0 <= m < self.n_messages):
                    continue  # already a model error
                blk = blocks[s]
                for d in tx.destinations:
                    if not 0 <= d < tree.n:
                        continue
                    if d == parent[s]:
                        if not blk.i <= m <= blk.j:
                            self.emit(
                                R.UP_MONOTONE,
                                f"round {t}: processor {s} sends message {m} "
                                f"up to its parent, outside its subtree "
                                f"interval [{blk.i}, {blk.j}]",
                                round=t, sender=s, message_id=m, destination=d,
                            )
                        up_events.setdefault(s, []).append((t, m))
                    elif d in children[s]:
                        db = blocks[d]
                        if db.i <= m <= db.j:
                            self.emit(
                                R.DOWN_NO_BACKFLOW,
                                f"round {t}: processor {s} sends message {m} "
                                f"down into the subtree of child {d} that "
                                f"originated it (interval [{db.i}, {db.j}])",
                                round=t, sender=s, message_id=m, destination=d,
                            )
                    else:
                        self.emit(
                            R.TREE_EDGE,
                            f"round {t}: transmission {s} -> {d} is not a "
                            f"tree parent-child edge",
                            round=t, sender=s, message_id=m, destination=d,
                        )

        for v, events in up_events.items():
            events.sort()
            for (t_prev, m_prev), (t_next, m_next) in zip(events, events[1:]):
                if m_next <= m_prev:
                    self.emit(
                        R.UP_MONOTONE,
                        f"round {t_next}: processor {v} sends message {m_next} "
                        f"up after message {m_prev} (round {t_prev}); the "
                        f"up-phase must be label-monotone",
                        round=t_next, sender=v, message_id=m_next,
                    )

        if R.ROOT_COMPLETE.id in self.active and tree.n >= 1:
            root_done = self.complete_at[tree.root]
            if root_done is None or root_done > tree.n:
                when = "never" if root_done is None else f"at round {root_done}"
                self.emit(
                    R.ROOT_COMPLETE,
                    f"root {tree.root} holds all {self.n_messages} messages "
                    f"{when}, not by round n = {tree.n}",
                    round=None if root_done is None else root_done,
                )

        if R.LENGTH_CERTIFICATE.id in self.active:
            expected = tree.n + tree.height if tree.n >= 2 else 0
            total = len(self.rounds)
            if total != expected:
                self.emit(
                    R.LENGTH_CERTIFICATE,
                    f"schedule takes {total} rounds; Theorem 1 certifies "
                    f"exactly n + r = {tree.n} + {tree.height} = {expected}",
                    round=total,
                )

    def _check_label_contiguity(self, plan: GossipPlan) -> None:
        """Re-derive the DFS interval invariants instead of trusting them."""
        if R.LABEL_CONTIGUITY.id not in self.active:
            return
        tree, labeled = plan.tree, plan.labeled
        labels = labeled.labels()
        if sorted(labels) != list(range(tree.n)):
            self.emit(
                R.LABEL_CONTIGUITY,
                f"labels {labels} are not a permutation of 0..{tree.n - 1}",
            )
            return
        # Independent j (max label in subtree), deepest-first aggregation.
        j_of = list(labels)
        for v in sorted(range(tree.n), key=tree.level, reverse=True):
            p = tree.parent(v)
            if p >= 0 and j_of[v] > j_of[p]:
                j_of[p] = j_of[v]
        for v in range(tree.n):
            blk = labeled.block(v)
            if blk.i != labels[v] or blk.j != j_of[v]:
                self.emit(
                    R.LABEL_CONTIGUITY,
                    f"vertex {v} advertises interval [{blk.i}, {blk.j}] but "
                    f"its subtree spans [{labels[v]}, {j_of[v]}]",
                    sender=v,
                )
                continue
            cursor = blk.i + 1
            for c in tree.children(v):
                cb = labeled.block(c)
                if cb.i != cursor:
                    self.emit(
                        R.LABEL_CONTIGUITY,
                        f"child {c} of vertex {v} starts at label {cb.i}, "
                        f"expected {cursor} (intervals must be contiguous)",
                        sender=v, destination=c,
                    )
                    break
                cursor = cb.j + 1
            else:
                if tree.children(v) and cursor != blk.j + 1:
                    self.emit(
                        R.LABEL_CONTIGUITY,
                        f"children of vertex {v} end at label {cursor - 1}, "
                        f"expected {blk.j}",
                        sender=v,
                    )


def _lowest_bit(mask: int) -> int:
    """Index of the lowest set bit of a non-zero mask."""
    return (mask & -mask).bit_length() - 1


def _bits_missing(held: int, full: int) -> Tuple[int, ...]:
    """Message ids present in ``full`` but absent from ``held``."""
    missing = full & ~held
    out: List[int] = []
    while missing:
        b = _lowest_bit(missing)
        out.append(b)
        missing &= missing - 1
    return tuple(out)
