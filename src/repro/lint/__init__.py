"""Static schedule analysis: execution-free verification of gossip plans.

:func:`lint_schedule` checks a schedule against the multicasting
communication model, a set of efficiency lints, and (given a
ConcurrentUpDown plan) the paper's structural invariants — all by
propagating abstract possession sets in a single pass, never by
executing.  Nothing in this package imports the simulator; a clean
:class:`LintReport` is a purely static certificate.

Quick start::

    from repro import gossip
    from repro.lint import lint_schedule

    plan = gossip("grid:16")
    report = lint_schedule(plan.graph, plan.schedule, plan=plan)
    assert report.ok
    print(report.format())

See ``docs/ALGORITHM.md`` section 16 for the rule catalogue and the
soundness argument.
"""

from .diagnostics import Diagnostic, LintReport, Severity
from .driver import ScheduleLike, diagnostic_exception, lint_schedule
from .rules import (
    EFFICIENCY,
    MODEL,
    PAPER,
    RULES,
    STATIC_MODEL_RULES,
    TIERS,
    Rule,
    expand_selection,
)

__all__ = [
    "Diagnostic",
    "LintReport",
    "Severity",
    "Rule",
    "RULES",
    "TIERS",
    "MODEL",
    "EFFICIENCY",
    "PAPER",
    "STATIC_MODEL_RULES",
    "ScheduleLike",
    "expand_selection",
    "diagnostic_exception",
    "lint_schedule",
]
