"""Diagnostic objects for the static schedule analyzer.

A :class:`Diagnostic` is one finding of one rule at one *locus* — a
round index plus, when known, the sender / message / destination of the
offending transmission.  :class:`LintReport` is the immutable result of
one :func:`repro.lint.lint_schedule` run: the diagnostics in emission
order (rounds are analyzed chronologically, so emission order is round
order) plus render helpers for humans (:meth:`LintReport.format`) and
for CI (:meth:`LintReport.to_dict` / :meth:`LintReport.to_json`).

Severity semantics mirror compiler practice: ``error`` means the
schedule violates the communication model (or a paper invariant it
claims to satisfy) and must not be served; ``warning`` means the
schedule is legal but wasteful (redundant deliveries, idle capacity,
fan-out waste, rounds beyond the certificate).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from enum import Enum
from typing import Dict, List, Optional, Tuple

__all__ = ["Severity", "Diagnostic", "LintReport"]


class Severity(str, Enum):
    """Severity of a diagnostic (string-valued for JSON friendliness)."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule id, a severity, a message and a locus.

    Attributes
    ----------
    rule:
        The rule id (``tier/name``, e.g. ``"model/send-without-hold"``).
    severity:
        :attr:`Severity.ERROR` or :attr:`Severity.WARNING`.
    message:
        Human-readable description of the finding.
    round:
        Round index (send time) the finding anchors to, when applicable.
    sender:
        Sending processor of the offending transmission, when applicable.
    message_id:
        Message id of the offending transmission, when applicable.
    destination:
        Offending destination processor, when applicable.
    """

    rule: str
    severity: Severity
    message: str
    round: Optional[int] = None
    sender: Optional[int] = None
    message_id: Optional[int] = None
    destination: Optional[int] = None

    @property
    def is_error(self) -> bool:
        """Whether this diagnostic has error severity."""
        return self.severity is Severity.ERROR

    def locus(self) -> str:
        """Compact ``round t, sender s`` locus string (may be empty)."""
        parts: List[str] = []
        if self.round is not None:
            parts.append(f"round {self.round}")
        if self.sender is not None:
            parts.append(f"sender {self.sender}")
        if self.message_id is not None:
            parts.append(f"message {self.message_id}")
        if self.destination is not None:
            parts.append(f"dest {self.destination}")
        return ", ".join(parts)

    def format(self) -> str:
        """One-line render: ``error model/x (round 3, sender 5): ...``."""
        locus = self.locus()
        where = f" ({locus})" if locus else ""
        return f"{self.severity.value:<7} {self.rule}{where}: {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping (severity flattened to its string value)."""
        data = asdict(self)
        data["severity"] = self.severity.value
        return data


@dataclass(frozen=True)
class LintReport:
    """The immutable result of one static analysis run.

    Attributes
    ----------
    diagnostics:
        All findings in emission (round) order.
    rules_run:
        Ids of the rules that were active for this run — a clean report
        certifies exactly these rules, no more.
    name:
        The analyzed schedule's name (may be empty).
    """

    diagnostics: Tuple[Diagnostic, ...]
    rules_run: Tuple[str, ...]
    name: str = ""

    @property
    def errors(self) -> Tuple[Diagnostic, ...]:
        """Error-severity findings only."""
        return tuple(d for d in self.diagnostics if d.is_error)

    @property
    def warnings(self) -> Tuple[Diagnostic, ...]:
        """Warning-severity findings only."""
        return tuple(d for d in self.diagnostics if not d.is_error)

    @property
    def ok(self) -> bool:
        """Whether the schedule passed (no error-severity findings)."""
        return not self.errors

    def by_rule(self, rule: str) -> Tuple[Diagnostic, ...]:
        """All findings of one rule id."""
        return tuple(d for d in self.diagnostics if d.rule == rule)

    def format(self, *, show_warnings: bool = True) -> str:
        """Multi-line human-readable report (used by ``repro.cli lint``)."""
        shown = self.diagnostics if show_warnings else self.errors
        label = f" {self.name}" if self.name else ""
        header = (
            f"lint{label}: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s), "
            f"{len(self.rules_run)} rule(s) run"
        )
        lines = [header]
        lines.extend(f"  {d.format()}" for d in shown)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping of the whole report."""
        return {
            "name": self.name,
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "rules_run": list(self.rules_run),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def to_json(self, *, indent: Optional[int] = None) -> str:
        """The report as a JSON document (for ``cli lint --json`` / CI)."""
        return json.dumps(self.to_dict(), indent=indent)
